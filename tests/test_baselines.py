"""Unit tests for baseline assignment policies."""

from __future__ import annotations

import math

import pytest

from repro.baselines.policies import (
    ClosestLeafAssignment,
    LeastLoadedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
)
from repro.exceptions import AssignmentError
from repro.network.builders import caterpillar_tree, star_of_paths
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def make_instance(tree, jobs, setting=Setting.IDENTICAL):
    return Instance(tree, JobSet(jobs), setting)


class TestClosestLeaf:
    def test_picks_min_depth(self):
        tree = caterpillar_tree(3, 1)
        inst = make_instance(tree, [Job(id=0, release=0.0, size=1.0)])
        res = simulate(inst, ClosestLeafAssignment())
        assert tree.depth(res.records[0].leaf) == min(
            tree.depth(v) for v in tree.leaves
        )

    def test_unrelated_prefers_fast_machine(self):
        tree = star_of_paths(2, 1)
        inst = make_instance(
            tree,
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 9.0, 4: 1.0})],
            Setting.UNRELATED,
        )
        res = simulate(inst, ClosestLeafAssignment())
        assert res.records[0].leaf == 4

    def test_ignores_congestion(self):
        # All jobs pile on the same closest leaf.
        tree = caterpillar_tree(3, 1)
        inst = make_instance(
            tree, [Job(id=i, release=0.0, size=1.0) for i in range(5)]
        )
        res = simulate(inst, ClosestLeafAssignment())
        assert len({r.leaf for r in res.records.values()}) == 1

    def test_skips_forbidden(self):
        tree = star_of_paths(2, 1)
        inst = make_instance(
            tree,
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 5.0})],
            Setting.UNRELATED,
        )
        res = simulate(inst, ClosestLeafAssignment())
        assert res.records[0].leaf == 4


class TestRandom:
    def test_deterministic_with_seed(self):
        tree = star_of_paths(4, 1)
        jobs = [Job(id=i, release=float(i), size=1.0) for i in range(20)]
        a = simulate(make_instance(tree, jobs), RandomAssignment(3)).assignment()
        b = simulate(make_instance(tree, jobs), RandomAssignment(3)).assignment()
        assert a == b

    def test_spreads_over_leaves(self):
        tree = star_of_paths(4, 1)
        jobs = [Job(id=i, release=float(i), size=1.0) for i in range(40)]
        res = simulate(make_instance(tree, jobs), RandomAssignment(0))
        assert len({r.leaf for r in res.records.values()}) >= 3

    def test_respects_forbidden(self):
        tree = star_of_paths(2, 1)
        jobs = [
            Job(id=i, release=float(i), size=1.0, leaf_sizes={2: math.inf, 4: 1.0})
            for i in range(10)
        ]
        res = simulate(
            make_instance(tree, jobs, Setting.UNRELATED), RandomAssignment(1)
        )
        assert all(r.leaf == 4 for r in res.records.values())


class TestLeastLoaded:
    def test_balances_two_branches(self):
        tree = star_of_paths(2, 1)
        jobs = [Job(id=i, release=0.0, size=2.0) for i in range(4)]
        res = simulate(make_instance(tree, jobs), LeastLoadedAssignment())
        counts = {}
        for r in res.records.values():
            counts[r.leaf] = counts.get(r.leaf, 0) + 1
        assert set(counts.values()) == {2}

    def test_prefers_idle_branch(self):
        tree = star_of_paths(2, 1)
        jobs = [
            Job(id=0, release=0.0, size=10.0),
            Job(id=1, release=1.0, size=1.0),
        ]
        res = simulate(make_instance(tree, jobs), LeastLoadedAssignment())
        assert res.records[0].leaf != res.records[1].leaf


class TestRoundRobin:
    def test_cycles(self):
        tree = star_of_paths(3, 1)
        jobs = [Job(id=i, release=float(i), size=1.0) for i in range(6)]
        res = simulate(make_instance(tree, jobs), RoundRobinAssignment())
        leaves = [res.records[i].leaf for i in range(6)]
        assert leaves[:3] == leaves[3:]
        assert len(set(leaves[:3])) == 3

    def test_skips_forbidden(self):
        tree = star_of_paths(2, 1)
        jobs = [
            Job(id=i, release=float(i), size=1.0, leaf_sizes={2: math.inf, 4: 1.0})
            for i in range(4)
        ]
        res = simulate(
            make_instance(tree, jobs, Setting.UNRELATED), RoundRobinAssignment()
        )
        assert all(r.leaf == 4 for r in res.records.values())


class TestNoFeasibleLeafErrors:
    def test_policies_raise_for_infeasible_job(self):
        # Construct a view-level check via a job feasible only off-tree:
        # every tree leaf is inf -> Instance refuses construction, so this
        # is guarded upstream.  Instead verify the policy-level error by
        # calling with a job whose feasible leaf set is empty relative to
        # the tree (simulate can't be used; use the internal helper).
        from repro.baselines.policies import _feasible_leaves

        class FakeView:
            def __init__(self, tree, instance):
                self.tree = tree
                self.instance = instance

        tree = star_of_paths(2, 1)
        job = Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.0, 9: 1.0})

        class FakeInstance:
            @staticmethod
            def processing_time(j, v):
                return math.inf

        with pytest.raises(AssignmentError, match="no feasible leaf"):
            _feasible_leaves(FakeView(tree, FakeInstance()), job)
