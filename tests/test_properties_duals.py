"""Property-based hardening of the dual-fitting certificate.

The D1 experiment checks fixed seeds; these hypothesis tests assert the
certificate verifies over *random* broomstick workloads, sizes, and ε —
the strongest empirical form of the Sections 3.5/3.6 claim this
reproduction offers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.duals_paper import build_dual_certificate
from repro.network.builders import broomstick_tree
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet
from repro.workload.sizes import round_to_classes


@st.composite
def broomstick_instance(draw):
    tops = draw(st.integers(1, 3))
    handle = draw(st.integers(2, 4))
    tree = broomstick_tree(tops, handle, 1)
    eps = draw(st.sampled_from([0.1, 0.25, 0.5, 1.0]))
    n = draw(st.integers(1, 8))
    jobs = []
    for i in range(n):
        raw = draw(st.floats(0.3, 9.0, allow_nan=False))
        size = float(round_to_classes([raw], eps)[0])
        release = draw(st.floats(0.0, 15.0, allow_nan=False))
        jobs.append(Job(id=i, release=release, size=size))
    return Instance(tree, JobSet(jobs), Setting.IDENTICAL), eps


@settings(max_examples=25, deadline=None)
@given(data=broomstick_instance())
def test_certificate_always_feasible_identical(data):
    instance, eps = data
    cert = build_dual_certificate(instance, eps)
    assert cert.is_feasible(), cert.summary()
    assert cert.dual_objective_scaled > 0


@settings(max_examples=15, deadline=None)
@given(data=broomstick_instance(), speed_boost=st.floats(1.0, 3.0))
def test_certificate_feasible_with_extra_speed(data, speed_boost):
    """More algorithm speed only helps: the certificate must continue to
    verify when the algorithm runs faster than the theorem requires."""
    instance, eps = data
    from repro.sim.speed import SpeedProfile

    speeds = SpeedProfile.theorem1(eps).scaled(speed_boost)
    cert = build_dual_certificate(instance, eps, speeds=speeds)
    assert cert.is_feasible(), cert.summary()


@settings(max_examples=20, deadline=None)
@given(data=broomstick_instance())
def test_beta_dominates_cost_paper_accounting(data):
    """Section 3.5's accounting: Σβ ≥ (1+ε) × fractional cost."""
    instance, eps = data
    cert = build_dual_certificate(instance, eps)
    if cert.alg_fractional_cost > 0:
        assert cert.beta_sum >= (1.0 + eps) * cert.alg_fractional_cost - 1e-9
