"""Unit tests for TreeNetwork structure and the paper's accessors."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.network.node import NodeKind
from repro.network.tree import TreeNetwork


def chain(n: int) -> dict[int, int | None]:
    """0 -> 1 -> ... -> n-1 parent map (0 is root)."""
    return {0: None, **{i: i - 1 for i in range(1, n)}}


class TestConstruction:
    def test_single_chain_classifies_kinds(self):
        t = TreeNetwork(chain(4))
        assert t.node(0).kind is NodeKind.ROOT
        assert t.node(1).kind is NodeKind.ROUTER
        assert t.node(2).kind is NodeKind.ROUTER
        assert t.node(3).kind is NodeKind.LEAF

    def test_empty_rejected(self):
        with pytest.raises(TopologyError, match="at least one node"):
            TreeNetwork({})

    def test_two_roots_rejected(self):
        with pytest.raises(TopologyError, match="exactly one root"):
            TreeNetwork({0: None, 1: None})

    def test_no_root_rejected(self):
        with pytest.raises(TopologyError, match="exactly one root"):
            TreeNetwork({0: 1, 1: 0})

    def test_self_parent_rejected(self):
        with pytest.raises(TopologyError, match="its own parent"):
            TreeNetwork({0: None, 1: 1})

    def test_unknown_parent_rejected(self):
        with pytest.raises(TopologyError, match="unknown parent"):
            TreeNetwork({0: None, 1: 99})

    def test_disconnected_cycle_rejected(self):
        with pytest.raises(TopologyError, match="not reachable"):
            TreeNetwork({0: None, 1: 2, 2: 1})

    def test_leaf_adjacent_to_root_rejected(self):
        with pytest.raises(TopologyError, match="forbids leaves adjacent"):
            TreeNetwork({0: None, 1: 0})

    def test_leaf_adjacent_to_root_allowed_when_opted_in(self):
        t = TreeNetwork({0: None, 1: 0}, allow_leaf_under_root=True)
        assert t.node(1).is_leaf

    def test_rootless_children_rejected(self):
        with pytest.raises(TopologyError, match="no children"):
            TreeNetwork({0: None}, allow_leaf_under_root=True)

    def test_names_attach(self):
        t = TreeNetwork(chain(3), names={2: "machine"})
        assert t.node(2).name == "machine"
        assert t.node(2).label() == "machine"
        assert t.node(1).label() == "router#1"


class TestAccessors:
    @pytest.fixture
    def tree(self):
        #       0
        #    1     2
        #   3 4    5
        #  L6 L7  L8 L9(under 5)
        return TreeNetwork(
            {0: None, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 3, 7: 4, 8: 5, 9: 5}
        )

    def test_root_children(self, tree):
        assert tree.root_children == (1, 2)

    def test_leaves_preorder(self, tree):
        assert set(tree.leaves) == {6, 7, 8, 9}

    def test_routers(self, tree):
        assert set(tree.routers) == {1, 2, 3, 4, 5}

    def test_parent_and_children(self, tree):
        assert tree.parent(3) == 1
        assert tree.parent(0) is None
        assert tree.children(1) == (3, 4)
        assert tree.children(6) == ()

    def test_top_router(self, tree):
        assert tree.top_router(6) == 1
        assert tree.top_router(9) == 2
        assert tree.top_router(1) == 1

    def test_top_router_of_root_rejected(self, tree):
        with pytest.raises(TopologyError):
            tree.top_router(0)

    def test_leaves_under(self, tree):
        assert set(tree.leaves_under(1)) == {6, 7}
        assert set(tree.leaves_under(2)) == {8, 9}
        assert tree.leaves_under(6) == (6,)

    def test_d_counts_nodes_to_top(self, tree):
        assert tree.d(1) == 1
        assert tree.d(3) == 2
        assert tree.d(6) == 3

    def test_processing_path(self, tree):
        assert tree.processing_path(6) == (1, 3, 6)
        assert tree.processing_path(9) == (2, 5, 9)

    def test_processing_path_non_leaf_rejected(self, tree):
        with pytest.raises(TopologyError, match="not a leaf"):
            tree.processing_path(3)

    def test_path_between(self, tree):
        assert tree.path_between(1, 6) == (1, 3, 6)
        assert tree.path_between(6, 6) == (6,)
        with pytest.raises(TopologyError, match="not an ancestor"):
            tree.path_between(2, 6)

    def test_is_ancestor(self, tree):
        assert tree.is_ancestor(0, 9)
        assert tree.is_ancestor(2, 9)
        assert tree.is_ancestor(9, 9)
        assert not tree.is_ancestor(1, 9)

    def test_height_and_counts(self, tree):
        assert tree.height == 3
        assert tree.num_nodes == 10
        assert tree.num_leaves == 4
        assert len(tree) == 10

    def test_iteration_preorder_root_first(self, tree):
        ids = [n.id for n in tree]
        assert ids[0] == 0
        assert set(ids) == set(range(10))

    def test_unknown_node_queries(self, tree):
        with pytest.raises(TopologyError):
            tree.node(42)
        with pytest.raises(TopologyError):
            tree.leaves_under(42)
        assert 42 not in tree
        assert 5 in tree

    def test_subtree_node_ids(self, tree):
        assert set(tree.subtree_node_ids(1)) == {1, 3, 4, 6, 7}

    def test_leaf_index_dense(self, tree):
        idx = tree.leaf_index()
        assert sorted(idx.values()) == list(range(4))


class TestBroomstickPredicate:
    def test_chain_is_broomstick(self):
        assert TreeNetwork(chain(5)).is_broomstick()

    def test_branching_routers_not_broomstick(self):
        t = TreeNetwork({0: None, 1: 0, 2: 1, 3: 1, 4: 2, 5: 3})
        assert not t.is_broomstick()

    def test_spine_of_chain(self):
        t = TreeNetwork(chain(5))
        assert t.spine_of(1) == (1, 2, 3)

    def test_spine_of_requires_root_child(self):
        t = TreeNetwork(chain(5))
        with pytest.raises(TopologyError, match="not adjacent"):
            t.spine_of(2)


class TestExport:
    def test_parent_map_round_trip(self):
        pm = chain(4)
        t = TreeNetwork(pm)
        t2 = TreeNetwork(t.parent_map())
        assert t2.parent_map() == t.parent_map()

    def test_to_networkx(self):
        t = TreeNetwork(chain(4))
        g = t.to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert g.nodes[3]["kind"] == "leaf"

    def test_render_ascii_mentions_every_node(self):
        t = TreeNetwork(chain(4), names={0: "r", 3: "m"})
        text = t.render_ascii()
        assert "r" in text and "m" in text
        assert text.count("\n") == 3

    def test_from_edges_order_independent(self):
        a = TreeNetwork.from_edges(0, [(0, 1), (1, 2)])
        b = TreeNetwork.from_edges(0, [(1, 2), (0, 1)])
        assert a.parent_map() == b.parent_map()

    def test_from_edges_rejects_two_parents(self):
        with pytest.raises(TopologyError, match="two parents"):
            TreeNetwork.from_edges(0, [(0, 1), (2, 1), (0, 2)])

    def test_from_edges_rejects_root_as_child(self):
        with pytest.raises(TopologyError, match="root cannot"):
            TreeNetwork.from_edges(0, [(1, 0)])

    def test_from_edges_rejects_orphan(self):
        # 5 appears only as a parent and is not the root.
        with pytest.raises(TopologyError):
            TreeNetwork.from_edges(0, [(0, 1), (5, 2)])

    def test_repr_mentions_shape(self):
        t = TreeNetwork(chain(4))
        assert "leaves=1" in repr(t)
