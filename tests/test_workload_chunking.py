"""Unit tests for the divisible-routing (chunking) extension."""

from __future__ import annotations

import math

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import WorkloadError
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.invariants import validate_schedule
from repro.workload.chunking import (
    ChunkedAssignment,
    aggregate_chunk_result,
    chunk_instance,
    chunk_priority,
)
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def base_instance():
    tree = star_of_paths(2, 3)
    jobs = JobSet(
        [
            Job(id=0, release=0.0, size=4.0),
            Job(id=1, release=1.0, size=2.0),
            Job(id=2, release=2.0, size=1.0),
        ]
    )
    return Instance(tree, jobs, Setting.IDENTICAL)


class TestChunkInstance:
    def test_piece_counts_and_sizes(self, base_instance):
        chunked = chunk_instance(base_instance, chunk_size=1.0)
        assert chunked.num_chunks == 4 + 2 + 1
        for parent_id, pieces in chunked.chunks_of.items():
            parent = base_instance.jobs.by_id(parent_id)
            total = sum(chunked.instance.jobs.by_id(p).size for p in pieces)
            assert total == pytest.approx(parent.size)

    def test_pieces_inherit_release(self, base_instance):
        chunked = chunk_instance(base_instance, 1.0)
        for parent_id, pieces in chunked.chunks_of.items():
            parent = base_instance.jobs.by_id(parent_id)
            for p in pieces:
                assert chunked.instance.jobs.by_id(p).release == parent.release

    def test_oversized_chunk_is_single_piece(self, base_instance):
        chunked = chunk_instance(base_instance, 100.0)
        assert chunked.num_chunks == 3

    def test_fractional_boundary_splits_evenly(self):
        tree = spine_tree(1)
        inst = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=2.5)]), Setting.IDENTICAL
        )
        chunked = chunk_instance(inst, 1.0)  # ceil(2.5) = 3 pieces of 5/6
        pieces = chunked.chunks_of[0]
        assert len(pieces) == 3
        assert chunked.instance.jobs.by_id(pieces[0]).size == pytest.approx(2.5 / 3)

    def test_unrelated_leaf_sizes_scaled(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=2.0, leaf_sizes={2: 4.0, 4: math.inf})]
        )
        inst = Instance(tree, jobs, Setting.UNRELATED)
        chunked = chunk_instance(inst, 1.0)
        piece = chunked.instance.jobs.by_id(chunked.chunks_of[0][0])
        assert piece.leaf_sizes == {2: 2.0, 4: math.inf}

    def test_bad_chunk_size(self, base_instance):
        with pytest.raises(WorkloadError):
            chunk_instance(base_instance, 0.0)
        with pytest.raises(WorkloadError):
            chunk_instance(base_instance, math.inf)


class TestChunkPriority:
    def test_ranks_by_parent_size(self, base_instance):
        chunked = chunk_instance(base_instance, 1.0)
        prio = chunk_priority(chunked)
        inst = chunked.instance
        # A piece of job 2 (parent size 1) outranks a piece of job 0
        # (parent size 4) even though piece sizes are equal (1.0).
        piece_of_0 = inst.jobs.by_id(chunked.chunks_of[0][0])
        piece_of_2 = inst.jobs.by_id(chunked.chunks_of[2][0])
        node = base_instance.tree.root_children[0]
        assert prio(inst, piece_of_2, node) < prio(inst, piece_of_0, node)

    def test_sibling_pieces_order_by_index(self, base_instance):
        chunked = chunk_instance(base_instance, 1.0)
        prio = chunk_priority(chunked)
        inst = chunked.instance
        node = base_instance.tree.root_children[0]
        a, b = chunked.chunks_of[0][:2]
        assert prio(inst, inst.jobs.by_id(a), node) < prio(inst, inst.jobs.by_id(b), node)


class TestChunkedRuns:
    def test_pinning_keeps_one_leaf_per_job(self, base_instance):
        chunked = chunk_instance(base_instance, 1.0)
        result = simulate(
            chunked.instance,
            ChunkedAssignment(chunked, GreedyIdenticalAssignment(0.5)),
            priority=chunk_priority(chunked),
            record_segments=True,
        )
        validate_schedule(result)
        summary = aggregate_chunk_result(chunked, result)
        assert set(summary.assignment) == {0, 1, 2}

    def test_aggregate_rejects_split_jobs(self, base_instance):
        chunked = chunk_instance(base_instance, 2.0)
        leaves = base_instance.tree.leaves
        # Deliberately split job 0's two pieces across leaves.
        mapping = {p: leaves[i % 2] for i, p in enumerate(chunked.chunks_of[0])}
        for parent in (1, 2):
            for p in chunked.chunks_of[parent]:
                mapping[p] = leaves[0]
        result = simulate(chunked.instance, FixedAssignment(mapping))
        with pytest.raises(WorkloadError, match="multiple leaves"):
            aggregate_chunk_result(chunked, result)

    def test_chunking_helps_on_deep_pipeline(self):
        """A single big job on a deep path: chunks pipeline, halving-ish
        the flow time."""
        tree = spine_tree(4)
        leaf = tree.leaves[0]
        inst = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=4.0)]), Setting.IDENTICAL
        )
        whole = simulate(inst, FixedAssignment({0: leaf}))
        chunked = chunk_instance(inst, 1.0)
        mapping = {p: leaf for p in chunked.chunks_of[0]}
        res = simulate(
            chunked.instance, FixedAssignment(mapping), priority=chunk_priority(chunked)
        )
        summary = aggregate_chunk_result(chunked, res)
        # Store-and-forward: 5 nodes x 4 = 20.  Chunked: pipeline fills in
        # 4 hops of 1 unit then streams: 4 + 4 = 8.
        assert whole.records[0].flow_time == pytest.approx(20.0)
        assert summary.flow_times[0] == pytest.approx(8.0)

    def test_flow_never_negative_and_consistent(self, base_instance):
        chunked = chunk_instance(base_instance, 0.5)
        result = simulate(
            chunked.instance,
            ChunkedAssignment(chunked, GreedyIdenticalAssignment(0.5)),
            priority=chunk_priority(chunked),
        )
        summary = aggregate_chunk_result(chunked, result)
        for jid, f in summary.flow_times.items():
            job = base_instance.jobs.by_id(jid)
            assert f > 0
            assert summary.completions[jid] == pytest.approx(job.release + f)
