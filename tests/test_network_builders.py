"""Unit tests for the topology builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TopologyError
from repro.network.builders import (
    broomstick_tree,
    caterpillar_tree,
    datacenter_tree,
    figure1_tree,
    kary_tree,
    random_tree,
    spine_tree,
    star_of_paths,
    tree_from_parent_map,
)


class TestKary:
    def test_leaf_count(self):
        assert kary_tree(2, 3).num_leaves == 8
        assert kary_tree(3, 2).num_leaves == 9

    def test_height(self):
        assert kary_tree(2, 4).height == 4

    def test_all_leaves_at_max_depth(self):
        t = kary_tree(2, 3)
        assert all(t.depth(v) == 3 for v in t.leaves)

    def test_depth_one_rejected(self):
        with pytest.raises(TopologyError, match="depth must be >= 2"):
            kary_tree(2, 1)

    def test_bad_branching_rejected(self):
        with pytest.raises(TopologyError, match="branching"):
            kary_tree(0, 3)

    def test_unary_is_broomstick(self):
        assert kary_tree(1, 4).is_broomstick()


class TestStarOfPaths:
    def test_shape(self):
        t = star_of_paths(3, 2)
        assert len(t.root_children) == 3
        assert t.num_leaves == 3
        assert t.height == 3

    def test_every_path_has_stated_length(self):
        t = star_of_paths(2, 4)
        for leaf in t.leaves:
            assert len(t.processing_path(leaf)) == 5

    def test_is_broomstick(self):
        assert star_of_paths(4, 3).is_broomstick()

    def test_spine_tree_single_branch(self):
        t = spine_tree(3)
        assert len(t.root_children) == 1
        assert t.num_leaves == 1

    def test_validation(self):
        with pytest.raises(TopologyError):
            star_of_paths(0, 1)
        with pytest.raises(TopologyError):
            star_of_paths(1, 0)


class TestCaterpillar:
    def test_leaf_count(self):
        assert caterpillar_tree(3, 2).num_leaves == 6

    def test_single_spine(self):
        t = caterpillar_tree(4, 1)
        assert len(t.root_children) == 1
        assert t.is_broomstick()

    def test_leaf_depths_spread(self):
        t = caterpillar_tree(3, 1)
        depths = sorted(t.depth(v) for v in t.leaves)
        assert depths == [2, 3, 4]

    def test_validation(self):
        with pytest.raises(TopologyError):
            caterpillar_tree(0, 1)
        with pytest.raises(TopologyError):
            caterpillar_tree(1, 0)


class TestBroomstickBuilder:
    def test_uniform_bristles(self):
        t = broomstick_tree(2, 3, 2)
        assert t.is_broomstick()
        assert t.num_leaves == 2 * 2 * 2  # 2 tops x positions {1,2} x 2 each

    def test_bristle_map(self):
        t = broomstick_tree(1, 4, {2: 3})
        assert t.num_leaves == 3
        assert all(t.depth(v) == 4 for v in t.leaves)

    def test_bad_position_rejected(self):
        with pytest.raises(TopologyError, match="position"):
            broomstick_tree(1, 3, {0: 1})
        with pytest.raises(TopologyError, match="position"):
            broomstick_tree(1, 3, {3: 1})

    def test_no_machines_rejected(self):
        with pytest.raises(TopologyError, match="at least one machine"):
            broomstick_tree(1, 3, {1: 0})

    def test_short_handle_rejected(self):
        with pytest.raises(TopologyError, match="handle_length"):
            broomstick_tree(1, 1, 1)


class TestRandomTree:
    def test_node_count_at_least_requested(self):
        t = random_tree(20, rng=0)
        assert t.num_nodes >= 20

    def test_deterministic_under_seed(self):
        a = random_tree(25, rng=42)
        b = random_tree(25, rng=42)
        assert a.parent_map() == b.parent_map()

    def test_different_seeds_differ(self):
        a = random_tree(25, rng=1)
        b = random_tree(25, rng=2)
        assert a.parent_map() != b.parent_map()

    def test_accepts_generator(self):
        t = random_tree(15, rng=np.random.default_rng(7))
        assert t.num_leaves >= 1

    def test_max_children_respected(self):
        t = random_tree(60, rng=3, max_children=2)
        for node in t:
            if node.id not in t.root_children and not node.is_root:
                assert len(node.children) <= 2 + 1  # +1 for the padding machine

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            random_tree(3)


class TestDatacenter:
    def test_shape(self):
        t = datacenter_tree(2, 3, 4)
        assert len(t.root_children) == 2
        assert t.num_leaves == 2 * 3 * 4
        assert t.height == 3

    def test_names(self):
        t = datacenter_tree(1, 1, 1)
        labels = {n.name for n in t}
        assert "core" in labels
        assert "pod0/rack0/m0" in labels

    def test_validation(self):
        with pytest.raises(TopologyError):
            datacenter_tree(0, 1, 1)


class TestFigure1:
    def test_structure(self):
        t = figure1_tree()
        assert len(t.root_children) == 2
        assert t.num_leaves == 7
        assert not t.is_broomstick()

    def test_legal_model(self):
        t = figure1_tree()
        assert all(not t.node(v).is_leaf for v in t.root_children)


def test_tree_from_parent_map_passthrough():
    t = tree_from_parent_map({0: None, 1: 0, 2: 1})
    assert t.num_leaves == 1
