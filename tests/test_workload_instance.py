"""Unit tests for Instance: validation, notation, transformations."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import WorkloadError
from repro.network.broomstick import reduce_to_broomstick
from repro.network.builders import kary_tree, star_of_paths
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


class TestValidation:
    def test_identical_rejects_unrelated_jobs(self, two_path_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 1.0, 4: 1.0})])
        with pytest.raises(WorkloadError, match="IDENTICAL"):
            Instance(two_path_tree, jobs, Setting.IDENTICAL)

    def test_unrelated_rejects_identical_jobs(self, two_path_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        with pytest.raises(WorkloadError, match="lacks leaf_sizes"):
            Instance(two_path_tree, jobs, Setting.UNRELATED)

    def test_unrelated_requires_full_leaf_coverage(self, two_path_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 1.0})])
        with pytest.raises(WorkloadError, match="missing leaves"):
            Instance(two_path_tree, jobs, Setting.UNRELATED)

    def test_unrelated_requires_a_feasible_leaf(self, two_path_tree):
        # leaf_sizes may carry inf for tree leaves plus a finite entry for
        # a node that is NOT a leaf of this tree -> no feasible leaf here.
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: math.inf, 9: 1.0})]
        )
        with pytest.raises(WorkloadError, match="no feasible leaf"):
            Instance(two_path_tree, jobs, Setting.UNRELATED)


class TestNotation:
    def test_processing_time_identical(self, identical_instance_small):
        inst = identical_instance_small
        job = inst.jobs.by_id(0)
        for v in (1, 2, 3, 4):
            assert inst.processing_time(job, v) == job.size

    def test_processing_time_unrelated(self, unrelated_instance_small):
        inst = unrelated_instance_small
        job = inst.jobs.by_id(0)
        assert inst.processing_time(job, 1) == 1.0  # router: p_j
        assert inst.processing_time(job, 2) == 1.0
        assert inst.processing_time(job, 4) == 3.0

    def test_path_volume(self, unrelated_instance_small):
        inst = unrelated_instance_small
        job = inst.jobs.by_id(1)  # size 2, leaves {2:4, 4:2}
        assert inst.path_volume(job, 2) == 2.0 + 4.0
        assert inst.path_volume(job, 4) == 2.0 + 2.0

    def test_eta_router_vs_leaf(self, identical_instance_small):
        inst = identical_instance_small
        job = inst.jobs.by_id(0)
        assert inst.eta(job, 1) == 1.0  # d=1 router
        assert inst.eta(job, 2) == 2.0  # router + leaf

    def test_min_path_volume(self, unrelated_instance_small):
        inst = unrelated_instance_small
        assert inst.min_path_volume(inst.jobs.by_id(1)) == 4.0

    def test_feasible_leaves_skips_inf(self, two_path_tree):
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.0})]
        )
        inst = Instance(two_path_tree, jobs, Setting.UNRELATED)
        assert inst.feasible_leaves(jobs.by_id(0)) == (4,)


class TestLoadAccounting:
    def test_empty_utilisation(self, two_path_tree):
        inst = Instance(two_path_tree, JobSet([]), Setting.IDENTICAL)
        u = inst.tier_utilisations()
        assert u == {"root_children": 0.0, "leaves": 0.0}

    def test_utilisation_positive(self, identical_instance_small):
        u = identical_instance_small.tier_utilisations()
        assert u["root_children"] > 0
        assert u["leaves"] > 0

    def test_poisson_rate_scales_with_width(self):
        narrow = star_of_paths(2, 1)
        wide = star_of_paths(8, 1)
        r_narrow = Instance.poisson_rate_for_load(narrow, 1.0, 0.9)
        r_wide = Instance.poisson_rate_for_load(wide, 1.0, 0.9)
        assert r_wide == pytest.approx(4 * r_narrow)

    def test_poisson_rate_validation(self, two_path_tree):
        with pytest.raises(WorkloadError):
            Instance.poisson_rate_for_load(two_path_tree, 0.0, 0.9)
        with pytest.raises(WorkloadError):
            Instance.poisson_rate_for_load(two_path_tree, 1.0, 0.0)


class TestTransformations:
    def test_on_broomstick_identical(self, binary_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        inst = Instance(binary_tree, jobs, Setting.IDENTICAL)
        red = reduce_to_broomstick(binary_tree)
        moved = inst.on_broomstick(red)
        assert moved.tree is red.broomstick
        assert moved.jobs is inst.jobs  # identical jobs carry over unchanged

    def test_on_broomstick_remaps_unrelated(self, two_path_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 5.0, 4: 7.0})])
        inst = Instance(two_path_tree, jobs, Setting.UNRELATED)
        red = reduce_to_broomstick(two_path_tree)
        moved = inst.on_broomstick(red)
        job = moved.jobs.by_id(0)
        assert job.leaf_sizes == {
            red.leaf_map[2]: 5.0,
            red.leaf_map[4]: 7.0,
        }

    def test_on_broomstick_rejects_foreign_reduction(self, two_path_tree, binary_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        inst = Instance(two_path_tree, jobs, Setting.IDENTICAL)
        red = reduce_to_broomstick(binary_tree)
        with pytest.raises(WorkloadError, match="different tree"):
            inst.on_broomstick(red)

    def test_rounded_identical(self, two_path_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.3)])
        inst = Instance(two_path_tree, jobs, Setting.IDENTICAL)
        r = inst.rounded(1.0)
        assert r.jobs.by_id(0).size == 2.0

    def test_rounded_preserves_inf(self, two_path_tree):
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.3})]
        )
        inst = Instance(two_path_tree, jobs, Setting.UNRELATED)
        r = inst.rounded(1.0)
        assert r.jobs.by_id(0).leaf_sizes[2] == math.inf
        assert r.jobs.by_id(0).leaf_sizes[4] == 2.0

    def test_repr(self, identical_instance_small):
        assert "identical" in repr(identical_instance_small)
