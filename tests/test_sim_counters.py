"""Tests for the engine performance counters."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment
from repro.network.builders import spine_tree
from repro.sim.counters import (
    EngineCounters,
    disable_global_counters,
    enable_global_counters,
    global_counters,
    global_counters_enabled,
)
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def chain_instance():
    jobs = JobSet([Job(id=i, release=float(i), size=1.0) for i in range(4)])
    return Instance(spine_tree(1), jobs, Setting.IDENTICAL)


def run(instance, **kw):
    policy = FixedAssignment({j.id: 2 for j in instance.jobs})
    return simulate(instance, policy, **kw)


class TestPerRunCounters:
    def test_disabled_by_default(self, chain_instance):
        assert run(chain_instance).counters is None

    def test_collected_when_requested(self, chain_instance):
        res = run(chain_instance, collect_counters=True)
        c = res.counters
        assert c is not None
        assert c.runs == 1
        assert c.events_processed == res.num_events
        assert c.arrivals == len(chain_instance.jobs)
        assert c.arrivals + c.completions == c.events_processed
        # Every arrival and every hop settles + rearms at least once.
        assert c.settle_calls > 0
        assert c.rearm_calls > 0
        assert c.heap_pushes >= c.arrivals
        assert c.run_seconds > 0.0
        assert c.arrival_seconds >= 0.0
        assert c.completion_seconds >= 0.0
        assert c.events_per_second > 0.0

    def test_explicit_false_wins_over_global(self, chain_instance):
        enable_global_counters()
        try:
            res = run(chain_instance, collect_counters=False)
            assert res.counters is None
            assert global_counters().runs == 0
        finally:
            disable_global_counters()


class TestGlobalAggregation:
    def test_runs_merge_into_aggregate(self, chain_instance):
        aggregate = enable_global_counters()
        try:
            assert global_counters_enabled()
            r1 = run(chain_instance)
            r2 = run(chain_instance)
            assert r1.counters is not None and r2.counters is not None
            assert aggregate.runs == 2
            assert (
                aggregate.events_processed
                == r1.counters.events_processed + r2.counters.events_processed
            )
        finally:
            disable_global_counters()
        assert not global_counters_enabled()
        assert global_counters() is None


class TestCountersStruct:
    def test_merge_and_dict_roundtrip(self):
        a = EngineCounters(runs=1, events_processed=10, arrivals=4, run_seconds=0.5)
        b = EngineCounters(runs=2, events_processed=5, arrivals=1, run_seconds=0.25)
        a.merge(b)
        assert a.runs == 3
        assert a.events_processed == 15
        assert a.arrivals == 5
        assert a.run_seconds == pytest.approx(0.75)
        again = EngineCounters.from_dict(a.as_dict() | {"unknown_key": 1})
        assert again == a

    def test_events_per_second_unmeasured(self):
        assert EngineCounters().events_per_second == 0.0


def test_counters_table_renders():
    from repro.analysis.report import counters_table

    c = EngineCounters(runs=1, events_processed=7, arrivals=3, completions=4)
    text = counters_table(c).render()
    assert "events processed" in text
    assert "7" in text
