"""The exact oracle (`repro.testing.exact`) vs the event engine.

Two independent implementations of the Section-2 model must produce the
same completions up to float rounding; the collision regime (power-of-two
sizes on shared release instants under non-unit speeds) is pinned
explicitly because it exercises the drain-finished-ties rule, the
subtlest piece of tie-breaking both implementations must share.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment
from repro.network.tree import TreeNetwork
from repro.sim.engine import simulate
from repro.testing.checks import run_checks
from repro.testing.exact import exact_replay
from repro.testing.generate import CaseConfig, build_case
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet

_RTOL = 1e-9


def _assert_agrees(instance, assignment, *, speeds=None):
    engine = simulate(instance, FixedAssignment(assignment), speeds=speeds)
    oracle = exact_replay(instance, assignment, speeds=speeds)
    assert set(oracle) == set(engine.records)
    for jid, rec in engine.records.items():
        scale = max(1.0, abs(rec.completion))
        assert abs(oracle[jid] - rec.completion) <= _RTOL * scale, (
            f"job {jid}: engine {rec.completion}, oracle {oracle[jid]}"
        )


class TestDrainSemantics:
    def test_finished_job_completes_before_simultaneous_arrival(self):
        # Job 0's remaining hits exactly zero at t=2, the same instant
        # the shorter (higher-SJF-priority) job 1 is released.  The
        # model says job 0 is complete at 2.0 — it must not be re-queued
        # behind the newcomer.  (Single machine below the root: the
        # one-node path isolates the per-node tie-breaking.)
        tree = TreeNetwork({0: None, 1: 0}, allow_leaf_under_root=True)
        leaf = tree.leaves[0]
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=2.0),
                Job(id=1, release=2.0, size=1.0),
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        assignment = {0: leaf, 1: leaf}
        oracle = exact_replay(instance, assignment)
        assert oracle[0] == pytest.approx(2.0, abs=1e-12)
        assert oracle[1] == pytest.approx(3.0, abs=1e-12)
        _assert_agrees(instance, assignment)

    def test_chained_exact_finishes(self):
        # A cascade: each job finishes exactly when the next (smaller)
        # one arrives, so every boundary is a drain event.
        tree = TreeNetwork({0: None, 1: 0}, allow_leaf_under_root=True)
        leaf = tree.leaves[0]
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=4.0),
                Job(id=1, release=4.0, size=2.0),
                Job(id=2, release=6.0, size=1.0),
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        assignment = {j.id: leaf for j in jobs}
        oracle = exact_replay(instance, assignment)
        assert oracle == pytest.approx({0: 4.0, 1: 6.0, 2: 7.0})
        _assert_agrees(instance, assignment)


class TestAgainstEngine:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_cases(self, seed):
        case = build_case(
            CaseConfig(
                seed=100 + seed,
                topology="kary_2x2",
                n_jobs=7,
                arrivals="poisson",
                sizes="uniform",
            )
        )
        failures = run_checks(case, checks=("engine", "exact_oracle"))
        assert not failures, [f.message for f in failures]

    @pytest.mark.parametrize("seed", range(8))
    def test_collision_regime(self, seed):
        # The empirically mapped brink-of-completion trigger space:
        # power-of-two sizes, shared integer releases, non-unit speeds.
        case = build_case(
            CaseConfig(
                seed=500 + seed,
                topology="spine4",
                n_jobs=12,
                arrivals="integer_grid" if seed % 2 else "tied",
                sizes="powers",
                policy="closest",
                speed="tiered" if seed % 2 else "fast",
            )
        )
        failures = run_checks(case, checks=("engine", "exact_oracle"))
        assert not failures, [f.message for f in failures]

    def test_fifo_priority(self):
        case = build_case(
            CaseConfig(
                seed=42,
                topology="caterpillar",
                n_jobs=8,
                arrivals="bursts",
                sizes="near_tie",
                priority="fifo",
            )
        )
        failures = run_checks(case, checks=("engine", "exact_oracle"))
        assert not failures, [f.message for f in failures]

    def test_unrelated_setting(self):
        case = build_case(
            CaseConfig(
                seed=17,
                topology="paths_2x1",
                n_jobs=6,
                arrivals="poisson",
                sizes="pareto",
                setting="unrelated",
            )
        )
        failures = run_checks(case, checks=("engine", "exact_oracle"))
        assert not failures, [f.message for f in failures]
