"""Unit tests for replication statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import Replication, compare, replicate
from repro.exceptions import AnalysisError


class TestReplicate:
    def test_constant_measure(self):
        rep = replicate(lambda s: 5.0, seeds=range(5))
        assert rep.mean == 5.0
        assert rep.std == 0.0
        assert rep.ci_low == rep.ci_high == 5.0

    def test_seed_is_passed_through(self):
        rep = replicate(lambda s: float(s), seeds=[1, 2, 3])
        assert rep.values == (1.0, 2.0, 3.0)
        assert rep.mean == 2.0

    def test_ci_covers_true_mean(self):
        rng = np.random.default_rng(0)

        def measure(seed: int) -> float:
            return float(np.random.default_rng(seed).normal(10.0, 2.0))

        rep = replicate(measure, seeds=range(40), level=0.95)
        assert rep.ci_low <= 10.0 <= rep.ci_high

    def test_ci_narrows_with_more_seeds(self):
        def measure(seed: int) -> float:
            return float(np.random.default_rng(seed).normal(0.0, 1.0))

        narrow = replicate(measure, seeds=range(64))
        wide = replicate(measure, seeds=range(8))
        assert narrow.half_width < wide.half_width

    def test_level_controls_width(self):
        def measure(seed: int) -> float:
            return float(np.random.default_rng(seed).normal(0.0, 1.0))

        c90 = replicate(measure, seeds=range(16), level=0.90)
        c99 = replicate(measure, seeds=range(16), level=0.99)
        assert c99.half_width > c90.half_width

    def test_too_few_seeds(self):
        with pytest.raises(AnalysisError, match="at least 2"):
            replicate(lambda s: 1.0, seeds=[0])

    def test_unknown_level(self):
        with pytest.raises(AnalysisError, match="level"):
            replicate(lambda s: 1.0, seeds=[0, 1], level=0.5)

    def test_str_rendering(self):
        rep = replicate(lambda s: float(s), seeds=[0, 2])
        assert "±" in str(rep)


class TestCompare:
    def _rep(self, lo: float, hi: float) -> Replication:
        mid = (lo + hi) / 2
        return Replication(
            values=(lo, hi), mean=mid, std=0.0, ci_low=lo, ci_high=hi, level=0.95
        )

    def test_disjoint_a_lower(self):
        assert compare(self._rep(0, 1), self._rep(2, 3)) == "a_lower"

    def test_disjoint_b_lower(self):
        assert compare(self._rep(2, 3), self._rep(0, 1)) == "b_lower"

    def test_overlap_indistinguishable(self):
        assert compare(self._rep(0, 2), self._rep(1, 3)) == "indistinguishable"


class TestEndToEndReplication:
    def test_policy_comparison_is_statistically_stable(self):
        """Greedy beats closest-leaf with non-overlapping CIs across
        seeds on a congested instance."""
        from repro.analysis.experiments.workloads import identical_instance
        from repro.baselines.policies import ClosestLeafAssignment
        from repro.core.assignment import GreedyIdenticalAssignment
        from repro.network.builders import kary_tree
        from repro.sim.engine import simulate

        tree = kary_tree(2, 3)

        def measure(policy_factory):
            def run(seed: int) -> float:
                instance = identical_instance(tree, 30, load=0.95, seed=seed)
                return simulate(instance, policy_factory()).mean_flow_time()

            return run

        greedy = replicate(measure(lambda: GreedyIdenticalAssignment(0.5)), range(8))
        closest = replicate(measure(ClosestLeafAssignment), range(8))
        assert compare(greedy, closest) == "a_lower"
