"""Unit tests for the greedy assignment policies of Section 3.4."""

from __future__ import annotations

import math

import pytest

from repro.core.assignment import (
    FixedAssignment,
    GreedyIdenticalAssignment,
    GreedyUnrelatedAssignment,
)
from repro.exceptions import AssignmentError
from repro.network.builders import broomstick_tree, caterpillar_tree, star_of_paths
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


class TestGreedyIdentical:
    def test_eps_validation(self):
        with pytest.raises(AssignmentError):
            GreedyIdenticalAssignment(0.0)
        with pytest.raises(AssignmentError):
            GreedyIdenticalAssignment(-0.5)

    def test_idle_tree_prefers_shallow_leaf(self):
        # With no congestion the d_v term dominates: pick a closest leaf.
        tree = caterpillar_tree(3, 1)  # leaves at depths 2, 3, 4
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.5))
        assert instance.tree.depth(res.records[0].leaf) == 2

    def test_congestion_diverts_to_other_branch(self):
        # Branch A is short but jammed by earlier jobs; greedy should
        # eventually route to branch B even though B is longer.
        tree_pm = {0: None, 1: 0, 2: 1, 3: 0, 4: 3, 5: 4}
        # branch A: 1 -> leaf 2 (depth 2); branch B: 3 -> 4 -> leaf 5 (depth 3)
        from repro.network.tree import TreeNetwork

        tree = TreeNetwork(tree_pm)
        # Leaf 2 scores F + 6*2*4, leaf 5 scores F_B + 6*3*4; each job
        # already queued on branch A adds ~4 to F, so from the 7th
        # simultaneous job on, branch B wins.
        jobs = JobSet([Job(id=i, release=0.0, size=4.0) for i in range(10)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(1.0))
        leaves_used = {rec.leaf for rec in res.records.values()}
        assert leaves_used == {2, 5}

    def test_all_jobs_complete_under_load(self):
        tree = star_of_paths(3, 2)
        jobs = JobSet([Job(id=i, release=0.2 * i, size=1.0 + i % 3) for i in range(30)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.25), check_invariants=True)
        res.verify_complete()

    def test_deterministic(self):
        tree = star_of_paths(3, 2)
        jobs = JobSet([Job(id=i, release=0.3 * i, size=1.0 + i % 2) for i in range(15)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        a = simulate(instance, GreedyIdenticalAssignment(0.25)).assignment()
        b = simulate(instance, GreedyIdenticalAssignment(0.25)).assignment()
        assert a == b

    def test_last_scores_exposed(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        policy = GreedyIdenticalAssignment(0.5)
        simulate(instance, policy)
        assert policy.last_scores is not None
        assert set(policy.last_scores) == set(tree.leaves)

    def test_weight_matches_paper(self):
        assert GreedyIdenticalAssignment(0.5).weight == pytest.approx(24.0)
        assert GreedyIdenticalAssignment(1.0).weight == pytest.approx(6.0)


class TestGreedyUnrelated:
    def test_skips_forbidden_leaves(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        res = simulate(instance, GreedyUnrelatedAssignment(0.5))
        assert res.records[0].leaf == 4

    def test_prefers_fast_leaf_when_idle(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 10.0, 4: 1.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        res = simulate(instance, GreedyUnrelatedAssignment(0.5))
        assert res.records[0].leaf == 4

    def test_leaf_congestion_balances(self):
        # Every job is fastest on leaf 2, but queueing there makes the
        # greedy spill some onto leaf 4.
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [
                Job(id=i, release=0.0, size=1.0, leaf_sizes={2: 4.0, 4: 6.0})
                for i in range(6)
            ]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        res = simulate(instance, GreedyUnrelatedAssignment(1.0))
        used = [rec.leaf for rec in res.records.values()]
        assert 4 in used and 2 in used

    def test_eps_validation(self):
        with pytest.raises(AssignmentError):
            GreedyUnrelatedAssignment(0.0)

    def test_complete_on_broomstick(self):
        tree = broomstick_tree(2, 3, 1)
        leaves = tree.leaves
        jobs = JobSet(
            [
                Job(
                    id=i,
                    release=0.5 * i,
                    size=1.0,
                    leaf_sizes={v: 1.0 + (i + k) % 3 for k, v in enumerate(leaves)},
                )
                for i in range(12)
            ]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        res = simulate(instance, GreedyUnrelatedAssignment(0.25), check_invariants=True)
        res.verify_complete()


class TestFixedAssignment:
    def test_replays_mapping(self, two_path_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        instance = Instance(two_path_tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: 4}))
        assert res.records[0].leaf == 4

    def test_missing_job_rejected(self, two_path_tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        instance = Instance(two_path_tree, jobs, Setting.IDENTICAL)
        with pytest.raises(AssignmentError, match="no fixed assignment"):
            simulate(instance, FixedAssignment({}))
