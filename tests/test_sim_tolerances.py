"""Tests for the consolidated tolerance constants."""

from __future__ import annotations

from repro.sim.tolerances import (
    CLOCK_EPS,
    REMAINING_ATOL,
    completion_guard_tol,
    finished_tol,
)


class TestFinishedTol:
    def test_absolute_floor_at_unit_scale(self):
        assert finished_tol(1.0) == REMAINING_ATOL
        assert finished_tol(0.0) == REMAINING_ATOL

    def test_scales_with_processing_time(self):
        assert finished_tol(1e8) == 1e8 * 1e-12
        assert finished_tol(1e8) > finished_tol(1.0)

    def test_band_consistency_with_invariants(self):
        # The drain's "finished" test and the invariant check's lower
        # band use the same threshold, so any residual the engine
        # declares finished (|r| <= finished_tol(p)) also satisfies the
        # invariant band r >= -finished_tol(p) — the historical mix of
        # 1e-12 and -1e-9 could not guarantee this across scales.
        for p in (1e-6, 1.0, 1e3, 1e9):
            tol = finished_tol(p)
            for r in (0.0, tol, -tol):
                assert r <= tol, "residual must count as finished"
                assert r >= -tol, "finished residual must pass the band"


class TestCompletionGuardTol:
    def test_scales_with_work(self):
        assert completion_guard_tol(1e6, 1.0, 0.0) > completion_guard_tol(
            1.0, 1.0, 0.0
        )

    def test_scales_with_clock_and_speed(self):
        late = completion_guard_tol(1.0, 4.0, 1e12)
        early = completion_guard_tol(1.0, 4.0, 0.0)
        assert late > early

    def test_floor_is_historical_guard(self):
        assert completion_guard_tol(1.0, 1.0, 0.0) == 1e-7


def test_clock_eps_is_absolute_and_small():
    assert 0 < CLOCK_EPS < 1e-6
