"""Property-based tests (hypothesis) on core invariants.

Strategies generate random small trees and workloads; every property is
a model invariant the paper's setting guarantees regardless of policy.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.policies import LeastLoadedAssignment, RandomAssignment
from repro.core.assignment import GreedyIdenticalAssignment
from repro.lp.bounds import best_lower_bound, srpt_single_machine_flow
from repro.network.broomstick import reduce_to_broomstick
from repro.network.tree import TreeNetwork
from repro.sim.engine import simulate
from repro.sim.invariants import validate_schedule
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet
from repro.workload.sizes import class_index, round_to_classes


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def tree_strategy(draw):
    """A random legal tree: root with 1-3 branch routers, each carrying a
    small random subtree whose childless nodes are machines."""
    num_branches = draw(st.integers(1, 3))
    parent_map: dict[int, int | None] = {0: None}
    next_id = 1
    frontier: list[int] = []
    for _ in range(num_branches):
        parent_map[next_id] = 0
        frontier.append(next_id)
        next_id += 1
    extra = draw(st.integers(num_branches, 10))
    for _ in range(extra):
        parent = draw(st.sampled_from(frontier))
        parent_map[next_id] = parent
        frontier.append(next_id)
        next_id += 1
    # Every branch router must have a descendant; pad machines under
    # childless root-children.
    children = {v: 0 for v in parent_map}
    for v, p in parent_map.items():
        if p is not None:
            children[p] += 1
    for v, p in list(parent_map.items()):
        if p == 0 and children[v] == 0:
            parent_map[next_id] = v
            next_id += 1
    return TreeNetwork(parent_map)


@st.composite
def jobs_strategy(draw, max_jobs=12):
    n = draw(st.integers(1, max_jobs))
    releases = draw(
        st.lists(
            st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    sizes = draw(
        st.lists(
            st.floats(0.1, 8.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return JobSet.build(sorted(releases), sizes)


# ----------------------------------------------------------------------
# simulation invariants
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(), seed=st.integers(0, 5))
def test_simulation_invariants_random_policy(tree, jobs, seed):
    """Any policy on any instance yields a valid schedule: conservation,
    mutual exclusion, store-and-forward, flow >= path volume."""
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    result = simulate(
        instance,
        RandomAssignment(seed),
        speeds=SpeedProfile.uniform(1.0),
        record_segments=True,
        check_invariants=True,
    )
    validate_schedule(result)
    result.verify_complete()
    for jid, rec in result.records.items():
        job = instance.jobs.by_id(jid)
        assert rec.flow_time >= instance.path_volume(job, rec.leaf) - 1e-6
    assert result.alive_integral == pytest.approx(
        result.total_flow_time(), rel=1e-6, abs=1e-6
    )
    assert result.fractional_flow <= result.total_flow_time() + 1e-6


@settings(max_examples=25, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(max_jobs=8))
def test_greedy_dominates_nothing_but_completes(tree, jobs):
    """The paper policy always completes and never beats the per-job
    physical lower bound."""
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    result = simulate(
        instance, GreedyIdenticalAssignment(0.5), check_invariants=True
    )
    result.verify_complete()
    lb, _ = best_lower_bound(instance)
    assert result.total_flow_time() >= lb - 1e-6


@settings(max_examples=25, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(max_jobs=8), factor=st.floats(1.1, 4.0))
def test_speed_scaling_preserves_validity(tree, jobs, factor):
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    result = simulate(
        instance,
        LeastLoadedAssignment(),
        speeds=SpeedProfile.uniform(factor),
        record_segments=True,
    )
    validate_schedule(result)


# ----------------------------------------------------------------------
# broomstick reduction properties
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(tree=tree_strategy())
def test_broomstick_reduction_properties(tree):
    red = reduce_to_broomstick(tree)
    assert red.broomstick.is_broomstick()
    assert red.broomstick.num_leaves == tree.num_leaves
    for leaf in tree.leaves:
        assert red.depth_shift(leaf) == 2
    assert len(red.top_map) == len(tree.root_children)


# ----------------------------------------------------------------------
# class rounding properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.floats(1e-3, 1e6), min_size=1, max_size=30),
    eps=st.floats(0.05, 2.0),
)
def test_round_to_classes_properties(sizes, eps):
    arr = np.asarray(sizes)
    rounded = round_to_classes(arr, eps)
    # Rounds up, by less than one class factor.
    assert np.all(rounded >= arr * (1 - 1e-9))
    assert np.all(rounded <= arr * (1 + eps) * (1 + 1e-9))
    # Results are genuine class powers.
    for v in rounded:
        class_index(float(v), eps)
    # Idempotent.
    again = round_to_classes(rounded, eps)
    assert np.allclose(again, rounded, rtol=1e-9)


# ----------------------------------------------------------------------
# SRPT relaxation properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(st.floats(0, 50), st.floats(0.1, 10.0)), min_size=1, max_size=20
    ),
    speed=st.floats(0.5, 4.0),
)
def test_srpt_flow_sane(jobs, speed):
    releases = sorted(r for r, _ in jobs)
    sizes = [s for _, s in jobs]
    flow = srpt_single_machine_flow(releases, sizes, speed)
    # At least the sum of processing times; finite.
    assert flow >= sum(sizes) / speed - 1e-6
    assert math.isfinite(flow)
    # Monotone in speed.
    faster = srpt_single_machine_flow(releases, sizes, speed * 2)
    assert faster <= flow + 1e-6


# ----------------------------------------------------------------------
# serialisation round trip
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(max_jobs=6))
def test_json_round_trip_preserves_schedule(tree, jobs):
    from repro.workload.trace_io import instance_from_json, instance_to_json

    instance = Instance(tree, jobs, Setting.IDENTICAL)
    restored = instance_from_json(instance_to_json(instance))
    a = simulate(instance, GreedyIdenticalAssignment(0.5))
    b = simulate(restored, GreedyIdenticalAssignment(0.5))
    assert a.assignment() == b.assignment()
    assert a.total_flow_time() == pytest.approx(b.total_flow_time())
