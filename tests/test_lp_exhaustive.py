"""Unit tests for the exhaustive assignment-enumeration bound."""

from __future__ import annotations

import math

import pytest

from repro.core.assignment import FixedAssignment
from repro.exceptions import LPError
from repro.lp.exhaustive import exhaustive_assignment_bound
from repro.lp.primal import solve_primal_lp
from repro.network.builders import star_of_paths
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def tiny():
    tree = star_of_paths(2, 1)
    jobs = JobSet([Job(id=i, release=float(i), size=2.0) for i in range(3)])
    return Instance(tree, jobs, Setting.IDENTICAL)


class TestSandwich:
    def test_at_least_plain_lp(self, tiny):
        plain = solve_primal_lp(tiny, SpeedProfile.uniform(1.0))
        ex = exhaustive_assignment_bound(tiny)
        assert ex.objective >= plain.objective - 1e-6

    def test_at_most_best_simulated_schedule_objective(self, tiny):
        """Every integral assignment's simulated schedule is feasible for
        its restricted LP, so min-assignment LP* cannot exceed the LP
        objective of the best such schedule; in particular it is at most
        2x the best simulated flow (the objective sums two flow lower
        bounds)."""
        ex = exhaustive_assignment_bound(tiny)
        best_flow = math.inf
        for l0 in tiny.tree.leaves:
            for l1 in tiny.tree.leaves:
                for l2 in tiny.tree.leaves:
                    sim = simulate(
                        tiny, FixedAssignment({0: l0, 1: l1, 2: l2})
                    )
                    best_flow = min(best_flow, sim.total_flow_time())
        assert ex.objective <= 2.0 * best_flow + 1e-6

    def test_enumeration_count(self, tiny):
        ex = exhaustive_assignment_bound(tiny)
        assert ex.num_assignments == 2**3
        assert set(ex.best_assignment) == {0, 1, 2}

    def test_best_assignment_balances_congestion(self):
        """Two simultaneous jobs, two branches: the minimising assignment
        must use both branches."""
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=0, release=0.0, size=2.0), Job(id=1, release=0.0, size=2.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        ex = exhaustive_assignment_bound(instance)
        assert len(set(ex.best_assignment.values())) == 2


class TestGuards:
    def test_too_many_assignments(self):
        tree = star_of_paths(3, 1)
        jobs = JobSet([Job(id=i, release=float(i), size=1.0) for i in range(8)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        with pytest.raises(LPError, match="max_assignments"):
            exhaustive_assignment_bound(instance, max_assignments=100)

    def test_empty_instance(self):
        tree = star_of_paths(2, 1)
        instance = Instance(tree, JobSet([]), Setting.IDENTICAL)
        with pytest.raises(LPError, match="no jobs"):
            exhaustive_assignment_bound(instance)

    def test_respects_forbidden_leaves(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        ex = exhaustive_assignment_bound(instance)
        assert ex.best_assignment == {0: 4}
        assert ex.num_assignments == 1
