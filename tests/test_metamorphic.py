"""Metamorphic engine tests.

These validate the simulator through *transformation invariances* that
must hold for any correct implementation of the model, independent of
policies or workloads:

* time-shift equivariance — shifting every release by Δ shifts every
  recorded time by Δ and preserves flow times exactly;
* size/speed scaling — multiplying all processing times by c and all
  speeds by c leaves the schedule unchanged;
* time dilation — multiplying sizes by c (speeds fixed) dilates the
  whole schedule by c;
* job-id relabelling — renaming ids (preserving relative order) does
  not change the multiset of flow times;
* subtree isolation — traffic confined to one root branch is unaffected
  by deleting the other branches.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.network.builders import star_of_paths
from repro.network.tree import TreeNetwork
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


from tests.conftest import both_backends_fixture

_engine_backend = both_backends_fixture(__name__)


def base_jobs(n=12):
    return [Job(id=i, release=0.7 * i, size=1.0 + (i * 7 % 5)) for i in range(n)]


def tree():
    return star_of_paths(3, 2)


class TestTimeShift:
    @pytest.mark.parametrize("delta", [0.5, 3.0, 100.0])
    def test_all_times_shift_flows_invariant(self, delta):
        """Engine equivariance, with the assignment pinned (greedy scores
        on symmetric branches can flip float-level ties under a shift, so
        policy decisions are checked separately and softly)."""
        t = tree()
        jobs_a = base_jobs()
        jobs_b = [
            Job(id=j.id, release=j.release + delta, size=j.size) for j in jobs_a
        ]
        fixed = {j.id: t.leaves[j.id % len(t.leaves)] for j in jobs_a}
        ra = simulate(
            Instance(t, JobSet(jobs_a), Setting.IDENTICAL), FixedAssignment(fixed)
        )
        rb = simulate(
            Instance(t, JobSet(jobs_b), Setting.IDENTICAL), FixedAssignment(fixed)
        )
        for jid in ra.records:
            assert rb.records[jid].completion == pytest.approx(
                ra.records[jid].completion + delta
            )
            assert rb.records[jid].flow_time == pytest.approx(
                ra.records[jid].flow_time
            )
        assert rb.fractional_flow == pytest.approx(ra.fractional_flow)

    def test_greedy_shift_keeps_branch_symmetric_outcomes_close(self):
        """Greedy decisions at *exact* branch ties can flip under a shift
        (one ulp of float noise decides the argmin), so only a soft
        aggregate property holds: totals stay within the cost of a few
        flipped tie decisions."""
        t = tree()
        jobs_a = base_jobs()
        jobs_b = [Job(id=j.id, release=j.release + 3.0, size=j.size) for j in jobs_a]
        ra = simulate(
            Instance(t, JobSet(jobs_a), Setting.IDENTICAL),
            GreedyIdenticalAssignment(0.5),
        )
        rb = simulate(
            Instance(t, JobSet(jobs_b), Setting.IDENTICAL),
            GreedyIdenticalAssignment(0.5),
        )
        assert rb.total_flow_time() == pytest.approx(ra.total_flow_time(), rel=0.15)


class TestScaling:
    @pytest.mark.parametrize("c", [2.0, 0.25, 10.0])
    def test_size_and_speed_scale_cancels(self, c):
        t = tree()
        jobs_a = base_jobs()
        jobs_b = [Job(id=j.id, release=j.release, size=j.size * c) for j in jobs_a]
        ra = simulate(
            Instance(t, JobSet(jobs_a), Setting.IDENTICAL),
            GreedyIdenticalAssignment(0.5),
            speeds=SpeedProfile.uniform(1.0),
        )
        rb = simulate(
            Instance(t, JobSet(jobs_b), Setting.IDENTICAL),
            GreedyIdenticalAssignment(0.5),
            speeds=SpeedProfile.uniform(c),
        )
        assert ra.assignment() == rb.assignment()
        for jid in ra.records:
            assert rb.records[jid].flow_time == pytest.approx(
                ra.records[jid].flow_time, rel=1e-9
            )

    @pytest.mark.parametrize("c", [2.0, 5.0])
    def test_pure_size_scale_dilates(self, c):
        """Sizes AND releases scaled by c -> every time point scales by c
        (the model has no intrinsic time constant)."""
        t = tree()
        jobs_a = base_jobs()
        jobs_b = [
            Job(id=j.id, release=j.release * c, size=j.size * c) for j in jobs_a
        ]
        fixed = {j.id: t.leaves[j.id % len(t.leaves)] for j in jobs_a}
        ra = simulate(Instance(t, JobSet(jobs_a), Setting.IDENTICAL), FixedAssignment(fixed))
        rb = simulate(Instance(t, JobSet(jobs_b), Setting.IDENTICAL), FixedAssignment(fixed))
        for jid in ra.records:
            assert rb.records[jid].completion == pytest.approx(
                ra.records[jid].completion * c, rel=1e-9
            )
        assert rb.alive_integral == pytest.approx(ra.alive_integral * c, rel=1e-9)
        # fractional flow is also a time integral -> scales by c
        assert rb.fractional_flow == pytest.approx(ra.fractional_flow * c, rel=1e-9)


class TestRelabelling:
    def test_id_relabel_preserves_flow_multiset(self):
        """Reversing ids while keeping (release, size) pairs attached to
        the jobs permutes identities only; with strictly distinct
        releases and sizes the SJF order is id-independent."""
        t = tree()
        n = 10
        jobs_a = [
            Job(id=i, release=1.37 * i, size=1.0 + 0.13 * i) for i in range(n)
        ]
        jobs_b = [
            Job(id=n - 1 - i, release=1.37 * i, size=1.0 + 0.13 * i)
            for i in range(n)
        ]
        pol = lambda: GreedyIdenticalAssignment(0.5)  # noqa: E731
        ra = simulate(Instance(t, JobSet(jobs_a), Setting.IDENTICAL), pol())
        rb = simulate(Instance(t, JobSet(jobs_b), Setting.IDENTICAL), pol())
        flows_a = sorted(r.flow_time for r in ra.records.values())
        flows_b = sorted(r.flow_time for r in rb.records.values())
        assert flows_a == pytest.approx(flows_b)


class TestSubtreeIsolation:
    def test_unused_branches_are_irrelevant(self):
        """Jobs pinned to branch 0 behave identically whether or not the
        other branches exist."""
        big = star_of_paths(3, 2)
        small = star_of_paths(1, 2)
        leaf_big = big.leaves[0]
        leaf_small = small.leaves[0]
        jobs = base_jobs(8)
        r_big = simulate(
            Instance(big, JobSet(jobs), Setting.IDENTICAL),
            FixedAssignment({j.id: leaf_big for j in jobs}),
        )
        r_small = simulate(
            Instance(small, JobSet(jobs), Setting.IDENTICAL),
            FixedAssignment({j.id: leaf_small for j in jobs}),
        )
        for jid in r_big.records:
            assert r_big.records[jid].flow_time == pytest.approx(
                r_small.records[jid].flow_time
            )


class TestMergeIndependence:
    def test_disjoint_branch_streams_superpose(self):
        """Two job streams pinned to disjoint branches produce the same
        per-job schedules run together or separately."""
        t = star_of_paths(2, 2)
        leaf_a, leaf_b = t.leaves
        stream_a = [Job(id=i, release=0.9 * i, size=1.5) for i in range(6)]
        stream_b = [Job(id=100 + i, release=0.4 * i, size=2.5) for i in range(6)]
        merged = simulate(
            Instance(t, JobSet(stream_a + stream_b), Setting.IDENTICAL),
            FixedAssignment(
                {**{j.id: leaf_a for j in stream_a}, **{j.id: leaf_b for j in stream_b}}
            ),
        )
        alone_a = simulate(
            Instance(t, JobSet(stream_a), Setting.IDENTICAL),
            FixedAssignment({j.id: leaf_a for j in stream_a}),
        )
        alone_b = simulate(
            Instance(t, JobSet(stream_b), Setting.IDENTICAL),
            FixedAssignment({j.id: leaf_b for j in stream_b}),
        )
        for jid, rec in alone_a.records.items():
            assert merged.records[jid].completion == pytest.approx(rec.completion)
        for jid, rec in alone_b.records.items():
            assert merged.records[jid].completion == pytest.approx(rec.completion)
