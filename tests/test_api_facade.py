"""The ``repro.api`` facade: parity with the deep modules it fronts.

Every facade function must produce the same objects the deep-module
call forms produce (bit-identical where the computation is
deterministic), resolve its string shorthands correctly, and raise the
package's typed exceptions for bad inputs.
"""

from __future__ import annotations

import pytest

import repro
from repro import api
from repro.exceptions import (
    AssignmentError,
    SimulationError,
    TopologyError,
    WorkloadError,
)


class TestBuildTree:
    def test_every_kind_dispatches(self):
        from repro.network import builders

        cases = {
            "kary": (dict(branching=2, depth=2), builders.kary_tree),
            "paths": (dict(num_paths=3, path_length=2), builders.star_of_paths),
            "caterpillar": (
                dict(spine_length=3, leaves_per_node=2),
                builders.caterpillar_tree,
            ),
            "spine": (dict(depth=3), builders.spine_tree),
            "broomstick": (
                dict(num_tops=2, handle_length=2, bristles=3),
                builders.broomstick_tree,
            ),
            "datacenter": (
                dict(num_pods=2, racks_per_pod=2, machines_per_rack=2),
                builders.datacenter_tree,
            ),
            "random": (dict(num_nodes=10, rng=3), builders.random_tree),
            "figure1": ({}, builders.figure1_tree),
        }
        assert set(cases) | {"parent_map"} == set(api.TREE_KINDS)
        for kind, (params, deep) in cases.items():
            facade = api.build_tree(kind, **params)
            expected = deep(**params)
            assert facade.parent_map() == expected.parent_map(), kind
            assert facade.leaves == expected.leaves, kind

    def test_parent_map_kind(self):
        tree = api.build_tree(
            "parent_map", parent_map={0: None, 1: 0, 2: 1, 3: 1}
        )
        assert sorted(tree.leaves) == [2, 3]

    def test_unknown_kind_raises_topology_error(self):
        with pytest.raises(TopologyError, match="unknown tree kind"):
            api.build_tree("mesh")

    def test_bad_params_raise_type_error(self):
        with pytest.raises(TypeError):
            api.build_tree("kary", branching=2)  # missing depth


class TestMakeInstance:
    def test_deterministic_given_seed(self):
        a = api.make_instance(n_jobs=20, seed=5)
        b = api.make_instance(n_jobs=20, seed=5)
        assert [(j.release, j.size) for j in a.jobs] == [
            (j.release, j.size) for j in b.jobs
        ]
        c = api.make_instance(n_jobs=20, seed=6)
        assert [(j.release, j.size) for j in a.jobs] != [
            (j.release, j.size) for j in c.jobs
        ]

    def test_matches_deep_generator_calls(self):
        from repro.workload.arrivals import poisson_arrivals
        from repro.workload.instance import Instance
        from repro.workload.sizes import uniform_sizes

        tree = api.build_tree("kary", branching=2, depth=2)
        inst = api.make_instance(tree=tree, n_jobs=15, load=0.8, seed=11)
        sizes = uniform_sizes(15, 1.0, 4.0, rng=11)
        rate = Instance.poisson_rate_for_load(tree, float(sizes.mean()), 0.8)
        releases = poisson_arrivals(15, rate, rng=12)
        assert [j.size for j in inst.jobs] == pytest.approx(list(sizes))
        assert [j.release for j in inst.jobs] == pytest.approx(list(releases))

    def test_every_size_dist(self):
        for dist in api.SIZE_DISTS:
            inst = api.make_instance(n_jobs=10, size_dist=dist, seed=1)
            assert len(inst.jobs) == 10
            assert all(j.size > 0 for j in inst.jobs)

    def test_unknown_size_dist_raises(self):
        with pytest.raises(WorkloadError, match="unknown size_dist"):
            api.make_instance(size_dist="zipf")

    def test_unrelated_setting(self):
        from repro.workload.instance import Setting

        inst = api.make_instance(n_jobs=8, unrelated=True, seed=2)
        assert inst.setting is Setting.UNRELATED

    def test_name_flows_to_instance(self):
        assert api.make_instance(n_jobs=3, name="probe").name == "probe"


class TestSimulateParity:
    def test_matches_deep_engine_call(self):
        from repro.core.assignment import GreedyIdenticalAssignment
        from repro.sim.engine import simulate as deep_simulate

        inst = api.make_instance(n_jobs=25, seed=3)
        shallow = api.simulate(instance=inst, policy="greedy", eps=0.5)
        deep = deep_simulate(inst, GreedyIdenticalAssignment(0.5))
        assert shallow.total_flow_time() == deep.total_flow_time()
        for jid, rec in shallow.records.items():
            assert deep.records[jid].completion == rec.completion
            assert deep.records[jid].leaf == rec.leaf

    def test_policy_object_passes_through(self):
        from repro.baselines.policies import LeastLoadedAssignment

        inst = api.make_instance(n_jobs=10, seed=1)
        a = api.simulate(instance=inst, policy=LeastLoadedAssignment())
        b = api.simulate(instance=inst, policy="least-loaded")
        assert a.total_flow_time() == b.total_flow_time()

    def test_every_policy_name_resolves(self):
        inst = api.make_instance(n_jobs=6, seed=4)
        for name in api.POLICY_NAMES:
            result = api.simulate(instance=inst, policy=name)
            result.verify_complete()

    def test_greedy_resolves_by_setting(self):
        inst = api.make_instance(n_jobs=6, unrelated=True, seed=4)
        api.simulate(instance=inst, policy="greedy").verify_complete()

    def test_unknown_policy_raises(self):
        inst = api.make_instance(n_jobs=3)
        with pytest.raises(AssignmentError, match="unknown policy"):
            api.simulate(instance=inst, policy="lottery")

    def test_speed_shorthand_matches_profile(self):
        from repro.sim.speed import SpeedProfile

        inst = api.make_instance(n_jobs=12, seed=9)
        a = api.simulate(instance=inst, speed=1.5)
        b = api.simulate(instance=inst, speeds=SpeedProfile.uniform(1.5))
        assert a.total_flow_time() == b.total_flow_time()

    def test_speed_and_speeds_conflict(self):
        from repro.sim.speed import SpeedProfile

        inst = api.make_instance(n_jobs=3)
        with pytest.raises(SimulationError, match="not both"):
            api.simulate(
                instance=inst, speed=2.0, speeds=SpeedProfile.uniform(2.0)
            )

    def test_priority_strings_and_callable(self):
        from repro.sim.engine import fifo_priority

        inst = api.make_instance(n_jobs=10, seed=2)
        by_name = api.simulate(instance=inst, priority="fifo")
        by_fn = api.simulate(instance=inst, priority=fifo_priority)
        assert by_name.total_flow_time() == by_fn.total_flow_time()
        sjf = api.simulate(instance=inst, priority="sjf")
        default = api.simulate(instance=inst)
        assert sjf.total_flow_time() == default.total_flow_time()

    def test_unknown_priority_raises(self):
        inst = api.make_instance(n_jobs=3)
        with pytest.raises(SimulationError, match="unknown priority"):
            api.simulate(instance=inst, priority="lifo")

    def test_keyword_only(self):
        inst = api.make_instance(n_jobs=3)
        with pytest.raises(TypeError):
            api.simulate(inst)  # noqa: the facade is keyword-only by design


class TestTraceRun:
    def test_trace_attached_and_result_unchanged(self):
        inst = api.make_instance(n_jobs=20, seed=8)
        plain = api.simulate(instance=inst)
        traced = api.trace_run(instance=inst)
        assert plain.trace is None
        assert traced.trace is not None
        assert traced.total_flow_time() == plain.total_flow_time()

    def test_auto_gauge_interval_from_release_span(self):
        inst = api.make_instance(n_jobs=20, seed=8)
        releases = [j.release for j in inst.jobs]
        span = max(releases) - min(releases)
        traced = api.trace_run(instance=inst)
        assert traced.trace.meta["gauge_interval"] == pytest.approx(span / 50.0)
        assert traced.trace.gauges

    def test_explicit_gauge_interval(self):
        inst = api.make_instance(n_jobs=10, seed=1)
        traced = api.trace_run(instance=inst, gauge_interval=2.0)
        times = sorted({g.time for g in traced.trace.gauges})
        # every sample time is a cadence point k*2.0 except the trailing
        # partial-window sample at the final time
        final = traced.trace.meta["final_time"]
        for t in times:
            assert t == pytest.approx(2.0 * round(t / 2.0)) or t == final

    def test_single_release_disables_gauges(self):
        from repro.workload.instance import Instance, Setting
        from repro.workload.job import Job, JobSet

        tree = api.build_tree("spine", depth=2)
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        inst = Instance(tree, jobs, Setting.IDENTICAL)
        traced = api.trace_run(instance=inst)
        assert traced.trace.meta["gauge_interval"] is None
        assert traced.trace.gauges == []

    def test_record_switches(self):
        inst = api.make_instance(n_jobs=8, seed=3)
        no_points = api.trace_run(instance=inst, record_points=False)
        assert no_points.trace.points == []
        no_spans = api.trace_run(instance=inst, record_spans=False)
        assert no_spans.trace.spans_of("service") == []


class TestRunExperimentsFacade:
    def test_forwards_to_runner(self, tmp_path):
        outcomes = api.run_experiments(
            exp_ids=["F1"], cache_dir=tmp_path
        )
        assert len(outcomes) == 1
        assert outcomes[0].exp_id == "F1"
        assert outcomes[0].result.passed

    def test_manifest_dir(self, tmp_path):
        from repro.analysis.runner import manifest_path

        api.run_experiments(
            exp_ids=["F1"],
            cache_dir=tmp_path / "cache",
            manifest_dir=tmp_path / "manifests",
        )
        assert manifest_path(tmp_path / "manifests", "F1").exists()


class TestTopLevelSurface:
    def test_facade_reexported(self):
        assert repro.api is api
        assert repro.build_tree is api.build_tree
        assert repro.make_instance is api.make_instance
        assert repro.trace_run is api.trace_run
        assert repro.run_experiments is api.run_experiments
        assert repro.open_system is api.open_system

    def test_streaming_surface_reexported(self):
        from repro.service import StreamSession

        assert repro.StreamSession is StreamSession
        assert "open_system" in api.__all__

    def test_obs_reexported(self):
        from repro.obs import SimulationTrace, TraceConfig, TraceRecorder

        assert repro.SimulationTrace is SimulationTrace
        assert repro.TraceConfig is TraceConfig
        assert repro.TraceRecorder is TraceRecorder

    def test_all_covers_facade(self):
        for name in ("api", "build_tree", "make_instance", "trace_run",
                     "run_experiments", "open_system", "StreamSession",
                     "TraceRecorder", "SimulationTrace"):
            assert name in repro.__all__
