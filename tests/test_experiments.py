"""Smoke + contract tests for the experiment registry.

The heavyweight claim validation lives in the benchmarks; here each
experiment runs at reduced size and must (a) produce a well-formed
result, (b) PASS its own criterion, and (c) expose the metrics the
benchmark layer keys on.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    all_experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.exceptions import AnalysisError

EXPECTED_IDS = {
    "T1", "T2", "T3", "T4", "T5",
    "L1", "L2", "L3", "L4", "L8",
    "D1", "B1", "B2", "F1", "F2", "S1",
    "X1", "X2", "X3", "X4", "X5", "M1",
}

#: Reduced-size parameters per experiment (defaults already small for some).
QUICK_PARAMS: dict[str, dict] = {
    "T1": {"n": 25, "speeds": (1.0, 1.5)},
    "T2": {"n": 20, "speeds": (1.0, 2.2, 3.0)},
    "T3": {"n": 25, "eps_values": (0.25,), "loads": (0.8,)},
    "T4": {"eps_values": (0.5,)},
    "T5": {"n": 10, "eps_values": (0.5,)},
    "L1": {"eps_values": (0.5,)},
    "L2": {"eps_values": (0.5,)},
    "L3": {"eps_values": (0.5,)},
    "L4": {"n": 15, "seeds": (0, 1)},
    "L8": {"n": 20},
    "D1": {"n": 10, "eps_values": (0.25,)},
    "B1": {"n": 30, "loads": (0.9,)},
    "B2": {"scale": 0.4},
    "S1": {"sizes": (150,), "min_events_per_sec": 1000.0},
    "F1": {},
    "F2": {},
    "X1": {"chunk_sizes": (2.0, 0.5)},
    "X2": {"n": 40},
    "X3": {"n": 40, "multipliers": (0.0, 1.0, 64.0)},
    "X4": {"n": 25},
    "X5": {"n": 35},
    "M1": {"n": 30, "speeds": (1.0, 1.5)},
}


def test_registry_is_complete():
    assert set(all_experiment_ids()) == EXPECTED_IDS


def test_unknown_experiment_rejected():
    with pytest.raises(AnalysisError, match="unknown experiment"):
        get_experiment("ZZ")


@pytest.mark.parametrize("exp_id", sorted(EXPECTED_IDS))
def test_experiment_runs_and_passes(exp_id):
    result = run_experiment(exp_id, **QUICK_PARAMS[exp_id])
    assert result.exp_id == exp_id
    assert result.table.rows, f"{exp_id} produced no rows"
    assert result.metrics, f"{exp_id} produced no metrics"
    assert result.claim
    rendered = result.render()
    assert exp_id in rendered
    assert result.passed, f"{exp_id} failed its own criterion:\n{rendered}"


def test_every_experiment_has_a_benchmark():
    """The benchmark layer must cover the whole registry."""
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    stems = {p.stem for p in bench_dir.glob("bench_*.py")}
    for eid in all_experiment_ids():
        prefix = f"bench_{eid.lower()}_"
        assert any(s.startswith(prefix) for s in stems), (
            f"experiment {eid} has no benchmarks/{prefix}*.py"
        )


def test_duplicate_registration_rejected():
    from repro.analysis.experiments.base import register

    with pytest.raises(AnalysisError, match="duplicate"):

        @register("F2")
        def clash():  # pragma: no cover
            raise AssertionError
