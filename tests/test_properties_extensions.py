"""Property-based tests for the chunking and origin extensions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import GreedyIdenticalAssignment
from repro.network.builders import datacenter_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.invariants import validate_schedule
from repro.workload.chunking import (
    ChunkedAssignment,
    aggregate_chunk_result,
    chunk_instance,
    chunk_priority,
)
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@st.composite
def small_jobset(draw):
    n = draw(st.integers(1, 8))
    jobs = []
    for i in range(n):
        jobs.append(
            Job(
                id=i,
                release=draw(st.floats(0.0, 10.0, allow_nan=False)),
                size=draw(st.floats(0.2, 6.0, allow_nan=False)),
            )
        )
    return JobSet(jobs)


@settings(max_examples=30, deadline=None)
@given(jobs=small_jobset(), chunk_size=st.floats(0.3, 3.0))
def test_chunking_conserves_work_and_validates(jobs, chunk_size):
    """Any chunking yields a valid schedule whose per-job completion is
    at least the unchunked physical lower bound p_j (first hop is still
    serial at the chunk level... the LAST piece cannot finish before all
    of the job's data crossed the first link: >= p_j at unit speed)."""
    tree = star_of_paths(2, 2)
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    chunked = chunk_instance(instance, chunk_size)
    result = simulate(
        chunked.instance,
        ChunkedAssignment(chunked, GreedyIdenticalAssignment(0.5)),
        priority=chunk_priority(chunked),
        record_segments=True,
    )
    validate_schedule(result)
    summary = aggregate_chunk_result(chunked, result)
    for jid, flow in summary.flow_times.items():
        job = instance.jobs.by_id(jid)
        assert flow >= job.size - 1e-6


@settings(max_examples=30, deadline=None)
@given(jobs=small_jobset(), chunk_size=st.floats(0.3, 3.0))
def test_chunk_totals_match_parent_sizes(jobs, chunk_size):
    tree = star_of_paths(2, 2)
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    chunked = chunk_instance(instance, chunk_size)
    for jid, pieces in chunked.chunks_of.items():
        total = sum(chunked.instance.jobs.by_id(p).size for p in pieces)
        assert total == pytest.approx(instance.jobs.by_id(jid).size)
        # no piece exceeds the requested granularity
        for p in pieces:
            assert chunked.instance.jobs.by_id(p).size <= chunk_size + 1e-12


@settings(max_examples=25, deadline=None)
@given(
    jobs=small_jobset(),
    origin_choice=st.lists(st.integers(0, 5), min_size=8, max_size=8),
)
def test_origin_jobs_always_complete_inside_subtree(jobs, origin_choice):
    tree = datacenter_tree(2, 2, 2)
    candidates = [None, *tree.root_children, *(
        r for p in tree.root_children for r in tree.children(p)
    )]
    reassigned = JobSet(
        [
            Job(
                id=j.id,
                release=j.release,
                size=j.size,
                origin=candidates[origin_choice[i] % len(candidates)],
            )
            for i, j in enumerate(jobs)
        ]
    )
    instance = Instance(tree, reassigned, Setting.IDENTICAL)
    result = simulate(
        instance,
        GreedyIdenticalAssignment(0.5),
        record_segments=True,
        check_invariants=True,
    )
    validate_schedule(result)
    for jid, rec in result.records.items():
        origin = reassigned.by_id(jid).origin
        if origin is not None:
            assert instance.tree.is_ancestor(origin, rec.leaf)
            assert origin not in rec.path
