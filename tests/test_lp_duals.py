"""Unit tests for the dual-fitting certificate machinery."""

from __future__ import annotations

import pytest

from repro.exceptions import LPError
from repro.lp.duals_paper import build_dual_certificate
from repro.lp.primal import solve_primal_lp
from repro.network.builders import broomstick_tree, kary_tree
from repro.sim.speed import SpeedProfile
from repro.workload.arrivals import poisson_arrivals
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet
from repro.workload.sizes import geometric_class_sizes
from repro.workload.unrelated import uniform_speed_matrix


def identical_bs_instance(n=15, eps=0.25, seed=0):
    tree = broomstick_tree(2, 3, 1)
    sizes = geometric_class_sizes(n, eps, num_classes=3, rng=seed)
    releases = poisson_arrivals(n, rate=1.0, rng=seed + 1)
    return Instance(tree, JobSet.build(releases, sizes), Setting.IDENTICAL)


def unrelated_bs_instance(n=12, eps=0.25, seed=0):
    tree = broomstick_tree(2, 3, 1)
    sizes = geometric_class_sizes(n, eps, num_classes=2, rng=seed)
    releases = poisson_arrivals(n, rate=1.0, rng=seed + 1)
    rows = uniform_speed_matrix(tree.leaves, sizes, 0.5, 1.0, rng=seed + 2)
    inst = Instance(tree, JobSet.build(releases, sizes, rows), Setting.UNRELATED)
    return inst.rounded(eps)


class TestIdenticalCertificate:
    @pytest.mark.parametrize("eps", [0.1, 0.25, 0.5])
    def test_feasible_across_eps(self, eps):
        cert = build_dual_certificate(identical_bs_instance(eps=eps), eps)
        assert cert.is_feasible()
        assert cert.max_violation <= 1e-7

    def test_dual_objective_positive_and_scaled(self):
        eps = 0.25
        cert = build_dual_certificate(identical_bs_instance(eps=eps), eps)
        assert cert.dual_objective_scaled > 0
        assert cert.scale == pytest.approx(eps * eps / 10.0)

    def test_beta_matches_greedy_score_structure(self):
        eps = 0.25
        instance = identical_bs_instance(eps=eps)
        cert = build_dual_certificate(instance, eps)
        weight = 6.0 / (eps * eps)
        for jid, rec in cert.result.records.items():
            job = instance.jobs.by_id(jid)
            d_v = instance.tree.d(rec.leaf)
            # beta includes the interior term and at least the self F term.
            assert cert.beta[jid] >= weight * d_v * job.size + job.size - 1e-9

    def test_weak_duality_against_lp(self):
        eps = 0.25
        instance = identical_bs_instance(n=8, eps=eps)
        cert = build_dual_certificate(instance, eps)
        lp = solve_primal_lp(instance, SpeedProfile.uniform(1.0))
        assert cert.dual_objective_scaled <= lp.objective * (1 + 1e-6) + 1e-6

    def test_dual_objective_at_least_eps_times_cost(self):
        """The paper's Section 3.5 accounting: Σβ − cost ≥ ε·cost."""
        eps = 0.25
        cert = build_dual_certificate(identical_bs_instance(eps=eps), eps)
        assert cert.beta_sum - cert.alg_fractional_cost >= eps * cert.alg_fractional_cost

    def test_summary_renders(self):
        cert = build_dual_certificate(identical_bs_instance(), 0.25)
        text = cert.summary()
        assert "feasible=True" in text


class TestUnrelatedCertificate:
    def test_feasible(self):
        eps = 0.25
        cert = build_dual_certificate(unrelated_bs_instance(eps=eps), eps)
        assert cert.is_feasible()
        assert cert.scale == pytest.approx(eps * eps / 20.0)

    def test_dual_objective_positive(self):
        cert = build_dual_certificate(unrelated_bs_instance(), 0.25)
        assert cert.dual_objective_scaled > 0


class TestCertificateContracts:
    def test_requires_broomstick(self):
        # kary(2,3) branches at the router level, so it is NOT a broomstick
        # (kary(2,2) would be one: a single router layer with leaf fans).
        instance = Instance(
            kary_tree(2, 3),
            JobSet([Job(id=0, release=0.0, size=1.0)]),
            Setting.IDENTICAL,
        )
        with pytest.raises(LPError, match="broomstick"):
            build_dual_certificate(instance, 0.25)

    def test_bad_eps_rejected(self):
        with pytest.raises(LPError, match="eps"):
            build_dual_certificate(identical_bs_instance(), 0.0)

    def test_custom_speeds_accepted(self):
        cert = build_dual_certificate(
            identical_bs_instance(), 0.25, speeds=SpeedProfile.uniform(4.0)
        )
        assert cert.is_feasible()
