"""Smoke tests executing every example script end to end.

The examples are part of the public deliverable; each must run cleanly
and print the sections its docstring promises.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = {
    "quickstart.py": ["total flow time", "per-job schedule"],
    "datacenter_scheduling.py": ["policy comparison", "decomposition"],
    "packet_routing.py": ["Lemma 1 bound", "mean packet flow"],
    "unrelated_machines.py": ["flow-time ratio vs speed", "fastest machine"],
    "broomstick_walkthrough.py": ["broomstick T'", "dual-fitting certificate"],
    "operations_report.py": ["busiest nodes", "SJF preemptions"],
}


@pytest.mark.parametrize("script", sorted(CASES))
def test_example_runs_and_reports(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    for needle in CASES[script]:
        assert needle in out, f"{script} output missing {needle!r}"


def test_every_example_is_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(CASES), "update CASES when adding examples"
