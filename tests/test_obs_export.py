"""Tests for the trace exporters and the ``trace/v1`` schema validator."""

from __future__ import annotations

import io
import json

import pytest

from repro import api
from repro.obs.export import (
    jsonl_lines,
    read_jsonl,
    to_chrome,
    trace_summary_table,
    write_chrome,
    write_jsonl,
)
from repro.obs.schema import TRACE_SCHEMA, validate_jsonl, validate_line


@pytest.fixture(scope="module")
def trace():
    result = api.trace_run(
        instance=api.make_instance(n_jobs=25, seed=4),
        gauge_interval=1.0,
    )
    return result.trace


class TestJsonlRoundTrip:
    def test_meta_line_first(self, trace):
        first = json.loads(next(iter(jsonl_lines(trace))))
        assert first["type"] == "meta"
        assert first["schema"] == TRACE_SCHEMA
        assert first["jobs"] == trace.meta["jobs"]

    def test_round_trip_is_lossless(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(trace, path)
        assert n == len(trace) + 1  # records + meta line
        back = read_jsonl(path)
        assert back.meta == trace.meta
        assert back.points == trace.points
        assert back.spans == trace.spans
        assert back.gauges == trace.gauges

    def test_file_object_round_trip(self, trace):
        buf = io.StringIO()
        write_jsonl(trace, buf)
        buf.seek(0)
        assert read_jsonl(buf).points == trace.points

    def test_read_rejects_tampered_line(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        lines = path.read_text().splitlines()
        bad = json.loads(lines[1])
        bad["surprise"] = 1
        lines[1] = json.dumps(bad)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="line 2.*unknown keys"):
            read_jsonl(path)

    def test_read_rejects_garbage_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match="line 1.*not valid JSON"):
            read_jsonl(path)


class TestValidator:
    META = {
        "type": "meta", "schema": TRACE_SCHEMA, "instance": "x",
        "jobs": 1, "nodes": 2, "gauge_interval": None, "final_time": 3.0,
    }

    def test_valid_records(self):
        assert validate_line(self.META, first=True) is None
        point = {"type": "point", "kind": "arrival", "t": 0.0, "job": 1,
                 "node": 2}
        assert validate_line(point) is None
        span = {"type": "span", "kind": "service", "start": 0.0, "end": 1.0,
                "job": 1, "node": 2}
        assert validate_line(span) is None
        gauge = {"type": "gauge", "t": 1.0, "node": 2, "queue_depth": 0,
                 "queue_volume": 0.0, "through_count": 0, "busy_s": 0.5,
                 "utilization": 0.5}
        assert validate_line(gauge) is None

    def test_first_line_must_be_meta(self):
        point = {"type": "point", "kind": "arrival", "t": 0.0, "job": 1,
                 "node": 2}
        assert "meta" in validate_line(point, first=True)
        assert "first line" in validate_line(self.META, first=False)

    def test_schema_version_pinned(self):
        doc = dict(self.META, schema="trace/v2")
        assert "trace/v2" in validate_line(doc, first=True)

    def test_bool_is_not_an_int(self):
        point = {"type": "point", "kind": "arrival", "t": 0.0, "job": True,
                 "node": 2}
        assert "integers" in validate_line(point)
        gauge = {"type": "gauge", "t": 1.0, "node": 2, "queue_depth": False,
                 "queue_volume": 0.0, "through_count": 0, "busy_s": 0.5,
                 "utilization": 0.5}
        assert "integers" in validate_line(gauge)

    def test_span_must_not_end_before_start(self):
        span = {"type": "span", "kind": "service", "start": 2.0, "end": 1.0,
                "job": 1, "node": 2}
        assert "ends before" in validate_line(span)

    def test_unknown_kinds_rejected(self):
        point = {"type": "point", "kind": "teleport", "t": 0.0, "job": 1,
                 "node": 2}
        assert "point kind" in validate_line(point)
        span = {"type": "span", "kind": "nap", "start": 0.0, "end": 1.0,
                "job": 1, "node": 2}
        assert "span kind" in validate_line(span)
        assert "record type" in validate_line({"type": "blob"})

    def test_negative_gauge_rejected(self):
        gauge = {"type": "gauge", "t": 1.0, "node": 2, "queue_depth": 0,
                 "queue_volume": -0.1, "through_count": 0, "busy_s": 0.5,
                 "utilization": 0.5}
        assert ">= 0" in validate_line(gauge)

    def test_validate_jsonl_counts(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        counts, errors = validate_jsonl(path)
        assert errors == []
        assert counts["meta"] == 1
        assert counts["point"] == len(trace.points)
        assert counts["span"] == len(trace.spans)
        assert counts["gauge"] == len(trace.gauges)

    def test_validate_jsonl_reports_line_numbers(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(trace, path)
        lines = path.read_text().splitlines()
        lines[3] = '{"type": "mystery"}'
        path.write_text("\n".join(lines) + "\n")
        _, errors = validate_jsonl(path)
        assert len(errors) == 1
        assert errors[0].startswith("line 4:")

    def test_empty_file_invalid(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        _, errors = validate_jsonl(path)
        assert errors and "empty trace" in errors[0]


class TestChrome:
    def test_document_structure(self, trace):
        doc = to_chrome(trace)
        assert doc["otherData"]["schema"] == TRACE_SCHEMA
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"M", "X", "i", "C"}
        # required keys per phase (Perfetto chokes on missing ts/pid)
        for e in events:
            assert "pid" in e and "name" in e
            if e["ph"] != "M":
                assert "ts" in e and e["ts"] >= 0

    def test_event_counts_match_trace(self, trace):
        events = to_chrome(trace)["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        services = trace.spans_of("service")
        waits = trace.spans_of("queue_wait")
        # service spans appear on both the node and the job timeline
        assert len(by_ph["X"]) == 2 * len(services) + len(waits)
        instants = trace.points_of("arrival") + trace.points_of("finish")
        assert len(by_ph["i"]) == len(instants)
        assert len(by_ph["C"]) == 2 * len(trace.gauges)

    def test_microsecond_scaling(self, trace):
        events = to_chrome(trace)["traceEvents"]
        span = trace.spans_of("service")[0]
        xs = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
        first = min(xs, key=lambda e: e["ts"])
        assert first["ts"] == pytest.approx(
            min(s.start for s in trace.spans_of("service")) * 1e6
        )
        assert span.duration > 0  # sanity: durations scale the same way

    def test_write_chrome_loadable_json(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome(trace, path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == count


class TestSummaryTable:
    def test_per_node_rollup(self, trace):
        table = trace_summary_table(trace)
        text = table.render()
        assert "service_s" in text and "peak_queue" in text
        nodes = [int(v) for v in table.column("node")]  # cells render as str
        assert nodes == sorted(nodes)
        for node, service_s in zip(nodes, table.column("service_s")):
            assert float(service_s) == pytest.approx(
                trace.node_busy_s(node), abs=1e-4
            )

    def test_busy_frac_normalised_by_final_time(self, trace):
        table = trace_summary_table(trace)
        final = trace.meta["final_time"]
        for service_s, frac in zip(
            table.column("service_s"), table.column("busy_frac")
        ):
            assert float(frac) == pytest.approx(
                float(service_s) / final, abs=1e-4
            )
