"""Unit tests for the general-tree algorithm (Section 3.7)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments.workloads import identical_instance
from repro.core.general_tree import GeneralTreeScheduler, run_general_tree
from repro.core.scheduler import run_paper_algorithm
from repro.exceptions import SimulationError
from repro.network.builders import broomstick_tree, figure1_tree, kary_tree
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def fig1_instance():
    tree = figure1_tree()
    jobs = JobSet([Job(id=i, release=0.5 * i, size=1.0 + i % 2) for i in range(12)])
    return Instance(tree, jobs, Setting.IDENTICAL)


class TestShadowConstruction:
    def test_assignments_correspond(self, fig1_instance):
        out = run_general_tree(fig1_instance, 0.5)
        inv = out.reduction.inverse_leaf_map
        shadow_assign = out.shadow_result.assignment()
        for jid, leaf in out.assignment.items():
            assert inv[shadow_assign[jid]] == leaf

    def test_total_flow_dominated_by_shadow(self, fig1_instance):
        out = run_general_tree(fig1_instance, 0.5)
        assert out.result.total_flow_time() <= out.shadow_result.total_flow_time() + 1e-9

    def test_identical_per_job_domination(self, fig1_instance):
        out = run_general_tree(fig1_instance, 0.5)
        for jid, rec in out.result.records.items():
            assert (
                rec.flow_time
                <= out.shadow_result.records[jid].flow_time + 1e-9
            )

    def test_default_speed_profile_matches_setting(self, fig1_instance):
        sched = GeneralTreeScheduler(fig1_instance, 0.5)
        assert sched.speeds == SpeedProfile.theorem1(0.5)

    def test_explicit_speeds_respected(self, fig1_instance):
        sched = GeneralTreeScheduler(fig1_instance, 0.5, SpeedProfile.uniform(3.0))
        out = sched.run()
        assert out.result.speeds == SpeedProfile.uniform(3.0)

    def test_both_runs_complete(self, fig1_instance):
        out = run_general_tree(fig1_instance, 0.25)
        out.result.verify_complete()
        out.shadow_result.verify_complete()


class TestRunPaperAlgorithm:
    def test_broomstick_goes_direct(self):
        tree = broomstick_tree(2, 3, 1)
        jobs = JobSet([Job(id=i, release=float(i), size=1.0) for i in range(6)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = run_paper_algorithm(instance, 0.5)
        assert res.instance.tree is tree

    def test_general_tree_routes_through_shadow(self, fig1_instance):
        res = run_paper_algorithm(fig1_instance, 0.5)
        assert res.instance.tree is fig1_instance.tree
        direct = run_general_tree(fig1_instance, 0.5).result
        assert res.total_flow_time() == pytest.approx(direct.total_flow_time())

    def test_broomstick_entry_rejects_general_tree(self, fig1_instance):
        from repro.core.scheduler import run_broomstick_algorithm

        with pytest.raises(SimulationError, match="not a broomstick"):
            run_broomstick_algorithm(fig1_instance, 0.5)

    def test_larger_randomised_instances_complete(self):
        for seed in (0, 1):
            instance = identical_instance(kary_tree(2, 3), 40, load=0.9, seed=seed)
            res = run_paper_algorithm(instance, 0.25)
            res.verify_complete()
