"""The ``repro fuzz`` CLI: flag plumbing, JSON output, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import WorkloadError
from repro.testing.checks import CheckFailure
from repro.testing.corpus import case_digest, save_repro
from repro.testing.generate import CaseConfig, build_case


def _fuzz(*extra: str) -> list[str]:
    return ["fuzz", *extra]


def test_clean_run_exits_zero(tmp_path, capsys):
    rc = main(_fuzz("--seed", "0", "--max-cases", "40", "--corpus", str(tmp_path)))
    assert rc == 0
    out = capsys.readouterr().out
    assert "cases=40" in out
    assert "no disagreements" in out
    assert not list(tmp_path.glob("*.json"))


def test_json_summary_is_machine_readable(tmp_path, capsys):
    rc = main(
        _fuzz(
            "--seed", "1", "--max-cases", "25",
            "--corpus", str(tmp_path), "--json",
        )
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["seed"] == 1
    assert doc["cases_run"] == 25
    assert doc["ok"] is True
    assert doc["stopped_by"] == "max_cases"
    assert doc["failures"] == []


def test_budget_flag_stops_the_run(tmp_path, capsys):
    rc = main(
        _fuzz(
            "--seed", "0", "--budget-seconds", "0",
            "--corpus", str(tmp_path), "--json",
        )
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["stopped_by"] == "budget"
    assert doc["cases_run"] == 0


def test_list_empty_corpus(tmp_path, capsys):
    rc = main(_fuzz("--list", "--corpus", str(tmp_path)))
    assert rc == 0
    assert "empty" in capsys.readouterr().out


def test_list_renders_entries(tmp_path, capsys):
    case = build_case(
        CaseConfig(
            seed=4, topology="spine2", n_jobs=3,
            arrivals="all_zero", sizes="equal",
        )
    )
    save_repro(case, [CheckFailure("counters", "off by one")], tmp_path)
    rc = main(_fuzz("--list", "--corpus", str(tmp_path)))
    assert rc == 0
    out = capsys.readouterr().out
    assert case_digest(case)[:8] in out
    assert "counters" in out


def test_replay_of_fixed_case_exits_zero(tmp_path, capsys):
    # A clean case saved with a recorded failure no longer reproduces
    # (the recorded check passes on the current engine) -> exit 0.
    case = build_case(
        CaseConfig(
            seed=4, topology="spine2", n_jobs=3,
            arrivals="all_zero", sizes="equal",
        )
    )
    save_repro(case, [CheckFailure("exact_oracle", "stale message")], tmp_path)
    rc = main(
        _fuzz("--replay", case_digest(case)[:8], "--corpus", str(tmp_path))
    )
    assert rc == 0
    assert "reproduced: False" in capsys.readouterr().out


def test_replay_unknown_digest_raises(tmp_path):
    with pytest.raises(WorkloadError, match="no corpus entry"):
        main(_fuzz("--replay", "0123456789abcdef", "--corpus", str(tmp_path)))
