"""Unit tests for capacity planning."""

from __future__ import annotations

import pytest

from repro.analysis.planning import min_speed_for_flow
from repro.core.assignment import GreedyIdenticalAssignment
from repro.exceptions import AnalysisError
from repro.network.builders import star_of_paths
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def instance():
    tree = star_of_paths(2, 1)
    jobs = JobSet([Job(id=i, release=0.3 * i, size=1.0 + (i % 2)) for i in range(16)])
    return Instance(tree, jobs, Setting.IDENTICAL)


def policy():
    return GreedyIdenticalAssignment(0.5)


class TestBisection:
    def test_plan_meets_target(self, instance):
        base = simulate(instance, policy(), speeds=SpeedProfile.uniform(1.0))
        target = base.mean_flow_time() * 0.5
        plan = min_speed_for_flow(instance, policy, target, tol=0.02)
        assert plan.feasible
        check = simulate(instance, policy(), speeds=SpeedProfile.uniform(plan.speed))
        assert check.mean_flow_time() <= target + 1e-9

    def test_plan_is_near_minimal(self, instance):
        base = simulate(instance, policy(), speeds=SpeedProfile.uniform(1.0))
        target = base.mean_flow_time() * 0.5
        plan = min_speed_for_flow(instance, policy, target, tol=0.02)
        # Slightly below the found speed must miss the target.
        slower = simulate(
            instance, policy(), speeds=SpeedProfile.uniform(max(plan.speed - 0.1, 1.0))
        )
        assert slower.mean_flow_time() > target or plan.speed <= 1.0 + 0.1

    def test_already_fast_enough(self, instance):
        plan = min_speed_for_flow(instance, policy, target=1e9)
        assert plan.speed == 1.0
        assert len(plan.frontier) == 1

    def test_infeasible_ceiling(self, instance):
        plan = min_speed_for_flow(instance, policy, target=1e-6, hi=2.0)
        assert not plan.feasible
        assert plan.speed == float("inf")

    def test_frontier_records_probes(self, instance):
        base = simulate(instance, policy(), speeds=SpeedProfile.uniform(1.0))
        plan = min_speed_for_flow(
            instance, policy, base.mean_flow_time() * 0.6, tol=0.1
        )
        assert len(plan.frontier) >= 3
        speeds = [p.speed for p in plan.frontier]
        assert speeds[0] == 1.0 and speeds[1] == 16.0

    def test_max_flow_metric(self, instance):
        base = simulate(instance, policy(), speeds=SpeedProfile.uniform(1.0))
        plan = min_speed_for_flow(
            instance, policy, base.max_flow_time() * 0.5, metric="max_flow", tol=0.05
        )
        assert plan.feasible
        check = simulate(instance, policy(), speeds=SpeedProfile.uniform(plan.speed))
        assert check.max_flow_time() <= base.max_flow_time() * 0.5 + 1e-9


class TestValidation:
    def test_bad_metric(self, instance):
        with pytest.raises(AnalysisError, match="metric"):
            min_speed_for_flow(instance, policy, 1.0, metric="p50")

    def test_bad_target(self, instance):
        with pytest.raises(AnalysisError, match="target"):
            min_speed_for_flow(instance, policy, 0.0)

    def test_bad_bracket(self, instance):
        with pytest.raises(AnalysisError, match="lo"):
            min_speed_for_flow(instance, policy, 1.0, lo=2.0, hi=1.0)

    def test_bad_tol(self, instance):
        with pytest.raises(AnalysisError, match="tol"):
            min_speed_for_flow(instance, policy, 1.0, tol=0.0)
