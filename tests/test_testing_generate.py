"""The seeded case generator (`repro.testing.generate`).

The fuzzer's reproducibility story rests on two properties pinned here:
the case stream is a pure function of its seed, and every case
round-trips through its JSON document bit-for-bit (same content digest),
which is what makes corpus repros replayable after grid changes.
"""

from __future__ import annotations

import pytest

from repro.exceptions import WorkloadError
from repro.testing.corpus import case_digest
from repro.testing.generate import (
    CaseConfig,
    FuzzCase,
    build_case,
    iter_cases,
)

_N = 40


def _digests(seed: int, n: int = _N) -> list[str]:
    return [case_digest(c) for c in iter_cases(seed, n)]


class TestDeterminism:
    def test_stream_is_a_function_of_the_seed(self):
        assert _digests(0) == _digests(0)
        assert _digests(7) == _digests(7)

    def test_different_seeds_diverge(self):
        assert _digests(0) != _digests(1)

    def test_build_case_is_deterministic(self):
        config = CaseConfig(
            seed=99, topology="kary_2x2", n_jobs=6,
            arrivals="bursts", sizes="near_tie",
        )
        assert case_digest(build_case(config)) == case_digest(build_case(config))


class TestRoundTrip:
    def test_case_document_round_trips(self):
        for case in iter_cases(3, 20):
            clone = FuzzCase.from_doc(case.to_doc())
            assert case_digest(clone) == case_digest(case)
            assert clone.config == case.config
            assert clone.fixed_assignment == case.fixed_assignment

    def test_config_round_trips(self):
        config = CaseConfig(
            seed=5, topology="broomstick", n_jobs=9, arrivals="tied",
            sizes="powers", setting="unrelated", policy="fixed",
            eps=0.25, speed="tiered", priority="fifo",
        )
        assert CaseConfig.from_doc(config.to_doc()) == config


class TestStreamShape:
    def test_cases_are_well_formed(self):
        for case in iter_cases(11, _N):
            jobs = case.instance.jobs
            assert len(jobs) == case.config.n_jobs
            assert len({j.id for j in jobs}) == len(jobs)
            assert all(j.release >= 0.0 for j in jobs)
            if case.config.policy == "fixed":
                leaves = set(case.instance.tree.leaves)
                assert set(case.fixed_assignment) == {j.id for j in jobs}
                assert set(case.fixed_assignment.values()) <= leaves
            else:
                assert case.fixed_assignment is None
            # Policies are built fresh per call — stateful ones (round
            # robin, random) must not leak state across check re-runs.
            assert case.policy() is not case.policy()

    def test_smoke_deck_covers_boundary_regimes(self):
        configs = [c.config for c in iter_cases(0, 12)]
        assert any(c.arrivals == "all_zero" for c in configs)
        assert any(c.arrivals == "tied" for c in configs)
        assert any(c.sizes == "powers" for c in configs)
        assert any(c.speed == "crawl" for c in configs)
        assert any(c.priority == "fifo" for c in configs)

    def test_stream_includes_collision_regime(self):
        # Every 8th sampled case targets brink-of-completion event
        # collisions: shared-instant releases, power-of-two sizes,
        # non-unit speeds.  They are the cases that exercise the
        # engine's drain-finished rule, so their presence is load-bearing.
        configs = [c.config for c in iter_cases(0, 80)]
        collisions = [
            c
            for c in configs
            if c.sizes == "powers"
            and c.arrivals in ("tied", "integer_grid")
            and c.speed in ("tiered", "fast")
            and c.n_jobs >= 10
        ]
        assert len(collisions) >= 5

    def test_max_cases_bounds_the_stream(self):
        assert len(list(iter_cases(0, 17))) == 17


def test_unknown_grid_value_rejected():
    with pytest.raises(WorkloadError, match="unknown topology"):
        build_case(
            CaseConfig(
                seed=0, topology="nope", n_jobs=4,
                arrivals="poisson", sizes="uniform",
            )
        )
