"""Unit tests for the potential Phi_j and Lemma 2's volume quantity."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.core.potential import higher_priority_volume, phi_potential
from repro.exceptions import AnalysisError
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import Engine
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def snapshot_phis(instance, policy, speeds, eps, after=0.0):
    """Collect (t, job, phi, clear_time) at every event >= after."""
    snaps = []

    def obs(view, kind, subject):
        if view.now < after:
            return
        tops = set(view.tree.root_children)
        for jid in view.alive_jobs():
            node = view.current_node_of(jid)
            if node is None or node in tops:
                continue
            snaps.append((view.now, jid, phi_potential(view, jid, eps)))

    result = Engine(instance, policy, speeds, observer=obs).run()
    return snaps, result


class TestPhi:
    def test_single_job_phi_bounds_residual(self):
        # One job alone: Phi must still dominate its remaining pipeline time.
        tree = spine_tree(3)
        leaf = tree.leaves[0]
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=2.0)]), Setting.IDENTICAL
        )
        eps = 0.5
        snaps, result = snapshot_phis(
            instance, FixedAssignment({0: leaf}), SpeedProfile.lemma1(eps), eps
        )
        clear = result.records[0].completion
        assert snaps, "expected snapshots while the job crossed the interior"
        for t, jid, phi in snaps:
            assert phi >= (clear - t) - 1e-9

    def test_phi_bounds_residual_under_contention(self):
        tree = star_of_paths(2, 3)
        jobs = JobSet(
            [Job(id=i, release=0.0, size=1.0 + (i % 2)) for i in range(10)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL).rounded(0.5)
        eps = 0.5
        snaps, result = snapshot_phis(
            instance, GreedyIdenticalAssignment(eps), SpeedProfile.lemma1(eps), eps
        )
        clear = {jid: rec.completion for jid, rec in result.records.items()}
        # All jobs arrive at t=0, so "no more arrivals" holds throughout.
        for t, jid, phi in snaps:
            assert phi >= (clear[jid] - t) - 1e-9

    def test_phi_non_increasing_without_arrivals(self):
        tree = star_of_paths(2, 3)
        jobs = JobSet([Job(id=i, release=0.0, size=2.0) for i in range(8)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        eps = 0.5
        snaps, _ = snapshot_phis(
            instance, GreedyIdenticalAssignment(eps), SpeedProfile.lemma1(eps), eps
        )
        last = {}
        for t, jid, phi in snaps:
            if jid in last:
                assert phi <= last[jid] + 1e-7
            last[jid] = phi

    def test_done_job_phi_zero(self):
        tree = spine_tree(1)
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        final = {}

        def obs(view, kind, subject):
            if not view.alive_jobs():
                final["phi"] = phi_potential(view, 0, 0.5)

        Engine(instance, FixedAssignment({0: 2}), observer=obs).run()
        assert final["phi"] == 0.0

    def test_eps_validation(self):
        tree = spine_tree(1)
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )

        def obs(view, kind, subject):
            if kind == "arrival":
                with pytest.raises(AnalysisError):
                    phi_potential(view, 0, 0.0)

        Engine(instance, FixedAssignment({0: 2}), observer=obs).run()


class TestHigherPriorityVolume:
    def test_rejects_root_adjacent_node(self):
        tree = spine_tree(2)
        leaf = tree.leaves[0]
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        top = tree.root_children[0]

        def obs(view, kind, subject):
            if kind == "arrival":
                with pytest.raises(AnalysisError, match="adjacent"):
                    higher_priority_volume(view, 0, top)

        Engine(instance, FixedAssignment({0: leaf}), observer=obs).run()

    def test_counts_only_available_higher_priority(self):
        # Two jobs head to the same leaf; when the big one sits at the
        # interior node and the small one is still at the top router, the
        # small one must NOT count (it is not available at the node).
        tree = spine_tree(2)  # router(1) -> router(2) -> leaf(3)
        leaf = tree.leaves[0]
        jobs = JobSet(
            [Job(id=0, release=0.0, size=4.0), Job(id=1, release=0.5, size=1.0)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        values = []

        def obs(view, kind, subject):
            if 0 in view.alive_jobs() and view.current_node_of(0) == 2:
                values.append(higher_priority_volume(view, 0, 2))

        Engine(instance, FixedAssignment({0: leaf, 1: leaf}), observer=obs).run()
        # Job 0's own remaining is counted; job 1 only once it reaches node 2,
        # but by then job 1 (size 1) would be processed first anyway.  The
        # observed values must never exceed own remaining + job1's size.
        assert values
        assert all(v <= 4.0 + 1.0 + 1e-9 for v in values)

    def test_rejects_job_past_node(self):
        tree = spine_tree(2)
        leaf = tree.leaves[0]
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )

        def obs(view, kind, subject):
            if kind == "completion" and view.current_node_of(0) == leaf:
                with pytest.raises(AnalysisError, match="does not still need"):
                    higher_priority_volume(view, 0, 2)

        Engine(instance, FixedAssignment({0: leaf}), observer=obs).run()
