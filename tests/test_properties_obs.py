"""Property tests for the tracing layer.

Hypothesis drives random trees and job sets through a traced engine run
and checks the recorder's accounting identities against the engine's
own ground truth:

* tracing never perturbs the schedule;
* ``counters.trace_records`` equals the built trace's length and the
  arrival points equal ``counters.arrivals``;
* service spans are exactly the ``record_segments`` segments;
* per-node gauge ``busy_s`` windows integrate to the node's total
  service time — the exactness claim in :class:`repro.obs.GaugeSample`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.assignment import GreedyIdenticalAssignment
from repro.obs.trace import TraceConfig, TraceRecorder
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting

from tests.test_properties import jobs_strategy, tree_strategy


def traced_run(tree, jobs, gauge_interval=None):
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    recorder = TraceRecorder(TraceConfig(gauge_interval=gauge_interval))
    result = simulate(
        instance,
        GreedyIdenticalAssignment(0.5),
        record_segments=True,
        collect_counters=True,
        tracer=recorder,
    )
    return instance, result


@settings(max_examples=25, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(max_jobs=8))
def test_tracing_is_pure_observation(tree, jobs):
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    plain = simulate(instance, GreedyIdenticalAssignment(0.5))
    _, traced = traced_run(tree, jobs, gauge_interval=0.5)
    assert traced.total_flow_time() == plain.total_flow_time()
    for jid, rec in plain.records.items():
        assert traced.records[jid].completion == rec.completion
        assert traced.records[jid].leaf == rec.leaf


@settings(max_examples=25, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(max_jobs=8))
def test_counters_account_for_every_trace_record(tree, jobs):
    _, result = traced_run(tree, jobs, gauge_interval=0.5)
    trace = result.trace
    assert result.counters.trace_records == len(trace)
    assert len(trace.points_of("arrival")) == result.counters.arrivals
    assert len(trace.points_of("finish")) == len(result.records)


@settings(max_examples=25, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(max_jobs=8))
def test_service_spans_are_the_segments(tree, jobs):
    _, result = traced_run(tree, jobs)
    got = sorted(
        (s.node, s.job_id, s.start, s.end)
        for s in result.trace.spans_of("service")
    )
    want = sorted(
        (seg.node, seg.job_id, seg.start, seg.end) for seg in result.segments
    )
    assert got == want


@settings(max_examples=25, deadline=None)
@given(tree=tree_strategy(), jobs=jobs_strategy(max_jobs=8))
def test_gauges_integrate_to_engine_totals(tree, jobs):
    """Summing the windowed ``busy_s`` samples per node reproduces that
    node's total service time, and summing across nodes reproduces the
    total processing the engine performed (EngineCounters meters the
    same run, so the identity ties gauges to the counter subsystem)."""
    _, result = traced_run(tree, jobs, gauge_interval=0.25)
    trace = result.trace
    assert result.counters.events_processed > 0
    total_service = sum(s.duration for s in trace.spans_of("service"))
    sampled_nodes = {g.node for g in trace.gauges}
    integrated_total = 0.0
    for v in sampled_nodes:
        integrated = sum(g.busy_s for g in trace.gauges_for(v))
        assert integrated == pytest.approx(
            trace.node_busy_s(v), rel=1e-9, abs=1e-9
        )
        integrated_total += integrated
    # gauges sample every non-root node, so the per-node identities sum
    # to the engine-wide service total
    assert integrated_total == pytest.approx(
        total_service, rel=1e-9, abs=1e-9
    )
    # gauge times never exceed the final time and windows are ordered
    final = trace.meta["final_time"]
    for v in sampled_nodes:
        times = [g.time for g in trace.gauges_for(v)]
        assert times == sorted(times)
        assert all(t <= final + 1e-12 for t in times)
