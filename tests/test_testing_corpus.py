"""The content-addressed crash corpus (`repro.testing.corpus`).

Digests are the corpus's identity scheme: stable across processes,
prefix-addressable like git ids, and collision-resistant enough that
writing the same minimised case twice is a no-op.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import WorkloadError
from repro.testing.checks import CheckFailure
from repro.testing.corpus import (
    case_digest,
    list_corpus,
    load_repro,
    save_repro,
)
from repro.testing.generate import CaseConfig, build_case

_FAILURES = [CheckFailure("exact_oracle", "job 0: engine 2.0, oracle 3.0")]


def _case(seed: int = 1):
    return build_case(
        CaseConfig(
            seed=seed, topology="spine2", n_jobs=4,
            arrivals="poisson", sizes="uniform",
        )
    )


class TestDigest:
    def test_shape_and_stability(self):
        digest = case_digest(_case())
        assert len(digest) == 16
        assert int(digest, 16) >= 0  # hex
        assert digest == case_digest(_case())

    def test_distinct_cases_distinct_digests(self):
        assert case_digest(_case(1)) != case_digest(_case(2))


class TestSaveLoad:
    def test_round_trip_by_digest(self, tmp_path):
        case = _case()
        path = save_repro(case, _FAILURES, tmp_path)
        assert path.parent == tmp_path
        loaded, doc = load_repro(case_digest(case), tmp_path)
        assert case_digest(loaded) == case_digest(case)
        assert doc["failures"] == [
            {"check": "exact_oracle", "message": _FAILURES[0].message}
        ]

    def test_load_by_prefix_and_path(self, tmp_path):
        case = _case()
        path = save_repro(case, _FAILURES, tmp_path)
        digest = case_digest(case)
        by_prefix, _ = load_repro(digest[:6], tmp_path)
        by_path, _ = load_repro(path, tmp_path)
        assert case_digest(by_prefix) == digest
        assert case_digest(by_path) == digest

    def test_rewrite_is_idempotent(self, tmp_path):
        case = _case()
        first = save_repro(case, _FAILURES, tmp_path)
        second = save_repro(case, _FAILURES, tmp_path)
        assert first == second
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_missing_and_ambiguous_refs(self, tmp_path):
        save_repro(_case(1), _FAILURES, tmp_path)
        save_repro(_case(2), _FAILURES, tmp_path)
        with pytest.raises(WorkloadError, match="no corpus entry"):
            load_repro("ffffffffffffffff", tmp_path)
        # The empty prefix matches every entry.
        with pytest.raises(WorkloadError, match="ambiguous"):
            load_repro("", tmp_path)

    def test_foreign_document_rejected(self, tmp_path):
        bogus = tmp_path / "deadbeefdeadbeef.json"
        bogus.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(WorkloadError, match="not a"):
            load_repro("deadbeefdeadbeef", tmp_path)


class TestListCorpus:
    def test_summaries(self, tmp_path):
        case = _case()
        save_repro(case, _FAILURES, tmp_path, shrunk_from=9)
        entries = list_corpus(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["digest"] == case_digest(case)
        assert entry["checks"] == ["exact_oracle"]
        assert entry["n_jobs"] == 4
        assert entry["label"] == case.config.label()

    def test_empty_or_missing_dir(self, tmp_path):
        assert list_corpus(tmp_path) == []
        assert list_corpus(tmp_path / "nope") == []

    def test_garbage_files_skipped(self, tmp_path):
        (tmp_path / "junk.json").write_text("{not json")
        save_repro(_case(), _FAILURES, tmp_path)
        assert len(list_corpus(tmp_path)) == 1
