"""Shared fixtures: small canonical trees, job sets, and instances."""

from __future__ import annotations

import sys

import pytest


def both_backends_fixture(module_name: str):
    """An autouse fixture running every test in a module on both engine
    backends.

    The engine-level suites (hand-computed schedules, invariants,
    metamorphic relations) call a module-global ``simulate``; binding
    ``_engine_backend = both_backends_fixture(__name__)`` in such a
    module parametrizes it over ``python`` / ``numpy`` / ``c`` by
    swapping that global for the corresponding kernel's wrapper, so
    every schedule assertion doubles as a cross-backend equivalence
    check.  The ``c`` parameter skips on machines without a working
    compiler (or with ``REPRO_NO_CKERNEL=1``).
    """

    @pytest.fixture(autouse=True, params=["python", "numpy", "c"])
    def _engine_backend(request, monkeypatch):
        if request.param == "numpy":
            from repro.sim.backends.numpy_backend import simulate_numpy

            monkeypatch.setattr(
                sys.modules[module_name], "simulate", simulate_numpy
            )
        elif request.param == "c":
            from repro.sim.backends import c_build
            from repro.sim.backends.c_backend import simulate_c

            ok, reason = c_build.availability()
            if not ok:
                pytest.skip(f"c backend unavailable: {reason}")
            monkeypatch.setattr(
                sys.modules[module_name], "simulate", simulate_c
            )
        return request.param

    return _engine_backend

from repro.network.builders import (
    broomstick_tree,
    figure1_tree,
    kary_tree,
    star_of_paths,
)
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def two_path_tree():
    """Two disjoint router->leaf paths below the root (5 nodes).

    ids: 0=root, 1=router, 2=leaf, 3=router, 4=leaf.
    """
    return star_of_paths(2, 1)


@pytest.fixture
def deep_tree():
    """Three paths of 3 routers + leaf each."""
    return star_of_paths(3, 3)


@pytest.fixture
def binary_tree():
    return kary_tree(2, 3)


@pytest.fixture
def fig1():
    return figure1_tree()


@pytest.fixture
def small_broomstick():
    return broomstick_tree(2, 3, 1)


@pytest.fixture
def unit_jobs():
    """Five unit jobs with spaced releases."""
    return JobSet([Job(id=i, release=2.0 * i, size=1.0) for i in range(5)])


@pytest.fixture
def identical_instance_small(two_path_tree, unit_jobs):
    return Instance(two_path_tree, unit_jobs, Setting.IDENTICAL)


@pytest.fixture
def unrelated_instance_small(two_path_tree):
    jobs = JobSet(
        [
            Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 1.0, 4: 3.0}),
            Job(id=1, release=0.5, size=2.0, leaf_sizes={2: 4.0, 4: 2.0}),
            Job(id=2, release=1.0, size=1.0, leaf_sizes={2: 1.0, 4: 1.0}),
        ]
    )
    return Instance(two_path_tree, jobs, Setting.UNRELATED)
