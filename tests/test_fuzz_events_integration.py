"""End-to-end proof the events fuzz stream catches a dynamic-events bug.

The injected bug breaks :meth:`Engine._handle_node_down`: the handler
settles the interrupted run but "forgets" the version bump that
invalidates the node's pending completion event.  The stale event then
restarts the node mid-outage, so work completes while the node is down —
exactly the class of bug the outage families of ``repro fuzz --events``
exist to catch.  The fuzzer must (a) catch it within the default budget
at seed 0, (b) shrink the witness to a handful of jobs AND events,
(c) persist it to the corpus, and (d) replay it: reproducing while the
bug is present, clean once the handler is restored.

The event-free stream cannot see this bug (no outages, no down
handler), which doubles as proof that the ``--events`` flag is what
buys the coverage.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.testing import replay, run_fuzz

MAX_CASES = 500
SHRUNK_JOB_CEILING = 6
SHRUNK_EVENT_CEILING = 3


def _broken_handle_node_down(self, node: int) -> None:
    """The real handler minus the version bump: the stale completion
    event keeps serving the node through the outage."""
    ns = self._nodes[node]
    self._settle(ns)
    self._drain_finished_top(ns)
    ns.down = True
    self._down.add(node)
    if self._tracer is not None:
        self._tracer.on_node_down(self.now, node)


@pytest.fixture
def broken_node_down(monkeypatch):
    monkeypatch.setattr(
        Engine, "_handle_node_down", _broken_handle_node_down
    )


@pytest.mark.slow
def test_injected_node_down_bug_is_caught_shrunk_and_replayable(
    broken_node_down, tmp_path, monkeypatch
):
    corpus = tmp_path / "corpus"
    summary = run_fuzz(
        seed=0, max_cases=MAX_CASES, corpus_dir=corpus, events=True
    )

    assert not summary.ok, (
        f"events fuzzer missed the injected node_down bug in "
        f"{MAX_CASES} cases"
    )

    best = min(
        summary.failures,
        key=lambda rec: (rec.n_jobs_shrunk, rec.n_events_shrunk),
    )
    assert best.n_jobs_shrunk <= SHRUNK_JOB_CEILING, (
        f"witness only shrank to {best.n_jobs_shrunk} jobs"
    )
    assert best.n_events_shrunk <= SHRUNK_EVENT_CEILING, (
        f"witness kept {best.n_events_shrunk} events"
    )
    assert best.n_events_shrunk >= 1, (
        "an event-free witness cannot exercise the node_down handler"
    )
    for rec in summary.failures:
        assert rec.path is not None
        assert (corpus / f"{rec.digest}.json").exists()
        assert rec.failing_checks, rec

    # With the bug still present the repro reproduces...
    report = replay(best.digest, corpus)
    assert report.reproduced
    assert set(report.failing_checks) & set(best.failing_checks)

    # ...and with the handler restored, it is clean: the corpus entry
    # now documents a fixed bug.
    monkeypatch.undo()
    report = replay(best.digest, corpus)
    assert not report.reproduced


def test_event_free_stream_is_blind_to_the_bug(broken_node_down, tmp_path):
    """Without ``events=True`` no outage is ever generated, so the
    broken handler never runs — the coverage is bought by the flag."""
    summary = run_fuzz(
        seed=0, max_cases=60, corpus_dir=tmp_path / "corpus", shrink=False
    )
    assert summary.ok


def test_broken_node_down_caught_quickly(broken_node_down, tmp_path):
    """A cheaper smoke version: the deterministic outage deck entries
    mean the bug cannot hide even in a short run."""
    summary = run_fuzz(
        seed=0,
        max_cases=60,
        corpus_dir=tmp_path / "corpus",
        shrink=False,
        events=True,
    )
    assert not summary.ok
