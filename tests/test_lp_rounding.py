"""Unit tests for LP-guided rounding and the OPT bracket."""

from __future__ import annotations

import math

import pytest

from repro.lp.rounding import lp_rounded_assignment, opt_bracket
from repro.network.builders import star_of_paths
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def small_identical():
    tree = star_of_paths(2, 1)
    jobs = JobSet([Job(id=i, release=float(i), size=2.0) for i in range(5)])
    return Instance(tree, jobs, Setting.IDENTICAL)


class TestRounding:
    def test_assignment_covers_all_jobs(self, small_identical):
        assignment = lp_rounded_assignment(small_identical)
        assert set(assignment) == set(small_identical.jobs.ids)
        leaves = set(small_identical.tree.leaves)
        assert all(v in leaves for v in assignment.values())

    def test_unrelated_respects_forbidden(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.0}),
                Job(id=1, release=1.0, size=1.0, leaf_sizes={2: 1.0, 4: math.inf}),
            ]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        assignment = lp_rounded_assignment(instance)
        assert assignment == {0: 4, 1: 2}

    def test_obvious_fast_leaf_chosen(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 50.0, 4: 1.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        assert lp_rounded_assignment(instance)[0] == 4


class TestLocalSearch:
    def test_never_worse_than_start(self, small_identical):
        from repro.core.assignment import FixedAssignment
        from repro.lp.rounding import local_search_assignment
        from repro.sim.engine import simulate
        from repro.sim.speed import SpeedProfile

        leaves = small_identical.tree.leaves
        start = {j: leaves[0] for j in small_identical.jobs.ids}  # worst pile-up
        start_flow = simulate(
            small_identical, FixedAssignment(start), speeds=SpeedProfile.uniform(1.0)
        ).total_flow_time()
        improved, flow = local_search_assignment(small_identical, start)
        assert flow <= start_flow
        # The pile-up start is clearly improvable by spreading.
        assert flow < start_flow
        assert set(improved) == set(start)

    def test_fixed_point_of_balanced_start(self, small_identical):
        from repro.lp.rounding import local_search_assignment

        rounded = lp_rounded_assignment(small_identical)
        improved, flow = local_search_assignment(small_identical, rounded)
        again, flow2 = local_search_assignment(small_identical, improved, max_rounds=1)
        assert flow2 <= flow + 1e-9

    def test_bracket_with_local_search_at_least_as_tight(self, small_identical):
        plain = opt_bracket(small_identical)
        polished = opt_bracket(small_identical, local_search=True)
        assert polished.upper <= plain.upper + 1e-9
        assert polished.lower == pytest.approx(plain.lower)


class TestOptBracket:
    def test_bracket_orders(self, small_identical):
        bracket = opt_bracket(small_identical)
        assert bracket.lower > 0
        assert bracket.upper > 0
        assert bracket.gap == pytest.approx(bracket.upper / bracket.lower)
        assert bracket.upper_source in {
            "lp-rounded", "greedy", "closest", "least-loaded",
        }

    def test_upper_bound_is_feasible_cost(self, small_identical):
        """The upper bound comes from a genuine simulated schedule, so it
        must be at least the path-volume lower bound."""
        from repro.lp.bounds import path_volume_bound

        bracket = opt_bracket(small_identical)
        assert bracket.upper >= path_volume_bound(small_identical) - 1e-9

    def test_bracket_tightens_on_trivial_instance(self):
        """One job alone: every heuristic is optimal; the gap reflects
        only the LP objective's definitional slack (it omits part of the
        waiting charge), so upper/lower stays a small constant."""
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=0, release=0.0, size=2.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        bracket = opt_bracket(instance)
        assert bracket.upper == pytest.approx(4.0)  # router + leaf
        assert bracket.gap < 2.0
