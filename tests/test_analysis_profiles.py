"""Unit tests for utilisation/congestion profiles."""

from __future__ import annotations

import pytest

from repro.analysis.profiles import bottleneck_report, busy_periods, node_utilisation
from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import AnalysisError
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def chain_result():
    tree = spine_tree(1)
    jobs = JobSet([Job(id=0, release=0.0, size=2.0), Job(id=1, release=0.0, size=2.0)])
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    return simulate(instance, FixedAssignment({0: 2, 1: 2}), record_segments=True)


class TestBusyPeriods:
    def test_requires_segments(self):
        tree = spine_tree(1)
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        res = simulate(instance, FixedAssignment({0: 2}))
        with pytest.raises(AnalysisError, match="record_segments"):
            busy_periods(res)

    def test_merges_back_to_back_jobs(self, chain_result):
        # Router busy [0,4) continuously across two jobs -> one period.
        periods = busy_periods(chain_result)
        assert periods[1] == [(0.0, 4.0)]

    def test_gap_splits_periods(self):
        tree = spine_tree(1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0), Job(id=1, release=10.0, size=1.0)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: 2, 1: 2}), record_segments=True)
        assert len(busy_periods(res)[1]) == 2


class TestUtilisation:
    def test_chain_utilisation(self, chain_result):
        # Makespan 6: router busy 4/6, leaf busy [2,6) = 4/6.
        util = node_utilisation(chain_result)
        assert util[1] == pytest.approx(4 / 6)
        assert util[2] == pytest.approx(4 / 6)

    def test_until_window(self, chain_result):
        util = node_utilisation(chain_result, until=4.0)
        assert util[1] == pytest.approx(1.0)

    def test_idle_node_zero(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: 2}), record_segments=True)
        util = node_utilisation(res)
        assert util[3] == 0.0 and util[4] == 0.0

    def test_empty_schedule(self):
        tree = spine_tree(1)
        instance = Instance(tree, JobSet([]), Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({}), record_segments=True)
        assert set(node_utilisation(res).values()) == {0.0}

    def test_values_in_unit_interval(self):
        tree = star_of_paths(3, 2)
        jobs = JobSet([Job(id=i, release=0.2 * i, size=1.0 + i % 2) for i in range(20)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.5), record_segments=True)
        for u in node_utilisation(res).values():
            assert 0.0 <= u <= 1.0 + 1e-9


class TestBottleneckReport:
    def test_ranked_and_labelled(self, chain_result):
        table = bottleneck_report(chain_result, top=5)
        utils = [float(u) for u in table.column("utilisation")]
        assert utils == sorted(utils, reverse=True)
        tiers = set(table.column("tier"))
        assert tiers <= {"root-adjacent", "router", "machine"}

    def test_top_limits_rows(self):
        tree = star_of_paths(3, 2)
        jobs = JobSet([Job(id=i, release=0.5 * i, size=1.0) for i in range(9)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.5), record_segments=True)
        assert len(bottleneck_report(res, top=3)) == 3
