"""Property test: incremental congestion aggregates vs brute-force scan.

The engine maintains per-node through-counts (``|Q_v(t)|``), remaining
through-volumes, and queued volumes incrementally at the three mutation
points (release, hop advance, settle).  On random trees and workloads —
identical and unrelated settings, greedy and randomised policies — the
O(1) reads (``jobs_through_count`` / ``volume_through`` /
``queue_volume_at``) must agree with a brute-force recomputation from
public view state at every engine event.
"""

from __future__ import annotations

from repro.analysis.experiments.workloads import identical_instance, unrelated_instance
from repro.baselines.policies import RandomAssignment
from repro.core.assignment import GreedyIdenticalAssignment, GreedyUnrelatedAssignment
from repro.network.builders import kary_tree, random_tree, star_of_paths
from repro.sim.engine import simulate

# Volumes are sums of O(alive) float terms accumulated in different
# orders by the aggregates and the scan; tolerance is relative to scale.
RTOL = 1e-9


def brute_aggregates(view, node) -> tuple[int, float, float]:
    """(count, through volume, queued volume) at ``node`` recomputed from
    public view queries only."""
    count = 0
    volume = 0.0
    queued = 0.0
    instance = view.instance
    for jid in view.alive_jobs():
        cur = view.current_node_of(jid)
        if cur is None:
            continue
        path = instance.processing_path_for(view.job(jid), view.assigned_leaf(jid))
        if node not in path:
            continue
        pos = path.index(node)
        cur_pos = path.index(cur)
        if pos < cur_pos:
            continue
        count += 1
        rem = (
            view.remaining_on(jid, node)
            if pos == cur_pos
            else instance.processing_time(view.job(jid), node)
        )
        volume += rem
        if pos == cur_pos:
            queued += rem
    return count, volume, queued


def check_instance(instance, policy):
    nodes = [n.id for n in instance.tree if not n.is_root]
    checked = {"events": 0}

    def obs(view, kind, subject):
        checked["events"] += 1
        for v in nodes:
            count, volume, queued = brute_aggregates(view, v)
            got_count = view.jobs_through_count(v)
            assert got_count == count, (
                f"jobs_through_count({v}) diverged at t={view.now}: "
                f"aggregate={got_count} scan={count}"
            )
            got_volume = view.volume_through(v)
            tol = RTOL * max(1.0, volume)
            assert abs(got_volume - volume) <= tol, (
                f"volume_through({v}) drifted at t={view.now}: "
                f"aggregate={got_volume} scan={volume}"
            )
            got_queued = view.queue_volume_at(v)
            tol = RTOL * max(1.0, queued)
            assert abs(got_queued - queued) <= tol, (
                f"queue_volume_at({v}) drifted at t={view.now}: "
                f"aggregate={got_queued} scan={queued}"
            )

    simulate(instance, policy, observer=obs)
    assert checked["events"] > 0


class TestAggregatesMatchScan:
    def test_random_trees_identical_greedy(self):
        for seed in (0, 1, 2):
            tree = random_tree(14, rng=seed)
            instance = identical_instance(tree, 20, load=0.95, seed=seed)
            check_instance(instance, GreedyIdenticalAssignment(0.25))

    def test_random_trees_random_policy(self):
        for seed in (3, 4):
            tree = random_tree(12, rng=seed)
            instance = identical_instance(tree, 15, load=0.9, seed=seed + 100)
            check_instance(instance, RandomAssignment(seed))

    def test_unrelated_setting_greedy(self):
        # Unrelated leaf times make through-volume differ from size on
        # the leaf, exercising the p_leaf correction at release.
        for seed in (5, 6):
            tree = kary_tree(2, 3)
            instance = unrelated_instance(tree, 16, load=0.9, seed=seed)
            check_instance(instance, GreedyUnrelatedAssignment(0.5))

    def test_deep_paths_interior_nodes(self):
        # Depth-3 paths give interior nodes whose queued volume differs
        # from the full through volume (work still upstream).
        instance = identical_instance(star_of_paths(3, 3), 18, load=0.95, seed=7)
        check_instance(instance, GreedyIdenticalAssignment(0.5))

    def test_exact_zero_when_empty(self):
        # After a lone job completes, every aggregate must return to an
        # exact 0 / 0.0 (no float residue leaks into later decisions).
        tree = kary_tree(2, 2)
        instance = identical_instance(tree, 1, load=0.5, seed=9)
        final = {}

        def obs(view, kind, subject):
            final["state"] = [
                (view.jobs_through_count(v), view.volume_through(v), view.queue_volume_at(v))
                for v in (n.id for n in tree if not n.is_root)
            ]

        simulate(instance, GreedyIdenticalAssignment(0.25), observer=obs)
        for count, volume, queued in final["state"]:
            assert count == 0
            assert volume == 0.0
            assert queued == 0.0
