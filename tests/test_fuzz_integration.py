"""End-to-end proof the fuzzer catches a real engine bug.

The injected bug disables :meth:`Engine._drain_finished_top` — exactly
the zero-remaining drain rule PR 1 fixed.  Without it, a job whose
remaining work hits zero at an event collision is re-queued behind a
simultaneously arriving higher-priority job and completes late.  The
fuzzer must (a) catch the bug within its default budget at seed 0,
(b) shrink the witness to a handful of jobs, (c) persist it to the
corpus, and (d) replay it: reproducing while the bug is present, clean
once it is fixed.

This is the acceptance test of the whole subsystem — if the generator's
collision regime, the exact oracle's drain semantics, the shrinker, or
the corpus round-trip regress, it fails.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.testing import replay, run_fuzz

MAX_CASES = 500
SHRUNK_JOB_CEILING = 6


@pytest.fixture
def broken_drain(monkeypatch):
    """Disable the drain-finished-ties rule for the duration of a test."""
    monkeypatch.setattr(Engine, "_drain_finished_top", lambda self, ns: None)


@pytest.mark.slow
def test_injected_drain_bug_is_caught_shrunk_and_replayable(
    broken_drain, tmp_path, monkeypatch
):
    corpus = tmp_path / "corpus"
    summary = run_fuzz(seed=0, max_cases=MAX_CASES, corpus_dir=corpus)

    assert not summary.ok, (
        f"fuzzer missed the injected drain bug in {MAX_CASES} cases"
    )
    assert summary.cases_run == MAX_CASES

    best = min(summary.failures, key=lambda rec: rec.n_jobs_shrunk)
    assert best.n_jobs_shrunk <= SHRUNK_JOB_CEILING, (
        f"witness only shrank to {best.n_jobs_shrunk} jobs"
    )
    for rec in summary.failures:
        assert rec.path is not None
        assert (corpus / f"{rec.digest}.json").exists()
        assert rec.failing_checks, rec

    # With the bug still present every saved repro reproduces...
    report = replay(best.digest, corpus)
    assert report.reproduced
    assert set(report.failing_checks) & set(best.failing_checks)

    # ...and with the engine restored, none do: the corpus entry now
    # documents a fixed bug, which is exactly how triage reads it.
    monkeypatch.undo()
    report = replay(best.digest, corpus)
    assert not report.reproduced


def test_broken_engine_caught_quickly(broken_drain, tmp_path):
    """A cheaper smoke version: the dedicated collision sub-stream means
    the bug cannot hide for long even in a short run."""
    summary = run_fuzz(
        seed=0, max_cases=220, corpus_dir=tmp_path / "corpus", shrink=False
    )
    assert not summary.ok
    assert all("exact_oracle" in rec.failing_checks or rec.failing_checks
               for rec in summary.failures)
