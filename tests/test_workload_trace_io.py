"""Unit tests for instance JSON serialisation."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import WorkloadError
from repro.network.builders import figure1_tree, star_of_paths
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet
from repro.workload.trace_io import (
    instance_from_json,
    instance_to_json,
    load_instance,
    save_instance,
)


@pytest.fixture
def identical_inst():
    tree = figure1_tree()
    jobs = JobSet([Job(id=i, release=float(i), size=1.5 * (i + 1)) for i in range(4)])
    return Instance(tree, jobs, Setting.IDENTICAL, name="roundtrip")


@pytest.fixture
def unrelated_inst():
    tree = star_of_paths(2, 1)
    jobs = JobSet(
        [
            Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 2.0, 4: math.inf}),
            Job(id=1, release=1.0, size=2.0, leaf_sizes={2: 1.0, 4: 3.0}),
        ]
    )
    return Instance(tree, jobs, Setting.UNRELATED, name="unrel")


class TestRoundTrip:
    def test_identical_round_trip(self, identical_inst):
        restored = instance_from_json(instance_to_json(identical_inst))
        assert restored.name == "roundtrip"
        assert restored.setting is Setting.IDENTICAL
        assert restored.tree.parent_map() == identical_inst.tree.parent_map()
        assert len(restored.jobs) == 4
        for j in range(4):
            assert restored.jobs.by_id(j).size == identical_inst.jobs.by_id(j).size
            assert restored.jobs.by_id(j).release == identical_inst.jobs.by_id(j).release

    def test_names_survive(self, identical_inst):
        restored = instance_from_json(instance_to_json(identical_inst))
        assert restored.tree.node(0).name == "root"

    def test_unrelated_round_trip_with_inf(self, unrelated_inst):
        restored = instance_from_json(instance_to_json(unrelated_inst))
        job = restored.jobs.by_id(0)
        assert job.leaf_sizes[4] == math.inf
        assert job.leaf_sizes[2] == 2.0

    def test_file_round_trip(self, tmp_path, identical_inst):
        path = tmp_path / "inst.json"
        save_instance(identical_inst, path)
        restored = load_instance(path)
        assert restored.tree.num_nodes == identical_inst.tree.num_nodes

    def test_simulation_equivalence(self, identical_inst):
        """A restored instance must schedule identically."""
        from repro.core.scheduler import run_paper_algorithm

        restored = instance_from_json(instance_to_json(identical_inst))
        a = run_paper_algorithm(identical_inst, 0.5)
        b = run_paper_algorithm(restored, 0.5)
        assert a.total_flow_time() == pytest.approx(b.total_flow_time())
        assert a.assignment() == b.assignment()


class TestErrors:
    def test_bad_json(self):
        with pytest.raises(WorkloadError, match="invalid JSON"):
            instance_from_json("{not json")

    def test_wrong_format(self):
        with pytest.raises(WorkloadError, match="not a treesched"):
            instance_from_json('{"format": "something-else"}')

    def test_wrong_version(self, identical_inst):
        text = instance_to_json(identical_inst).replace(
            '"version": 1', '"version": 99'
        )
        with pytest.raises(WorkloadError, match="version"):
            instance_from_json(text)
