"""Queueing-theory cross-validation: the engine vs Pollaczek-Khinchine.

These tests validate the simulator against closed-form M/G/1 results —
an independent correctness path that shares no code with the engine's
own invariant checking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.queueing import mg1_fifo_mean_flow, simulate_single_node_flow
from repro.exceptions import AnalysisError


class TestFormula:
    def test_mm1_special_case(self):
        """Exponential service: E[S^2] = 2 E[S]^2, so the PK flow reduces
        to the M/M/1 sojourn 1/(mu - lambda)."""
        lam, mu = 0.5, 1.0
        mean_s = 1.0 / mu
        mean_s2 = 2.0 / mu**2
        assert mg1_fifo_mean_flow(lam, mean_s, mean_s2) == pytest.approx(
            1.0 / (mu - lam)
        )

    def test_md1_special_case(self):
        """Deterministic service halves the waiting of M/M/1."""
        lam, s = 0.5, 1.0
        md1 = mg1_fifo_mean_flow(lam, s, s**2)
        wait = md1 - s
        assert wait == pytest.approx(lam * s * s / (2 * (1 - lam * s)))

    def test_unstable_rejected(self):
        with pytest.raises(AnalysisError, match="unstable"):
            mg1_fifo_mean_flow(1.0, 1.0, 1.0)

    def test_inconsistent_moments_rejected(self):
        with pytest.raises(AnalysisError, match="E\\[S\\^2\\]"):
            mg1_fifo_mean_flow(0.5, 1.0, 0.5)

    def test_bad_inputs(self):
        with pytest.raises(AnalysisError):
            mg1_fifo_mean_flow(0.0, 1.0, 1.0)


class TestSimulatorAgreement:
    """The engine, configured as a single FIFO M/G/1 node, must land on
    PK within sampling noise (10-15% at n = 6000)."""

    def test_md1(self):
        n = 6000
        lam = 0.6
        sizes = np.full(n, 1.0)
        sim = simulate_single_node_flow(sizes, lam, rng=0)
        theory = mg1_fifo_mean_flow(lam, 1.0, 1.0)
        assert sim == pytest.approx(theory, rel=0.10)

    def test_mm1(self):
        n = 8000
        lam, mu = 0.5, 1.0
        rng = np.random.default_rng(1)
        sizes = rng.exponential(1.0 / mu, size=n)
        sim = simulate_single_node_flow(sizes, lam, rng=2)
        theory = mg1_fifo_mean_flow(lam, float(sizes.mean()), float((sizes**2).mean()))
        assert sim == pytest.approx(theory, rel=0.15)

    def test_high_variance_service_waits_longer(self):
        """PK's E[S^2] dependence: same mean, higher variance, more wait —
        and the simulator agrees directionally."""
        n = 6000
        lam = 0.5
        det = simulate_single_node_flow(np.full(n, 1.0), lam, rng=3)
        rng = np.random.default_rng(4)
        bimodal = np.where(rng.random(n) < 0.9, 0.5, 5.5)  # mean 1, high var
        noisy = simulate_single_node_flow(bimodal, lam, rng=5)
        assert noisy > det
