"""Tests for the parallel experiment runner and its result cache."""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.analysis.runner import (
    MANIFEST_SCHEMA,
    RunnerOutcome,
    aggregate_counters,
    cache_key,
    cache_path,
    clear_cache,
    manifest_path,
    run_experiments,
    summary_table,
)

#: Small-but-nonzero workloads: fast enough for tier-1, long enough that
#: cold wall time dominates cache-read time.
FAST_IDS = ["F1", "F2"]


def same_payload(a, b) -> bool:
    """Bit-identical experiment outputs: metrics, rows, verdict, text."""
    return (
        a.metrics == b.metrics
        and a.table.rows == b.table.rows
        and a.table.columns == b.table.columns
        and a.passed == b.passed
        and a.render() == b.render()
    )


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key("T1", {"n": 5}) == cache_key("T1", {"n": 5})

    def test_sensitive_to_id_and_params(self):
        base = cache_key("T1", {"n": 5})
        assert cache_key("T2", {"n": 5}) != base
        assert cache_key("T1", {"n": 6}) != base
        assert cache_key("T1", {}) != base

    def test_tuple_and_list_params_hash_alike(self):
        # argparse/json hand over lists, experiment defaults are tuples;
        # the canonical form must not distinguish them.
        assert cache_key("T1", {"speeds": (1.0, 1.5)}) == cache_key(
            "T1", {"speeds": [1.0, 1.5]}
        )


class TestCacheRoundTrip:
    def test_cold_then_warm(self, tmp_path):
        cold = run_experiments(FAST_IDS, cache_dir=tmp_path)
        assert [o.exp_id for o in cold] == FAST_IDS
        assert all(not o.cached for o in cold)
        warm = run_experiments(FAST_IDS, cache_dir=tmp_path)
        assert all(o.cached for o in warm)
        for a, b in zip(cold, warm):
            assert same_payload(a.result, b.result)
            assert a.key == b.key

    def test_no_cache_never_touches_disk(self, tmp_path):
        out = run_experiments(FAST_IDS, cache_dir=tmp_path, use_cache=False)
        assert all(not o.cached for o in out)
        assert list(tmp_path.rglob("*")) == []

    # pickle raises different exceptions depending on which opcode the
    # garbage happens to decode to: b"not a pickle" -> UnpicklingError,
    # b"garbage\n" -> ValueError (the GET opcode expects an int line).
    @pytest.mark.parametrize("junk", [b"not a pickle", b"garbage\n", b""])
    def test_corrupt_entry_is_a_miss(self, tmp_path, junk):
        first = run_experiments(["F1"], cache_dir=tmp_path)[0]
        cache_path(tmp_path, first.key).write_bytes(junk)
        # the experiment entry is gone but every trial entry survives, so
        # the re-run is a trial-cache replay (still reported as cached)
        again = run_experiments(["F1"], cache_dir=tmp_path)[0]
        assert again.cached
        assert again.trials_cached == again.trials_total == first.trials_total
        assert same_payload(first.result, again.result)
        # and the repaired experiment entry is served on the next read
        assert run_experiments(["F1"], cache_dir=tmp_path)[0].cached
        # with the trial cache wiped too, the run is an honest recompute
        cache_path(tmp_path, first.key).write_bytes(junk)
        for entry in (tmp_path / "trials").glob("*.pkl"):
            entry.write_bytes(junk)
        cold = run_experiments(["F1"], cache_dir=tmp_path)[0]
        assert not cold.cached and cold.trials_cached == 0
        assert same_payload(first.result, cold.result)

    def test_clear_cache(self, tmp_path):
        run_experiments(FAST_IDS, cache_dir=tmp_path)
        # one experiment entry each plus one entry per trial
        assert clear_cache(tmp_path) > len(FAST_IDS)
        assert clear_cache(tmp_path) == 0
        assert clear_cache(tmp_path / "missing") == 0


class TestParallelIdentity:
    def test_full_registry_parallel_matches_serial(self, tmp_path):
        """Acceptance: --parallel 4 over the whole registry is
        bit-identical to the serial run (reduced-size parameters keep
        tier-1 fast; every experiment id is exercised).  S1 is the one
        experiment whose *output is itself a wall-clock measurement*
        (events/second); for it only the deterministic columns can be
        compared.
        """
        from tests.test_experiments import QUICK_PARAMS

        serial = run_experiments(
            None,
            params_by_id=QUICK_PARAMS,
            parallel=1,
            cache_dir=tmp_path / "serial",
            shard_trials=False,  # the pre-grid whole-experiment path
        )
        parallel = run_experiments(
            None,
            params_by_id=QUICK_PARAMS,
            parallel=4,
            cache_dir=tmp_path / "parallel",
        )
        assert [o.exp_id for o in serial] == [o.exp_id for o in parallel]
        for s, p in zip(serial, parallel):
            assert not s.cached and not p.cached
            assert s.key == p.key
            if s.exp_id == "S1":
                assert s.result.passed == p.result.passed
                assert s.result.table.columns == p.result.table.columns
                for col in ("n_jobs", "tree_nodes", "events"):
                    assert s.result.table.column(col) == p.result.table.column(col)
            else:
                assert same_payload(s.result, p.result), f"{s.exp_id} diverged"

    def test_warm_cache_is_fast(self, tmp_path):
        """Acceptance: a warm-cache re-run completes in under 25% of the
        cold run's wall time."""
        from tests.test_experiments import QUICK_PARAMS

        ids = ["T1", "T2", "D1"]  # the slowest quick-size experiments
        params = {i: QUICK_PARAMS[i] for i in ids}
        started = perf_counter()
        run_experiments(ids, params_by_id=params, cache_dir=tmp_path)
        cold_wall = perf_counter() - started
        started = perf_counter()
        warm = run_experiments(ids, params_by_id=params, cache_dir=tmp_path)
        warm_wall = perf_counter() - started
        assert all(o.cached for o in warm)
        assert warm_wall < 0.25 * cold_wall, (
            f"warm {warm_wall:.3f}s vs cold {cold_wall:.3f}s"
        )


class TestManifests:
    def _load(self, manifest_dir, exp_id):
        import json

        return json.loads(manifest_path(manifest_dir, exp_id).read_text())

    def test_cold_sharded_run_records_every_trial(self, tmp_path):
        mdir = tmp_path / "manifests"
        out = run_experiments(
            ["F1"], cache_dir=tmp_path / "cache", manifest_dir=mdir
        )[0]
        doc = self._load(mdir, "F1")
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["exp_id"] == "F1"
        assert doc["key"] == out.key
        assert doc["passed"] == out.result.passed
        assert not doc["cached"]
        assert doc["trials_total"] == out.trials_total == len(doc["trials"])
        assert doc["trials_cached"] == 0
        for trial in doc["trials"]:
            assert not trial["cached"]
            assert trial["wall_seconds"] >= 0.0
            assert trial["cache_key"] and trial["digest"]
            assert isinstance(trial["params"], dict)
        assert len({t["trial_id"] for t in doc["trials"]}) == len(doc["trials"])

    def test_experiment_cache_hit_has_no_trial_rows(self, tmp_path):
        mdir = tmp_path / "manifests"
        run_experiments(["F1"], cache_dir=tmp_path / "cache")
        warm = run_experiments(
            ["F1"], cache_dir=tmp_path / "cache", manifest_dir=mdir
        )[0]
        assert warm.cached
        doc = self._load(mdir, "F1")
        assert doc["cached"]
        # resolved from the experiment entry: nothing finer to report
        assert doc["trials"] == []

    def test_trial_cache_replay_marks_trials_cached(self, tmp_path):
        cache = tmp_path / "cache"
        mdir = tmp_path / "manifests"
        first = run_experiments(["F1"], cache_dir=cache)[0]
        # drop the experiment entry, keep the trial entries: the re-run
        # replays trial-by-trial and the manifest shows every hit
        cache_path(cache, first.key).unlink()
        run_experiments(["F1"], cache_dir=cache, manifest_dir=mdir)
        doc = self._load(mdir, "F1")
        assert doc["trials"] and all(t["cached"] for t in doc["trials"])
        assert doc["trials_cached"] == len(doc["trials"])

    def test_whole_experiment_path_has_no_trial_rows(self, tmp_path):
        mdir = tmp_path / "manifests"
        run_experiments(
            ["F1"],
            cache_dir=tmp_path / "cache",
            shard_trials=False,
            manifest_dir=mdir,
        )
        doc = self._load(mdir, "F1")
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["trials"] == []

    def test_manifest_is_derived_not_consulted(self, tmp_path):
        """Deleting manifests never changes results or cache behaviour."""
        cache = tmp_path / "cache"
        mdir = tmp_path / "manifests"
        first = run_experiments(["F1"], cache_dir=cache, manifest_dir=mdir)[0]
        manifest_path(mdir, "F1").unlink()
        again = run_experiments(["F1"], cache_dir=cache, manifest_dir=mdir)[0]
        assert again.cached
        assert same_payload(first.result, again.result)
        assert manifest_path(mdir, "F1").exists()


class TestCountersThroughRunner:
    def test_counters_collected_and_cached(self, tmp_path):
        cold = run_experiments(
            ["F1"], cache_dir=tmp_path, collect_counters=True
        )[0]
        assert cold.counters is not None
        assert cold.counters.events_processed > 0
        warm = run_experiments(
            ["F1"], cache_dir=tmp_path, collect_counters=True
        )[0]
        assert warm.cached
        assert warm.counters is not None
        assert warm.counters.events_processed == cold.counters.events_processed

    def test_counters_off_by_default(self, tmp_path):
        out = run_experiments(["F1"], cache_dir=tmp_path)[0]
        assert out.counters is None

    def test_aggregate_and_summary(self, tmp_path):
        outcomes = run_experiments(
            FAST_IDS, cache_dir=tmp_path, collect_counters=True
        )
        merged = aggregate_counters(outcomes)
        assert merged is not None
        assert merged.runs == sum(o.counters.runs for o in outcomes)
        text = summary_table(outcomes).render()
        for eid in FAST_IDS:
            assert eid in text
        assert "PASS" in text

    def test_aggregate_none_without_counters(self):
        assert aggregate_counters([]) is None


def test_outcome_is_plain_data():
    out = RunnerOutcome(
        exp_id="T1", result=None, cached=False, wall_seconds=0.0, key="k"
    )
    assert out.counters is None
