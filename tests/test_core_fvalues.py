"""Unit tests for F(j,v) / F'(j,v) against hand-computed queue states."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment
from repro.core.fvalues import f_prime_value, f_top_value, f_value
from repro.network.builders import star_of_paths
from repro.sim.engine import Engine
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def capture_at_arrival(instance, fixed_map, probe_job_id, fn):
    """Run with FixedAssignment and evaluate ``fn(view, job)`` at the
    instant ``probe_job_id`` arrives (before insertion)."""
    captured = {}
    inner = FixedAssignment(fixed_map)

    class Probe:
        def assign(self, view, job, now):
            if job.id == probe_job_id:
                captured["value"] = fn(view, job)
            return inner.assign(view, job, now)

    Engine(instance, Probe()).run()
    return captured["value"]


class TestFTop:
    def test_empty_queue_gives_own_size(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=0, release=0.0, size=3.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        top = tree.root_children[0]
        val = capture_at_arrival(
            instance, {0: 2}, 0, lambda view, job: f_top_value(view, job, top)
        )
        assert val == 3.0  # only the self term

    def test_higher_priority_counts_remaining(self):
        # Job 0 (size 1) arrives at t=0, runs on the top router; job 1
        # (size 3) arrives at t=0.5 when job 0 has 0.5 remaining.
        tree = star_of_paths(1, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0), Job(id=1, release=0.5, size=3.0)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        leaf = tree.leaves[0]
        top = tree.root_children[0]
        val = capture_at_arrival(
            instance, {0: leaf, 1: leaf}, 1,
            lambda view, job: f_top_value(view, job, top),
        )
        # self (3) + remaining of higher-priority job 0 (0.5).
        assert val == pytest.approx(3.5)

    def test_lower_priority_charges_p_j(self):
        # Job 0 (size 5) holds the router; job 1 (size 1) arrives at 0.5.
        tree = star_of_paths(1, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=5.0), Job(id=1, release=0.5, size=1.0)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        leaf = tree.leaves[0]
        top = tree.root_children[0]
        val = capture_at_arrival(
            instance, {0: leaf, 1: leaf}, 1,
            lambda view, job: f_top_value(view, job, top),
        )
        # self (1) + p_j charged for delaying the bigger job (1).
        assert val == pytest.approx(2.0)

    def test_equal_size_earlier_arrival_outranks(self):
        tree = star_of_paths(1, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=2.0), Job(id=1, release=1.0, size=2.0)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        leaf = tree.leaves[0]
        top = tree.root_children[0]
        val = capture_at_arrival(
            instance, {0: leaf, 1: leaf}, 1,
            lambda view, job: f_top_value(view, job, top),
        )
        # Job 0 outranks (same size, earlier): remaining 1.0 counts; no
        # lower-priority term.
        assert val == pytest.approx(2.0 + 1.0)

    def test_f_value_routes_through_top(self):
        tree = star_of_paths(2, 2)
        jobs = JobSet([Job(id=0, release=0.0, size=1.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        leaf = tree.leaves[0]
        val = capture_at_arrival(
            instance, {0: leaf}, 0, lambda view, job: f_value(view, job, leaf)
        )
        assert val == 1.0


class TestFPrime:
    def test_empty_leaf_gives_own_leaf_size(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 4.0, 4: 2.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        val = capture_at_arrival(
            instance, {0: 2}, 0, lambda view, job: f_prime_value(view, job, 2)
        )
        assert val == 4.0

    def test_mixed_queue(self):
        # Jobs 0 and 1 both assigned to leaf 2 and still alive when job 2
        # arrives at t=0.2 (router still processing job 0).
        tree = star_of_paths(1, 1)
        leaf = tree.leaves[0]
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=1.0, leaf_sizes={leaf: 1.0}),
                Job(id=1, release=0.1, size=1.0, leaf_sizes={leaf: 8.0}),
                Job(id=2, release=0.2, size=1.0, leaf_sizes={leaf: 2.0}),
            ]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        val = capture_at_arrival(
            instance,
            {0: leaf, 1: leaf, 2: leaf},
            2,
            lambda view, job: f_prime_value(view, job, leaf),
        )
        # self p_{2,leaf}=2; job 0 outranks on leaf (1 < 2): full remaining
        # leaf work 1.0 (not yet reached the leaf); job 1 is lower priority
        # (8 > 2): charge 2 * (8/8) = 2.
        assert val == pytest.approx(2.0 + 1.0 + 2.0)
