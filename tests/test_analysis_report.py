"""Unit tests for EXPERIMENTS.md generation."""

from __future__ import annotations

from repro.analysis.report import render_experiments_markdown


class TestRenderReport:
    def test_subset_render_structure(self):
        text = render_experiments_markdown(["F2"])
        assert text.startswith("# EXPERIMENTS")
        assert "## F2 —" in text
        assert "```text" in text
        assert "**Verdict:** PASS" in text
        assert "**Claim (paper):**" in text

    def test_findings_section_present(self):
        text = render_experiments_markdown(["F2"])
        assert "Reproduction findings" in text
        assert "off-by-one" in text

    def test_multiple_ids_in_order(self):
        text = render_experiments_markdown(["F1", "F2"])
        assert text.index("## F1") < text.index("## F2")

    def test_metrics_inline(self):
        text = render_experiments_markdown(["F2"])
        assert "`trees_audited = 6`" in text
