"""Unit tests for size distributions and the (1+eps)-class machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workload.sizes import (
    bimodal_sizes,
    bounded_pareto_sizes,
    class_index,
    geometric_class_sizes,
    round_to_classes,
    uniform_sizes,
)


class TestDistributions:
    def test_uniform_in_range(self):
        s = uniform_sizes(500, 1.0, 3.0, rng=0)
        assert s.shape == (500,)
        assert s.min() >= 1.0 and s.max() <= 3.0

    def test_uniform_validation(self):
        with pytest.raises(WorkloadError):
            uniform_sizes(5, 0.0, 1.0)
        with pytest.raises(WorkloadError):
            uniform_sizes(5, 3.0, 1.0)
        with pytest.raises(WorkloadError):
            uniform_sizes(-1, 1.0, 2.0)

    def test_pareto_bounded(self):
        s = bounded_pareto_sizes(2000, alpha=1.5, low=1.0, high=50.0, rng=1)
        assert s.min() >= 1.0 and s.max() <= 50.0

    def test_pareto_heavy_tail(self):
        s = bounded_pareto_sizes(5000, alpha=1.1, low=1.0, high=1000.0, rng=2)
        # Mean well above median for a heavy tail.
        assert s.mean() > 2.0 * np.median(s)

    def test_pareto_validation(self):
        with pytest.raises(WorkloadError):
            bounded_pareto_sizes(5, alpha=0.0)
        with pytest.raises(WorkloadError):
            bounded_pareto_sizes(5, low=2.0, high=2.0)

    def test_bimodal_values(self):
        s = bimodal_sizes(1000, small=1.0, large=10.0, large_fraction=0.3, rng=3)
        assert set(np.unique(s)) == {1.0, 10.0}
        assert 0.2 < np.mean(s == 10.0) < 0.4

    def test_bimodal_extreme_fractions(self):
        assert np.all(bimodal_sizes(50, large_fraction=0.0, rng=0) == 1.0)
        assert np.all(bimodal_sizes(50, large_fraction=1.0, rng=0) == 50.0)

    def test_bimodal_validation(self):
        with pytest.raises(WorkloadError):
            bimodal_sizes(5, large_fraction=1.5)

    def test_geometric_classes_are_powers(self):
        eps = 0.5
        s = geometric_class_sizes(200, eps, num_classes=4, rng=4)
        for v in np.unique(s):
            class_index(float(v), eps)  # must not raise

    def test_geometric_validation(self):
        with pytest.raises(WorkloadError):
            geometric_class_sizes(5, 0.0, 3)
        with pytest.raises(WorkloadError):
            geometric_class_sizes(5, 0.5, 0)


class TestClassRounding:
    def test_rounds_up(self):
        s = round_to_classes([1.3, 2.0, 0.9], eps=1.0)
        assert np.all(s >= [1.3, 2.0, 0.9])
        assert np.allclose(s, [2.0, 2.0, 1.0])

    def test_exact_powers_unchanged(self):
        eps = 0.25
        vals = (1.0 + eps) ** np.arange(-3, 6)
        assert np.allclose(round_to_classes(vals, eps), vals)

    def test_at_most_one_class_up(self):
        eps = 0.3
        vals = np.array([0.7, 1.0, 5.3, 11.0])
        rounded = round_to_classes(vals, eps)
        assert np.all(rounded < vals * (1.0 + eps) * (1 + 1e-9))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            round_to_classes([1.0], eps=0.0)
        with pytest.raises(WorkloadError):
            round_to_classes([-1.0], eps=0.5)
        with pytest.raises(WorkloadError):
            round_to_classes([np.inf], eps=0.5)


class TestClassIndex:
    def test_round_trip(self):
        eps = 0.5
        for k in (-3, 0, 1, 7):
            assert class_index((1.0 + eps) ** k, eps) == k

    def test_non_power_rejected(self):
        with pytest.raises(WorkloadError, match="not a power"):
            class_index(1.3, eps=0.5)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            class_index(1.0, eps=0.0)
        with pytest.raises(WorkloadError):
            class_index(0.0, eps=0.5)

    def test_consistent_with_rounding(self):
        eps = 0.25
        vals = uniform_sizes(100, 0.5, 20.0, rng=5)
        rounded = round_to_classes(vals, eps)
        ks = [class_index(float(v), eps) for v in rounded]
        assert all(isinstance(k, int) for k in ks)
