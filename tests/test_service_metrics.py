"""Streaming metrics primitives: fixed-bin histograms, window stats and
the ``snapshot/v1`` document."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.service.metrics import (
    SNAPSHOT_SCHEMA,
    StreamingHistogram,
    StreamSnapshot,
    WindowStats,
    validate_snapshot,
)


class TestStreamingHistogram:
    def test_empty_summary(self):
        h = StreamingHistogram()
        s = h.summary()
        assert s["count"] == 0
        assert s["mean"] is None
        assert s["p50"] is None and s["p95"] is None and s["p99"] is None

    def test_exact_scalars(self):
        h = StreamingHistogram()
        for v in (1.0, 2.0, 3.0, 10.0):
            h.add(v)
        assert h.count == 4
        assert h.total == pytest.approx(16.0)
        assert h.min == 1.0 and h.max == 10.0
        assert h.summary()["mean"] == pytest.approx(4.0)

    def test_quantiles_conservative_and_clamped(self):
        """The streamed quantile is an upper bound (bin upper edge) and
        never leaves the observed [min, max] range."""
        rng = np.random.default_rng(7)
        values = rng.exponential(5.0, size=5000)
        h = StreamingHistogram()
        for v in values:
            h.add(float(v))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            est = h.quantile(q)
            assert est >= exact * 0.9  # upper-edge estimate can't be far below
            assert h.min <= est <= h.max
        # bins are log-spaced: relative error of the p50 stays small
        assert h.quantile(0.5) <= float(np.quantile(values, 0.5)) * 1.25

    def test_monotone_in_q(self):
        h = StreamingHistogram()
        for v in range(1, 200):
            h.add(float(v) / 10.0)
        assert h.quantile(0.5) <= h.quantile(0.95) <= h.quantile(0.99)

    def test_under_and_overflow_bins(self):
        h = StreamingHistogram(low=1.0, high=10.0, bins=4)
        h.add(0.01)  # below low -> underflow bin
        h.add(1e6)  # above high -> overflow bin
        assert h.count == 2
        assert h.min == pytest.approx(0.01)
        assert h.max == pytest.approx(1e6)
        # quantiles clamp to the observed extremes, not the bin range
        assert h.quantile(0.99) == pytest.approx(1e6)

    def test_rejects_bad_values(self):
        h = StreamingHistogram()
        with pytest.raises(ValueError):
            h.add(-1.0)
        with pytest.raises(ValueError):
            h.add(math.nan)
        with pytest.raises(ValueError):
            h.add(math.inf)
        with pytest.raises(ValueError):
            StreamingHistogram(low=0.0, high=1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_zero_goes_to_underflow(self):
        h = StreamingHistogram()
        h.add(0.0)
        assert h.count == 1
        assert h.quantile(0.5) == 0.0


class TestWindowStats:
    def _stats(self):
        return WindowStats(
            index=3,
            start=30.0,
            end=40.0,
            arrivals=5,
            completions=4,
            flow={"count": 4, "mean": 2.0, "min": 1.0, "max": 3.0,
                  "p50": 2.0, "p95": 3.0, "p99": 3.0},
            utilization={1: 0.5, 2: 0.25},
        )

    def test_rates(self):
        st = self._stats()
        assert st.length == pytest.approx(10.0)
        assert st.arrival_rate == pytest.approx(0.5)
        assert st.completion_rate == pytest.approx(0.4)

    def test_to_dict_stringifies_nodes(self):
        doc = self._stats().to_dict()
        assert doc["utilization"] == {"1": 0.5, "2": 0.25}
        assert doc["index"] == 3


class TestSnapshotSchema:
    def _snapshot(self):
        return StreamSnapshot(
            time=40.0,
            window=10.0,
            windows_closed=4,
            jobs_in_flight=2,
            arrivals_total=20,
            completions_total=18,
            flow={"count": 18, "mean": 2.0, "min": 0.5, "max": 9.0,
                  "p50": 1.5, "p95": 7.0, "p99": 8.5},
            utilization={1: 0.8},
            last_window=None,
        )

    def test_to_dict_round_trips_schema(self):
        doc = self._snapshot().to_dict()
        assert doc["schema"] == SNAPSHOT_SCHEMA
        assert validate_snapshot(doc) == []

    def test_validator_catches_missing_top_level_key(self):
        doc = self._snapshot().to_dict()
        del doc["arrival_rate"]
        problems = validate_snapshot(doc)
        assert problems and "arrival_rate" in problems[0]

    def test_validator_catches_flow_and_type_problems(self):
        doc = self._snapshot().to_dict()
        doc["flow"].pop("p95")
        doc["jobs_in_flight"] = -1
        assert len(validate_snapshot(doc)) >= 2
        assert validate_snapshot([1, 2, 3])  # not even a dict

    def test_validator_flags_wrong_schema_and_extra_keys(self):
        doc = self._snapshot().to_dict()
        doc["schema"] = "snapshot/v999"
        doc["bonus"] = 1
        problems = validate_snapshot(doc)
        assert any("schema" in p for p in problems)
        assert any("unknown keys" in p for p in problems)
