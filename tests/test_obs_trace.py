"""Unit tests for the structured trace recorder (``repro.obs.trace``).

The recorder must be a pure observer: a traced run and an untraced run
of the same instance produce identical schedules.  Its records must
agree with the engine's own ground truth — service spans with
``record_segments`` segments, points with the completion records, and
gauge busy time with total service performed.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.exceptions import SimulationError
from repro.obs.trace import (
    POINT_KINDS,
    SPAN_KINDS,
    SimulationTrace,
    TraceConfig,
    TraceRecorder,
)
from repro.sim.engine import simulate


def make_instance(n=20, seed=5):
    return api.make_instance(n_jobs=n, load=0.9, seed=seed)


def traced(instance, **config):
    recorder = TraceRecorder(TraceConfig(**config))
    result = simulate(
        instance,
        _policy(instance),
        record_segments=True,
        tracer=recorder,
    )
    return result


def _policy(instance):
    from repro.core.assignment import GreedyIdenticalAssignment

    return GreedyIdenticalAssignment(0.5)


class TestConfig:
    def test_rejects_nonpositive_interval(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="gauge_interval"):
                TraceConfig(gauge_interval=bad)

    def test_recorder_config_kwargs_exclusive(self):
        with pytest.raises(TypeError, match="not both"):
            TraceRecorder(TraceConfig(), record_points=False)

    def test_recorder_kwargs_shorthand(self):
        rec = TraceRecorder(gauge_interval=2.0, record_spans=False)
        assert rec.config.gauge_interval == 2.0
        assert not rec.config.record_spans


class TestObserverPurity:
    def test_traced_run_matches_untraced(self):
        inst = make_instance()
        plain = simulate(inst, _policy(inst))
        with_trace = traced(inst, gauge_interval=1.0)
        assert with_trace.total_flow_time() == plain.total_flow_time()
        assert with_trace.fractional_flow == plain.fractional_flow
        for jid, rec in plain.records.items():
            other = with_trace.records[jid]
            assert (other.completion, other.leaf) == (rec.completion, rec.leaf)

    def test_recorder_single_use(self):
        inst = make_instance(n=5)
        rec = TraceRecorder()
        simulate(inst, _policy(inst), tracer=rec)
        with pytest.raises(SimulationError, match="one Engine run"):
            simulate(inst, _policy(inst), tracer=rec)

    def test_unknown_gauge_nodes_rejected(self):
        inst = make_instance(n=5)
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0, gauge_nodes=(9999,)))
        with pytest.raises(SimulationError, match="unknown node ids"):
            simulate(inst, _policy(inst), tracer=rec)


class TestPoints:
    def test_lifecycle_counts(self):
        inst = make_instance()
        trace = traced(inst).trace
        n = len(inst.jobs)
        assert len(trace.points_of("arrival")) == n
        assert len(trace.points_of("finish")) == n
        # every job crosses at least one node, and completes every hop
        assert len(trace.points_of("available")) >= n
        assert len(trace.points_of("hop_complete")) == len(
            trace.points_of("available")
        )

    def test_points_sorted_and_kinds_valid(self):
        trace = traced(make_instance()).trace
        times = [(p.time, p.job_id) for p in trace.points]
        assert times == sorted(times)
        assert {p.kind for p in trace.points} <= set(POINT_KINDS)

    def test_arrival_and_finish_match_records(self):
        inst = make_instance()
        result = traced(inst)
        trace = result.trace
        finishes = {p.job_id: p for p in trace.points_of("finish")}
        for jid, rec in result.records.items():
            assert finishes[jid].time == pytest.approx(rec.completion)
            assert finishes[jid].node == rec.leaf
        arrivals = {p.job_id: p for p in trace.points_of("arrival")}
        for job in inst.jobs:
            assert arrivals[job.id].time == pytest.approx(job.release)


class TestSpans:
    def test_service_spans_equal_segments(self):
        result = traced(make_instance())
        got = sorted(
            (s.node, s.job_id, s.start, s.end)
            for s in result.trace.spans_of("service")
        )
        want = sorted(
            (seg.node, seg.job_id, seg.start, seg.end)
            for seg in result.segments
        )
        assert got == want

    def test_job_spans_cover_release_to_completion(self):
        result = traced(make_instance())
        jobs = {s.job_id: s for s in result.trace.spans_of("job")}
        assert set(jobs) == set(result.records)
        for jid, rec in result.records.items():
            span = jobs[jid]
            assert span.end == pytest.approx(rec.completion)
            assert span.node == rec.leaf
            assert span.duration == pytest.approx(rec.flow_time)

    def test_queue_waits_disjoint_from_service(self):
        trace = traced(make_instance()).trace
        service = {}
        for s in trace.spans_of("service"):
            service.setdefault((s.job_id, s.node), []).append(s)
        for w in trace.spans_of("queue_wait"):
            assert w.duration > 0
            for s in service.get((w.job_id, w.node), ()):
                overlap = min(w.end, s.end) - max(w.start, s.start)
                assert overlap <= 1e-9, (w, s)

    def test_spans_sorted_and_kinds_valid(self):
        trace = traced(make_instance()).trace
        starts = [s.start for s in trace.spans]
        assert starts == sorted(starts)
        assert {s.kind for s in trace.spans} <= set(SPAN_KINDS)

    def test_record_switches_trim_output(self):
        inst = make_instance(n=10)
        no_points = traced(inst, record_points=False).trace
        assert no_points.points == []
        # derived spans need points; only raw service spans remain
        assert no_points.spans_of("job") == []
        assert no_points.spans_of("queue_wait") == []
        assert no_points.spans_of("service")
        no_spans = traced(inst, record_spans=False).trace
        assert no_spans.spans_of("service") == []
        assert no_spans.spans_of("queue_wait") == []
        assert no_spans.spans_of("job")  # derived from points alone


class TestGauges:
    def test_busy_time_integrates_to_service_total(self):
        inst = make_instance()
        result = traced(inst, gauge_interval=1.5)
        trace = result.trace
        nodes = {g.node for g in trace.gauges}
        assert nodes  # gauges on
        for v in nodes:
            integrated = sum(g.busy_s for g in trace.gauges_for(v))
            assert integrated == pytest.approx(
                trace.node_busy_s(v), rel=1e-9, abs=1e-9
            )

    def test_sample_cadence_and_final_sample(self):
        result = traced(make_instance(), gauge_interval=2.0)
        trace = result.trace
        final = trace.meta["final_time"]
        times = sorted({g.time for g in trace.gauges})
        assert times[-1] == pytest.approx(final)
        for t in times[:-1]:
            assert t == pytest.approx(2.0 * round(t / 2.0))

    def test_gauge_nodes_filter(self):
        inst = make_instance(n=10)
        all_nodes = traced(inst, gauge_interval=1.0).trace
        some = sorted({g.node for g in all_nodes.gauges})[:2]
        rec = TraceRecorder(
            TraceConfig(gauge_interval=1.0, gauge_nodes=tuple(some))
        )
        result = simulate(inst, _policy(inst), tracer=rec)
        assert sorted({g.node for g in result.trace.gauges}) == some

    def test_utilization_bounded(self):
        trace = traced(make_instance(), gauge_interval=1.0).trace
        for g in trace.gauges:
            assert 0.0 <= g.utilization <= 1.0 + 1e-9
            assert g.queue_depth >= 0
            assert g.queue_volume >= 0.0
            assert g.through_count >= 0

    def test_gauges_off_by_default(self):
        trace = traced(make_instance(n=10)).trace
        assert trace.gauges == []


class TestAssembly:
    def test_meta_fields(self):
        inst = make_instance()
        trace = traced(inst, gauge_interval=1.0).trace
        assert trace.meta["instance"] == inst.name
        assert trace.meta["jobs"] == len(inst.jobs)
        assert trace.meta["nodes"] > 0
        assert trace.meta["gauge_interval"] == 1.0
        assert trace.meta["final_time"] > 0

    def test_len_counts_all_records(self):
        trace = traced(make_instance(), gauge_interval=1.0).trace
        assert len(trace) == len(trace.points) + len(trace.spans) + len(
            trace.gauges
        )

    def test_build_idempotent(self):
        inst = make_instance(n=5)
        rec = TraceRecorder()
        result = simulate(inst, _policy(inst), tracer=rec)
        assert rec.build(0.0) is result.trace  # same object, args ignored

    def test_counters_count_trace_records(self):
        inst = make_instance()
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        result = simulate(
            inst, _policy(inst), collect_counters=True, tracer=rec
        )
        assert result.counters.trace_records == len(result.trace)
        plain = simulate(inst, _policy(inst), collect_counters=True)
        assert plain.counters.trace_records == 0

    def test_queries(self):
        trace = traced(make_instance(), gauge_interval=1.0).trace
        jid = trace.points[0].job_id
        assert all(s.job_id == jid for s in trace.spans_for_job(jid))
        assert isinstance(trace, SimulationTrace)
