"""CLI coverage for the observability surface: ``repro trace`` (all
three formats plus ``--validate``), the ``run --profile`` failure path,
``bench --compare`` regression naming, and ``experiments --manifest``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestTraceSummary:
    def test_summary_format(self, capsys):
        code = main(["trace", "--jobs", "15", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace summary (per node)" in out
        assert "points" in out and "gauge samples" in out

    def test_policy_speed_and_fifo_flags(self, capsys):
        code = main(
            ["trace", "--jobs", "8", "--policy", "least-loaded",
             "--speed", "1.5", "--fifo"]
        )
        assert code == 0
        capsys.readouterr()

    def test_no_points_no_spans(self, capsys):
        code = main(
            ["trace", "--jobs", "8", "--no-points", "--no-spans",
             "--gauge-interval", "1.0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 points, 0 spans" in out


class TestTraceJsonl:
    def test_writes_valid_jsonl(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        code = main(
            ["trace", "--jobs", "15", "--format", "jsonl", "-o", str(path)]
        )
        err = capsys.readouterr().err
        assert code == 0
        assert "wrote" in err and "lines" in err
        from repro.obs.schema import validate_jsonl

        counts, errors = validate_jsonl(path)
        assert errors == []
        assert counts["meta"] == 1 and counts["point"] > 0

    def test_stdout_output(self, capsys):
        code = main(["trace", "--jobs", "5", "--format", "jsonl", "-o", "-"])
        out = capsys.readouterr().out
        assert code == 0
        first = json.loads(out.splitlines()[0])
        assert first["type"] == "meta"


class TestTraceChrome:
    def test_writes_chrome_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = main(
            ["trace", "--jobs", "15", "--format", "chrome", "-o", str(path)]
        )
        assert code == 0
        assert "events" in capsys.readouterr().err
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert {e["ph"] for e in doc["traceEvents"]} <= {"M", "X", "i", "C"}


class TestTraceValidate:
    def test_valid_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        main(["trace", "--jobs", "10", "--format", "jsonl", "-o", str(path)])
        capsys.readouterr()
        code = main(["trace", "--validate", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "valid trace" in out

    def test_invalid_file_exits_nonzero_naming_lines(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        main(["trace", "--jobs", "10", "--format", "jsonl", "-o", str(path)])
        capsys.readouterr()
        lines = path.read_text().splitlines()
        lines[2] = '{"type": "mystery"}'
        path.write_text("\n".join(lines) + "\n")
        code = main(["trace", "--validate", str(path)])
        err = capsys.readouterr().err
        assert code == 1
        assert "line 3" in err
        assert "INVALID" in err


class TestRunProfile:
    def test_profile_prints_stats(self, capsys):
        code = main(["run", "--jobs", "8", "--profile"])
        captured = capsys.readouterr()
        assert code == 0
        assert "cumulative" in captured.err  # cProfile table on stderr
        assert "total flow time" in captured.out

    def test_profile_emits_partial_stats_on_raise(self, capsys, monkeypatch):
        import repro.sim.engine as engine

        def boom(*args, **kwargs):
            raise RuntimeError("mid-run failure")

        monkeypatch.setattr(engine, "simulate", boom)
        with pytest.raises(RuntimeError, match="mid-run failure"):
            main(["run", "--jobs", "8", "--profile"])
        # the profiler was disabled and its partial stats still dumped
        assert "cumulative" in capsys.readouterr().err


class TestBenchCompare:
    def test_regression_exit_names_section(self, tmp_path, capsys):
        baseline = tmp_path / "bench.json"
        code = main(
            ["bench", "--sizes", "30", "--repeats", "1", "--no-policies",
             "--no-registry", "-o", str(baseline)]
        )
        assert code == 0
        capsys.readouterr()
        # inflate the baseline so the fresh run is a guaranteed regression
        doc = json.loads(baseline.read_text())
        for rows in doc["scaling"].values():  # per-backend sections (v3)
            for row in rows.values():
                row["events_per_s"] *= 1e6
        baseline.write_text(json.dumps(doc))
        code = main(
            ["bench", "--sizes", "30", "--repeats", "1", "--no-policies",
             "--no-registry", "-o", str(baseline), "--compare"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err
        assert "scaling:python/30" in captured.err  # section:backend/size
        assert "regression" in captured.err

    def test_clean_compare_passes(self, tmp_path, capsys):
        baseline = tmp_path / "bench.json"
        args = ["bench", "--sizes", "30", "--repeats", "1", "--no-policies",
                "--no-registry", "-o", str(baseline)]
        assert main(args) == 0
        capsys.readouterr()
        # a fresh run against its own numbers is within any sane band
        code = main(args + ["--compare"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no regressions" in out

    def test_missing_baseline_is_an_error(self, tmp_path, capsys):
        code = main(
            ["bench", "--sizes", "30", "--repeats", "1", "--no-policies",
             "--no-registry", "-o", str(tmp_path / "absent.json"),
             "--compare"]
        )
        assert code == 1
        assert "cannot read baseline" in capsys.readouterr().err


class TestExperimentsManifest:
    def test_manifest_written_per_experiment(self, tmp_path, capsys):
        manifest_dir = tmp_path / "manifests"
        code = main(
            ["experiments", "F1", "--cache-dir", str(tmp_path / "cache"),
             "--manifest", str(manifest_dir), "--summary-only"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trial manifest" in out
        doc = json.loads((manifest_dir / "F1.manifest.json").read_text())
        assert doc["schema"] == "run-manifest/v1"
        assert doc["exp_id"] == "F1"
        assert doc["trials_total"] == len(doc["trials"])
        for trial in doc["trials"]:
            assert {"trial_id", "params", "digest", "cache_key", "cached",
                    "wall_seconds"} <= set(trial)
