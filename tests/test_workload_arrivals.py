"""Unit tests for arrival-process generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workload.arrivals import (
    adversarial_bursts,
    batch_arrivals,
    bursty_arrivals,
    deterministic_arrivals,
    poisson_arrivals,
)


class TestPoisson:
    def test_count_and_monotone(self):
        t = poisson_arrivals(100, rate=2.0, rng=0)
        assert t.shape == (100,)
        assert np.all(np.diff(t) >= 0)
        assert np.all(t > 0)

    def test_rate_controls_mean_gap(self):
        t = poisson_arrivals(5000, rate=4.0, rng=1)
        assert np.mean(np.diff(t)) == pytest.approx(0.25, rel=0.1)

    def test_deterministic_under_seed(self):
        assert np.array_equal(
            poisson_arrivals(10, 1.0, rng=3), poisson_arrivals(10, 1.0, rng=3)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(-1, 1.0)
        with pytest.raises(WorkloadError):
            poisson_arrivals(5, 0.0)

    def test_zero_jobs(self):
        assert poisson_arrivals(0, 1.0, rng=0).shape == (0,)


class TestDeterministic:
    def test_spacing(self):
        t = deterministic_arrivals(4, spacing=2.0, start=1.0)
        assert np.allclose(t, [1, 3, 5, 7])

    def test_zero_spacing_batch(self):
        t = deterministic_arrivals(3, spacing=0.0)
        assert np.allclose(t, [0, 0, 0])

    def test_validation(self):
        with pytest.raises(WorkloadError):
            deterministic_arrivals(3, spacing=-1.0)
        with pytest.raises(WorkloadError):
            deterministic_arrivals(3, spacing=1.0, start=-1.0)


class TestBatch:
    def test_expansion(self):
        t = batch_arrivals([2, 3], [0.0, 5.0])
        assert np.allclose(t, [0, 0, 5, 5, 5])

    def test_non_decreasing_required(self):
        with pytest.raises(WorkloadError, match="non-decreasing"):
            batch_arrivals([1, 1], [5.0, 1.0])

    def test_length_mismatch(self):
        with pytest.raises(WorkloadError, match="length"):
            batch_arrivals([1], [0.0, 1.0])

    def test_negative_size(self):
        with pytest.raises(WorkloadError, match="batch size"):
            batch_arrivals([-1], [0.0])


class TestBursty:
    def test_shape_and_monotone(self):
        t = bursty_arrivals(200, burst_rate=5.0, idle_rate=0.2, mean_burst=10, rng=0)
        assert t.shape == (200,)
        assert np.all(np.diff(t) >= 0)

    def test_burstier_than_poisson(self):
        """The on/off process should have higher gap variance than a
        Poisson process of the same mean rate."""
        t = bursty_arrivals(3000, burst_rate=10.0, idle_rate=0.1, mean_burst=20, rng=2)
        gaps = np.diff(t)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5  # exponential gaps would give ~1

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bursty_arrivals(10, 0.0, 1.0, 5)
        with pytest.raises(WorkloadError):
            bursty_arrivals(10, 1.0, 1.0, 0)


class TestAdversarialBursts:
    def test_zero_jitter_simultaneous(self):
        t = adversarial_bursts(3, 4, gap=10.0)
        assert t.shape == (12,)
        assert np.allclose(t[:4], 0.0)
        assert np.allclose(t[4:8], 10.0)

    def test_jitter_spreads_within_window(self):
        t = adversarial_bursts(2, 5, gap=10.0, jitter=1.0, rng=0)
        assert np.all(t[:5] <= 1.0)
        assert np.all((t[5:] >= 10.0) & (t[5:] <= 11.0))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            adversarial_bursts(-1, 1, 1.0)
        with pytest.raises(WorkloadError):
            adversarial_bursts(1, 1, -1.0)
