"""Unit tests for arrival-process generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workload.arrivals import (
    adversarial_bursts,
    batch_arrivals,
    bursty_arrivals,
    deterministic_arrivals,
    poisson_arrivals,
)


class TestPoisson:
    def test_count_and_monotone(self):
        t = poisson_arrivals(100, rate=2.0, rng=0)
        assert t.shape == (100,)
        assert np.all(np.diff(t) >= 0)
        assert np.all(t > 0)

    def test_rate_controls_mean_gap(self):
        t = poisson_arrivals(5000, rate=4.0, rng=1)
        assert np.mean(np.diff(t)) == pytest.approx(0.25, rel=0.1)

    def test_deterministic_under_seed(self):
        assert np.array_equal(
            poisson_arrivals(10, 1.0, rng=3), poisson_arrivals(10, 1.0, rng=3)
        )

    def test_validation(self):
        with pytest.raises(WorkloadError):
            poisson_arrivals(-1, 1.0)
        with pytest.raises(WorkloadError):
            poisson_arrivals(5, 0.0)

    def test_zero_jobs(self):
        assert poisson_arrivals(0, 1.0, rng=0).shape == (0,)


class TestDeterministic:
    def test_spacing(self):
        t = deterministic_arrivals(4, spacing=2.0, start=1.0)
        assert np.allclose(t, [1, 3, 5, 7])

    def test_zero_spacing_batch(self):
        t = deterministic_arrivals(3, spacing=0.0)
        assert np.allclose(t, [0, 0, 0])

    def test_validation(self):
        with pytest.raises(WorkloadError):
            deterministic_arrivals(3, spacing=-1.0)
        with pytest.raises(WorkloadError):
            deterministic_arrivals(3, spacing=1.0, start=-1.0)


class TestBatch:
    def test_expansion(self):
        t = batch_arrivals([2, 3], [0.0, 5.0])
        assert np.allclose(t, [0, 0, 5, 5, 5])

    def test_non_decreasing_required(self):
        with pytest.raises(WorkloadError, match="non-decreasing"):
            batch_arrivals([1, 1], [5.0, 1.0])

    def test_length_mismatch(self):
        with pytest.raises(WorkloadError, match="length"):
            batch_arrivals([1], [0.0, 1.0])

    def test_negative_size(self):
        with pytest.raises(WorkloadError, match="batch size"):
            batch_arrivals([-1], [0.0])


class TestBursty:
    def test_shape_and_monotone(self):
        t = bursty_arrivals(200, burst_rate=5.0, idle_rate=0.2, mean_burst=10, rng=0)
        assert t.shape == (200,)
        assert np.all(np.diff(t) >= 0)

    def test_burstier_than_poisson(self):
        """The on/off process should have higher gap variance than a
        Poisson process of the same mean rate."""
        t = bursty_arrivals(3000, burst_rate=10.0, idle_rate=0.1, mean_burst=20, rng=2)
        gaps = np.diff(t)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5  # exponential gaps would give ~1

    def test_validation(self):
        with pytest.raises(WorkloadError):
            bursty_arrivals(10, 0.0, 1.0, 5)
        with pytest.raises(WorkloadError):
            bursty_arrivals(10, 1.0, 1.0, 0)


class TestAdversarialBursts:
    def test_zero_jitter_simultaneous(self):
        t = adversarial_bursts(3, 4, gap=10.0)
        assert t.shape == (12,)
        assert np.allclose(t[:4], 0.0)
        assert np.allclose(t[4:8], 10.0)

    def test_jitter_spreads_within_window(self):
        t = adversarial_bursts(2, 5, gap=10.0, jitter=1.0, rng=0)
        assert np.all(t[:5] <= 1.0)
        assert np.all((t[5:] >= 10.0) & (t[5:] <= 11.0))

    def test_validation(self):
        with pytest.raises(WorkloadError):
            adversarial_bursts(-1, 1, 1.0)
        with pytest.raises(WorkloadError):
            adversarial_bursts(1, 1, -1.0)


class TestStreamGenerators:
    """The lazy stream counterparts feeding the open-system mode."""

    def test_poisson_process_prefix_matches_batch(self):
        from itertools import islice

        from repro.workload.arrivals import poisson_process

        stream = list(islice(poisson_process(2.0, rng=7), 50))
        batch = poisson_arrivals(50, 2.0, rng=7)
        assert np.allclose(stream, batch)

    def test_poisson_process_chunk_is_not_semantic(self):
        from itertools import islice

        from repro.workload.arrivals import poisson_process

        a = list(islice(poisson_process(1.5, rng=3, chunk=1), 40))
        b = list(islice(poisson_process(1.5, rng=3, chunk=1024), 40))
        assert a == b

    def test_poisson_process_start_offset(self):
        from itertools import islice

        from repro.workload.arrivals import poisson_process

        base = list(islice(poisson_process(1.0, rng=5), 10))
        shifted = list(islice(poisson_process(1.0, rng=5, start=100.0), 10))
        assert np.allclose(np.array(shifted) - 100.0, base)

    def test_poisson_process_validation(self):
        from repro.workload.arrivals import poisson_process

        with pytest.raises(WorkloadError):
            next(poisson_process(0.0))
        with pytest.raises(WorkloadError):
            next(poisson_process(1.0, chunk=0))

    def test_uniform_size_stream_range_and_determinism(self):
        from itertools import islice

        from repro.workload.arrivals import uniform_size_stream

        a = list(islice(uniform_size_stream(2.0, 3.0, rng=1), 200))
        b = list(islice(uniform_size_stream(2.0, 3.0, rng=1), 200))
        assert a == b
        assert all(2.0 <= x <= 3.0 for x in a)
        with pytest.raises(WorkloadError):
            next(uniform_size_stream(0.0, 1.0))

    def test_job_stream_zips_and_truncates(self):
        from repro.workload.arrivals import job_stream

        jobs = list(job_stream([0.0, 1.0, 2.0], [1.0, 2.0, 3.0], limit=2))
        assert [j.id for j in jobs] == [0, 1]
        assert jobs[1].release == 1.0 and jobs[1].size == 2.0

    def test_job_stream_scalar_size_and_start_id(self):
        from repro.workload.arrivals import job_stream

        jobs = list(job_stream([0.0, 0.5], 2.5, start_id=10))
        assert [j.id for j in jobs] == [10, 11]
        assert all(j.size == 2.5 for j in jobs)

    def test_job_stream_is_lazy_over_infinite_sources(self):
        from itertools import count, islice

        from repro.workload.arrivals import job_stream

        stream = job_stream((float(t) for t in count()), 1.0)
        first = list(islice(stream, 5))
        assert [j.release for j in first] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_job_stream_validation(self):
        from repro.workload.arrivals import job_stream

        with pytest.raises(WorkloadError):
            list(job_stream([0.0], 1.0, limit=-1))
