"""Unit tests for the broomstick reduction (Section 3.3)."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.network.broomstick import reduce_to_broomstick
from repro.network.builders import (
    caterpillar_tree,
    datacenter_tree,
    figure1_tree,
    kary_tree,
    random_tree,
    star_of_paths,
)

ALL_TREES = {
    "kary23": kary_tree(2, 3),
    "kary32": kary_tree(3, 2),
    "caterpillar": caterpillar_tree(4, 2),
    "paths": star_of_paths(3, 2),
    "fig1": figure1_tree(),
    "random": random_tree(20, rng=5),
    "dc": datacenter_tree(2, 2, 2),
}


@pytest.fixture(params=sorted(ALL_TREES))
def tree(request):
    return ALL_TREES[request.param]


class TestReductionStructure:
    def test_image_is_broomstick(self, tree):
        assert reduce_to_broomstick(tree).broomstick.is_broomstick()

    def test_leaf_bijection(self, tree):
        red = reduce_to_broomstick(tree)
        assert set(red.leaf_map) == set(tree.leaves)
        assert sorted(red.leaf_map.values()) == sorted(red.broomstick.leaves)
        assert len(set(red.leaf_map.values())) == tree.num_leaves

    def test_depth_shift_exactly_two(self, tree):
        red = reduce_to_broomstick(tree)
        for leaf in tree.leaves:
            assert red.depth_shift(leaf) == 2

    def test_root_children_correspond(self, tree):
        red = reduce_to_broomstick(tree)
        assert set(red.top_map) == set(tree.root_children)
        assert sorted(red.top_map.values()) == sorted(red.broomstick.root_children)

    def test_handles_cover_deepest_leaf(self, tree):
        red = reduce_to_broomstick(tree)
        for v0 in tree.root_children:
            ell = max(
                tree.depth(leaf) - tree.depth(v0) for leaf in tree.leaves_under(v0)
            )
            handle = red.handle_of[red.top_map[v0]]
            assert len(handle) == ell + 2

    def test_leaf_attaches_at_shifted_position(self, tree):
        red = reduce_to_broomstick(tree)
        bs = red.broomstick
        for leaf in tree.leaves:
            v0 = tree.top_router(leaf)
            ell_prime = tree.depth(leaf) - tree.depth(v0)
            handle = red.handle_of[red.top_map[v0]]
            attach = bs.parent(red.leaf_map[leaf])
            assert attach == handle[ell_prime + 1]

    def test_subtree_membership_preserved(self, tree):
        red = reduce_to_broomstick(tree)
        bs = red.broomstick
        for leaf in tree.leaves:
            assert bs.top_router(red.leaf_map[leaf]) == red.top_map[tree.top_router(leaf)]

    def test_inverse_map(self, tree):
        red = reduce_to_broomstick(tree)
        inv = red.inverse_leaf_map
        for a, b in red.leaf_map.items():
            assert inv[b] == a


class TestReductionMisc:
    def test_depth_shift_rejects_non_leaf(self):
        tree = kary_tree(2, 2)
        red = reduce_to_broomstick(tree)
        with pytest.raises(TopologyError, match="not a leaf"):
            red.depth_shift(tree.root)

    def test_idempotent_shape_on_broomstick_input(self):
        from repro.network.builders import broomstick_tree

        t = broomstick_tree(2, 3, 1)
        red = reduce_to_broomstick(t)
        # Reducing a broomstick still adds the +2 shift (the construction
        # is uniform), but the image remains a broomstick with equal leaf
        # count.
        assert red.broomstick.is_broomstick()
        assert red.broomstick.num_leaves == t.num_leaves

    def test_names_describe_origin(self):
        tree = kary_tree(2, 2)
        red = reduce_to_broomstick(tree)
        labels = [red.broomstick.node(v).name for v in red.broomstick.leaves]
        assert all(name.startswith("leaf'") for name in labels)
