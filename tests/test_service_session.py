"""The open-system :class:`StreamSession`: batch parity, windowing,
bounded state under eviction, and the facade's resolution/error paths."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro import api
from repro.exceptions import SimulationError
from repro.service import StreamSession
from repro.sim.backends import available_backends
from repro.workload.arrivals import job_stream, poisson_process, uniform_size_stream


def _instance(n_jobs=200, seed=11, **kw):
    return api.make_instance(n_jobs=n_jobs, load=0.95, seed=seed, **kw)


class TestBatchParity:
    @pytest.mark.parametrize("backend", available_backends())
    def test_finite_stream_bit_identical_to_batch(self, backend):
        """A finite stream through the session completes every job at
        *exactly* the batch ``simulate()`` time, on every backend
        (backends are fuzz-pinned bit-identical to each other)."""
        inst = _instance()
        batch = api.simulate(instance=inst, policy="greedy", backend=backend)
        done: dict[int, float] = {}
        sess = api.open_system(
            instance=inst,
            policy="greedy",
            window=5.0,
            on_finish=lambda r: done.__setitem__(r.job_id, r.completion),
        )
        sess.drain()
        assert len(done) == len(inst.jobs)
        for jid, rec in batch.records.items():
            assert done[jid] == rec.completion  # bit-exact, no approx

    def test_step_slicing_does_not_change_the_schedule(self):
        """Stepping in arbitrary slices is bit-identical to draining in
        window-sized steps — the loop is re-enterable at any time."""
        inst = _instance(seed=5)
        ref: dict[int, float] = {}
        s1 = api.open_system(
            instance=inst, window=7.0,
            on_finish=lambda r: ref.__setitem__(r.job_id, r.completion),
        )
        s1.drain()
        got: dict[int, float] = {}
        s2 = api.open_system(
            instance=inst, window=7.0,
            on_finish=lambda r: got.__setitem__(r.job_id, r.completion),
        )
        t = 0.0
        while not s2.idle():
            t += 3.3  # deliberately incommensurate with the window
            s2.step(until=t)
        assert got == ref

    def test_evict_false_keeps_batch_equivalent_records(self):
        inst = _instance(n_jobs=80, seed=3)
        batch = api.simulate(instance=inst, policy="greedy")
        sess = api.open_system(instance=inst, policy="greedy", evict=False)
        sess.drain()
        result = sess.close()
        assert set(result.records) == set(batch.records)
        for jid, rec in batch.records.items():
            assert result.records[jid].completion == rec.completion

    def test_unrelated_setting_parity(self):
        inst = _instance(n_jobs=60, seed=9, unrelated=True)
        batch = api.simulate(instance=inst, policy="greedy")
        done: dict[int, float] = {}
        sess = api.open_system(
            instance=inst,
            on_finish=lambda r: done.__setitem__(r.job_id, r.completion),
        )
        sess.drain()
        for jid, rec in batch.records.items():
            assert done[jid] == rec.completion


class TestWindowing:
    def test_window_counts_partition_the_run(self):
        inst = _instance(n_jobs=150, seed=2)
        sess = api.open_system(instance=inst, window=4.0, keep_windows=10_000)
        sess.drain()
        snap = sess.snapshot()
        closed = sess.windows
        assert sum(w.arrivals for w in closed) <= snap.arrivals_total
        assert snap.arrivals_total == 150
        assert snap.completions_total == 150
        assert snap.jobs_in_flight == 0
        # every closed window spans exactly one window length
        for w in closed:
            assert w.length == pytest.approx(4.0)
            assert w.end == pytest.approx((w.index + 1) * 4.0)

    def test_idle_windows_report_zero_utilization(self):
        inst = _instance(n_jobs=5, seed=1)
        sess = api.open_system(instance=inst, window=2.0, keep_windows=10_000)
        sess.drain()
        last_completion = max(
            w.end for w in sess.windows if w.completions
        )
        sess.step(until=last_completion + 10.0)
        tail = [w for w in sess.windows if w.start >= last_completion]
        assert tail, "stepping past the end must close idle windows"
        for w in tail:
            assert w.arrivals == 0 and w.completions == 0
            assert all(u == 0.0 for u in w.utilization.values())

    def test_utilization_bounded_and_busy_where_expected(self):
        inst = _instance(n_jobs=200, seed=4)
        sess = api.open_system(instance=inst, window=5.0)
        sess.step()
        sess.step()
        for w in sess.windows:
            for u in w.utilization.values():
                assert 0.0 <= u <= 1.0 + 1e-9
        snap = sess.snapshot()
        assert any(u > 0.0 for u in snap.utilization.values())

    def test_keep_windows_bounds_retention(self):
        inst = _instance(n_jobs=300, seed=6)
        sess = api.open_system(instance=inst, window=2.0, keep_windows=4)
        sess.drain()
        assert len(sess.windows) == 4
        assert sess.last_window is sess.windows[-1]
        # retained windows are the most recent, contiguous, oldest first
        idxs = [w.index for w in sess.windows]
        assert idxs == sorted(idxs)
        assert idxs[-1] == sess.snapshot().windows_closed - 1

    def test_infinite_source_streams_with_bounded_inflight(self):
        tree = api.build_tree("kary", branching=2, depth=2)
        jobs = job_stream(
            poisson_process(1.0, np.random.default_rng(8)),
            uniform_size_stream(rng=np.random.default_rng(9)),
        )
        sess = api.open_system(tree=tree, arrivals=jobs, window=10.0)
        sess.step(until=200.0)
        snap = sess.snapshot()
        assert snap.windows_closed == 20
        assert snap.arrivals_total > 100
        assert snap.completions_total > 0
        assert not sess.idle()  # the source never exhausts


class TestLifecycleAndErrors:
    def test_close_is_idempotent_and_freezes_the_session(self):
        inst = _instance(n_jobs=30)
        sess = api.open_system(instance=inst)
        sess.drain()
        result = sess.close()
        assert sess.close() is result
        assert sess.closed
        with pytest.raises(SimulationError):
            sess.step()

    def test_close_reports_retirement(self):
        inst = _instance(n_jobs=120, seed=13)
        sess = api.open_system(instance=inst, window=3.0)
        sess.drain()
        result = sess.close()
        # finished jobs were evicted; the trace records what was retired
        assert not result.records
        assert result.trace.meta["retired"]["gauges"] > 0

    def test_step_backwards_rejected(self):
        sess = api.open_system(instance=_instance(n_jobs=20))
        sess.step(until=30.0)
        with pytest.raises(SimulationError):
            sess.step(until=1.0)

    def test_bad_window_rejected(self):
        inst = _instance(n_jobs=5)
        with pytest.raises(SimulationError):
            api.open_system(instance=inst, window=0.0)
        with pytest.raises(SimulationError):
            api.open_system(instance=inst, keep_windows=0)

    def test_context_argument_validation(self):
        inst = _instance(n_jobs=5)
        tree = api.build_tree("kary", branching=2, depth=2)
        with pytest.raises(SimulationError):
            api.open_system()  # no context at all
        with pytest.raises(SimulationError):
            api.open_system(instance=inst, tree=tree)  # both
        with pytest.raises(SimulationError):
            api.open_system(tree=tree)  # bare tree needs arrivals
        with pytest.raises(SimulationError):
            api.open_system(instance=inst, speed=2.0,
                            speeds=repro.SpeedProfile.uniform(2.0))

    def test_keyword_only_surface(self):
        with pytest.raises(TypeError):
            api.open_system(_instance(n_jobs=5))  # positional rejected

    def test_non_python_backend_warns_and_streams_anyway(self):
        inst = _instance(n_jobs=10)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            sess = api.open_system(instance=inst, backend="numpy")
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        sess.drain()
        assert sess.snapshot().completions_total == 10

    def test_session_constructor_is_the_facade_return_type(self):
        sess = api.open_system(instance=_instance(n_jobs=5))
        assert isinstance(sess, StreamSession)
