"""The backend registry: selection, dispatch, fallback, and
cross-backend parity on a realistic workload.

The bit-level schedule equivalence of the numpy kernel is enforced
case-by-case by the differential fuzzer (``repro fuzz --backends``) and
by the engine suites, which run on both backends; this module covers the
*dispatch* layer (``repro.sim.backends.simulate`` / ``repro.api``) and
one seeded end-to-end parity check on the S1 benchmark workload.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.analysis.experiments.workloads import identical_instance
from repro.core.assignment import GreedyIdenticalAssignment
from repro.exceptions import SimulationError
from repro.network.builders import datacenter_tree
from repro.sim import backends
from repro.sim.backends import c_build
from repro.sim.backends.numpy_backend import NumpyEngine
from repro.sim.speed import SpeedProfile

_C_OK, _C_REASON = c_build.availability()
needs_c = pytest.mark.skipif(
    not _C_OK, reason=f"c backend unavailable: {_C_REASON}"
)


def _s1_instance(n=160):
    tree = datacenter_tree(3, 3, 4)
    return identical_instance(tree, n, load=0.85, seed=12)


def _run(backend, **kwargs):
    return backends.simulate(
        _s1_instance(),
        GreedyIdenticalAssignment(0.25),
        backend=backend,
        speeds=SpeedProfile.uniform(1.5),
        **kwargs,
    )


class TestCrossBackendParity:
    def test_s1_schedules_identical(self):
        a = _run("python", record_segments=True)
        b = _run("numpy", record_segments=True)
        assert set(a.records) == set(b.records)
        for jid, ra in a.records.items():
            rb = b.records[jid]
            assert rb.leaf == ra.leaf
            assert rb.path == ra.path
            assert rb.completed_at == ra.completed_at
            assert rb.available_at == ra.available_at
        assert a.total_flow_time() == b.total_flow_time()
        # Segment multisets match; the kernel emits them in per-node
        # batches and canonicalises by (start, end, node, job), so only
        # the order may differ from the engine's event order.
        key = lambda s: (s.start, s.end, s.node, s.job_id)  # noqa: E731
        assert sorted(a.segments, key=key) == sorted(b.segments, key=key)

    def test_api_facade_backend_keyword(self):
        inst = _s1_instance(60)
        a = api.simulate(instance=inst, policy="greedy", eps=0.25, backend="python")
        b = api.simulate(instance=inst, policy="greedy", eps=0.25, backend="numpy")
        assert {j: r.completion for j, r in a.records.items()} == {
            j: r.completion for j, r in b.records.items()
        }

    @needs_c
    def test_c_matches_numpy_bit_for_bit(self):
        a = _run("numpy")
        b = _run("c")
        assert set(a.records) == set(b.records)
        for jid, ra in a.records.items():
            rb = b.records[jid]
            assert rb.leaf == ra.leaf
            assert rb.path == ra.path
            assert rb.completed_at == ra.completed_at
            assert rb.available_at == ra.available_at
        assert a.num_events == b.num_events
        assert a.total_flow_time() == b.total_flow_time()
        assert a.fractional_flow == b.fractional_flow

    @needs_c
    def test_api_facade_c_backend(self):
        inst = _s1_instance(60)
        a = api.simulate(instance=inst, policy="greedy", eps=0.25, backend="numpy")
        b = api.simulate(instance=inst, policy="greedy", eps=0.25, backend="c")
        assert {j: r.completion for j, r in a.records.items()} == {
            j: r.completion for j, r in b.records.items()
        }


class TestSelection:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        assert backends.resolve_backend("python") == "python"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        assert backends.resolve_backend(None) == "numpy"
        monkeypatch.delenv(backends.ENV_VAR)
        assert backends.resolve_backend(None) == "python"

    def test_empty_env_means_python(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "")
        assert backends.resolve_backend(None) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            backends.resolve_backend("fortran")
        with pytest.raises(SimulationError, match="unknown backend"):
            _run("fortran")

    def test_env_selects_numpy_end_to_end(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        a = _run(None)
        b = _run("python")
        assert {j: r.completion for j, r in a.records.items()} == {
            j: r.completion for j, r in b.records.items()
        }

    @needs_c
    def test_env_selects_c_end_to_end(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "c")
        a = _run(None)
        b = _run("python")
        assert {j: r.completion for j, r in a.records.items()} == {
            j: r.completion for j, r in b.records.items()
        }

    def test_backend_available_registry(self):
        assert backends.backend_available("python") == (True, None)
        assert backends.backend_available("numpy") == (True, None)
        ok, reason = backends.backend_available("c")
        assert ok == (reason is None)
        avail = backends.available_backends()
        assert "python" in avail and "numpy" in avail
        assert ("c" in avail) == ok
        with pytest.raises(SimulationError, match="unknown backend"):
            backends.backend_available("fortran")


class TestFallback:
    """Options defined in terms of the global event order silently run
    on the python engine, even under ``backend="numpy"``."""

    def test_observer_falls_back(self):
        seen = []
        result = _run("numpy", observer=lambda view, kind, subject: seen.append(kind))
        assert seen  # the numpy kernel has no observer hook at all
        assert len(result.records) == 160

    def test_until_falls_back(self):
        result = _run("numpy", until=1.0)
        assert len(result.records) < 160  # genuinely bounded, so python ran

    def test_counters_fall_back(self):
        result = _run("numpy", collect_counters=True)
        assert result.counters is not None
        assert result.counters.arrivals == 160

    def test_plain_numpy_call_does_not_fall_back(self):
        result = _run("numpy")
        assert result.counters is None
        assert len(result.records) == 160

    @needs_c
    def test_c_observer_falls_back_to_python(self):
        seen = []
        result = _run("c", observer=lambda view, kind, subject: seen.append(kind))
        assert seen  # the compiled kernel has no observer hook either
        assert len(result.records) == 160

    @needs_c
    def test_c_record_segments_falls_back_to_numpy(self):
        # The C kernel never records segments; simulate_c hands the call
        # to the numpy backend, which does.
        result = _run("c", record_segments=True)
        assert result.segments
        ref = _run("python", record_segments=True)
        key = lambda s: (s.start, s.end, s.node, s.job_id)  # noqa: E731
        assert sorted(result.segments, key=key) == sorted(ref.segments, key=key)

    @needs_c
    def test_c_inapplicable_policy_falls_back_to_numpy(self):
        # A policy the kernel has no native or static plan for (stateful
        # in a way it cannot replay) runs on the numpy backend instead.
        class Adversarial:
            def assign(self, view, job, now):
                # depends on live queue state -> not statically plannable
                return min(
                    view.tree.leaves, key=lambda v: (view.volume_through(v), v)
                )

        inst = _s1_instance(40)
        a = backends.simulate(inst, Adversarial(), backend="c")
        b = backends.simulate(inst, Adversarial(), backend="numpy")
        assert {j: r.completed_at for j, r in a.records.items()} == {
            j: r.completed_at for j, r in b.records.items()
        }


class TestCUnavailable:
    """Behaviour with compiler discovery disabled: explicit requests
    raise, environment selection degrades with a warning."""

    @pytest.fixture()
    def no_compiler(self, monkeypatch):
        monkeypatch.setattr(c_build, "find_compiler", lambda: None)
        c_build._reset_probe()
        yield
        c_build._reset_probe()  # forget the "unavailable" verdict

    def test_availability_reports_reason(self, no_compiler):
        ok, reason = c_build.availability()
        assert not ok
        assert "no C compiler" in reason

    def test_explicit_request_raises(self, no_compiler):
        with pytest.raises(SimulationError, match="backend 'c' is unavailable"):
            _run("c")

    def test_env_selection_warns_and_falls_back(self, no_compiler, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "c")
        with pytest.warns(RuntimeWarning, match="falling back to the python"):
            result = _run(None)
        assert len(result.records) == 160

    def test_registry_excludes_c(self, no_compiler):
        assert backends.backend_available("c")[0] is False
        assert "c" not in backends.available_backends()

    def test_no_ckernel_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CKERNEL", "1")
        c_build._reset_probe()
        try:
            assert c_build.find_compiler() is None
            ok, _ = c_build.availability()
            assert not ok
        finally:
            c_build._reset_probe()


class TestBuildCache:
    """The compiled-library cache can never serve a stale binary: the
    slot name hashes the source text, compiler version, flags and ABI."""

    @needs_c
    def test_source_edit_forces_rebuild(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CKERNEL_CACHE", str(tmp_path))
        lib1 = c_build.build_library()
        assert lib1.exists() and lib1.parent == tmp_path
        # Same source -> same slot, no rebuild.
        assert c_build.build_library() == lib1
        # Any source edit -> different key -> fresh compile.
        edited = c_build.source_path().read_text() + "\n/* edited */\n"
        lib2 = c_build.build_library(source_text=edited)
        assert lib2 != lib1
        assert lib2.exists()

    def test_cache_key_covers_all_inputs(self):
        base = c_build._cache_key("src", "gcc 1.0", ("-O2",))
        assert c_build._cache_key("src2", "gcc 1.0", ("-O2",)) != base
        assert c_build._cache_key("src", "gcc 2.0", ("-O2",)) != base
        assert c_build._cache_key("src", "gcc 1.0", ("-O3",)) != base

    @needs_c
    def test_loaded_kernel_abi_matches(self):
        dll = c_build.load_kernel()
        assert dll.repro_abi_version() == c_build.ABI_VERSION


class TestNumpyEngineSurface:
    def test_run_once(self):
        eng = NumpyEngine(_s1_instance(20), GreedyIdenticalAssignment(0.25))
        eng.run()
        with pytest.raises(SimulationError, match="only run once"):
            eng.run()

    def test_until_rejected(self):
        eng = NumpyEngine(_s1_instance(20), GreedyIdenticalAssignment(0.25))
        with pytest.raises(SimulationError, match="bounded horizons"):
            eng.run(until=5.0)
