"""The backend registry: selection, dispatch, fallback, and
cross-backend parity on a realistic workload.

The bit-level schedule equivalence of the numpy kernel is enforced
case-by-case by the differential fuzzer (``repro fuzz --backends``) and
by the engine suites, which run on both backends; this module covers the
*dispatch* layer (``repro.sim.backends.simulate`` / ``repro.api``) and
one seeded end-to-end parity check on the S1 benchmark workload.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.analysis.experiments.workloads import identical_instance
from repro.core.assignment import GreedyIdenticalAssignment
from repro.exceptions import SimulationError
from repro.network.builders import datacenter_tree
from repro.sim import backends
from repro.sim.backends.numpy_backend import NumpyEngine
from repro.sim.speed import SpeedProfile


def _s1_instance(n=160):
    tree = datacenter_tree(3, 3, 4)
    return identical_instance(tree, n, load=0.85, seed=12)


def _run(backend, **kwargs):
    return backends.simulate(
        _s1_instance(),
        GreedyIdenticalAssignment(0.25),
        backend=backend,
        speeds=SpeedProfile.uniform(1.5),
        **kwargs,
    )


class TestCrossBackendParity:
    def test_s1_schedules_identical(self):
        a = _run("python", record_segments=True)
        b = _run("numpy", record_segments=True)
        assert set(a.records) == set(b.records)
        for jid, ra in a.records.items():
            rb = b.records[jid]
            assert rb.leaf == ra.leaf
            assert rb.path == ra.path
            assert rb.completed_at == ra.completed_at
            assert rb.available_at == ra.available_at
        assert a.total_flow_time() == b.total_flow_time()
        # Segment multisets match; the kernel emits them in per-node
        # batches and canonicalises by (start, end, node, job), so only
        # the order may differ from the engine's event order.
        key = lambda s: (s.start, s.end, s.node, s.job_id)  # noqa: E731
        assert sorted(a.segments, key=key) == sorted(b.segments, key=key)

    def test_api_facade_backend_keyword(self):
        inst = _s1_instance(60)
        a = api.simulate(instance=inst, policy="greedy", eps=0.25, backend="python")
        b = api.simulate(instance=inst, policy="greedy", eps=0.25, backend="numpy")
        assert {j: r.completion for j, r in a.records.items()} == {
            j: r.completion for j, r in b.records.items()
        }


class TestSelection:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        assert backends.resolve_backend("python") == "python"

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        assert backends.resolve_backend(None) == "numpy"
        monkeypatch.delenv(backends.ENV_VAR)
        assert backends.resolve_backend(None) == "python"

    def test_empty_env_means_python(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "")
        assert backends.resolve_backend(None) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError, match="unknown backend"):
            backends.resolve_backend("fortran")
        with pytest.raises(SimulationError, match="unknown backend"):
            _run("fortran")

    def test_env_selects_numpy_end_to_end(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "numpy")
        a = _run(None)
        b = _run("python")
        assert {j: r.completion for j, r in a.records.items()} == {
            j: r.completion for j, r in b.records.items()
        }


class TestFallback:
    """Options defined in terms of the global event order silently run
    on the python engine, even under ``backend="numpy"``."""

    def test_observer_falls_back(self):
        seen = []
        result = _run("numpy", observer=lambda view, kind, subject: seen.append(kind))
        assert seen  # the numpy kernel has no observer hook at all
        assert len(result.records) == 160

    def test_until_falls_back(self):
        result = _run("numpy", until=1.0)
        assert len(result.records) < 160  # genuinely bounded, so python ran

    def test_counters_fall_back(self):
        result = _run("numpy", collect_counters=True)
        assert result.counters is not None
        assert result.counters.arrivals == 160

    def test_plain_numpy_call_does_not_fall_back(self):
        result = _run("numpy")
        assert result.counters is None
        assert len(result.records) == 160


class TestNumpyEngineSurface:
    def test_run_once(self):
        eng = NumpyEngine(_s1_instance(20), GreedyIdenticalAssignment(0.25))
        eng.run()
        with pytest.raises(SimulationError, match="only run once"):
            eng.run()

    def test_until_rejected(self):
        eng = NumpyEngine(_s1_instance(20), GreedyIdenticalAssignment(0.25))
        with pytest.raises(SimulationError, match="bounded horizons"):
            eng.run(until=5.0)
