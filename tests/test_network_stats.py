"""Unit tests for tree structural statistics."""

from __future__ import annotations

import pytest

from repro.network.builders import caterpillar_tree, datacenter_tree, kary_tree
from repro.network.stats import tree_stats


class TestTreeStats:
    def test_kary_counts(self):
        s = tree_stats(kary_tree(2, 3))
        assert s.num_nodes == 15
        assert s.num_leaves == 8
        assert s.num_routers == 6
        assert s.height == 3
        assert s.is_balanced
        assert s.max_branching == 2
        assert s.mean_branching == 2.0
        assert s.leaf_depth_histogram == {3: 8}

    def test_caterpillar_depth_spread(self):
        s = tree_stats(caterpillar_tree(3, 2))
        assert not s.is_balanced
        assert s.min_leaf_depth == 2
        assert s.max_leaf_depth == 4
        assert sum(s.leaf_depth_histogram.values()) == s.num_leaves

    def test_datacenter_branching(self):
        s = tree_stats(datacenter_tree(2, 3, 4))
        assert s.max_branching == 4
        assert s.num_leaves == 24
        assert s.mean_leaf_depth == 3.0

    def test_mean_leaf_depth_consistent_with_histogram(self):
        s = tree_stats(caterpillar_tree(4, 3))
        mean = sum(d * c for d, c in s.leaf_depth_histogram.items()) / s.num_leaves
        assert s.mean_leaf_depth == pytest.approx(mean)
