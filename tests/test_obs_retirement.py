"""Window retirement in the trace recorder: dropped records, the
``retired`` meta entry, schema acceptance, and crosscheck tolerance."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.core.assignment import GreedyIdenticalAssignment
from repro.exceptions import SimulationError
from repro.obs.schema import validate_line
from repro.obs.trace import TraceConfig, TraceRecorder, crosscheck_trace
from repro.sim.engine import Engine


def _streamed(recorder, *, until, retire_at, n_jobs=60, seed=17,
              record_segments=True):
    """Run a streamed simulation, retiring at ``retire_at`` mid-flight,
    then finish and build the result."""
    inst = api.make_instance(n_jobs=n_jobs, seed=seed)
    eng = Engine(
        inst, GreedyIdenticalAssignment(0.25), tracer=recorder,
        record_segments=record_segments,
    )
    eng.stream_start(inst.jobs)
    eng.stream_step(until=until)
    dropped = recorder.retire(before=retire_at)
    return eng, dropped


class TestRetire:
    def test_drops_only_records_before_the_boundary(self):
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        _, dropped = _streamed(rec, until=20.0, retire_at=10.0)
        assert dropped["points"] > 0
        assert dropped["gauges"] > 0
        assert all(p.time > 10.0 for p in rec._points)
        assert all(s.end > 10.0 for s in rec._service)
        assert all(g.time > 10.0 for g in rec._gauges)

    def test_retired_tally_accumulates_and_lands_in_meta(self):
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        eng, d1 = _streamed(rec, until=10.0, retire_at=5.0)
        eng.stream_step(until=40.0)
        d2 = rec.retire(before=20.0)
        result = eng.stream_result()
        meta = result.trace.meta["retired"]
        for key in ("points", "spans", "gauges"):
            assert meta[key] == d1[key] + d2[key]
        assert meta["points"] > 0

    def test_unretired_trace_has_no_meta_entry(self):
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        inst = api.make_instance(n_jobs=20, seed=17)
        result = api.simulate(instance=inst, policy="greedy", tracer=rec)
        assert "retired" not in result.trace.meta

    def test_retire_after_build_raises(self):
        rec = TraceRecorder(TraceConfig())
        inst = api.make_instance(n_jobs=10, seed=17)
        api.simulate(instance=inst, policy="greedy", tracer=rec)
        with pytest.raises(SimulationError):
            rec.retire(before=1.0)

    def test_cumulative_busy_survives_retirement(self):
        """Retiring gauges must not lose cumulative busy time — the
        accumulator is independent of the retained samples."""
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        eng, _ = _streamed(rec, until=15.0, retire_at=0.0, seed=23)
        before = {v: rec.cumulative_busy(v, 15.0) for v in eng._nodes}
        rec.retire(before=15.0)
        after = {v: rec.cumulative_busy(v, 15.0) for v in eng._nodes}
        assert after == before
        assert any(b > 0.0 for b in after.values())


class TestSchemaAndCrosscheck:
    def _retired_result(self):
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        eng, _ = _streamed(rec, until=12.0, retire_at=6.0, n_jobs=50, seed=29)
        return eng.stream_result()

    def _meta_doc(self, result):
        # mirror the JSONL exporter's meta line
        from repro.obs.schema import TRACE_SCHEMA

        return json.loads(json.dumps(
            {"type": "meta", "schema": TRACE_SCHEMA, **result.trace.meta}
        ))

    def test_meta_with_retired_entry_validates(self):
        doc = self._meta_doc(self._retired_result())
        assert validate_line(doc, first=True) is None

    def test_meta_rejects_malformed_retired(self):
        doc = self._meta_doc(self._retired_result())
        doc["retired"] = {"points": -1}
        assert validate_line(doc, first=True) is not None
        doc["retired"] = "lots"
        assert validate_line(doc, first=True) is not None

    def test_jsonl_round_trip_validates(self, tmp_path):
        from repro.obs import validate_jsonl, write_jsonl

        result = self._retired_result()
        out = tmp_path / "trace.jsonl"
        write_jsonl(result.trace, str(out))
        counts, errors = validate_jsonl(str(out))
        assert errors == []
        assert counts["meta"] == 1

    def test_crosscheck_tolerates_retired_trace(self):
        """A trace with retired records still crosschecks against the
        result: remaining spans must be a subset of the schedule, and
        missing lifecycle points are not errors."""
        result = self._retired_result()
        assert result.trace.meta["retired"]["points"] > 0
        assert crosscheck_trace(result) == []

    def test_crosscheck_still_catches_foreign_spans(self):
        """Subset tolerance must not become blanket acceptance: a span
        the schedule never produced still fails."""
        from dataclasses import replace

        result = self._retired_result()
        service = result.trace.spans_of("service")
        bogus = replace(service[0], start=service[0].start + 0.123)
        result.trace.spans.append(bogus)
        assert crosscheck_trace(result)

    def test_full_trace_crosscheck_unchanged(self):
        """The strict (non-retired) path still demands exact equality."""
        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        inst = api.make_instance(n_jobs=40, seed=31)
        result = api.simulate(
            instance=inst, policy="greedy", tracer=rec, record_segments=True
        )
        assert crosscheck_trace(result) == []


class TestChromeExportWithRetirement:
    def test_chrome_exporter_handles_retired_trace(self, tmp_path):
        from repro.obs import write_chrome

        rec = TraceRecorder(TraceConfig(gauge_interval=1.0))
        eng, _ = _streamed(rec, until=12.0, retire_at=6.0, n_jobs=50, seed=37)
        result = eng.stream_result()
        out = tmp_path / "trace.json"
        count = write_chrome(result.trace, str(out))
        assert count > 0
        doc = json.loads(out.read_text())
        assert doc["otherData"]["retired"]["points"] > 0
