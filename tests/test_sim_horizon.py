"""Tests for bounded-horizon (``until=``) simulation runs."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import SimulationError
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import Engine, simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def chain_instance(jobs):
    return Instance(spine_tree(1), JobSet(jobs), Setting.IDENTICAL)


class TestHorizonSemantics:
    def test_mid_flight_job_left_unfinished(self):
        instance = chain_instance([Job(id=0, release=0.0, size=2.0)])
        res = simulate(instance, FixedAssignment({0: 2}), until=3.0)
        assert res.unfinished_job_ids() == (0,)
        assert res.completed_records() == {}
        rec = res.records[0]
        assert rec.completed_at == [2.0]  # finished the router only

    def test_horizon_after_everything_is_noop(self):
        instance = chain_instance([Job(id=0, release=0.0, size=2.0)])
        full = simulate(instance, FixedAssignment({0: 2}))
        capped = simulate(instance, FixedAssignment({0: 2}), until=100.0)
        assert capped.records[0].completed_at == full.records[0].completed_at
        assert capped.completed_records().keys() == {0}

    def test_jobs_released_after_horizon_not_admitted(self):
        instance = chain_instance(
            [Job(id=0, release=0.0, size=1.0), Job(id=1, release=50.0, size=1.0)]
        )
        res = simulate(instance, FixedAssignment({0: 2, 1: 2}), until=10.0)
        assert 1 not in res.records
        assert res.completed_records().keys() == {0}

    def test_integrals_cover_exactly_the_window(self):
        # One size-2 job: alive on [0, 4).  Capped at 3: alive integral 3.
        instance = chain_instance([Job(id=0, release=0.0, size=2.0)])
        res = simulate(instance, FixedAssignment({0: 2}), until=3.0)
        assert res.alive_integral == pytest.approx(3.0)
        # Fractional: 1 on [0,2], then drains 0.5/s on [2,3] -> 2 + 0.75.
        assert res.fractional_flow == pytest.approx(2.75)

    def test_segments_closed_at_horizon(self):
        instance = chain_instance([Job(id=0, release=0.0, size=4.0)])
        res = simulate(
            instance, FixedAssignment({0: 2}), until=2.5, record_segments=True
        )
        assert res.segments is not None
        assert max(s.end for s in res.segments) == pytest.approx(2.5)

    def test_negative_horizon_rejected(self):
        instance = chain_instance([Job(id=0, release=0.0, size=1.0)])
        with pytest.raises(SimulationError, match="until"):
            Engine(instance, FixedAssignment({0: 2})).run(until=-1.0)

    def test_zero_horizon(self):
        instance = chain_instance([Job(id=0, release=0.0, size=1.0)])
        res = simulate(instance, FixedAssignment({0: 2}), until=0.0)
        # The release at t=0 is not past the horizon, so it is admitted,
        # but no processing time elapses.
        assert res.alive_integral == 0.0

    def test_prefix_consistency_with_full_run(self):
        """Completions before the horizon match the full run exactly."""
        tree = star_of_paths(2, 2)
        jobs = JobSet(
            [Job(id=i, release=0.4 * i, size=1.0 + (i % 3)) for i in range(14)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        full = simulate(instance, GreedyIdenticalAssignment(0.5))
        horizon = full.makespan() / 2
        capped = simulate(instance, GreedyIdenticalAssignment(0.5), until=horizon)
        for jid, rec in capped.completed_records().items():
            assert full.records[jid].completion == pytest.approx(rec.completion)
            assert rec.completion <= horizon + 1e-9

    def test_mean_over_completed_only(self):
        instance = chain_instance(
            [Job(id=0, release=0.0, size=1.0), Job(id=1, release=0.0, size=5.0)]
        )
        res = simulate(instance, FixedAssignment({0: 2, 1: 2}), until=4.0)
        done = res.completed_records()
        assert set(done) == {0}
        assert done[0].flow_time == pytest.approx(2.0)
