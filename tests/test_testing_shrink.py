"""Properties of the deterministic shrinker.

The shrinker's contract (`repro.testing.shrink`) is checked against
*synthetic* failure predicates — pure functions of the candidate case,
independent of any engine bug — so the properties hold regardless of
what the fuzzer happens to find:

* the returned case still satisfies the predicate (failure preserved);
* it terminates within its attempt budget;
* it is a pure function of its input (deterministic, no hidden RNG).
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing.corpus import case_digest
from repro.testing.generate import CaseConfig, build_case
from repro.testing.shrink import shrink_case


def _config(seed: int, n_jobs: int, topology: str = "spine2", **kw) -> CaseConfig:
    kw.setdefault("arrivals", "poisson")
    kw.setdefault("sizes", "uniform")
    return CaseConfig(seed=seed, topology=topology, n_jobs=n_jobs, **kw)


def _case(seed: int, n_jobs: int, topology: str = "spine2"):
    return build_case(_config(seed, n_jobs, topology))


class TestSyntheticPredicates:
    def test_min_jobs_predicate_shrinks_to_floor(self):
        case = _case(seed=7, n_jobs=10)

        def at_least_three(candidate) -> bool:
            return len(candidate.instance.jobs) >= 3

        result = shrink_case(case, at_least_three)
        assert at_least_three(result.case)
        assert result.n_jobs == 3
        assert result.case.shrunk

    def test_size_predicate_preserved(self):
        case = _case(seed=11, n_jobs=9)
        threshold = sorted(j.size for j in case.instance.jobs)[-2]

        def has_big_job(candidate) -> bool:
            return any(j.size > threshold for j in candidate.instance.jobs)

        assert has_big_job(case)
        result = shrink_case(case, has_big_job)
        assert has_big_job(result.case)
        assert result.n_jobs <= len(case.instance.jobs)

    def test_never_satisfiable_leaves_case_untouched(self):
        case = _case(seed=3, n_jobs=6)
        result = shrink_case(case, lambda candidate: False)
        assert result.steps == 0
        assert case_digest(result.case) == case_digest(case)

    def test_releases_simplify_toward_zero(self):
        case = _case(seed=5, n_jobs=8)

        def enough_jobs(candidate) -> bool:
            return len(candidate.instance.jobs) >= 2

        result = shrink_case(case, enough_jobs)
        # With no release-dependent predicate the release-flattening
        # pass should win: everything lands at time zero.
        assert all(j.release == 0.0 for j in result.case.instance.jobs)


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 10_000), n_jobs=st.integers(4, 12), floor=st.integers(1, 4))
def test_predicate_preserved_and_bounded(seed, n_jobs, floor):
    case = _case(seed=seed, n_jobs=n_jobs)

    def predicate(candidate) -> bool:
        return len(candidate.instance.jobs) >= floor

    result = shrink_case(case, predicate, max_attempts=300)
    assert predicate(result.case)
    assert result.attempts <= 300
    assert result.n_jobs <= n_jobs


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000), n_jobs=st.integers(4, 10))
def test_shrink_is_deterministic(seed, n_jobs):
    def predicate(candidate) -> bool:
        return len(candidate.instance.jobs) >= 2

    docs = []
    for _ in range(2):
        case = _case(seed=seed, n_jobs=n_jobs)
        result = shrink_case(case, predicate)
        docs.append(json.dumps(result.case.to_doc(), sort_keys=True))
    assert docs[0] == docs[1]


def test_attempt_budget_is_respected():
    case = _case(seed=9, n_jobs=12)
    calls = 0

    def counting(candidate) -> bool:
        nonlocal calls
        calls += 1
        return len(candidate.instance.jobs) >= 2

    shrink_case(case, counting, max_attempts=25)
    assert calls <= 25


def test_fixed_assignment_stays_consistent():
    case = build_case(_config(13, 9, "paths_3x2", policy="fixed"))
    result = shrink_case(case, lambda c: len(c.instance.jobs) >= 2)
    kept = {j.id for j in result.case.instance.jobs}
    assert set(result.case.fixed_assignment) == kept
    leaves = set(result.case.instance.tree.leaves)
    assert set(result.case.fixed_assignment.values()) <= leaves
