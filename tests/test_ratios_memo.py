"""Property tests for the memoized lower-bound service.

Two invariants carry the whole design: the memo is *transparent*
(``lower_bound_cached`` returns exactly what a fresh ``lower_bound_for``
would) and the digest is *faithful* (any change to the instance or the
solver configuration changes the key, so distinct computations can never
share an entry).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ratios import (
    clear_lower_bound_memo,
    instance_digest,
    lower_bound_cached,
    lower_bound_for,
    lower_bound_memo_stats,
    set_lower_bound_disk_cache,
)
from repro.sim import counters as counter_mod
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet
from repro.workload.unrelated import affinity_matrix
from tests.test_properties import jobs_strategy, tree_strategy


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Each test starts with an empty memory layer and no disk layer."""
    clear_lower_bound_memo()
    set_lower_bound_disk_cache(None)
    yield
    clear_lower_bound_memo()
    set_lower_bound_disk_cache(None)


@st.composite
def instance_strategy(draw, unrelated=False):
    tree = draw(tree_strategy())
    jobs = draw(jobs_strategy(max_jobs=8))
    if unrelated:
        rows = affinity_matrix(
            tree.leaves,
            [j.size for j in jobs],
            rng=draw(st.integers(0, 100)),
        )
        jobs = JobSet.build(
            [j.release for j in jobs], [j.size for j in jobs], rows
        )
        return Instance(tree, jobs, Setting.UNRELATED, name="prop-unrel")
    return Instance(tree, jobs, Setting.IDENTICAL, name="prop-ident")


# ----------------------------------------------------------------------
# transparency: memoized == fresh
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(instance=instance_strategy())
def test_memo_equals_fresh_identical(instance):
    clear_lower_bound_memo()
    fresh = lower_bound_for(instance, prefer_lp=False)
    assert lower_bound_cached(instance, prefer_lp=False) == fresh
    assert lower_bound_cached(instance, prefer_lp=False) == fresh  # hit path
    stats = lower_bound_memo_stats()
    assert (stats["hits"], stats["misses"]) == (1, 1)


@settings(max_examples=15, deadline=None)
@given(instance=instance_strategy(unrelated=True))
def test_memo_equals_fresh_unrelated(instance):
    clear_lower_bound_memo()
    fresh = lower_bound_for(instance, prefer_lp=False)
    assert lower_bound_cached(instance, prefer_lp=False) == fresh


def test_memo_equals_fresh_with_lp():
    """One small instance through the exact-LP path (kept out of the
    hypothesis sweep: LP solves are orders of magnitude slower)."""
    from repro.network.builders import kary_tree

    tree = kary_tree(2, 2)
    instance = Instance(
        tree,
        JobSet.build([0.0, 0.5, 1.0], [1.0, 2.0, 1.5]),
        Setting.IDENTICAL,
        name="lp-memo",
    )
    fresh = lower_bound_for(instance, prefer_lp=True)
    assert lower_bound_cached(instance, prefer_lp=True) == fresh
    assert lower_bound_cached(instance, prefer_lp=True) == fresh


# ----------------------------------------------------------------------
# faithfulness: distinct computations never collide
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    instance=instance_strategy(),
    job_index=st.integers(0, 7),
    bump=st.floats(0.001, 1.0, allow_nan=False, allow_infinity=False),
)
def test_perturbed_instance_digests_differently(instance, job_index, bump):
    jobs = list(instance.jobs)
    job_index %= len(jobs)
    sizes = [j.size for j in jobs]
    sizes[job_index] += bump
    perturbed = Instance(
        instance.tree,
        JobSet.build([j.release for j in jobs], sizes),
        instance.setting,
        name=instance.name,
    )
    assert instance_digest(perturbed) != instance_digest(instance)


@settings(max_examples=25, deadline=None)
@given(a=instance_strategy(), b=instance_strategy())
def test_distinct_instances_digest_distinctly(a, b):
    same_shape = (
        sorted(a.tree.parent_map().items()) == sorted(b.tree.parent_map().items())
        and [(j.release, j.size, j.origin) for j in a.jobs]
        == [(j.release, j.size, j.origin) for j in b.jobs]
    )
    if same_shape:
        assert instance_digest(a) == instance_digest(b)
    else:
        assert instance_digest(a) != instance_digest(b)


def test_solver_config_is_part_of_the_key():
    from repro.network.builders import kary_tree

    instance = Instance(
        kary_tree(2, 2),
        JobSet.build([0.0], [1.0]),
        Setting.IDENTICAL,
        name="cfg",
    )
    base = instance_digest(instance)
    assert instance_digest(instance, prefer_lp=False) != base
    assert instance_digest(instance, dt=0.5) != base


# ----------------------------------------------------------------------
# counters + disk layer
# ----------------------------------------------------------------------
def test_hit_miss_counted_into_global_counters():
    from repro.network.builders import kary_tree

    instance = Instance(
        kary_tree(2, 2),
        JobSet.build([0.0, 1.0], [2.0, 1.0]),
        Setting.IDENTICAL,
        name="counted",
    )
    tallies = counter_mod.enable_global_counters()
    try:
        lower_bound_cached(instance, prefer_lp=False)
        lower_bound_cached(instance, prefer_lp=False)
    finally:
        counter_mod.disable_global_counters()
    assert tallies.lp_memo_misses == 1
    assert tallies.lp_memo_hits == 1


def test_disk_layer_survives_memory_clear(tmp_path):
    from repro.network.builders import kary_tree

    instance = Instance(
        kary_tree(2, 3),
        JobSet.build([0.0, 0.5], [1.0, 3.0]),
        Setting.IDENTICAL,
        name="disk",
    )
    set_lower_bound_disk_cache(tmp_path)
    first = lower_bound_cached(instance, prefer_lp=False)
    clear_lower_bound_memo()  # drop the memory layer; disk must answer
    assert lower_bound_cached(instance, prefer_lp=False) == first
    stats = lower_bound_memo_stats()
    assert (stats["hits"], stats["misses"]) == (1, 0)


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    from repro.network.builders import kary_tree

    instance = Instance(
        kary_tree(2, 3),
        JobSet.build([0.0], [2.0]),
        Setting.IDENTICAL,
        name="disk-corrupt",
    )
    set_lower_bound_disk_cache(tmp_path)
    first = lower_bound_cached(instance, prefer_lp=False)
    digest = instance_digest(instance, prefer_lp=False)
    (tmp_path / f"{digest}.json").write_text("{not json")
    clear_lower_bound_memo()
    assert lower_bound_cached(instance, prefer_lp=False) == first
    assert lower_bound_memo_stats()["misses"] == 1
