"""Unit tests for flow-time norms."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.norms import flow_lk_norm, flow_norm_summary
from repro.core.assignment import FixedAssignment
from repro.exceptions import AnalysisError
from repro.network.builders import spine_tree
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def run_jobs(jobs):
    tree = spine_tree(1)
    instance = Instance(tree, JobSet(jobs), Setting.IDENTICAL)
    return simulate(instance, FixedAssignment({j.id: 2 for j in jobs}))


@pytest.fixture
def result():
    # Flows: job0 [0 -> 2], job1 arrives 0, waits: completes 2 on router?
    # Simpler: two spaced unit jobs -> flows 2 and 2.
    return run_jobs(
        [Job(id=0, release=0.0, size=1.0), Job(id=1, release=10.0, size=1.0)]
    )


class TestLkNorm:
    def test_l1_is_total(self, result):
        assert flow_lk_norm(result, 1) == pytest.approx(result.total_flow_time())

    def test_linf_is_max(self, result):
        assert flow_lk_norm(result, math.inf) == pytest.approx(result.max_flow_time())

    def test_l2_formula(self, result):
        flows = result.flow_times()
        assert flow_lk_norm(result, 2) == pytest.approx(
            float(np.sqrt((flows**2).sum()))
        )

    def test_k_below_one_rejected(self, result):
        with pytest.raises(AnalysisError):
            flow_lk_norm(result, 0.5)

    def test_empty_result(self):
        res = run_jobs([])
        assert flow_lk_norm(res, 2) == 0.0
        assert flow_norm_summary(res)["max"] == 0.0

    @settings(max_examples=20, deadline=None)
    @given(k1=st.floats(1.0, 8.0), k2=st.floats(1.0, 8.0))
    def test_norm_monotone_in_k_after_normalisation(self, k1, k2):
        """For fixed flows, the raw lk norm is non-increasing in k."""
        res = run_jobs(
            [Job(id=i, release=3.0 * i, size=1.0 + i % 2) for i in range(5)]
        )
        lo, hi = sorted((k1, k2))
        assert flow_lk_norm(res, hi) <= flow_lk_norm(res, lo) + 1e-9


class TestSummary:
    def test_keys_and_ordering(self, result):
        s = flow_norm_summary(result)
        assert set(s) == {"l1", "l2", "mean", "max", "p95"}
        assert s["max"] <= s["l2"] <= s["l1"]
        assert s["mean"] <= s["max"]
        assert s["p95"] <= s["max"] + 1e-9
