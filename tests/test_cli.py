"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestRun:
    def test_basic_run_prints_metrics(self, capsys):
        code = main(["run", "--jobs", "10", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "total flow time" in out
        assert "fractional flow time" in out

    def test_per_job_and_gantt(self, capsys):
        code = main(
            ["run", "--jobs", "6", "--per-job", "--gantt", "--gantt-width", "40"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "per-job" in out
        assert "legend" in out

    def test_every_policy_runs(self, capsys):
        for policy in ("greedy", "closest", "random", "least-loaded", "round-robin"):
            assert main(["run", "--jobs", "5", "--policy", policy]) == 0
        capsys.readouterr()

    def test_unrelated_flag(self, capsys):
        code = main(["run", "--jobs", "6", "--unrelated"])
        assert code == 0
        assert "unrelated" in capsys.readouterr().out

    def test_fifo_flag(self, capsys):
        code = main(["run", "--jobs", "6", "--fifo"])
        assert code == 0
        assert "fifo" in capsys.readouterr().out

    def test_until_flag(self, capsys):
        code = main(["run", "--jobs", "20", "--until", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "horizon" in out
        assert "in flight" in out

    def test_tree_families(self, capsys):
        for tree, targs in (
            ("paths", ["2", "2", "0"]),
            ("caterpillar", ["3", "1", "0"]),
            ("datacenter", ["2", "2", "2"]),
            ("random", ["12", "0", "0"]),
            ("figure1", ["0", "0", "0"]),
        ):
            assert (
                main(["run", "--jobs", "4", "--tree", tree, "--tree-args", *targs])
                == 0
            )
        capsys.readouterr()


class TestGenerateAndBound:
    def test_generate_then_run_trace(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        assert main(["generate", trace, "--jobs", "5", "--seed", "1"]) == 0
        assert main(["run", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "wrote 5 jobs" in out

    def test_bound(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", trace, "--jobs", "4", "--tree", "paths",
              "--tree-args", "2", "1", "0"])
        assert main(["bound", trace]) == 0
        out = capsys.readouterr().out
        assert "combinatorial bound" in out
        assert "best bound" in out

    def test_bound_no_lp(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        main(["generate", trace, "--jobs", "4"])
        assert main(["bound", trace, "--no-lp"]) == 0
        capsys.readouterr()


class TestPlan:
    def test_feasible_plan(self, capsys):
        code = main(
            ["plan", "--jobs", "12", "--target", "1000", "--metric", "total_flow"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "minimum uniform speed" in out

    def test_infeasible_plan(self, capsys):
        code = main(["plan", "--jobs", "12", "--target", "0.0001"])
        err = capsys.readouterr().err
        assert code == 1
        assert "infeasible" in err


class TestReport:
    def test_report_subset_stdout(self, capsys):
        assert main(["report", "--ids", "F2"]) == 0
        out = capsys.readouterr().out
        assert "## F2" in out

    def test_report_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "exp.md")
        assert main(["report", "-o", path, "--ids", "F2"]) == 0
        capsys.readouterr()
        assert "## F2" in open(path).read()


class TestExperiments:
    def test_list(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "F2" in out and "X1" in out

    def test_run_single_experiment(self, capsys):
        assert main(["experiment", "F2"]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

    def test_lowercase_id_accepted(self, capsys):
        assert main(["experiment", "f2"]) == 0
        capsys.readouterr()


class TestExperimentsRunner:
    def test_parallel_cached_run(self, capsys, tmp_path):
        argv = [
            "experiments", "f1", "F2",
            "--parallel", "2",
            "--cache-dir", str(tmp_path),
            "--summary-only",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "experiment runner summary" in out
        assert "F1" in out and "F2" in out
        assert "run" in out
        # warm re-run is served from the cache
        assert main(argv) == 0
        assert "cache" in capsys.readouterr().out

    def test_no_cache_bypasses_disk(self, capsys, tmp_path):
        argv = [
            "experiments", "F1",
            "--no-cache",
            "--cache-dir", str(tmp_path),
            "--summary-only",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert list(tmp_path.glob("*.pkl")) == []

    def test_counters_flag_prints_aggregate(self, capsys, tmp_path):
        argv = [
            "experiments", "F1",
            "--counters",
            "--cache-dir", str(tmp_path),
            "--summary-only",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "engine counters (all experiments)" in out
        assert "events processed" in out

    def test_full_reports_printed_without_summary_only(self, capsys, tmp_path):
        assert main(["experiments", "F2", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "verdict: PASS" in out

    def test_run_counters_flag(self, capsys):
        assert main(["run", "--jobs", "6", "--counters"]) == 0
        out = capsys.readouterr().out
        assert "engine counters" in out
        assert "events processed" in out

    def test_run_counters_with_until(self, capsys):
        assert main(["run", "--jobs", "10", "--until", "3", "--counters"]) == 0
        out = capsys.readouterr().out
        assert "horizon" in out
        assert "engine counters" in out


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "nope"])
