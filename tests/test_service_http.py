"""The asyncio HTTP facade: endpoint behavior, Prometheus rendering and
the self-checking smoke mode."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import api
from repro.service.http import MetricsServer, fetch, render_metrics, serve_session
from repro.service.metrics import validate_snapshot


def _session(n_jobs=60, **kw):
    inst = api.make_instance(n_jobs=n_jobs, load=0.95, seed=21)
    kw.setdefault("window", 5.0)
    return api.open_system(instance=inst, **kw)


class TestRenderMetrics:
    def test_families_present(self):
        sess = _session()
        sess.drain()
        text = render_metrics(sess)
        for family in (
            "repro_stream_time_seconds",
            "repro_stream_windows_closed",
            "repro_stream_jobs_in_flight",
            "repro_stream_arrivals_total",
            "repro_stream_completions_total",
            "repro_stream_flow_seconds",
            "repro_node_utilization",
        ):
            assert family in text
        assert text.endswith("\n")

    def test_counts_match_snapshot(self):
        sess = _session()
        sess.drain()
        snap = sess.snapshot()
        lines = dict(
            line.rsplit(" ", 1)
            for line in render_metrics(sess).splitlines()
            if not line.startswith("#") and "{" not in line
        )
        assert int(lines["repro_stream_arrivals_total"]) == snap.arrivals_total
        assert int(lines["repro_stream_completions_total"]) == snap.completions_total

    def test_quantile_labels(self):
        sess = _session()
        sess.drain()
        text = render_metrics(sess)
        assert 'repro_stream_flow_seconds{quantile="0.50"}' in text
        assert 'repro_stream_flow_seconds{quantile="0.95"}' in text
        assert 'repro_stream_flow_seconds{quantile="0.99"}' in text


class TestEndpoints:
    def _roundtrip(self, path):
        async def go():
            sess = _session()
            sess.drain()
            server = MetricsServer(sess)
            await server.start()
            try:
                return await fetch(server.host, server.port, path)
            finally:
                await server.stop()

        return asyncio.run(go())

    def test_healthz(self):
        status, body = self._roundtrip("/healthz")
        assert status == 200
        assert body.strip() == "ok"

    def test_snapshot_is_valid_schema(self):
        status, body = self._roundtrip("/snapshot")
        assert status == 200
        assert validate_snapshot(json.loads(body)) == []

    def test_metrics(self):
        status, body = self._roundtrip("/metrics")
        assert status == 200
        assert "repro_stream_completions_total" in body

    def test_unknown_path_404(self):
        status, _ = self._roundtrip("/nope")
        assert status == 404

    def test_query_string_ignored(self):
        status, _ = self._roundtrip("/healthz?x=1")
        assert status == 200

    def test_non_get_rejected(self):
        async def go():
            sess = _session()
            server = MetricsServer(sess)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b"POST /snapshot HTTP/1.1\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
                writer.close()
                return int(raw.split(b" ", 2)[1])
            finally:
                await server.stop()

        assert asyncio.run(go()) == 405


class TestServeSession:
    def test_smoke_mode_reports_zero_failures(self):
        sess = _session(n_jobs=80)
        lines: list[str] = []
        failures = asyncio.run(
            serve_session(sess, max_windows=3, smoke=True, echo=lines.append)
        )
        assert failures == 0
        assert any("all endpoint checks passed" in line for line in lines)
        assert sess.snapshot().windows_closed == 3

    def test_runs_to_drain_without_max_windows(self):
        sess = _session(n_jobs=40)
        failures = asyncio.run(
            serve_session(sess, smoke=True, echo=lambda *_: None)
        )
        assert failures == 0
        assert sess.idle()
