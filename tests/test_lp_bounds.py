"""Unit tests for combinatorial lower bounds and the SRPT relaxation."""

from __future__ import annotations

import math

import pytest

from repro.baselines.policies import LeastLoadedAssignment
from repro.core.assignment import GreedyIdenticalAssignment
from repro.exceptions import LPError
from repro.lp.bounds import (
    best_lower_bound,
    leaf_tier_bound,
    path_volume_bound,
    srpt_single_machine_flow,
    top_tier_bound,
)
from repro.network.builders import star_of_paths
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


class TestSRPT:
    def test_two_simultaneous_unit_jobs(self):
        # SRPT, speed 1: flows 1 and 2.
        assert srpt_single_machine_flow([0, 0], [1, 1], 1.0) == 3.0

    def test_preemption_helps_small_job(self):
        # Big job at 0 (size 10), small at 1 (size 1): SRPT preempts.
        # Small runs [1,2) (flow 1); big runs [0,1) and [2,11) (flow 11).
        flow = srpt_single_machine_flow([0, 1], [10, 1], 1.0)
        assert flow == pytest.approx(1.0 + 11.0)

    def test_idle_gap_handled(self):
        flow = srpt_single_machine_flow([0, 100], [1, 1], 1.0)
        assert flow == 2.0

    def test_speed_scales(self):
        assert srpt_single_machine_flow([0, 0], [2, 2], 2.0) == pytest.approx(3.0)

    def test_empty(self):
        assert srpt_single_machine_flow([], [], 1.0) == 0.0

    def test_bad_speed(self):
        with pytest.raises(LPError):
            srpt_single_machine_flow([0], [1], 0.0)

    def test_srpt_optimality_vs_brute_force(self):
        """SRPT is optimal on one machine: no better completion order on a
        tiny instance."""
        import itertools

        releases = [0.0, 0.5, 1.0]
        sizes = [2.0, 1.0, 1.5]
        srpt = srpt_single_machine_flow(releases, sizes, 1.0)
        # Brute force over non-preemptive orders (a superset check: SRPT
        # must beat every non-preemptive schedule).
        best_np = math.inf
        for order in itertools.permutations(range(3)):
            t = 0.0
            flow = 0.0
            for i in order:
                t = max(t, releases[i]) + sizes[i]
                flow += t - releases[i]
            best_np = min(best_np, flow)
        assert srpt <= best_np + 1e-9


class TestBounds:
    @pytest.fixture
    def instance(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=i, release=float(i), size=2.0) for i in range(6)])
        return Instance(tree, jobs, Setting.IDENTICAL)

    def test_path_volume(self, instance):
        # Every path is router+leaf: P = 4 per job.
        assert path_volume_bound(instance) == 24.0

    def test_top_tier_positive(self, instance):
        assert top_tier_bound(instance) > 0

    def test_leaf_tier_uses_min_leaf_size(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 5.0, 4: 1.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        assert leaf_tier_bound(instance) == pytest.approx(0.5)  # 1.0 / (2 leaves)

    def test_best_picks_max(self, instance):
        lb, name = best_lower_bound(instance)
        assert lb == max(
            path_volume_bound(instance),
            top_tier_bound(instance),
            leaf_tier_bound(instance),
        )
        assert name in {"path_volume", "top_tier_srpt", "leaf_tier_srpt"}

    def test_empty_instance(self):
        instance = Instance(star_of_paths(2, 1), JobSet([]), Setting.IDENTICAL)
        assert best_lower_bound(instance) == (0.0, "empty")

    def test_bounds_never_exceed_any_simulated_schedule(self):
        """Soundness: the LB must be <= the flow of every policy at unit
        speed (policies are feasible schedules for the adversary)."""
        tree = star_of_paths(3, 2)
        jobs = JobSet(
            [Job(id=i, release=0.6 * i, size=1.0 + (i % 3)) for i in range(18)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        lb, _ = best_lower_bound(instance)
        for policy in (GreedyIdenticalAssignment(0.5), LeastLoadedAssignment()):
            sim = simulate(instance, policy)
            assert lb <= sim.total_flow_time() + 1e-9
