"""Unit tests for the shared experiment workload builders."""

from __future__ import annotations

import pytest

from repro.analysis.experiments.workloads import (
    burst_instance,
    identical_instance,
    standard_trees,
    unrelated_instance,
)
from repro.exceptions import AnalysisError
from repro.network.builders import kary_tree
from repro.workload.instance import Setting


class TestStandardTrees:
    def test_family_coverage(self):
        trees = standard_trees()
        assert len(trees) == 5
        # At least one broomstick-free tree (exercises the general-tree
        # path) and one broomstick.
        assert any(not t.is_broomstick() for t in trees.values())
        assert any(t.is_broomstick() for t in trees.values())

    def test_all_legal(self):
        for tree in standard_trees().values():
            assert all(not tree.node(v).is_leaf for v in tree.root_children)


class TestBuilders:
    def test_identical_instance_load_scales_rate(self):
        tree = kary_tree(2, 3)
        lo = identical_instance(tree, 200, load=0.4, seed=0)
        hi = identical_instance(tree, 200, load=0.95, seed=0)
        # Higher load compresses the arrival span.
        assert hi.jobs.time_horizon() < lo.jobs.time_horizon()

    def test_size_kinds(self):
        tree = kary_tree(2, 3)
        for kind in ("uniform", "pareto", "bimodal"):
            inst = identical_instance(tree, 30, size_kind=kind, seed=1)
            assert len(inst.jobs) == 30
            assert inst.setting is Setting.IDENTICAL

    def test_unknown_size_kind(self):
        tree = kary_tree(2, 3)
        with pytest.raises(AnalysisError, match="size kind"):
            identical_instance(tree, 10, size_kind="zipf")

    def test_unrelated_matrices(self):
        tree = kary_tree(2, 3)
        for matrix in ("affinity", "partition"):
            inst = unrelated_instance(tree, 20, matrix=matrix, seed=2)
            assert inst.setting is Setting.UNRELATED
            job = inst.jobs.by_id(0)
            assert set(job.leaf_sizes) == set(tree.leaves)

    def test_unknown_matrix(self):
        tree = kary_tree(2, 3)
        with pytest.raises(AnalysisError, match="matrix kind"):
            unrelated_instance(tree, 10, matrix="nope")

    def test_burst_instance_shapes(self):
        tree = kary_tree(2, 3)
        inst = burst_instance(tree, num_bursts=3, jobs_per_burst=5, gap=10.0, seed=3)
        assert len(inst.jobs) == 15
        releases = inst.jobs.releases()
        # Three clusters ~10 apart.
        assert releases[0] < 2.0 and releases[-1] > 18.0

    def test_burst_instance_bursty_process_variant(self):
        tree = kary_tree(2, 3)
        inst = burst_instance(tree, seed=4, bursty_process=True)
        assert len(inst.jobs) == 4 * 12

    def test_determinism(self):
        tree = kary_tree(2, 3)
        a = identical_instance(tree, 25, seed=7)
        b = identical_instance(tree, 25, seed=7)
        assert (a.jobs.releases() == b.jobs.releases()).all()
        assert (a.jobs.sizes() == b.jobs.sizes()).all()
