"""Tests for the declarative trial grids and their sharded execution.

The contract under test: every registry experiment is a grid of pure,
individually cacheable trials whose serial composition (the derived
``run()``) and sharded recomposition (the runner's trial path) produce
bit-identical :class:`ExperimentResult` payloads.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import all_experiment_ids, run_experiment
from repro.analysis.experiments.grid import (
    TrialSpec,
    all_grid_ids,
    enumerate_trials,
    execute_trial,
    get_grid,
    merge_params,
    trial_digest,
    trial_seed,
)
from repro.analysis.runner import run_experiments, trial_cache_path
from repro.exceptions import AnalysisError
from tests.test_experiments import QUICK_PARAMS
from tests.test_runner import same_payload

#: Grids cheap enough to actually execute inside tier-1.
FAST_GRID_IDS = ["F1", "F2", "L2", "X3"]


def test_every_registry_experiment_is_a_grid():
    assert all_grid_ids() == all_experiment_ids()


@pytest.mark.parametrize("exp_id", sorted(QUICK_PARAMS))
def test_specs_are_unique_and_json_able(exp_id):
    """Trial ids are unique within a grid and params are plain data —
    the whole spec must survive a JSON round-trip (the cache key and the
    RNG digest both hash its canonical JSON)."""
    grid = get_grid(exp_id)
    specs = enumerate_trials(grid, merge_params(grid, QUICK_PARAMS[exp_id]))
    assert specs, exp_id
    seen = set()
    for spec in specs:
        assert spec.exp_id == exp_id
        assert spec.trial_id not in seen
        seen.add(spec.trial_id)
        round_tripped = json.loads(json.dumps(spec.params))
        assert json.dumps(round_tripped, sort_keys=True)


@pytest.mark.parametrize("exp_id", sorted(QUICK_PARAMS))
def test_digests_distinct_within_grid(exp_id):
    grid = get_grid(exp_id)
    specs = enumerate_trials(grid, merge_params(grid, QUICK_PARAMS[exp_id]))
    digests = [trial_digest(spec) for spec in specs]
    assert len(set(digests)) == len(digests)
    assert digests == [trial_digest(spec) for spec in specs]  # deterministic
    for digest in digests:
        assert 0 <= trial_seed(digest) < 2**32


def test_unknown_param_rejected():
    grid = get_grid("F1")
    with pytest.raises(AnalysisError, match="unknown parameter"):
        merge_params(grid, {"no_such_param": 1})


def test_duplicate_trial_id_rejected():
    grid = get_grid("F1")
    bad = type(grid)(
        exp_id="F1",
        defaults=grid.defaults,
        trials=lambda p: [TrialSpec("F1", "x"), TrialSpec("F1", "x")],
        run_trial=grid.run_trial,
        reduce=grid.reduce,
    )
    with pytest.raises(AnalysisError, match="duplicate trial id"):
        enumerate_trials(bad, dict(grid.defaults))


@pytest.mark.parametrize("exp_id", FAST_GRID_IDS)
def test_trial_reexecution_is_bit_identical(exp_id):
    """A trial reruns to the same payload even after other trials have
    perturbed the global RNG state (the digest reseed at work)."""
    grid = get_grid(exp_id)
    specs = enumerate_trials(grid, merge_params(grid, QUICK_PARAMS[exp_id]))
    first = [execute_trial(grid, spec) for spec in specs]
    again = [execute_trial(grid, spec) for spec in reversed(specs)]
    assert first == list(reversed(again))


@pytest.mark.parametrize("exp_id", FAST_GRID_IDS)
def test_sharded_runner_matches_direct_run(exp_id, tmp_path):
    direct = run_experiment(exp_id, **QUICK_PARAMS[exp_id])
    sharded = run_experiments(
        [exp_id],
        params_by_id={exp_id: QUICK_PARAMS[exp_id]},
        cache_dir=tmp_path,
        shard_trials=True,
    )[0]
    assert sharded.trials_total == len(
        enumerate_trials(
            get_grid(exp_id), merge_params(get_grid(exp_id), QUICK_PARAMS[exp_id])
        )
    )
    assert same_payload(direct, sharded.result)


def test_partial_rerun_reuses_trial_cache(tmp_path):
    """Extending a sweep only pays for the new cells: L2 at one eps,
    then at two, hits the first eps's trial entry."""
    small = run_experiments(
        ["L2"], params_by_id={"L2": {"eps_values": (0.5,)}}, cache_dir=tmp_path
    )[0]
    assert (small.trials_total, small.trials_cached) == (1, 0)
    grown = run_experiments(
        ["L2"], params_by_id={"L2": {"eps_values": (0.5, 0.25)}}, cache_dir=tmp_path
    )[0]
    assert (grown.trials_total, grown.trials_cached) == (2, 1)
    # the grown result matches a fresh uncached run cell-for-cell
    fresh = run_experiment("L2", eps_values=(0.5, 0.25))
    assert same_payload(fresh, grown.result)


def test_corrupt_trial_entry_is_a_miss(tmp_path):
    first = run_experiments(["F1"], cache_dir=tmp_path)[0]
    grid = get_grid("F1")
    (spec,) = enumerate_trials(grid, merge_params(grid, {}))
    from repro.analysis.runner import trial_cache_key

    tkey = trial_cache_key("F1", spec.trial_id, spec.params)
    path = trial_cache_path(tmp_path, tkey)
    assert path.is_file()
    path.write_bytes(b"junk")
    # experiment-level entry still hits; drop it to force the trial path
    from repro.analysis.runner import cache_path

    cache_path(tmp_path, first.key).unlink()
    again = run_experiments(["F1"], cache_dir=tmp_path)[0]
    assert (again.trials_total, again.trials_cached) == (1, 0)
    assert same_payload(first.result, again.result)
