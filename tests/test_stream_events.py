"""Dynamic events through the open-system :class:`StreamSession`.

The satellite contract under test: windowed stats must never count a
cancelled or outage-stalled job as a completion.  The deterministic
timeline below places a cancellation inside window 0 and stalls a job
across the window-0/window-1 boundary with a node outage, then checks
every counter, all closed windows, and the ``snapshot/v1`` document.

Timeline (window = 10, chain root 0 → router 1 → leaf 2, speed 1,
identical setting so each hop of job *j* takes ``p_j``):

====  =======================================================
t     event
====  =======================================================
0     job 0 (size 3) released; starts at router 1
1     job 1 (size 5) released; queued at the router
2     job 2 (size 4) released; queued at the router
3     job 0 hops to the leaf; SJF starts job 2 (4 < 5)
6     job 0 **completes** (flow 6); job 1 **cancelled** while
      queued at the router (completion-before-event tie rule)
7     job 2 hops to the leaf; job 3 (size 5, released at 4)
      starts at the router
8     router 1 goes **down** — job 3 stalls with 4 remaining
10    window 0 closes: 1 completion, 1 cancellation, jobs 2
      and 3 in flight (neither is a completion)
11    job 2 **completes** (flow 9) — a window-1 completion
13    router 1 comes back **up**; job 3 resumes
17    job 3 hops to the leaf
22    job 3 **completes** (flow 18) — a window-2 completion
====  =======================================================
"""

from __future__ import annotations

import pytest

from repro import api
from repro.exceptions import SimulationError
from repro.network.builders import tree_from_parent_map
from repro.service.http import render_metrics
from repro.service.metrics import validate_snapshot
from repro.workload.events import Cancel, EventSchedule, NodeDown, NodeUp
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet

WINDOW = 10.0


def _instance():
    tree = tree_from_parent_map({0: None, 1: 0, 2: 1})
    jobs = JobSet.build(
        releases=[0.0, 1.0, 2.0, 4.0],
        sizes=[3.0, 5.0, 4.0, 5.0],
    )
    return Instance(tree, jobs, Setting.IDENTICAL, name="stream-events")


def _events():
    return EventSchedule(
        [Cancel(6.0, 1), NodeDown(8.0, 1), NodeUp(13.0, 1)]
    )


def _session(**kw):
    return api.open_system(
        instance=_instance(), events=_events(), window=WINDOW,
        keep_windows=100, **kw
    )


class TestWindowBoundary:
    def test_cancelled_and_stalled_jobs_are_not_window_completions(self):
        sess = _session()
        sess.step(until=WINDOW)  # close window 0 exactly at the boundary
        w0 = sess.last_window
        assert w0 is not None and w0.index == 0
        assert w0.arrivals == 4
        assert w0.completions == 1, (
            "window 0 saw exactly job 0 complete; the cancelled and the "
            "stalled jobs must not inflate the count"
        )
        assert w0.cancelled == 1
        # The in-flight jobs (one stalled on the downed router, one in
        # service at the leaf) are not completions at the boundary.
        snap = sess.snapshot()
        assert snap.completions_total == 1
        assert snap.cancelled_total == 1
        assert snap.jobs_in_flight == 2

        sess.drain()
        w1, w2 = sess.windows[1], sess.windows[2]
        assert w1.completions == 1  # job 2, finishing at the leaf
        assert w1.cancelled == 0
        assert w2.completions == 1  # job 3, after the repair
        assert w2.cancelled == 0
        assert sess.snapshot().completions_total == 3

    def test_cancelled_flow_never_enters_the_histograms(self):
        sess = _session()
        sess.drain()
        snap = sess.snapshot()
        # Completions: flows 6, 9, 18.  The cancellation contributes
        # nothing, cumulatively or per window.
        assert snap.flow["count"] == 3
        assert snap.flow["mean"] == pytest.approx((6.0 + 9.0 + 18.0) / 3.0)
        w0, w1, w2 = sess.windows[0], sess.windows[1], sess.windows[2]
        assert [w.flow["count"] for w in (w0, w1, w2)] == [1, 1, 1]
        assert w0.flow["mean"] == pytest.approx(6.0)
        assert w1.flow["mean"] == pytest.approx(9.0)
        assert w2.flow["mean"] == pytest.approx(18.0)

    def test_completion_times_are_the_documented_timeline(self):
        done: dict[int, float] = {}
        sess = _session(
            on_finish=lambda r: done.__setitem__(r.job_id, r.completion)
        )
        sess.drain()
        assert done == {0: 6.0, 2: 11.0, 3: 22.0}

    def test_on_cancel_hook_sees_the_withdrawn_record(self):
        cancelled: list = []
        done: list[int] = []
        sess = _session(
            on_finish=lambda r: done.append(r.job_id),
            on_cancel=cancelled.append,
        )
        sess.drain()
        assert [r.job_id for r in cancelled] == [1]
        assert cancelled[0].cancelled_at == 6.0
        with pytest.raises(SimulationError):
            cancelled[0].completion  # a cancel is not a completion
        assert 1 not in done

    def test_counters_partition_the_arrivals(self):
        sess = _session()
        sess.drain()
        snap = sess.snapshot()
        assert (
            snap.completions_total + snap.cancelled_total
            == snap.arrivals_total
        )
        assert snap.jobs_in_flight == 0
        assert sum(w.cancelled for w in sess.windows) == snap.cancelled_total


class TestSnapshotContract:
    def test_snapshot_document_validates_with_cancelled_fields(self):
        sess = _session()
        sess.drain()
        doc = sess.snapshot().to_dict()
        assert validate_snapshot(doc) == []
        assert doc["cancelled_total"] == 1
        assert doc["last_window"]["cancelled"] == 0

    def test_validator_requires_the_cancelled_fields(self):
        sess = _session()
        sess.drain()
        doc = sess.snapshot().to_dict()
        bad = {k: v for k, v in doc.items() if k != "cancelled_total"}
        assert any("cancelled_total" in p for p in validate_snapshot(bad))
        doc["last_window"] = {
            k: v for k, v in doc["last_window"].items() if k != "cancelled"
        }
        assert any(
            "last_window.cancelled" in p for p in validate_snapshot(doc)
        )

    def test_prometheus_export_carries_the_cancelled_counter(self):
        sess = _session()
        sess.step(until=WINDOW)
        body = render_metrics(sess)
        assert "repro_stream_cancelled_total 1" in body
        assert "repro_stream_completions_total 1" in body
