"""The deprecation shims: every legacy call form still works, emits
exactly one :class:`DeprecationWarning`, and produces the same result as
its replacement.  These tests pin the one-release compatibility window
promised by the API redesign."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import api
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile


def _instance():
    return api.make_instance(n_jobs=8, seed=2)


def _policy():
    from repro.core.assignment import GreedyIdenticalAssignment

    return GreedyIdenticalAssignment(0.5)


def assert_warns_once(record, match):
    hits = [w for w in record if match in str(w.message)]
    assert len(hits) == 1, [str(w.message) for w in record]
    assert all(issubclass(w.category, DeprecationWarning) for w in hits)


class TestTopLevelSimulate:
    def test_attribute_access_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="top level is deprecated"):
            fn = repro.simulate
        assert fn is simulate

    def test_each_access_warns_once(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            repro.simulate
        assert_warns_once(record, "top level is deprecated")

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_api

    def test_listed_in_all_for_star_import_compat(self):
        assert "simulate" in repro.__all__


class TestPositionalSpeeds:
    def test_warns_once_and_matches_keyword_form(self):
        inst = _instance()
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = simulate(inst, _policy(), SpeedProfile.uniform(1.5))
        assert_warns_once(record, "positionally")
        modern = simulate(inst, _policy(), speeds=SpeedProfile.uniform(1.5))
        assert legacy.total_flow_time() == modern.total_flow_time()

    def test_keyword_form_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(_instance(), _policy(), speeds=SpeedProfile.uniform(1.0))
            simulate(_instance(), _policy())

    def test_both_forms_conflict(self):
        with pytest.raises(TypeError, match="both"):
            simulate(
                _instance(),
                _policy(),
                SpeedProfile.uniform(1.0),
                speeds=SpeedProfile.uniform(1.0),
            )

    def test_extra_positionals_rejected(self):
        with pytest.raises(TypeError):
            simulate(
                _instance(),
                _policy(),
                SpeedProfile.uniform(1.0),
                object(),
            )


class TestPositionalRunnerParams:
    def test_warns_once_and_matches_keyword_form(self, tmp_path):
        from repro.analysis.runner import run_experiments
        from tests.test_experiments import QUICK_PARAMS

        params = {"F1": QUICK_PARAMS.get("F1", {})}
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            legacy = run_experiments(
                ["F1"], params, cache_dir=tmp_path / "a"
            )
        assert_warns_once(record, "positionally")
        modern = run_experiments(
            ["F1"], params_by_id=params, cache_dir=tmp_path / "b"
        )
        assert legacy[0].key == modern[0].key
        assert legacy[0].result.render() == modern[0].result.render()

    def test_both_forms_conflict(self, tmp_path):
        from repro.analysis.runner import run_experiments

        with pytest.raises(TypeError, match="both"):
            run_experiments(["F1"], {}, params_by_id={}, cache_dir=tmp_path)


class TestEventLog:
    def test_constructor_warns_once(self):
        from repro.sim.events import EventLog

        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            log = EventLog()
        assert_warns_once(record, "EventLog is deprecated")
        assert log.events == []

    def test_still_functions_as_observer(self):
        from repro.sim.events import EventKind, EventLog

        with pytest.warns(DeprecationWarning):
            log = EventLog()
        result = simulate(_instance(), _policy(), observer=log)
        finishes = log.of_kind(EventKind.FINISH)
        assert sorted(e.job_id for e in finishes) == sorted(result.records)


def test_modern_surface_is_warning_free(tmp_path):
    """The blessed call forms never trip a DeprecationWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        inst = api.make_instance(n_jobs=6, seed=1)
        api.simulate(instance=inst)
        api.trace_run(instance=inst)
        api.run_experiments(exp_ids=["F1"], cache_dir=tmp_path)


class TestRemovalPath:
    """The shims above go away in the next API-cleanup PR.  These tests
    make that removal mechanical: the modern surfaces are proven clean
    under warnings-as-errors (so deleting the shims cannot break blessed
    callers), and one canary per shim fails loudly the moment the shim
    disappears — its failure message is the removal checklist."""

    def test_fuzz_surface_is_warning_free(self, tmp_path):
        # The fuzzing subsystem must never lean on a deprecated call
        # form: it has to survive the shim removal unchanged.
        from repro.testing import run_fuzz

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            summary = run_fuzz(
                seed=3, max_cases=20, corpus_dir=tmp_path / "corpus"
            )
        assert summary.cases_run == 20
        assert summary.ok

    def test_eventlog_shim_canary(self):
        """CANARY — this failing means the EventLog shim was removed.

        Finish the removal by deleting, in the same commit:
          * class ``EventLog`` in ``src/repro/sim/events.py``,
          * its re-export in ``src/repro/sim/__init__.py`` (import line
            and the ``__all__`` entry),
          * ``TestEventLog`` in this file, and
          * this canary.
        """
        from repro.sim import events

        assert hasattr(events, "EventLog"), self.test_eventlog_shim_canary.__doc__
        assert "EventLog" in events.__all__

    def test_eventlog_shim_points_at_replacement(self):
        """The deprecation message must name the supported replacement
        so downstream users migrating at removal time know where to go."""
        from repro.sim.events import EventLog

        with pytest.warns(DeprecationWarning, match="repro.obs.TraceRecorder"):
            EventLog()

    def test_top_level_simulate_shim_canary(self):
        """CANARY — this failing means the lazy top-level ``repro.simulate``
        shim was removed.  Delete ``TestTopLevelSimulate`` and this
        canary alongside it (and the ``__getattr__`` hook plus the
        ``__all__`` entry in ``src/repro/__init__.py``)."""
        assert "simulate" in repro.__all__
        with pytest.warns(DeprecationWarning):
            assert repro.simulate is simulate
