"""The deprecation *removals*: every legacy call form that spent its
one-release compatibility window is now gone, and the modern surface is
warning-free.  Each test here is the flipped form of the old shim test —
where the shim suite asserted "warns and still works", this suite
asserts "raises / absent" so a shim cannot quietly come back."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import api
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile


def _instance():
    return api.make_instance(n_jobs=8, seed=2)


def _policy():
    from repro.core.assignment import GreedyIdenticalAssignment

    return GreedyIdenticalAssignment(0.5)


class TestTopLevelSimulateRemoved:
    """``repro.simulate`` (the lazy ``__getattr__`` alias) is gone; the
    blessed entry points are ``repro.api.simulate`` and
    ``repro.sim.simulate``."""

    def test_attribute_access_raises(self):
        with pytest.raises(AttributeError):
            repro.simulate

    def test_not_listed_in_all(self):
        assert "simulate" not in repro.__all__

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_api

    def test_replacements_importable(self):
        from repro.sim import simulate as sim_simulate

        assert sim_simulate is simulate
        assert callable(api.simulate)


class TestPositionalSpeedsRemoved:
    """``simulate(instance, policy, speeds_profile)`` is now a
    TypeError; every option is keyword-only."""

    def test_positional_speeds_rejected(self):
        with pytest.raises(TypeError):
            simulate(_instance(), _policy(), SpeedProfile.uniform(1.5))

    def test_keyword_form_works_and_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = simulate(
                _instance(), _policy(), speeds=SpeedProfile.uniform(1.5)
            )
        assert result.records


class TestPositionalRunnerParamsRemoved:
    """``run_experiments(ids, params)`` is now a TypeError;
    ``params_by_id`` is keyword-only."""

    def test_positional_params_rejected(self, tmp_path):
        from repro.analysis.runner import run_experiments

        with pytest.raises(TypeError):
            run_experiments(["F1"], {}, cache_dir=tmp_path)

    def test_keyword_form_works(self, tmp_path):
        from repro.analysis.runner import run_experiments
        from tests.test_experiments import QUICK_PARAMS

        params = {"F1": QUICK_PARAMS.get("F1", {})}
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            out = run_experiments(["F1"], params_by_id=params, cache_dir=tmp_path)
        assert out and out[0].key


class TestEventLogRemoved:
    """The observer-side ``EventLog`` recorder is gone; structured
    traces come from :mod:`repro.obs` (``tracer=`` / ``api.trace_run``)."""

    def test_import_raises(self):
        with pytest.raises(ImportError):
            from repro.sim.events import EventLog  # noqa: F401

    def test_absent_from_module_and_all(self):
        from repro.sim import events

        assert not hasattr(events, "EventLog")
        assert "EventLog" not in events.__all__

    def test_absent_from_sim_package(self):
        import repro.sim as sim

        assert not hasattr(sim, "EventLog")
        assert "EventLog" not in sim.__all__

    def test_timeline_vocabulary_survives(self):
        # The typed-event vocabulary stays: repro.obs builds on it.
        from repro.sim.events import EventKind, TraceEvent

        ev = TraceEvent(0.0, EventKind.ARRIVAL, job_id=0, node=1)
        assert ev.kind is EventKind.ARRIVAL

    def test_replacement_covers_the_use_case(self):
        result = api.trace_run(instance=_instance())
        done = {p.job_id for p in result.trace.points_of("finish")}
        assert done == set(result.records)


class TestCollectCountersRenameShim:
    """The *live* one-release shim: ``collect_counters=`` →
    ``counters=`` in ``api.simulate`` / ``api.trace_run``.  Warns once
    per call and still works; next release these tests flip into the
    removal form above (old spelling becomes a ``TypeError``)."""

    def test_simulate_old_name_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="collect_counters"):
            result = api.simulate(instance=_instance(), collect_counters=True)
        assert result.counters is not None

    def test_trace_run_old_name_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="collect_counters"):
            result = api.trace_run(instance=_instance(), collect_counters=True)
        assert result.counters is not None
        assert result.trace is not None

    def test_exactly_one_warning_per_call(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.simulate(instance=_instance(), collect_counters=False)
        dep = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(dep) == 1

    def test_new_name_wins_when_both_passed(self):
        with pytest.warns(DeprecationWarning):
            result = api.simulate(
                instance=_instance(), counters=True, collect_counters=False
            )
        assert result.counters is not None

    def test_new_name_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = api.simulate(instance=_instance(), counters=True)
        assert result.counters is not None


def test_modern_surface_is_warning_free(tmp_path):
    """The blessed call forms never trip a DeprecationWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        inst = api.make_instance(n_jobs=6, seed=1)
        api.simulate(instance=inst)
        api.trace_run(instance=inst)
        api.open_system(instance=inst).drain()
        api.run_experiments(exp_ids=["F1"], cache_dir=tmp_path)


def test_fuzz_surface_is_warning_free(tmp_path):
    # The fuzzing subsystem never leaned on a deprecated call form, so
    # it survived the shim removal unchanged.
    from repro.testing import run_fuzz

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        summary = run_fuzz(seed=3, max_cases=20, corpus_dir=tmp_path / "corpus")
    assert summary.cases_run == 20
    assert summary.ok
