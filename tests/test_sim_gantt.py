"""Unit tests for the ASCII Gantt renderer."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import AnalysisError
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def pipeline_result():
    tree = spine_tree(1)
    jobs = JobSet([Job(id=0, release=0.0, size=2.0), Job(id=1, release=0.0, size=4.0)])
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    return simulate(instance, FixedAssignment({0: 2, 1: 2}), record_segments=True)


class TestRenderGantt:
    def test_requires_segments(self):
        tree = spine_tree(1)
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        res = simulate(instance, FixedAssignment({0: 2}))
        with pytest.raises(AnalysisError, match="record_segments"):
            render_gantt(res)

    def test_row_per_processing_node(self, pipeline_result):
        text = render_gantt(pipeline_result, width=40)
        lines = text.splitlines()
        # header + router + leaf + legend
        assert len(lines) == 4

    def test_glyphs_reflect_schedule(self, pipeline_result):
        # Router: job0 [0,2), job1 [2,6).  Leaf: job0 [2,4), idle, job1 [6,10).
        text = render_gantt(pipeline_result, width=10)  # cell = 1.0
        router_row = next(l for l in text.splitlines() if "router#1" in l)
        cells = router_row.split("| ")[1]
        assert cells[0] == "0" and cells[1] == "0"
        assert cells[2] == "1" and cells[5] == "1"
        leaf_row = next(l for l in text.splitlines() if "leaf#2" in l)
        lcells = leaf_row.split("| ")[1]
        assert lcells[2] == "0" and lcells[3] == "0"
        assert lcells[4] == "." and lcells[5] == "."
        assert lcells[6] == "1"

    def test_idle_everywhere_before_release(self):
        tree = spine_tree(1)
        jobs = JobSet([Job(id=0, release=5.0, size=1.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: 2}), record_segments=True)
        text = render_gantt(res, width=7)  # horizon 7, cell 1
        router_row = next(l for l in text.splitlines() if "router#1" in l)
        assert router_row.split("| ")[1][:5] == "....."

    def test_busy_system_renders_without_error(self):
        tree = star_of_paths(3, 2)
        jobs = JobSet(
            [Job(id=i, release=0.3 * i, size=1.0 + i % 3) for i in range(20)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.5), record_segments=True)
        text = render_gantt(res, width=60)
        assert len(text.splitlines()) == tree.num_nodes - 1 + 2

    def test_until_window(self, pipeline_result):
        text = render_gantt(pipeline_result, width=10, until=2.0)
        router_row = next(l for l in text.splitlines() if "router#1" in l)
        assert set(router_row.split("| ")[1]) == {"0"}

    def test_empty_schedule(self):
        tree = spine_tree(1)
        instance = Instance(tree, JobSet([]), Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({}), record_segments=True)
        assert render_gantt(res) == "(empty schedule)"
