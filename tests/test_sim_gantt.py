"""Unit tests for the ASCII Gantt renderer."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import AnalysisError
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def pipeline_result():
    tree = spine_tree(1)
    jobs = JobSet([Job(id=0, release=0.0, size=2.0), Job(id=1, release=0.0, size=4.0)])
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    return simulate(instance, FixedAssignment({0: 2, 1: 2}), record_segments=True)


class TestRenderGantt:
    def test_requires_segments(self):
        tree = spine_tree(1)
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        res = simulate(instance, FixedAssignment({0: 2}))
        with pytest.raises(AnalysisError, match="record_segments"):
            render_gantt(res)

    def test_row_per_processing_node(self, pipeline_result):
        text = render_gantt(pipeline_result, width=40)
        lines = text.splitlines()
        # header + router + leaf + legend
        assert len(lines) == 4

    def test_glyphs_reflect_schedule(self, pipeline_result):
        # Router: job0 [0,2), job1 [2,6).  Leaf: job0 [2,4), idle, job1 [6,10).
        text = render_gantt(pipeline_result, width=10)  # cell = 1.0
        router_row = next(l for l in text.splitlines() if "router#1" in l)
        cells = router_row.split("| ")[1]
        assert cells[0] == "0" and cells[1] == "0"
        assert cells[2] == "1" and cells[5] == "1"
        leaf_row = next(l for l in text.splitlines() if "leaf#2" in l)
        lcells = leaf_row.split("| ")[1]
        assert lcells[2] == "0" and lcells[3] == "0"
        assert lcells[4] == "." and lcells[5] == "."
        assert lcells[6] == "1"

    def test_idle_everywhere_before_release(self):
        tree = spine_tree(1)
        jobs = JobSet([Job(id=0, release=5.0, size=1.0)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: 2}), record_segments=True)
        text = render_gantt(res, width=7)  # horizon 7, cell 1
        router_row = next(l for l in text.splitlines() if "router#1" in l)
        assert router_row.split("| ")[1][:5] == "....."

    def test_busy_system_renders_without_error(self):
        tree = star_of_paths(3, 2)
        jobs = JobSet(
            [Job(id=i, release=0.3 * i, size=1.0 + i % 3) for i in range(20)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.5), record_segments=True)
        text = render_gantt(res, width=60)
        assert len(text.splitlines()) == tree.num_nodes - 1 + 2

    def test_until_window(self, pipeline_result):
        text = render_gantt(pipeline_result, width=10, until=2.0)
        router_row = next(l for l in text.splitlines() if "router#1" in l)
        assert set(router_row.split("| ")[1]) == {"0"}

    def test_empty_schedule(self):
        tree = spine_tree(1)
        instance = Instance(tree, JobSet([]), Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({}), record_segments=True)
        assert render_gantt(res) == "(empty schedule)"


class TestSubCellSegments:
    """Regression: segments shorter than one cell used to be binned one
    cell early (an absolute ``end - 1e-12`` clamp interacted badly with
    inexact cell widths) or could index past the rendered window."""

    @staticmethod
    def _result_with_segments(segments):
        from repro.sim.result import ScheduleSegment, SimulationResult
        from repro.sim.speed import SpeedProfile

        tree = spine_tree(1)
        instance = Instance(
            tree, JobSet([Job(id=7, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        return SimulationResult(
            instance=instance,
            speeds=SpeedProfile.uniform(1.0),
            records={},
            fractional_flow=0.0,
            alive_integral=0.0,
            num_events=0,
            segments=[ScheduleSegment(1, 7, s, e) for s, e in segments],
        )

    def _router_cells(self, segments, width=10, until=1.0):
        res = self._result_with_segments(segments)
        text = render_gantt(res, width=width, until=until)
        row = next(l for l in text.splitlines() if "router#1" in l)
        return row.split("| ")[1]

    def test_boundary_start_lands_in_majority_cell(self):
        # cell = 0.1 (inexact); 3 * cell = 0.30000000000000004 > 0.3, so
        # int(0.3 / cell) == 2 although nearly all of the segment lies in
        # cell 3.  The old clamp drew only cell 2.
        cells = self._router_cells([(0.3, 0.30000000000001)])
        assert cells[3] == "7"

    def test_interior_sub_cell_segment_draws_its_cell(self):
        cells = self._router_cells([(0.55, 0.56)])
        assert cells[5] == "7"
        assert cells.count("7") == 1

    def test_end_on_boundary_does_not_spill(self):
        # A segment ending exactly on a representable cell boundary
        # belongs to the cell it closes, not the one it opens.
        boundary = 6 * (1.0 / 10)  # 0.6000000000000001, exactly 6*cell
        cells = self._router_cells([(0.45, boundary)])
        assert cells[6] == "."
        assert cells[4] == "7" and cells[5] == "7"

    def test_segment_beyond_window_is_ignored(self):
        cells = self._router_cells([(5.0, 5.5)], until=1.0)
        assert set(cells) == {"."}
