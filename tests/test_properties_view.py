"""Property test: ``SchedulerView.jobs_through`` shortcut consistency.

``jobs_through(v)`` (the paper's ``Q_v(t)``) takes three code paths —
the root-adjacent shortcut (node heap), the leaf shortcut (alive-at-leaf
index), and the general alive-set scan.  On random trees and workloads,
at every engine event, each path must agree with a brute-force
recomputation from public view state only.
"""

from __future__ import annotations

import random

from repro.analysis.experiments.workloads import identical_instance
from repro.baselines.policies import RandomAssignment
from repro.core.assignment import GreedyIdenticalAssignment
from repro.network.builders import kary_tree, random_tree, star_of_paths
from repro.sim.engine import simulate


def brute_jobs_through(view, node) -> set[int]:
    """``Q_v(t)`` recomputed from public queries only: released jobs with
    ``v`` on their processing path, not yet completed on ``v``."""
    out = set()
    for jid in view.alive_jobs():
        cur = view.current_node_of(jid)
        if cur is None:
            continue
        path = view.instance.processing_path_for(
            view.job(jid), view.assigned_leaf(jid)
        )
        if node in path and path.index(node) >= path.index(cur):
            out.add(jid)
    return out


def check_instance(instance, policy, sample_every=1):
    tree = instance.tree
    nodes = [n.id for n in tree if not n.is_root]
    # The tree must exercise all three code paths at least structurally.
    calls = {"checked": 0}

    def obs(view, kind, subject):
        calls["checked"] += 1
        if calls["checked"] % sample_every:
            return
        for v in nodes:
            got = set(view.jobs_through(v))
            want = brute_jobs_through(view, v)
            assert got == want, (
                f"jobs_through({v}) diverged at t={view.now}: "
                f"shortcut={sorted(got)} scan={sorted(want)}"
            )

    simulate(instance, policy, observer=obs)
    assert calls["checked"] > 0


class TestJobsThroughAgreement:
    def test_random_trees_greedy(self):
        for seed in (0, 1, 2):
            tree = random_tree(14, rng=seed)
            instance = identical_instance(tree, 20, load=0.95, seed=seed)
            check_instance(instance, GreedyIdenticalAssignment(0.25))

    def test_random_trees_random_policy(self):
        rng = random.Random(7)
        for seed in (3, 4):
            tree = random_tree(10 + rng.randrange(8), rng=seed)
            instance = identical_instance(tree, 15, load=0.9, seed=seed + 100)
            check_instance(instance, RandomAssignment(seed))

    def test_deep_paths_cover_interior_scan(self):
        # Interior (non-root-adjacent, non-leaf) nodes force the general
        # alive-set scan; depth-3 paths have one per branch.
        instance = identical_instance(star_of_paths(3, 3), 18, load=0.95, seed=5)
        check_instance(instance, GreedyIdenticalAssignment(0.5))

    def test_kary_tree_has_all_three_paths(self):
        tree = kary_tree(2, 3)
        depths = {tree.depth(n.id) for n in tree if not n.is_root}
        assert len(depths) >= 3  # root-adjacent, interior, leaf tiers
        instance = identical_instance(tree, 20, load=0.9, seed=9)
        check_instance(instance, GreedyIdenticalAssignment(0.25))
