"""Unit tests for the LP-Primal construction and solve."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import LPError
from repro.lp.primal import MAX_VARIABLES, build_primal_lp, solve_primal_lp
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def single_job_instance(size=2.0):
    return Instance(
        spine_tree(1), JobSet([Job(id=0, release=0.0, size=size)]), Setting.IDENTICAL
    )


class TestSolve:
    def test_single_job_objective(self):
        """One size-2 job on router+leaf.

        The LP can pipeline fractionally, but the objective's η term alone
        charges P = 4, plus positive leaf/top waiting terms: LP* must land
        in (0, obj(schedule)] and below the true flow time 4 + slack.
        """
        sol = solve_primal_lp(single_job_instance())
        assert 0 < sol.objective <= 8.0

    def test_lower_bounds_simulated_total_flow(self):
        # LP* (a relaxation of the sum of two per-job flow lower bounds,
        # each individually <= flow) should not exceed 2x the best
        # simulated schedule's total flow.
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=i, release=float(i), size=1.0) for i in range(5)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        sol = solve_primal_lp(instance)
        sim = simulate(instance, GreedyIdenticalAssignment(0.5))
        assert sol.objective <= 2.0 * sim.total_flow_time() + 1e-6

    def test_more_speed_cannot_increase_optimum(self):
        instance = Instance(
            star_of_paths(2, 1),
            JobSet([Job(id=i, release=float(i), size=2.0) for i in range(4)]),
            Setting.IDENTICAL,
        )
        slow = solve_primal_lp(instance, SpeedProfile.uniform(1.0))
        fast = solve_primal_lp(instance, SpeedProfile.uniform(2.0))
        assert fast.objective <= slow.objective + 1e-6

    def test_forbidden_leaf_gets_no_variables(self):
        import math

        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        sol = solve_primal_lp(instance)
        assert all(v != 2 for (v, _, _) in sol.x)

    def test_unrelated_prefers_fast_leaf(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 50.0, 4: 1.0})]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        sol = solve_primal_lp(instance)
        on_fast = sum(val for (v, _, _), val in sol.x.items() if v == 4)
        on_slow = sum(val for (v, _, _), val in sol.x.items() if v == 2)
        assert on_fast > on_slow

    def test_solution_respects_capacity(self):
        instance = Instance(
            star_of_paths(2, 1),
            JobSet([Job(id=i, release=0.0, size=1.0) for i in range(4)]),
            Setting.IDENTICAL,
        )
        sol = solve_primal_lp(instance, SpeedProfile.uniform(1.0), dt=1.0)
        per_node_step: dict[tuple[int, int], float] = {}
        for (v, _, k), val in sol.x.items():
            per_node_step[(v, k)] = per_node_step.get((v, k), 0.0) + val
        assert all(val <= 1.0 + 1e-6 for val in per_node_step.values())

    def test_solution_completes_every_job(self):
        instance = Instance(
            star_of_paths(2, 1),
            JobSet([Job(id=i, release=0.0, size=2.0) for i in range(3)]),
            Setting.IDENTICAL,
        )
        sol = solve_primal_lp(instance)
        done = {j: 0.0 for j in instance.jobs.ids}
        leaves = set(instance.tree.leaves)
        for (v, j, _), val in sol.x.items():
            if v in leaves:
                done[j] += val / instance.processing_time(instance.jobs.by_id(j), v)
        for j, frac in done.items():
            assert frac == pytest.approx(1.0, abs=1e-6)

    def test_precedence_respected_cumulatively(self):
        # Work done on the leaf by step k never exceeds (fractionally)
        # work done on its parent router.
        instance = single_job_instance(size=4.0)
        sol = solve_primal_lp(instance)
        router, leaf = 1, 2
        K = sol.horizon_steps
        cum_r = cum_l = 0.0
        for k in range(K):
            cum_r += sol.x.get((router, 0, k), 0.0) / 4.0
            cum_l += sol.x.get((leaf, 0, k), 0.0) / 4.0
            assert cum_l <= cum_r + 1e-6


class TestConstruction:
    def test_empty_instance_rejected(self):
        instance = Instance(spine_tree(1), JobSet([]), Setting.IDENTICAL)
        with pytest.raises(LPError, match="no jobs"):
            solve_primal_lp(instance)

    def test_bad_dt_rejected(self):
        with pytest.raises(LPError, match="dt"):
            solve_primal_lp(single_job_instance(), dt=0.0)

    def test_horizon_auto_coarsens(self):
        # A long-release instance must coarsen dt instead of exploding.
        jobs = JobSet([Job(id=0, release=5000.0, size=1.0)])
        instance = Instance(spine_tree(1), jobs, Setting.IDENTICAL)
        sol = solve_primal_lp(instance, max_steps=100)
        assert sol.dt > 1.0
        assert sol.horizon_steps <= 100

    def test_size_guard(self):
        jobs = JobSet([Job(id=i, release=0.0, size=1.0) for i in range(40)])
        instance = Instance(star_of_paths(4, 3), jobs, Setting.IDENTICAL)
        with pytest.raises(LPError, match="variables"):
            build_primal_lp(instance, horizon_steps=2000)  # force a huge grid

    def test_build_returns_consistent_shapes(self):
        c, A_ub, b_ub, A_eq, b_eq, index, dt = build_primal_lp(
            single_job_instance()
        )
        assert A_ub.shape[0] == len(b_ub)
        assert A_eq.shape[0] == len(b_eq)
        assert A_ub.shape[1] == len(c) == A_eq.shape[1]
        assert len(index) <= len(c)
