"""Tests for the post-hoc schedule validator — including that it actually
catches corrupted schedules, not just passes good ones."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import InvariantViolation
from repro.network.builders import kary_tree, spine_tree
from repro.sim.engine import simulate
from repro.sim.invariants import validate_schedule
from repro.sim.result import ScheduleSegment
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


from tests.conftest import both_backends_fixture

_engine_backend = both_backends_fixture(__name__)


@pytest.fixture
def good_result():
    tree = kary_tree(2, 2)
    jobs = JobSet([Job(id=i, release=0.4 * i, size=1.0 + (i % 2)) for i in range(10)])
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    return simulate(
        instance, GreedyIdenticalAssignment(0.5), record_segments=True
    )


class TestAcceptsValidSchedules:
    def test_greedy_run_validates(self, good_result):
        validate_schedule(good_result)

    def test_requires_segments(self):
        tree = spine_tree(1)
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        res = simulate(instance, FixedAssignment({0: 2}))
        with pytest.raises(InvariantViolation, match="record_segments"):
            validate_schedule(res)


class TestCatchesCorruption:
    def test_overlapping_segments_detected(self, good_result):
        assert good_result.segments
        seg = good_result.segments[0]
        good_result.segments.append(
            ScheduleSegment(seg.node, 9999, seg.start, seg.end)
        )
        with pytest.raises(InvariantViolation):
            validate_schedule(good_result)

    def test_missing_work_detected(self, good_result):
        # Dropping one segment breaks work conservation for that job/node.
        removed = good_result.segments.pop(0)
        assert removed.duration > 0
        with pytest.raises(InvariantViolation, match="processed"):
            validate_schedule(good_result)

    def test_negative_duration_detected(self, good_result):
        good_result.segments.append(ScheduleSegment(1, 0, 5.0, 4.0))
        with pytest.raises(InvariantViolation, match="negative"):
            validate_schedule(good_result)

    def test_off_path_processing_detected(self, good_result):
        # Move one job's segment to a node not on its path, compensating
        # nothing: both conservation and off-path checks can fire.
        seg = good_result.segments[0]
        rec = good_result.records[seg.job_id]
        off_path = next(
            v for v in good_result.instance.tree.leaves if v != rec.leaf
        )
        good_result.segments[0] = dataclasses.replace(seg, node=off_path)
        with pytest.raises(InvariantViolation):
            validate_schedule(good_result)

    def test_broken_availability_chain_detected(self, good_result):
        rec = next(iter(good_result.records.values()))
        rec.available_at[1] -= 0.5
        with pytest.raises(InvariantViolation):
            validate_schedule(good_result)

    def test_completion_before_available_detected(self, good_result):
        rec = next(iter(good_result.records.values()))
        rec.available_at[-1] = rec.completed_at[-1] + 1.0
        with pytest.raises(InvariantViolation):
            validate_schedule(good_result)


class TestEngineInvariantMode:
    def test_check_invariants_on_busy_instance(self):
        tree = kary_tree(2, 3)
        jobs = JobSet(
            [Job(id=i, release=0.1 * i, size=1.0 + (i % 4)) for i in range(40)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(
            instance,
            GreedyIdenticalAssignment(0.25),
            record_segments=True,
            check_invariants=True,
        )
        validate_schedule(res)
        res.verify_complete()
