"""Unit tests for the arbitrary-arrival-node extension (Job.origin)."""

from __future__ import annotations

import pytest

from repro.baselines.policies import RandomAssignment, RoundRobinAssignment
from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.exceptions import AssignmentError, WorkloadError
from repro.network.builders import datacenter_tree, kary_tree
from repro.sim.engine import simulate
from repro.sim.invariants import validate_schedule
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet
from repro.workload.trace_io import instance_from_json, instance_to_json


@pytest.fixture
def tree():
    return kary_tree(2, 3)  # root 0, routers 1-2 (pods), 3-6, leaves 7-14


class TestValidation:
    def test_unknown_origin_rejected(self, tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, origin=999)])
        with pytest.raises(WorkloadError, match="not in the tree"):
            Instance(tree, jobs, Setting.IDENTICAL)

    def test_leaf_origin_rejected(self, tree):
        leaf = tree.leaves[0]
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, origin=leaf)])
        with pytest.raises(WorkloadError, match="is a leaf"):
            Instance(tree, jobs, Setting.IDENTICAL)

    def test_negative_origin_rejected(self):
        with pytest.raises(WorkloadError, match="origin"):
            Job(id=0, release=0.0, size=1.0, origin=-1)

    def test_root_origin_equivalent_to_none(self, tree):
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, origin=tree.root)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        job = jobs.by_id(0)
        assert instance.feasible_leaves(job) == tree.leaves

    def test_unrelated_origin_needs_feasible_leaf_below(self, tree):
        import math

        # Finite only outside the origin's subtree.
        origin = tree.root_children[0]
        outside = tree.leaves_under(tree.root_children[1])[0]
        sizes = {v: math.inf for v in tree.leaves}
        sizes[outside] = 1.0
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, leaf_sizes=sizes, origin=origin)])
        with pytest.raises(WorkloadError, match="below origin"):
            Instance(tree, jobs, Setting.UNRELATED)


class TestPathsAndEngine:
    def test_processing_path_excludes_origin(self, tree):
        origin = tree.root_children[0]
        leaf = tree.leaves_under(origin)[0]
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, origin=origin)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        path = instance.processing_path_for(jobs.by_id(0), leaf)
        assert path[0] != origin
        assert path[-1] == leaf
        assert len(path) == len(tree.processing_path(leaf)) - 1

    def test_engine_shorter_pipeline(self, tree):
        origin = tree.root_children[0]
        leaf = tree.leaves_under(origin)[0]
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=1.0),  # root origin
                Job(id=1, release=0.0, size=1.0, origin=origin),
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        other_leaf = tree.leaves_under(tree.root_children[1])[0]
        res = simulate(
            instance,
            FixedAssignment({0: other_leaf, 1: leaf}),
            record_segments=True,
        )
        validate_schedule(res)
        # Root-origin job crosses 3 nodes, pod-origin job only 2.
        assert res.records[0].flow_time == pytest.approx(3.0)
        assert res.records[1].flow_time == pytest.approx(2.0)

    def test_out_of_subtree_assignment_rejected(self, tree):
        origin = tree.root_children[0]
        outside = tree.leaves_under(tree.root_children[1])[0]
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, origin=origin)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        with pytest.raises(AssignmentError, match="outside its origin"):
            simulate(instance, FixedAssignment({0: outside}))

    def test_origin_job_shares_queues_with_root_jobs(self, tree):
        """An origin job must contend with root-origin traffic on shared
        nodes below the origin."""
        origin = tree.root_children[0]
        leaf = tree.leaves_under(origin)[0]
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=2.0),            # big, from root
                Job(id=1, release=0.0, size=2.0, origin=origin),
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: leaf, 1: leaf}), record_segments=True)
        validate_schedule(res)
        # Job 1 starts immediately below origin; job 0 arrives there at 2.
        # They serialise on the shared mid router and leaf.
        assert res.records[1].flow_time < res.records[0].flow_time


class TestPolicies:
    def test_greedy_respects_origin(self):
        tree = datacenter_tree(2, 2, 2)
        pods = tree.root_children
        jobs = JobSet(
            [
                Job(id=i, release=0.2 * i, size=1.0, origin=pods[i % 2])
                for i in range(16)
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.5), check_invariants=True)
        for jid, rec in res.records.items():
            origin = jobs.by_id(jid).origin
            assert tree.is_ancestor(origin, rec.leaf)

    def test_baselines_respect_origin(self):
        tree = datacenter_tree(2, 2, 2)
        pod = tree.root_children[0]
        jobs = JobSet(
            [Job(id=i, release=float(i), size=1.0, origin=pod) for i in range(8)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        for policy in (RandomAssignment(0), RoundRobinAssignment()):
            res = simulate(instance, policy)
            for rec in res.records.values():
                assert tree.is_ancestor(pod, rec.leaf)

    def test_mixed_origin_instance_completes(self):
        tree = datacenter_tree(2, 2, 2)
        pods = tree.root_children
        jobs = JobSet(
            [
                Job(
                    id=i,
                    release=0.3 * i,
                    size=1.0 + i % 2,
                    origin=None if i % 3 == 0 else pods[i % 2],
                )
                for i in range(18)
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, GreedyIdenticalAssignment(0.25), check_invariants=True)
        res.verify_complete()


class TestSerialisation:
    def test_origin_round_trips(self, tree):
        origin = tree.root_children[1]
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, origin=origin)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        restored = instance_from_json(instance_to_json(instance))
        assert restored.jobs.by_id(0).origin == origin

    def test_rounded_preserves_origin(self, tree):
        origin = tree.root_children[0]
        jobs = JobSet([Job(id=0, release=0.0, size=1.3, origin=origin)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        assert instance.rounded(0.5).jobs.by_id(0).origin == origin
