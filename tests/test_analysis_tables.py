"""Unit tests for the table renderer and ratio/sweep helpers."""

from __future__ import annotations

import pytest

from repro.analysis.ratios import competitive_report, lower_bound_for
from repro.analysis.sweeps import run_policy_grid, speed_sweep
from repro.analysis.tables import Table, fmt
from repro.baselines.policies import ClosestLeafAssignment
from repro.core.assignment import GreedyIdenticalAssignment
from repro.exceptions import AnalysisError
from repro.network.builders import star_of_paths
from repro.sim.engine import fifo_priority, simulate, sjf_priority
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


class TestFmt:
    def test_float_precision(self):
        assert fmt(1.23456, 3) == "1.235"

    def test_int_passthrough(self):
        assert fmt(7) == "7"

    def test_bool_and_str(self):
        assert fmt(True) == "True"
        assert fmt("x") == "x"

    def test_scientific_for_extremes(self):
        assert "e" in fmt(1e9)
        assert "e" in fmt(1e-9)

    def test_nan(self):
        assert fmt(float("nan")) == "nan"


class TestTable:
    def test_render_alignment(self):
        t = Table("title", ["a", "bb"])
        t.add_row(1, 2.0)
        t.add_row(100, 3.5)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "title"
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_row_arity_checked(self):
        t = Table("t", ["a"])
        with pytest.raises(AnalysisError, match="cells"):
            t.add_row(1, 2)

    def test_column_access(self):
        t = Table("t", ["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("a") == ["1", "3"]
        with pytest.raises(AnalysisError, match="no column"):
            t.column("zzz")

    def test_csv(self):
        t = Table("t", ["a", "b"])
        t.add_row(1, 2)
        assert t.to_csv() == "a,b\n1,2"

    def test_empty_columns_rejected(self):
        with pytest.raises(AnalysisError):
            Table("t", [])

    def test_extend_and_len(self):
        t = Table("t", ["a"])
        t.extend([[1], [2], [3]])
        assert len(t) == 3


@pytest.fixture
def instance():
    tree = star_of_paths(2, 1)
    jobs = JobSet([Job(id=i, release=0.5 * i, size=1.0 + (i % 2)) for i in range(10)])
    return Instance(tree, jobs, Setting.IDENTICAL)


class TestRatios:
    def test_lower_bound_positive(self, instance):
        lb, name = lower_bound_for(instance)
        assert lb > 0
        assert isinstance(name, str)

    def test_lp_bound_at_least_combinatorial(self, instance):
        from repro.lp.bounds import best_lower_bound

        lp_lb, _ = lower_bound_for(instance, prefer_lp=True)
        combo, _ = best_lower_bound(instance)
        assert lp_lb >= combo - 1e-9

    def test_report_fields(self, instance):
        res = simulate(instance, GreedyIdenticalAssignment(0.5))
        rep = competitive_report("g", instance, res, prefer_lp=False)
        assert rep.ratio == pytest.approx(rep.total_flow / rep.lower_bound)
        assert rep.fractional_ratio <= rep.ratio + 1e-9

    def test_shared_bound(self, instance):
        res = simulate(instance, GreedyIdenticalAssignment(0.5))
        rep = competitive_report("g", instance, res, lower_bound=(10.0, "fixed"))
        assert rep.lower_bound == 10.0
        assert rep.bound_name == "fixed"

    def test_nonpositive_bound_rejected(self, instance):
        res = simulate(instance, GreedyIdenticalAssignment(0.5))
        with pytest.raises(AnalysisError):
            competitive_report("g", instance, res, lower_bound=(0.0, "bad"))


class TestSweeps:
    def test_speed_sweep_monotone_tendency(self, instance):
        reports = speed_sweep(
            instance,
            lambda: GreedyIdenticalAssignment(0.5),
            [1.0, 2.0, 4.0],
            prefer_lp=False,
        )
        assert len(reports) == 3
        # More speed cannot hurt total flow for the same policy... SJF is
        # not formally monotone, but on this tiny instance it is.
        flows = [r.total_flow for r in reports]
        assert flows[0] >= flows[-1]

    def test_policy_grid_covers_combinations(self, instance):
        reports = run_policy_grid(
            instance,
            {"greedy": lambda: GreedyIdenticalAssignment(0.5),
             "closest": ClosestLeafAssignment},
            priorities={"sjf": sjf_priority, "fifo": fifo_priority},
        )
        labels = {r.label for r in reports}
        assert labels == {
            "greedy/sjf", "closest/sjf", "greedy/fifo", "closest/fifo"
        }
