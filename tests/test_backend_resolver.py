"""The unified backend resolver: one precedence rule (kwarg > env >
default) and one availability policy for every entry point."""

from __future__ import annotations

import warnings

import pytest

from repro.exceptions import SimulationError
from repro.sim.backends import (
    BACKENDS,
    ENV_VAR,
    BackendChoice,
    backend_available,
    select_backend,
)


class TestPrecedence:
    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        choice = select_backend()
        assert choice == BackendChoice(None, "default", "python")

    def test_env_wins_over_default(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        choice = select_backend()
        assert choice.source == "env"
        assert choice.effective == "numpy"
        assert choice.fallback_reason is None

    def test_kwarg_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        choice = select_backend("python")
        assert choice.source == "kwarg"
        assert choice.effective == "python"
        assert choice.requested == "python"

    def test_empty_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "")
        assert select_backend().source == "default"


class TestValidationAndAvailability:
    def test_unknown_name_raises_from_any_source(self, monkeypatch):
        with pytest.raises(SimulationError):
            select_backend("fortran")
        monkeypatch.setenv(ENV_VAR, "fortran")
        with pytest.raises(SimulationError):
            select_backend()

    @pytest.fixture()
    def no_compiler(self, monkeypatch):
        from repro.sim.backends import c_build

        monkeypatch.setattr(c_build, "find_compiler", lambda: None)
        c_build._reset_probe()
        yield
        c_build._reset_probe()  # forget the "unavailable" verdict

    def test_explicit_unavailable_backend_raises(self, no_compiler):
        with pytest.raises(SimulationError, match="unavailable"):
            select_backend("c")

    def test_env_unavailable_backend_warns_and_falls_back(
        self, no_compiler, monkeypatch
    ):
        monkeypatch.setenv(ENV_VAR, "c")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            choice = select_backend()
        assert choice.effective == "python"
        assert choice.source == "env"
        assert choice.fallback_reason
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)


class TestSharedByEntryPoints:
    """Both blessed call surfaces honour the same resolution."""

    def test_backends_simulate_reads_env(self, monkeypatch):
        from repro import api

        inst = api.make_instance(n_jobs=20, seed=7)
        monkeypatch.delenv(ENV_VAR, raising=False)
        ref = api.simulate(instance=inst, policy="greedy")
        monkeypatch.setenv(ENV_VAR, "numpy")
        via_env = api.simulate(instance=inst, policy="greedy")
        for jid, rec in ref.records.items():
            assert via_env.records[jid].completion == rec.completion

    def test_open_system_resolves_through_same_resolver(self, monkeypatch):
        from repro import api

        inst = api.make_instance(n_jobs=10, seed=7)
        monkeypatch.setenv(ENV_VAR, "fortran")
        with pytest.raises(SimulationError):
            api.open_system(instance=inst)

    def test_all_backends_enumerated(self):
        assert set(BACKENDS) == {"python", "numpy", "c"}
        assert backend_available("python") == (True, None)
        assert backend_available("numpy") == (True, None)
        with pytest.raises(SimulationError):
            backend_available("fortran")
