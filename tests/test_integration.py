"""End-to-end integration tests crossing every subsystem."""

from __future__ import annotations

import pytest

from repro import (
    GreedyIdenticalAssignment,
    GreedyUnrelatedAssignment,
    Instance,
    Job,
    JobSet,
    Setting,
    SpeedProfile,
    datacenter_tree,
    instance_from_json,
    instance_to_json,
    kary_tree,
    poisson_arrivals,
    reduce_to_broomstick,
    run_general_tree,
    run_paper_algorithm,
    uniform_sizes,
)
from repro.sim import simulate
from repro.analysis.ratios import competitive_report, lower_bound_for
from repro.lp.duals_paper import build_dual_certificate
from repro.lp.primal import solve_primal_lp
from repro.sim.invariants import validate_schedule


class TestFullPipelineIdentical:
    """Generate -> schedule -> bound -> certify, identical endpoints."""

    @pytest.fixture(scope="class")
    def instance(self):
        tree = kary_tree(2, 3)
        n = 24
        sizes = uniform_sizes(n, 1.0, 3.0, rng=0)
        rate = Instance.poisson_rate_for_load(tree, float(sizes.mean()), 0.85)
        releases = poisson_arrivals(n, rate, rng=1)
        return Instance(tree, JobSet.build(releases, sizes), Setting.IDENTICAL)

    def test_algorithm_beats_baseline_portfolio_under_load(self, instance):
        from repro.baselines.policies import ClosestLeafAssignment

        eps = 0.25
        alg = run_paper_algorithm(instance, eps, SpeedProfile.uniform(1.0))
        base = simulate(
            instance, ClosestLeafAssignment(), speeds=SpeedProfile.uniform(1.0)
        )
        # closest-leaf funnels everything to one subtree; greedy must win
        # comfortably on this congested instance.
        assert alg.total_flow_time() < base.total_flow_time()

    def test_ratio_report_consistent(self, instance):
        eps = 0.25
        alg = run_paper_algorithm(instance, eps)
        report = competitive_report("alg", instance, alg, prefer_lp=False)
        assert report.ratio >= report.fractional_ratio > 0

    def test_broomstick_round_trip_certificate(self, instance):
        eps = 0.25
        red = reduce_to_broomstick(instance.tree)
        shadow = instance.on_broomstick(red).rounded(eps)
        cert = build_dual_certificate(shadow, eps)
        assert cert.is_feasible()
        assert cert.dual_objective_scaled > 0

    def test_general_tree_consistency(self, instance):
        eps = 0.25
        out = run_general_tree(instance, eps, record_segments=True)
        validate_schedule(out.result)
        validate_schedule(out.shadow_result)
        assert out.result.total_flow_time() <= out.shadow_result.total_flow_time() + 1e-9


class TestFullPipelineUnrelated:
    @pytest.fixture(scope="class")
    def instance(self):
        from repro.workload.unrelated import partition_matrix

        tree = datacenter_tree(2, 2, 2)
        n = 18
        sizes = uniform_sizes(n, 1.0, 2.5, rng=2)
        releases = poisson_arrivals(n, 1.5, rng=3)
        rows = partition_matrix(tree.leaves, sizes, num_groups=2, rng=4)
        return Instance(tree, JobSet.build(releases, sizes, rows), Setting.UNRELATED)

    def test_paper_algorithm_completes_and_validates(self, instance):
        res = run_paper_algorithm(instance, 0.25, record_segments=True)
        validate_schedule(res)
        res.verify_complete()

    def test_assignment_mostly_respects_partition(self, instance):
        """The greedy should mostly place jobs on their fast group."""
        res = run_paper_algorithm(instance, 0.25, SpeedProfile.uniform(2.5))
        fast = 0
        for jid, rec in res.records.items():
            job = instance.jobs.by_id(jid)
            if job.leaf_sizes[rec.leaf] == min(job.leaf_sizes.values()):
                fast += 1
        assert fast >= len(res.records) * 0.6


class TestLPvsSimulationConsistency:
    def test_lp_lower_bounds_every_policy(self):
        """On a small instance, LP* must stay below the objective value of
        every simulated unit-speed schedule (it relaxes all of them)."""
        from repro.baselines.policies import (
            ClosestLeafAssignment,
            LeastLoadedAssignment,
            RandomAssignment,
        )

        tree = kary_tree(2, 2)
        jobs = JobSet([Job(id=i, release=float(i), size=2.0) for i in range(5)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        lp = solve_primal_lp(instance, SpeedProfile.uniform(1.0))
        for policy in (
            GreedyIdenticalAssignment(0.5),
            ClosestLeafAssignment(),
            LeastLoadedAssignment(),
            RandomAssignment(0),
        ):
            sim = simulate(instance, policy)
            # LP objective sums two per-job flow lower bounds, so compare
            # against twice the simulated flow.
            assert lp.objective <= 2.0 * sim.total_flow_time() + 1e-6

    def test_lower_bound_for_prefers_tighter(self):
        tree = kary_tree(2, 2)
        jobs = JobSet([Job(id=i, release=float(i), size=2.0) for i in range(5)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        lb_lp, _ = lower_bound_for(instance, prefer_lp=True)
        lb_combo, _ = lower_bound_for(instance, prefer_lp=False)
        assert lb_lp >= lb_combo - 1e-9


class TestSerialisationPipeline:
    def test_full_cycle_via_json(self, tmp_path):
        tree = datacenter_tree(2, 1, 2)
        jobs = JobSet([Job(id=i, release=0.5 * i, size=1.0 + i % 2) for i in range(8)])
        instance = Instance(tree, jobs, Setting.IDENTICAL, name="cycle")
        text = instance_to_json(instance)
        (tmp_path / "x.json").write_text(text)
        restored = instance_from_json((tmp_path / "x.json").read_text())
        a = run_paper_algorithm(instance, 0.5)
        b = run_paper_algorithm(restored, 0.5)
        assert a.assignment() == b.assignment()
        assert a.fractional_flow == pytest.approx(b.fractional_flow)
