"""The streaming CLI surface: ``repro serve`` (including the CI smoke
mode) and ``repro run --backend`` through the shared resolver."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestServe:
    def test_smoke_exits_zero(self, capsys):
        rc = main(["serve", "--smoke", "--seed", "5", "--window", "5"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all endpoint checks passed" in out
        assert "serving open system on http://127.0.0.1:" in out

    def test_smoke_is_deterministic_given_seed(self, capsys):
        main(["serve", "--smoke", "--seed", "9", "--window", "4"])
        first = capsys.readouterr().out
        main(["serve", "--smoke", "--seed", "9", "--window", "4"])
        second = capsys.readouterr().out

        def stats(text):
            [line] = [ln for ln in text.splitlines() if ln.startswith("smoke: t=")]
            return line

        assert stats(first) == stats(second)

    def test_finite_jobs_drain(self, capsys):
        rc = main([
            "serve", "--smoke", "--jobs", "50", "--window", "10",
            "--max-windows", "1000", "--seed", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        [line] = [ln for ln in out.splitlines() if ln.startswith("smoke: t=")]
        assert "arrivals=50" in line
        assert "completions=50" in line

    def test_explicit_rate_accepted(self, capsys):
        rc = main([
            "serve", "--smoke", "--rate", "1.5", "--jobs", "30",
            "--window", "5", "--seed", "3",
        ])
        assert rc == 0

    def test_bad_backend_name_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["serve", "--backend", "fortran", "--smoke"])


class TestRunBackendFlag:
    def _flow_line(self, capsys):
        out = capsys.readouterr().out
        [line] = [ln for ln in out.splitlines() if "total flow time" in ln]
        return line

    def test_backend_flag_matches_default(self, capsys):
        base = ["run", "--jobs", "40", "--seed", "3"]
        assert main(base) == 0
        ref = self._flow_line(capsys)
        assert main(base + ["--backend", "numpy"]) == 0
        assert self._flow_line(capsys) == ref
        assert main(base + ["--backend", "python"]) == 0
        assert self._flow_line(capsys) == ref

    def test_env_var_respected(self, capsys, monkeypatch):
        base = ["run", "--jobs", "40", "--seed", "3"]
        assert main(base) == 0
        ref = self._flow_line(capsys)
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert main(base) == 0
        assert self._flow_line(capsys) == ref

    def test_backend_composes_with_profile(self, capsys):
        # event-order options (profiling changes nothing, but --until
        # does) force the python engine; the flag must still be accepted
        rc = main([
            "run", "--jobs", "30", "--seed", "1", "--backend", "numpy",
            "--profile", "--until", "10",
        ])
        assert rc == 0
        assert "horizon" in capsys.readouterr().out

    def test_bad_backend_name_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "--backend", "fortran"])
