"""Unit tests for node-order priorities (SJF, FIFO, class-SJF)."""

from __future__ import annotations

import pytest

from repro.core.policy import class_sjf_priority, fifo_priority, sjf_priority
from repro.exceptions import WorkloadError
from repro.network.builders import spine_tree
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def instance():
    tree = spine_tree(1)
    jobs = JobSet(
        [
            Job(id=0, release=0.0, size=2.0),
            Job(id=1, release=1.0, size=1.0),
            Job(id=2, release=2.0, size=2.0),
        ]
    )
    return Instance(tree, jobs, Setting.IDENTICAL)


class TestSJF:
    def test_orders_by_size_first(self, instance):
        j0, j1 = instance.jobs.by_id(0), instance.jobs.by_id(1)
        assert sjf_priority(instance, j1, 1) < sjf_priority(instance, j0, 1)

    def test_ties_by_release(self, instance):
        j0, j2 = instance.jobs.by_id(0), instance.jobs.by_id(2)
        assert sjf_priority(instance, j0, 1) < sjf_priority(instance, j2, 1)

    def test_uses_leaf_size_on_leaves(self):
        tree = spine_tree(1)
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 9.0}),
                Job(id=1, release=1.0, size=5.0, leaf_sizes={2: 1.0}),
            ]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        j0, j1 = jobs.by_id(0), jobs.by_id(1)
        # Router: j0 first (1 < 5); leaf: j1 first (1 < 9).
        assert sjf_priority(instance, j0, 1) < sjf_priority(instance, j1, 1)
        assert sjf_priority(instance, j1, 2) < sjf_priority(instance, j0, 2)


class TestFIFO:
    def test_orders_by_release_only(self, instance):
        j0, j1 = instance.jobs.by_id(0), instance.jobs.by_id(1)
        assert fifo_priority(instance, j0, 1) < fifo_priority(instance, j1, 1)


class TestClassSJF:
    def test_matches_sjf_on_rounded_sizes(self):
        eps = 0.5
        tree = spine_tree(1)
        jobs = JobSet(
            [Job(id=i, release=float(i), size=(1.0 + eps) ** (i % 3)) for i in range(6)]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        prio = class_sjf_priority(eps)
        ordered_sjf = sorted(jobs, key=lambda j: sjf_priority(instance, j, 1))
        ordered_cls = sorted(jobs, key=lambda j: prio(instance, j, 1))
        assert [j.id for j in ordered_sjf] == [j.id for j in ordered_cls]

    def test_rejects_unrounded_sizes(self):
        tree = spine_tree(1)
        jobs = JobSet([Job(id=0, release=0.0, size=1.3)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        prio = class_sjf_priority(0.5)
        with pytest.raises(WorkloadError, match="not a power"):
            prio(instance, jobs.by_id(0), 1)
