"""First-class dynamic events: schedule validation, engine semantics,
down-aware assignment, size revelation, cross-backend parity, and the
aggregate-consistency property after repairs.

The deterministic chain scenario (root 0 → router 1 → leaf 2, speed 1,
identical setting) is shared with ``tests/test_stream_events.py``; see
that module's docstring for the full hand-computed timeline.  Here it is
run in batch mode, where the expected completions are job 0 at 6, job 2
at 11, job 3 at 22 (stalled through the 8–13 outage), and job 1 is
cancelled at 6.
"""

from __future__ import annotations

import math
import warnings

import pytest

from repro import api
from repro.analysis.experiments.workloads import identical_instance
from repro.core.assignment import GreedyIdenticalAssignment
from repro.exceptions import SimulationError, WorkloadError
from repro.network.builders import datacenter_tree, tree_from_parent_map
from repro.obs.trace import TraceConfig, TraceRecorder
from repro.sim import backends
from repro.sim.engine import Engine
from repro.workload.events import Cancel, EventSchedule, NodeDown, NodeUp
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet


def _chain_instance():
    tree = tree_from_parent_map({0: None, 1: 0, 2: 1})
    jobs = JobSet.build(
        releases=[0.0, 1.0, 2.0, 4.0],
        sizes=[3.0, 5.0, 4.0, 5.0],
    )
    return Instance(tree, jobs, Setting.IDENTICAL, name="dyn-chain")


def _chain_events():
    return EventSchedule(
        [Cancel(6.0, 1), NodeDown(8.0, 1), NodeUp(13.0, 1)]
    )


def _two_leaf_instance(releases, sizes):
    tree = tree_from_parent_map({0: None, 1: 0, 2: 1, 3: 1})
    jobs = JobSet.build(releases=releases, sizes=sizes)
    return Instance(tree, jobs, Setting.IDENTICAL, name="dyn-two-leaf")


class TestScheduleValidation:
    def test_alternation_is_enforced(self):
        with pytest.raises(WorkloadError, match="already down"):
            EventSchedule([NodeDown(1.0, 1), NodeDown(2.0, 1)])
        with pytest.raises(WorkloadError, match="without a preceding"):
            EventSchedule([NodeUp(1.0, 1)])

    def test_every_outage_must_end(self):
        with pytest.raises(WorkloadError, match="no matching NodeUp"):
            EventSchedule([NodeDown(1.0, 1)])

    def test_at_most_one_cancel_per_job(self):
        with pytest.raises(WorkloadError, match="more than once"):
            EventSchedule([Cancel(1.0, 7), Cancel(2.0, 7)])

    def test_validate_for_rejects_root_and_unknown_nodes(self):
        inst = _chain_instance()
        with pytest.raises(WorkloadError, match="root"):
            EventSchedule(
                [NodeDown(1.0, 0), NodeUp(2.0, 0)]
            ).validate_for(inst)
        with pytest.raises(WorkloadError, match="not in the tree"):
            EventSchedule(
                [NodeDown(1.0, 9), NodeUp(2.0, 9)]
            ).validate_for(inst)

    def test_doc_round_trip(self):
        sched = _chain_events()
        assert EventSchedule.from_doc(sched.to_doc()) == sched
        assert sched.down_intervals() == {1: ((8.0, 13.0),)}
        assert sched.cancel_times() == {1: 6.0}


class TestOutageAndCancelSemantics:
    def _run(self, **kw):
        return api.simulate(
            instance=_chain_instance(), events=_chain_events(),
            record_segments=True, **kw
        )

    def test_chain_timeline(self):
        result = self._run()
        assert result.completions() == {0: 6.0, 2: 11.0, 3: 22.0}

    def test_cancelled_job_is_terminal_not_completed(self):
        result = self._run()
        rec = result.records[1]
        assert rec.cancelled
        assert rec.cancelled_at == 6.0
        assert not rec.finished
        assert set(result.cancelled_records()) == {1}
        with pytest.raises(SimulationError):
            rec.completion

    def test_cancelled_job_never_in_flow_metrics(self):
        result = self._run()
        assert 1 not in result.completions()
        # flows 6, 9, 18 — the cancelled job contributes nothing
        assert sorted(result.flow_times().tolist()) == [6.0, 9.0, 18.0]
        assert result.total_flow_time() == 33.0
        assert result.mean_flow_time() == pytest.approx(11.0)

    def test_no_service_during_the_outage(self):
        result = self._run()
        for seg in result.segments:
            if seg.node == 1:
                assert seg.end <= 8.0 or seg.start >= 13.0, (
                    f"segment {seg} overlaps the 8-13 outage of node 1"
                )

    def test_unknown_and_late_cancels_are_no_ops(self):
        inst = _chain_instance()
        base = api.simulate(instance=inst)
        for sched in (
            EventSchedule([Cancel(5.0, 99)]),       # job id never exists
            EventSchedule([Cancel(3.0, 3)]),        # before job 3 releases
            EventSchedule([Cancel(100.0, 0)]),      # long after completion
        ):
            got = api.simulate(instance=inst, events=sched)
            assert got.completions() == base.completions()
            assert not got.records[0].cancelled

    def test_empty_schedule_is_bit_identical_to_no_schedule(self):
        inst = _chain_instance()
        base = api.simulate(instance=inst, record_segments=True)
        got = api.simulate(
            instance=inst, events=EventSchedule(()), record_segments=True
        )
        assert got.completions() == base.completions()
        assert got.segments == base.segments
        assert got.fractional_flow == base.fractional_flow


class TestDownAwareAssignment:
    @pytest.mark.parametrize("policy", ["greedy", "least-loaded"])
    def test_downed_leaf_is_excluded(self, policy):
        # Leaf 2 is down when the only job arrives: both down-aware
        # policies must route it to leaf 3.
        inst = _two_leaf_instance([1.0], [2.0])
        events = EventSchedule([NodeDown(0.5, 2), NodeUp(10.0, 2)])
        result = api.simulate(instance=inst, policy=policy, events=events)
        assert result.records[0].leaf == 3

    @pytest.mark.parametrize("policy", ["greedy", "least-loaded"])
    def test_assignment_recovers_after_repair(self, policy):
        # An outage that ends before the first release leaves no mark:
        # the repaired leaf is a full candidate again, so the schedule
        # is identical to the event-free run (the idle-outage relation).
        inst = _two_leaf_instance([20.0, 20.0], [2.0, 2.0])
        events = EventSchedule([NodeDown(0.5, 2), NodeUp(10.0, 2)])
        with_events = api.simulate(
            instance=inst, policy=policy, events=events
        )
        without = api.simulate(instance=inst, policy=policy)
        assert with_events.assignment() == without.assignment()
        assert with_events.completions() == without.completions()

    def test_all_leaves_down_falls_back_and_job_stalls(self):
        # With every leaf down at arrival the greedy fallback still
        # assigns somewhere; the job then stalls and completes only
        # after the repair (release 1, size 2, repair at 6 -> router
        # hop 6..8, leaf hop 8..10).
        inst = _two_leaf_instance([1.0], [2.0])
        events = EventSchedule(
            [NodeDown(0.5, 2), NodeDown(0.5, 3),
             NodeUp(6.0, 2), NodeUp(6.0, 3)]
        )
        result = api.simulate(instance=inst, events=events)
        rec = result.records[0]
        assert rec.leaf in (2, 3)
        assert rec.completion >= 8.0


class _SpyPolicy:
    """Delegating policy that records the size each job presents at
    assignment time (the estimate under partial information)."""

    def __init__(self, inner):
        self.inner = inner
        self.seen: dict[int, float] = {}

    def assign(self, view, job, now):
        self.seen[job.id] = job.size
        return self.inner.assign(view, job, now)


class TestSizeRevelation:
    def _instance(self):
        tree = tree_from_parent_map({0: None, 1: 0, 2: 1})
        jobs = JobSet.build(
            releases=[0.0, 1.0],
            sizes=[4.0, 2.0],
            size_estimates=[1.0, None],
        )
        return Instance(tree, jobs, Setting.IDENTICAL, name="dyn-estimates")

    def test_policy_sees_only_the_estimate(self):
        inst = self._instance()
        spy = _SpyPolicy(GreedyIdenticalAssignment(0.25))
        api.simulate(instance=inst, policy=spy)
        assert spy.seen[0] == 1.0  # the estimate, not the true size 4
        assert spy.seen[1] == 2.0  # fully-known job passes through as-is

    def test_true_size_is_revealed_at_completion(self):
        inst = self._instance()
        rec = TraceRecorder(TraceConfig())
        result = api.simulate(instance=inst, tracer=rec)
        assert result.records[0].size_estimate == 1.0
        reveals = result.trace.events_of("reveal")
        assert [(e.job_id, e.size) for e in reveals] == [(0, 4.0)]
        # Processing is driven by the true size throughout: job 1
        # (true size 2) preempts at t=1, so job 0 runs the router
        # 0-1 and 3-6, then the leaf 6-10.
        assert result.completions()[0] == 10.0


def _parity_pair():
    """A medium instance plus an event schedule touching an internal
    router, a leaf, and three cancels (one pre-release no-op)."""
    tree = datacenter_tree(2, 2, 3)
    inst = identical_instance(tree, 80, load=0.9, seed=21)
    leaf = tree.leaves[0]
    router = tree.parent(leaf)
    horizon = max(j.release for j in inst.jobs)
    events = EventSchedule([
        NodeDown(horizon * 0.2, leaf), NodeUp(horizon * 0.5, leaf),
        NodeDown(horizon * 0.6, router), NodeUp(horizon * 0.8, router),
        Cancel(horizon * 0.3, 5), Cancel(horizon * 0.7, 40),
        Cancel(0.0, 79),
    ])
    return inst, events


class TestBackendParityWithEvents:
    def test_numpy_matches_python_bit_for_bit(self):
        inst, events = _parity_pair()
        runs = {}
        for backend in ("python", "numpy"):
            runs[backend] = api.simulate(
                instance=inst, policy="greedy", eps=0.25, backend=backend,
                record_segments=True, events=events,
            )
        a, b = runs["python"], runs["numpy"]
        assert set(a.records) == set(b.records)
        for jid, ra in a.records.items():
            rb = b.records[jid]
            assert rb.leaf == ra.leaf
            assert rb.path == ra.path
            assert rb.completed_at == ra.completed_at  # exact, no approx
            assert rb.available_at == ra.available_at
            assert rb.cancelled_at == ra.cancelled_at
        assert a.num_events == b.num_events
        assert a.total_flow_time() == b.total_flow_time()
        key = lambda s: (s.start, s.end, s.node, s.job_id)  # noqa: E731
        assert sorted(a.segments, key=key) == sorted(b.segments, key=key)

    def test_c_backend_falls_back_and_warns_exactly_once(self, monkeypatch):
        monkeypatch.setattr(backends, "_warned_c_events", False)
        inst, events = _parity_pair()
        with pytest.warns(RuntimeWarning, match="falling back"):
            first = api.simulate(
                instance=inst, backend="c", events=events
            )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = api.simulate(
                instance=inst, backend="c", events=events
            )
        assert not [w for w in caught if "falling back" in str(w.message)]
        ref = api.simulate(instance=inst, backend="numpy", events=events)
        for got in (first, second):
            assert got.completions() == ref.completions()

    def test_c_backend_event_free_stays_native(self, monkeypatch):
        # The fallback gate must not trip on empty schedules: backend
        # "c" with no events runs whatever select_backend resolves to,
        # with no warning.
        monkeypatch.setattr(backends, "_warned_c_events", False)
        inst, _ = _parity_pair()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.simulate(instance=inst, backend="c", events=EventSchedule(()))
        assert not [w for w in caught if "falling back" in str(w.message)]


class TestAggregatesAfterRepair:
    def test_aggregates_equal_fresh_recomputation_at_every_repair(self):
        """After each ``node_up`` the O(1) aggregate counters must equal
        a from-scratch recomputation over the alive set — the incremental
        settle/drain/rearm algebra of the outage path may not drift."""
        inst, events = _parity_pair()
        checked = {"n": 0}

        def observer(view, kind, subject):
            if kind != "node_up":
                return
            checked["n"] += 1
            for v in inst.tree.node_ids:
                if v == inst.tree.root:
                    continue
                through = view.jobs_through(v)
                assert view.jobs_through_count(v) == len(through)
                vol = sum(view.remaining_on(j, v) for j in through)
                assert math.isclose(
                    view.volume_through(v), vol,
                    rel_tol=1e-9, abs_tol=1e-9,
                )
                qvol = sum(
                    view.remaining_on(j, v) for j in view.queue_at(v)
                )
                assert math.isclose(
                    view.queue_volume_at(v), qvol,
                    rel_tol=1e-9, abs_tol=1e-9,
                )

        engine = Engine(
            inst, GreedyIdenticalAssignment(0.25),
            events=events, observer=observer,
        )
        engine.run()
        assert checked["n"] == 2  # both repairs were audited

    def test_engine_invariants_hold_through_events(self):
        inst, events = _parity_pair()
        result = api.simulate(
            instance=inst, events=events, check_invariants=True
        )
        assert result.completions()  # ran to completion, no raise
