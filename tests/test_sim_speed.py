"""Unit tests for SpeedProfile."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.network.builders import kary_tree
from repro.sim.speed import SpeedProfile


@pytest.fixture
def tree():
    return kary_tree(2, 3)


class TestTiers:
    def test_uniform(self, tree):
        sp = SpeedProfile.uniform(2.0)
        for node in tree:
            if not node.is_root:
                assert sp.speed_of(tree, node.id) == 2.0

    def test_tier_assignment(self, tree):
        sp = SpeedProfile(root_children=1.0, interior=2.0, leaves=3.0)
        for v in tree.root_children:
            assert sp.speed_of(tree, v) == 1.0
        for v in tree.leaves:
            assert sp.speed_of(tree, v) == 3.0
        interior = [
            n.id
            for n in tree
            if n.is_router and n.parent != tree.root
        ]
        for v in interior:
            assert sp.speed_of(tree, v) == 2.0

    def test_overrides_take_precedence(self, tree):
        leaf = tree.leaves[0]
        sp = SpeedProfile(leaves=1.0, overrides={leaf: 9.0})
        assert sp.speed_of(tree, leaf) == 9.0
        assert sp.speed_of(tree, tree.leaves[1]) == 1.0

    def test_root_has_no_speed(self, tree):
        sp = SpeedProfile.uniform(1.0)
        with pytest.raises(SimulationError, match="root"):
            sp.speed_of(tree, tree.root)

    def test_speeds_for_covers_all_non_root(self, tree):
        sp = SpeedProfile.uniform(1.5)
        speeds = sp.speeds_for(tree)
        assert set(speeds) == set(tree.node_ids) - {tree.root}


class TestValidation:
    def test_non_positive_rejected(self):
        with pytest.raises(SimulationError):
            SpeedProfile(root_children=0.0)
        with pytest.raises(SimulationError):
            SpeedProfile(leaves=-1.0)
        with pytest.raises(SimulationError):
            SpeedProfile(overrides={3: 0.0})

    def test_scaled(self):
        sp = SpeedProfile(1.0, 2.0, 3.0, overrides={7: 4.0}).scaled(2.0)
        assert sp.root_children == 2.0
        assert sp.interior == 4.0
        assert sp.leaves == 6.0
        assert sp.overrides[7] == 8.0

    def test_scaled_validation(self):
        with pytest.raises(SimulationError):
            SpeedProfile.uniform(1.0).scaled(0.0)


class TestNamedProfiles:
    def test_theorem1(self, tree):
        eps = 0.5
        sp = SpeedProfile.theorem1(eps)
        assert sp.speed_of(tree, tree.root_children[0]) == pytest.approx(1.5)
        assert sp.speed_of(tree, tree.leaves[0]) == pytest.approx(2.25)

    def test_theorem2_doubles(self):
        eps = 0.5
        sp = SpeedProfile.theorem2(eps)
        assert sp.root_children == pytest.approx(3.0)
        assert sp.interior == pytest.approx(4.5)

    def test_theorem4_matches_theorem1_tiers(self):
        assert SpeedProfile.theorem4_opt(0.25) == SpeedProfile.theorem1(0.25)

    def test_lemma1_unit_top(self):
        sp = SpeedProfile.lemma1(0.25)
        assert sp.root_children == 1.0
        assert sp.interior == 1.25

    def test_eps_validation(self):
        for ctor in (
            SpeedProfile.theorem1,
            SpeedProfile.theorem2,
            SpeedProfile.theorem4_opt,
            SpeedProfile.lemma1,
        ):
            with pytest.raises(SimulationError):
                ctor(0.0)
