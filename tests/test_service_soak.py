"""Bounded-memory soak: a million streamed jobs through one session.

The open-system contract is that memory scales with the work *in
flight*, not the length of the stream: finished jobs are evicted, trace
records retire with their window, and flow times land in fixed-bin
histograms.  This suite streams 1M jobs and asserts the traced heap
plateaus (second half of the run no bigger than the first) and that
every per-session container is bounded at the end.  Marked slow — the
tier-1 suite excludes it; CI runs it in the scheduled lane.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro import api
from repro.workload.arrivals import job_stream, poisson_process, uniform_size_stream
from repro.workload.instance import Instance

N_JOBS = 1_000_000
LOAD = 0.8


@pytest.mark.slow
def test_million_job_soak_memory_plateau():
    tree = api.build_tree("paths", num_paths=2, path_length=1)
    rate = Instance.poisson_rate_for_load(tree, 2.5, LOAD)
    jobs = job_stream(
        poisson_process(rate, np.random.default_rng(101)),
        uniform_size_stream(rng=np.random.default_rng(102)),
        limit=N_JOBS,
    )
    # Window sized so the whole run closes a few thousand windows: wide
    # enough that fold overhead is negligible, narrow enough that
    # retirement actually runs throughout.
    horizon_estimate = N_JOBS / rate
    window = horizon_estimate / 4000.0
    session = api.open_system(
        tree=tree, arrivals=jobs, window=window, keep_windows=8
    )

    tracemalloc.start()
    samples: list[int] = []
    try:
        while not session.idle():
            session.step(until=session.now + 50 * window)
            samples.append(tracemalloc.get_traced_memory()[0])
    finally:
        tracemalloc.stop()

    snap = session.snapshot()
    assert snap.arrivals_total == N_JOBS
    assert snap.completions_total == N_JOBS
    assert snap.jobs_in_flight == 0

    # RSS-plateau proxy: once warmed up, the traced heap must not grow
    # with the stream.  Compare the halves of the run (skipping the
    # first few warm-up samples); a leak of even a small per-job record
    # (~100 bytes * 500k jobs) would blow the second half up by tens of
    # megabytes, far beyond the 20% head-room granted here.
    assert len(samples) > 20
    first_half = samples[5 : len(samples) // 2]
    second_half = samples[len(samples) // 2 :]
    assert max(second_half) <= max(first_half) * 1.2 + 1_000_000

    # Every per-session container is bounded by in-flight work, not N.
    assert session._engine.alive_count == 0
    assert len(session._engine._states) == 0
    assert len(session._recorder._gauges) <= 2 * tree.num_nodes * 51
    assert len(session._recorder._points) == 0
    assert len(session._recorder._service) == 0
    assert len(session.windows) == 8

    # The steady-state metrics survived the whole stream.
    assert snap.flow["count"] == N_JOBS
    assert snap.flow["p50"] is not None
    assert snap.flow["p99"] >= snap.flow["p50"]
    assert 0.0 < max(snap.utilization.values()) <= 1.0 + 1e-9
