"""Differential testing: the event engine vs a brute-force reference.

The reference simulator (now :mod:`repro.testing.reference`, promoted
out of this file so the fuzzing subsystem can reuse it) shares *no code
or design* with the engine: it steps time in small fixed increments,
re-deriving the active job of every node from scratch each tick.  Its
completions converge to the event engine's as ``dt → 0``; agreement
across random instances is therefore strong evidence that the engine's
event algebra (settling, versioned events, preemption, the
zero-remaining drain rule) implements the model and not an artefact of
its own bookkeeping.

These tests keep the original hand-picked scenarios and the hypothesis
sweep; the broader seeded-grid exploration lives in ``repro fuzz``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.builders import spine_tree, star_of_paths
from repro.testing.reference import (
    assert_engine_matches_reference,
    reference_simulate,
)
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet

__all__ = ["reference_simulate"]  # re-export kept for older imports


class TestHandPickedScenarios:
    def test_pipeline_with_preemption(self):
        tree = spine_tree(2)
        leaf = tree.leaves[0]
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=3.0),
                Job(id=1, release=1.0, size=1.0),
                Job(id=2, release=1.5, size=2.0),
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        assert_engine_matches_reference(instance, {0: leaf, 1: leaf, 2: leaf})

    def test_two_branches_with_ties(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=i, release=0.0, size=2.0) for i in range(4)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        assignment = {0: 2, 1: 2, 2: 4, 3: 4}
        assert_engine_matches_reference(instance, assignment)

    def test_unrelated_leaf_times(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 3.0, 4: 1.0}),
                Job(id=1, release=0.5, size=2.0, leaf_sizes={2: 1.0, 4: 4.0}),
            ]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        assert_engine_matches_reference(instance, {0: 2, 1: 2})


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_random_instances_agree(n, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    tree = star_of_paths(2, 2)
    jobs = JobSet(
        [
            Job(
                id=i,
                release=float(rng.uniform(0, 6)),
                # Sizes bounded away from ties so dt-rounding cannot flip
                # SJF order between the two simulators.
                size=float(rng.choice([1.0, 1.7, 2.9, 4.3])),
            )
            for i in range(n)
        ]
    )
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    leaves = tree.leaves
    assignment = {i: int(leaves[int(rng.integers(len(leaves)))]) for i in range(n)}
    assert_engine_matches_reference(instance, assignment)
