"""Differential testing: the event engine vs a brute-force reference.

The reference simulator below shares *no code or design* with the
engine: it steps time in small fixed increments, re-deriving the active
job of every node from scratch each tick (highest SJF priority among
jobs physically present).  Its completions converge to the event
engine's as ``dt → 0``; agreement across random instances is therefore
strong evidence that the engine's event algebra (settling, versioned
events, preemption, the zero-remaining drain rule) implements the model
and not an artefact of its own bookkeeping.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import FixedAssignment
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import simulate
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def reference_simulate(instance, assignment, dt=0.002):
    """Fixed-step reference: returns job id -> completion time.

    One unit-speed processor per non-root node; at each tick every node
    independently serves the highest-priority (p, release, id) job
    currently resident; a job moves on the tick its remaining hits zero.
    """
    tree = instance.tree
    jobs = list(instance.jobs)
    state = {}
    for job in jobs:
        path = tree.processing_path(assignment[job.id])
        state[job.id] = {
            "job": job,
            "path": path,
            "idx": -1,  # not yet released
            "rem": 0.0,
        }
    completions: dict[int, float] = {}
    t = 0.0
    max_t = 10_000.0
    while len(completions) < len(jobs) and t < max_t:
        # admit
        for s in state.values():
            if s["idx"] == -1 and s["job"].release <= t + 1e-12:
                s["idx"] = 0
                s["rem"] = instance.processing_time(s["job"], s["path"][0])
        # pick the active job per node (fresh each tick)
        active: dict[int, dict] = {}
        for s in state.values():
            if s["idx"] < 0 or s["job"].id in completions:
                continue
            node = s["path"][s["idx"]]
            p = instance.processing_time(s["job"], node)
            key = (p, s["job"].release, s["job"].id)
            if node not in active or key < active[node]["key"]:
                active[node] = {"state": s, "key": key}
        # advance
        for node, entry in active.items():
            s = entry["state"]
            s["rem"] -= dt  # unit speeds in this reference
            if s["rem"] <= 1e-12:
                s["idx"] += 1
                if s["idx"] >= len(s["path"]):
                    completions[s["job"].id] = t + dt
                else:
                    s["rem"] = instance.processing_time(
                        s["job"], s["path"][s["idx"]]
                    )
        t += dt
    return completions


def assert_engine_matches_reference(instance, assignment, dt=0.002):
    engine = simulate(instance, FixedAssignment(assignment))
    reference = reference_simulate(instance, assignment, dt=dt)
    assert set(reference) == set(engine.records)
    for jid, rec in engine.records.items():
        # Reference error accumulates ~dt per node transition.
        tol = dt * (len(rec.path) + 4) + 1e-9
        assert reference[jid] == pytest.approx(rec.completion, abs=tol), (
            f"job {jid}: engine {rec.completion}, reference {reference[jid]}"
        )


class TestHandPickedScenarios:
    def test_pipeline_with_preemption(self):
        tree = spine_tree(2)
        leaf = tree.leaves[0]
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=3.0),
                Job(id=1, release=1.0, size=1.0),
                Job(id=2, release=1.5, size=2.0),
            ]
        )
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        assert_engine_matches_reference(instance, {0: leaf, 1: leaf, 2: leaf})

    def test_two_branches_with_ties(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=i, release=0.0, size=2.0) for i in range(4)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        assignment = {0: 2, 1: 2, 2: 4, 3: 4}
        assert_engine_matches_reference(instance, assignment)

    def test_unrelated_leaf_times(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 3.0, 4: 1.0}),
                Job(id=1, release=0.5, size=2.0, leaf_sizes={2: 1.0, 4: 4.0}),
            ]
        )
        instance = Instance(tree, jobs, Setting.UNRELATED)
        assert_engine_matches_reference(instance, {0: 2, 1: 2})


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_random_instances_agree(n, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    tree = star_of_paths(2, 2)
    jobs = JobSet(
        [
            Job(
                id=i,
                release=float(rng.uniform(0, 6)),
                # Sizes bounded away from ties so dt-rounding cannot flip
                # SJF order between the two simulators.
                size=float(rng.choice([1.0, 1.7, 2.9, 4.3])),
            )
            for i in range(n)
        ]
    )
    instance = Instance(tree, jobs, Setting.IDENTICAL)
    leaves = tree.leaves
    assignment = {i: int(leaves[int(rng.integers(len(leaves)))]) for i in range(n)}
    assert_engine_matches_reference(instance, assignment)
