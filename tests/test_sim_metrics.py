"""Unit tests for metrics and the waiting-time decomposition."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.metrics import (
    interior_delay,
    max_stretch,
    mean_flow_time,
    normalized_interior_delay,
    total_flow_time,
    waiting_decomposition,
)
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


@pytest.fixture
def deep_result():
    """One job on a 3-router + leaf spine: all timings deterministic."""
    tree = spine_tree(3)
    leaf = tree.leaves[0]
    instance = Instance(
        tree, JobSet([Job(id=0, release=0.0, size=2.0)]), Setting.IDENTICAL
    )
    return simulate(instance, FixedAssignment({0: leaf}))


class TestBasics:
    def test_totals(self, deep_result):
        # 4 nodes x size 2 = 8.
        assert total_flow_time(deep_result) == 8.0
        assert mean_flow_time(deep_result) == 8.0

    def test_max_stretch_idle_system_is_one(self, deep_result):
        assert max_stretch(deep_result) == pytest.approx(1.0)

    def test_stretch_grows_with_contention(self):
        tree = spine_tree(1)
        jobs = JobSet([Job(id=i, release=0.0, size=1.0) for i in range(3)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({i: 2 for i in range(3)}))
        assert max_stretch(res) > 1.5


class TestInteriorDelay:
    def test_uncontended_job(self, deep_result):
        # Leaves R at t=2; completes last identical node (the leaf) at 8.
        assert interior_delay(deep_result, 0) == 6.0
        # d_v = 4 nodes, p = 2 -> normalised 6/8.
        assert normalized_interior_delay(deep_result, 0) == pytest.approx(0.75)

    def test_unrelated_excludes_leaf(self):
        tree = spine_tree(2)
        leaf = tree.leaves[0]
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, leaf_sizes={leaf: 10.0})])
        instance = Instance(tree, jobs, Setting.UNRELATED)
        res = simulate(instance, FixedAssignment({0: leaf}))
        # Routers: [0,1), [1,2). Last identical node completes at 2; left
        # R at 1 -> interior delay 1 (the slow leaf is excluded).
        assert interior_delay(res, 0) == 1.0

    def test_shallow_unrelated_path_zero(self):
        tree = spine_tree(1)
        leaf = tree.leaves[0]
        jobs = JobSet([Job(id=0, release=0.0, size=1.0, leaf_sizes={leaf: 3.0})])
        instance = Instance(tree, jobs, Setting.UNRELATED)
        res = simulate(instance, FixedAssignment({0: leaf}))
        assert interior_delay(res, 0) == 0.0


class TestWaitingDecomposition:
    def test_parts_sum_to_flow(self):
        tree = star_of_paths(2, 2)
        jobs = JobSet([Job(id=i, release=0.5 * i, size=1.0 + i % 2) for i in range(8)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        leaves = tree.leaves
        res = simulate(
            instance, FixedAssignment({i: leaves[i % 2] for i in range(8)})
        )
        for jid, rec in res.records.items():
            br = waiting_decomposition(res, jid)
            assert br.total == pytest.approx(rec.flow_time, abs=1e-9)
            assert br.at_top >= 0 and br.interior >= 0 and br.at_leaf >= 0

    def test_contended_top_shows_up(self):
        tree = spine_tree(1)
        jobs = JobSet([Job(id=i, release=0.0, size=1.0) for i in range(3)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({i: 2 for i in range(3)}))
        # Third job waits 2 units at the router.
        br = waiting_decomposition(res, 2)
        assert br.at_top == pytest.approx(3.0)  # 2 waiting + 1 processing
