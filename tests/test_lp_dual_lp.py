"""Unit tests for the explicit LP-Dual solve and strong duality."""

from __future__ import annotations

import pytest

from repro.exceptions import LPError
from repro.lp.dual_lp import solve_dual_lp
from repro.lp.primal import solve_primal_lp
from repro.network.builders import kary_tree, spine_tree, star_of_paths
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def small_instances():
    tree = star_of_paths(2, 1)
    yield Instance(
        tree,
        JobSet([Job(id=i, release=float(i), size=2.0) for i in range(4)]),
        Setting.IDENTICAL,
    )
    yield Instance(
        tree,
        JobSet(
            [
                Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 2.0, 4: 1.0}),
                Job(id=1, release=1.0, size=2.0, leaf_sizes={2: 1.0, 4: 3.0}),
            ]
        ),
        Setting.UNRELATED,
    )
    yield Instance(
        kary_tree(2, 2),
        JobSet([Job(id=i, release=0.5 * i, size=1.0) for i in range(5)]),
        Setting.IDENTICAL,
    )
    yield Instance(
        spine_tree(2),
        JobSet([Job(id=i, release=0.0, size=2.0) for i in range(3)]),
        Setting.IDENTICAL,
    )


class TestStrongDuality:
    @pytest.mark.parametrize(
        "instance", list(small_instances()), ids=["paths", "unrelated", "kary", "spine"]
    )
    def test_dual_equals_primal(self, instance):
        p = solve_primal_lp(instance)
        d = solve_dual_lp(instance)
        assert d.objective == pytest.approx(p.objective, rel=1e-5, abs=1e-6)

    def test_duality_with_augmented_speeds(self):
        instance = next(iter(small_instances()))
        speeds = SpeedProfile.theorem1(0.5)
        p = solve_primal_lp(instance, speeds)
        d = solve_dual_lp(instance, speeds)
        assert d.objective == pytest.approx(p.objective, rel=1e-5, abs=1e-6)


class TestDualSolutionShape:
    def test_beta_nonnegative_and_objective_split(self):
        instance = next(iter(small_instances()))
        d = solve_dual_lp(instance)
        assert all(b >= -1e-9 for b in d.beta.values())
        assert d.objective == pytest.approx(
            sum(d.beta.values()) - d.alpha_total, rel=1e-6, abs=1e-6
        )

    def test_empty_instance_rejected(self):
        instance = Instance(spine_tree(1), JobSet([]), Setting.IDENTICAL)
        with pytest.raises(LPError, match="no jobs"):
            solve_dual_lp(instance)

    def test_bad_dt_rejected(self):
        instance = next(iter(small_instances()))
        with pytest.raises(LPError, match="dt"):
            solve_dual_lp(instance, dt=0.0)

    def test_paper_certificate_below_dual_optimum(self):
        """The hand-built scaled certificate is a feasible dual, so its
        objective cannot exceed the dual optimum."""
        from repro.lp.duals_paper import build_dual_certificate
        from repro.network.builders import broomstick_tree
        from repro.workload.sizes import geometric_class_sizes

        eps = 0.25
        tree = broomstick_tree(2, 3, 1)
        sizes = geometric_class_sizes(8, eps, num_classes=2, rng=0)
        instance = Instance(
            tree, JobSet.build([0.5 * i for i in range(8)], sizes), Setting.IDENTICAL
        )
        cert = build_dual_certificate(instance, eps)
        d = solve_dual_lp(instance)
        assert cert.dual_objective_scaled <= d.objective * (1 + 1e-6) + 1e-6
