"""Unit tests for the named workload scenarios."""

from __future__ import annotations

import math

import pytest

from repro.core.scheduler import run_paper_algorithm
from repro.workload.instance import Setting
from repro.workload.scenarios import (
    interactive_plus_batch,
    locality_cluster,
    mapreduce_shuffle,
    sensor_fanout,
)

ALL = {
    "mapreduce": lambda: mapreduce_shuffle(40, seed=1),
    "mixed": lambda: interactive_plus_batch(30, 4, seed=1),
    "sensor": lambda: sensor_fanout(3, 8, seed=1),
    "locality": lambda: locality_cluster(25, seed=1),
}


@pytest.mark.parametrize("name", sorted(ALL))
class TestAllScenarios:
    def test_deterministic(self, name):
        from repro.workload.trace_io import instance_to_json

        a, b = ALL[name](), ALL[name]()
        assert instance_to_json(a) == instance_to_json(b)

    def test_schedulable_end_to_end(self, name):
        instance = ALL[name]()
        result = run_paper_algorithm(instance, eps=0.5)
        result.verify_complete()

    def test_named(self, name):
        assert ALL[name]().name


class TestScenarioShapes:
    def test_mapreduce_heavy_tail(self):
        inst = mapreduce_shuffle(300, seed=0)
        sizes = inst.jobs.sizes()
        assert sizes.max() > 6 * sizes.mean() * 0.5  # a heavy upper tail exists
        assert inst.setting is Setting.IDENTICAL

    def test_mixed_two_modes(self):
        inst = interactive_plus_batch(50, 5, batch_size=30.0, seed=0)
        sizes = sorted(set(inst.jobs.sizes().tolist()))
        assert sizes == [1.0, 30.0]
        assert sum(1 for j in inst.jobs if j.size == 30.0) == 5

    def test_sensor_unit_payloads(self):
        inst = sensor_fanout(2, 5, seed=0)
        assert set(inst.jobs.sizes().tolist()) == {1.0}
        assert inst.tree.height >= 6  # deep paths

    def test_locality_mix_of_restricted_and_replicated(self):
        inst = locality_cluster(60, restricted_fraction=0.3, seed=0)
        assert inst.setting is Setting.UNRELATED
        has_forbidden = sum(
            1
            for job in inst.jobs
            if any(math.isinf(p) for p in job.leaf_sizes.values())
        )
        assert 0 < has_forbidden < len(inst.jobs)
