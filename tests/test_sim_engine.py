"""Engine tests against hand-computed schedules.

Every scenario here is small enough to verify with pencil and paper; the
expected numbers in the assertions are derived in the comments.
"""

from __future__ import annotations

import math

import pytest

from repro.core.assignment import FixedAssignment
from repro.exceptions import AssignmentError, SimulationError
from repro.network.builders import spine_tree, star_of_paths
from repro.sim.engine import Engine, fifo_priority, simulate
from repro.sim.invariants import validate_schedule
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


from tests.conftest import both_backends_fixture

_engine_backend = both_backends_fixture(__name__)


def chain_instance(jobs):
    """Jobs on the 3-node chain root->router(1)->leaf(2)."""
    return Instance(spine_tree(1), JobSet(jobs), Setting.IDENTICAL)


def run_chain(jobs, speeds=None, priority=None, **kw):
    instance = chain_instance(jobs)
    policy = FixedAssignment({j.id: 2 for j in jobs})
    kwargs = dict(record_segments=True, check_invariants=True, **kw)
    if priority is not None:
        kwargs["priority"] = priority
    return simulate(instance, policy, speeds=speeds, **kwargs)


class TestSingleJob:
    def test_pipeline_timing(self):
        # size 2: router [0,2], leaf [2,4].
        res = run_chain([Job(id=0, release=0.0, size=2.0)])
        rec = res.records[0]
        assert rec.available_at == [0.0, 2.0]
        assert rec.completed_at == [2.0, 4.0]
        assert rec.flow_time == 4.0

    def test_fractional_flow_single_job(self):
        # Alive fraction 1 on [0,2], draining linearly to 0 on [2,4]:
        # integral = 2 + 1 = 3.
        res = run_chain([Job(id=0, release=0.0, size=2.0)])
        assert res.fractional_flow == pytest.approx(3.0)
        assert res.alive_integral == pytest.approx(4.0)

    def test_release_offset(self):
        res = run_chain([Job(id=0, release=5.0, size=1.0)])
        assert res.records[0].completion == 7.0
        assert res.records[0].flow_time == 2.0

    def test_speed_scales_processing(self):
        res = run_chain(
            [Job(id=0, release=0.0, size=2.0)], speeds=SpeedProfile.uniform(2.0)
        )
        assert res.records[0].completed_at == [1.0, 2.0]

    def test_tiered_speeds(self):
        # router at speed 1 (root-adjacent tier), leaf at speed 2.
        speeds = SpeedProfile(root_children=1.0, interior=1.0, leaves=2.0)
        res = run_chain([Job(id=0, release=0.0, size=2.0)], speeds=speeds)
        assert res.records[0].completed_at == [2.0, 3.0]


class TestSJFPreemption:
    def test_small_job_preempts(self):
        # A(size 3, r=0), B(size 1, r=1).  Router: A runs [0,1), B preempts
        # [1,2), A resumes [2,4).  Leaf: B [2,3), A [4,7).
        res = run_chain(
            [Job(id=0, release=0.0, size=3.0), Job(id=1, release=1.0, size=1.0)]
        )
        a, b = res.records[0], res.records[1]
        assert b.completed_at == [2.0, 3.0]
        assert a.completed_at == [4.0, 7.0]
        assert a.flow_time == 7.0
        assert b.flow_time == 2.0
        validate_schedule(res)

    def test_fifo_does_not_preempt(self):
        # Under FIFO, A keeps the router until 3; B waits.
        res = run_chain(
            [Job(id=0, release=0.0, size=3.0), Job(id=1, release=1.0, size=1.0)],
            priority=fifo_priority,
        )
        a, b = res.records[0], res.records[1]
        assert a.completed_at == [3.0, 6.0]
        assert b.completed_at == [4.0, 7.0]
        validate_schedule(res)

    def test_tie_breaks_by_release(self):
        # Same size: the older job wins the node.
        res = run_chain(
            [Job(id=0, release=0.0, size=2.0), Job(id=1, release=1.0, size=2.0)]
        )
        assert res.records[0].completed_at[0] == 2.0
        assert res.records[1].completed_at[0] == 4.0

    def test_simultaneous_release_tie_breaks_by_id(self):
        res = run_chain(
            [Job(id=0, release=0.0, size=2.0), Job(id=1, release=0.0, size=2.0)]
        )
        assert res.records[0].completed_at[0] == 2.0
        assert res.records[1].completed_at[0] == 4.0

    def test_sjf_orders_by_original_size_not_remaining(self):
        # A(size 4, r=0) runs [0,3); B(size 3, r=3) arrives when A has 1
        # unit left.  SJF compares ORIGINAL sizes (3 < 4), so B preempts
        # even though A's remaining (1) is smaller.
        res = run_chain(
            [Job(id=0, release=0.0, size=4.0), Job(id=1, release=3.0, size=3.0)]
        )
        assert res.records[1].completed_at[0] == 6.0  # B finishes router first
        assert res.records[0].completed_at[0] == 7.0


class TestStoreAndForward:
    def test_chain_availability(self):
        res = run_chain([Job(id=0, release=0.0, size=1.0)])
        rec = res.records[0]
        assert rec.available_at[1] == rec.completed_at[0]

    def test_downstream_idles_until_handoff(self):
        # Two jobs on the same path: the leaf cannot start the second
        # until the router hands it over, even if the leaf is idle.
        res = run_chain(
            [Job(id=0, release=0.0, size=1.0), Job(id=1, release=0.0, size=2.0)]
        )
        a, b = res.records[0], res.records[1]
        # Router: A [0,1), B [1,3).  Leaf: A [1,2), idle? no: B arrives 3.
        assert a.completed_at == [1.0, 2.0]
        assert b.available_at == [0.0, 3.0]
        assert b.completed_at == [3.0, 5.0]

    def test_deeper_pipeline(self):
        # 3 routers + leaf, unit job: completes at 4.
        tree = spine_tree(3)
        leaf = tree.leaves[0]
        instance = Instance(
            tree, JobSet([Job(id=0, release=0.0, size=1.0)]), Setting.IDENTICAL
        )
        res = simulate(instance, FixedAssignment({0: leaf}), record_segments=True)
        assert res.records[0].completion == 4.0
        validate_schedule(res)


class TestBranches:
    def test_parallel_branches_do_not_interfere(self, two_path_tree):
        jobs = JobSet(
            [Job(id=0, release=0.0, size=2.0), Job(id=1, release=0.0, size=2.0)]
        )
        instance = Instance(two_path_tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: 2, 1: 4}), check_invariants=True)
        assert res.records[0].completion == 4.0
        assert res.records[1].completion == 4.0

    def test_same_branch_serialises(self, two_path_tree):
        jobs = JobSet(
            [Job(id=0, release=0.0, size=2.0), Job(id=1, release=0.0, size=2.0)]
        )
        instance = Instance(two_path_tree, jobs, Setting.IDENTICAL)
        res = simulate(instance, FixedAssignment({0: 2, 1: 2}), check_invariants=True)
        assert res.records[0].completion == 4.0
        assert res.records[1].completion == 6.0


class TestUnrelatedLeaves:
    def test_leaf_specific_processing(self, two_path_tree):
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 5.0, 4: 1.0})]
        )
        instance = Instance(two_path_tree, jobs, Setting.UNRELATED)
        res = simulate(instance, FixedAssignment({0: 2}))
        assert res.records[0].completion == 6.0  # 1 router + 5 leaf

    def test_leaf_priority_uses_leaf_size(self, two_path_tree):
        # On the leaf, job 1 (p_leaf 1) outranks job 0 (p_leaf 5) even
        # though job 0's router size is smaller.
        jobs = JobSet(
            [
                Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 5.0, 4: 5.0}),
                Job(id=1, release=0.0, size=2.0, leaf_sizes={2: 1.0, 4: 1.0}),
            ]
        )
        instance = Instance(two_path_tree, jobs, Setting.UNRELATED)
        res = simulate(instance, FixedAssignment({0: 2, 1: 2}), check_invariants=True)
        # Router: job0 [0,1), job1 [1,3).  Leaf: job0 starts at 1, job1
        # arrives at 3 and preempts (leaf size 1 < 5), finishes 4; job0
        # resumes, finishes 4 + (5-2) = 7.
        assert res.records[1].completion == 4.0
        assert res.records[0].completion == 7.0


class TestEngineContracts:
    def test_run_twice_rejected(self):
        instance = chain_instance([Job(id=0, release=0.0, size=1.0)])
        eng = Engine(instance, FixedAssignment({0: 2}))
        eng.run()
        with pytest.raises(SimulationError, match="only run once"):
            eng.run()

    def test_non_leaf_assignment_rejected(self):
        instance = chain_instance([Job(id=0, release=0.0, size=1.0)])
        with pytest.raises(AssignmentError, match="non-leaf"):
            simulate(instance, FixedAssignment({0: 1}))

    def test_forbidden_leaf_assignment_rejected(self, two_path_tree):
        jobs = JobSet(
            [Job(id=0, release=0.0, size=1.0, leaf_sizes={2: math.inf, 4: 1.0})]
        )
        instance = Instance(two_path_tree, jobs, Setting.UNRELATED)
        with pytest.raises(AssignmentError, match="forbidden"):
            simulate(instance, FixedAssignment({0: 2}))

    def test_max_events_guard(self):
        instance = chain_instance([Job(id=i, release=0.0, size=1.0) for i in range(5)])
        with pytest.raises(SimulationError, match="max_events"):
            Engine(
                instance, FixedAssignment({i: 2 for i in range(5)}), max_events=3
            ).run()

    def test_empty_instance(self):
        instance = chain_instance([])
        res = simulate(instance, FixedAssignment({}))
        assert res.total_flow_time() == 0.0
        assert res.num_events == 0

    def test_alive_integral_equals_total_flow(self):
        jobs = [Job(id=i, release=0.7 * i, size=1.0 + (i % 3)) for i in range(12)]
        res = run_chain(jobs)
        assert res.alive_integral == pytest.approx(res.total_flow_time())

    def test_fractional_at_most_total(self):
        jobs = [Job(id=i, release=0.7 * i, size=1.0 + (i % 3)) for i in range(12)]
        res = run_chain(jobs)
        assert res.fractional_flow <= res.total_flow_time() + 1e-9


class TestObserver:
    def test_events_observed_in_order(self):
        events = []

        def obs(view, kind, subject):
            events.append((view.now, kind, subject))

        jobs = [Job(id=0, release=0.0, size=1.0), Job(id=1, release=0.5, size=1.0)]
        instance = chain_instance(jobs)
        Engine(instance, FixedAssignment({0: 2, 1: 2}), observer=obs).run()
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        kinds = [k for _, k, _ in events]
        assert kinds.count("arrival") == 2
        assert kinds.count("completion") == 4  # 2 jobs x 2 nodes

    def test_view_queries_during_run(self):
        seen = {}

        def obs(view, kind, subject):
            if kind == "arrival" and subject == 1:
                # At job 1's arrival, job 0 should be alive somewhere.
                seen["alive"] = view.alive_jobs()
                seen["rem"] = view.remaining_on(0, 1)

        jobs = [Job(id=0, release=0.0, size=2.0), Job(id=1, release=1.0, size=2.0)]
        instance = chain_instance(jobs)
        Engine(instance, FixedAssignment({0: 2, 1: 2}), observer=obs).run()
        assert 0 in seen["alive"]
        assert seen["rem"] == pytest.approx(1.0)  # half of job 0's router work left


class TestSchedulerView:
    def test_remaining_on_future_and_past_nodes(self):
        snapshots = {}

        def obs(view, kind, subject):
            if kind == "completion" and subject == 1 and 0 in view.alive_jobs():
                snapshots["past"] = view.remaining_on(0, 1)
                snapshots["current"] = view.remaining_on(0, 2)

        jobs = [Job(id=0, release=0.0, size=2.0)]
        instance = chain_instance(jobs)
        Engine(instance, FixedAssignment({0: 2}), observer=obs).run()
        assert snapshots["past"] == 0.0
        assert snapshots["current"] == 2.0

    def test_jobs_through_leaf_tracks_assignment(self):
        rows = []

        def obs(view, kind, subject):
            if kind == "arrival":
                rows.append(view.jobs_through(2))

        jobs = [Job(id=0, release=0.0, size=5.0), Job(id=1, release=1.0, size=5.0)]
        instance = chain_instance(jobs)
        Engine(instance, FixedAssignment({0: 2, 1: 2}), observer=obs).run()
        assert rows[0] == (0,)
        assert rows[1] == (0, 1)


class TestDrainFinishedTies:
    """Regression: `_drain_finished_top` must advance *every* finished
    job at the heap top, not just the first (two jobs preempted at the
    brink of completion would otherwise strand the second behind
    full-size work pushed at the same instant)."""

    def test_two_finished_ties_both_advance(self):
        # Three same-size, same-release jobs: identical (p, release)
        # priority tuples, ties broken by id, so jobs 0 and 1 sit at the
        # top of the router heap.  Mark both as numerically finished
        # (as a brink-of-completion preemption would leave them) and
        # drain: both must move to the leaf, while job 2 stays.
        jobs = [Job(id=i, release=0.0, size=1.0) for i in range(3)]
        instance = chain_instance(jobs)
        eng = Engine(instance, FixedAssignment({j.id: 2 for j in jobs}))
        for job in jobs:
            eng._handle_arrival(job)
        router = eng._nodes[1]
        eng._settle(router)
        eng._states[0].remaining = 0.0
        eng._states[1].remaining = 5e-13  # below finished_tol(1.0)
        eng._drain_finished_top(router)
        assert eng._states[0].idx == 1, "heap-top finished job must advance"
        assert eng._states[1].idx == 1, "second finished tie must advance too"
        assert eng._states[2].idx == 0, "unfinished job must stay queued"
        assert [jid for _, jid in router.heap] == [2]

    def test_finished_tol_scales_with_job_size(self):
        # A residual of 1e-10 is noise for a size-1e6 job (relative
        # 1e-16) but real work for a size-1 job.  The drain threshold
        # must scale accordingly.
        from repro.sim.tolerances import finished_tol

        assert 1e-10 > finished_tol(1.0)
        assert 1e-10 <= finished_tol(1e6)

    def test_brink_preemption_end_to_end(self):
        # Job 0 (size 1) is preempted by smaller job 1 arriving when
        # job 0 has ~1e-13 work left; the run must still complete with a
        # valid schedule and job 0's router completion at (numerically)
        # its preemption time or later.
        jobs = [
            Job(id=0, release=0.0, size=1.0),
            Job(id=1, release=1.0 - 1e-13, size=0.5),
        ]
        res = run_chain(jobs)
        validate_schedule(res)
        assert res.records[0].finished and res.records[1].finished
