"""Direct unit tests for SimulationResult and JobRecord."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment
from repro.exceptions import SimulationError
from repro.network.builders import spine_tree
from repro.sim.engine import simulate
from repro.sim.result import JobRecord, ScheduleSegment
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


def run(jobs, **kw):
    instance = Instance(spine_tree(1), JobSet(jobs), Setting.IDENTICAL)
    return simulate(instance, FixedAssignment({j.id: 2 for j in jobs}), **kw)


class TestJobRecord:
    def test_unfinished_completion_raises(self):
        rec = JobRecord(job_id=0, release=0.0, leaf=2, path=(1, 2))
        rec.available_at = [0.0]
        rec.completed_at = [1.0]
        assert not rec.finished
        with pytest.raises(SimulationError, match="did not complete"):
            _ = rec.completion

    def test_time_on_node(self):
        res = run([Job(id=0, release=0.0, size=2.0)])
        rec = res.records[0]
        assert rec.time_on_node(0) == pytest.approx(2.0)
        assert rec.time_on_node(1) == pytest.approx(2.0)


class TestScheduleSegment:
    def test_duration(self):
        assert ScheduleSegment(1, 0, 2.0, 5.0).duration == 3.0


class TestSimulationResult:
    def test_flow_accessors_consistent(self):
        res = run([Job(id=i, release=float(i), size=1.0) for i in range(4)])
        flows = res.flow_times()
        assert res.total_flow_time() == pytest.approx(float(flows.sum()))
        assert res.mean_flow_time() == pytest.approx(float(flows.mean()))
        assert res.max_flow_time() == pytest.approx(float(flows.max()))
        assert res.completions()[0] == res.records[0].completion

    def test_empty_result_metrics(self):
        res = run([])
        assert res.total_flow_time() == 0.0
        assert res.mean_flow_time() == 0.0
        assert res.max_flow_time() == 0.0
        assert res.makespan() == 0.0
        res.verify_complete()

    def test_verify_complete_raises_on_partial(self):
        res = run([Job(id=0, release=0.0, size=5.0)], until=2.0)
        with pytest.raises(SimulationError, match="did not complete"):
            res.verify_complete()

    def test_repr_mentions_totals(self):
        res = run([Job(id=0, release=0.0, size=1.0)])
        assert "total_flow" in repr(res)
