"""Unit tests for the EventLog observer."""

from __future__ import annotations

import pytest

from repro.core.assignment import FixedAssignment
from repro.network.builders import spine_tree
from repro.sim.engine import fifo_priority, simulate
from repro.sim.events import EventKind, EventLog
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


# EventLog is deprecated in favour of repro.obs (see test_deprecations);
# these tests cover its behaviour during the compat release.
pytestmark = pytest.mark.filterwarnings(
    "ignore:EventLog is deprecated:DeprecationWarning"
)


def run_with_log(jobs, priority=None):
    tree = spine_tree(1)
    instance = Instance(tree, JobSet(jobs), Setting.IDENTICAL)
    log = EventLog()
    kwargs = {"observer": log}
    if priority is not None:
        kwargs["priority"] = priority
    result = simulate(instance, FixedAssignment({j.id: 2 for j in jobs}), **kwargs)
    return log, result


class TestTimeline:
    def test_single_job_lifecycle(self):
        log, _ = run_with_log([Job(id=0, release=0.0, size=2.0)])
        kinds = [e.kind for e in log.for_job(0)]
        assert kinds[0] is EventKind.ARRIVAL
        assert EventKind.HANDOFF in kinds
        assert kinds[-1] is EventKind.FINISH

    def test_times_monotone(self):
        log, _ = run_with_log(
            [Job(id=i, release=0.5 * i, size=1.0 + i % 2) for i in range(8)]
        )
        times = [e.time for e in log.events]
        assert times == sorted(times)

    def test_arrival_records_entry_node(self):
        log, _ = run_with_log([Job(id=0, release=0.0, size=1.0)])
        arrival = log.of_kind(EventKind.ARRIVAL)[0]
        assert arrival.node == 1  # the root-adjacent router

    def test_finish_records_leaf(self):
        log, _ = run_with_log([Job(id=0, release=0.0, size=1.0)])
        finish = log.of_kind(EventKind.FINISH)[0]
        assert finish.node == 2

    def test_every_job_finishes_once(self):
        jobs = [Job(id=i, release=0.3 * i, size=1.0) for i in range(6)]
        log, result = run_with_log(jobs)
        finishes = log.of_kind(EventKind.FINISH)
        assert sorted(e.job_id for e in finishes) == sorted(result.records)


class TestPreemptions:
    def test_sjf_preemption_detected(self):
        # Big job running, small job arrives -> preemption at router 1.
        log, _ = run_with_log(
            [Job(id=0, release=0.0, size=4.0), Job(id=1, release=1.0, size=1.0)]
        )
        pre = log.preemptions_at(1)
        assert len(pre) == 1
        assert pre[0].job_id == 0  # displaced
        assert pre[0].other_job == 1  # displacer
        assert pre[0].time == pytest.approx(1.0)

    def test_fifo_never_preempts(self):
        log, _ = run_with_log(
            [Job(id=0, release=0.0, size=4.0), Job(id=1, release=1.0, size=1.0)],
            priority=fifo_priority,
        )
        assert not log.of_kind(EventKind.PREEMPTION)

    def test_no_false_preemption_on_natural_handoff(self):
        # Sequential jobs with no overlap: no preemptions.
        log, _ = run_with_log(
            [Job(id=0, release=0.0, size=1.0), Job(id=1, release=10.0, size=1.0)]
        )
        assert not log.of_kind(EventKind.PREEMPTION)


class TestQueries:
    def test_len_and_filters(self):
        log, _ = run_with_log([Job(id=0, release=0.0, size=1.0)])
        assert len(log) == len(log.events)
        assert all(e.job_id == 0 for e in log.for_job(0))
        assert log.preemptions_at(99) == []
