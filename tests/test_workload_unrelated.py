"""Unit tests for unrelated-endpoint matrix generators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workload.unrelated import (
    affinity_matrix,
    partition_matrix,
    restricted_assignment_matrix,
    uniform_speed_matrix,
)

LEAVES = (10, 11, 12, 13, 14, 15)
SIZES = (1.0, 2.0, 4.0)


class TestUniformSpeed:
    def test_shape_and_coverage(self):
        rows = uniform_speed_matrix(LEAVES, SIZES, rng=0)
        assert len(rows) == len(SIZES)
        for row in rows:
            assert set(row) == set(LEAVES)

    def test_speeds_shared_across_jobs(self):
        rows = uniform_speed_matrix(LEAVES, SIZES, rng=1)
        # p_{j,v}/p_j must be the same 1/s_v for all jobs.
        ratios0 = {v: rows[0][v] / SIZES[0] for v in LEAVES}
        ratios1 = {v: rows[1][v] / SIZES[1] for v in LEAVES}
        for v in LEAVES:
            assert ratios0[v] == pytest.approx(ratios1[v])

    def test_bounds_respected(self):
        rows = uniform_speed_matrix(LEAVES, SIZES, speed_low=0.5, speed_high=2.0, rng=2)
        for row, p in zip(rows, SIZES):
            for v in LEAVES:
                assert p / 2.0 <= row[v] <= p / 0.5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            uniform_speed_matrix([], SIZES)
        with pytest.raises(WorkloadError):
            uniform_speed_matrix(LEAVES, SIZES, speed_low=0.0)
        with pytest.raises(WorkloadError):
            uniform_speed_matrix((1, 1), SIZES)


class TestAffinity:
    def test_fast_leaf_count(self):
        rows = affinity_matrix(LEAVES, SIZES, fast_leaves=2, slow_factor=8.0, rng=0)
        for row, p in zip(rows, SIZES):
            fast = [v for v in LEAVES if row[v] == p]
            slow = [v for v in LEAVES if row[v] == p * 8.0]
            assert len(fast) == 2
            assert len(slow) == len(LEAVES) - 2

    def test_fast_leaves_capped_at_leaf_count(self):
        rows = affinity_matrix(LEAVES[:2], SIZES, fast_leaves=10, rng=1)
        for row, p in zip(rows, SIZES):
            assert all(val == p for val in row.values())

    def test_validation(self):
        with pytest.raises(WorkloadError):
            affinity_matrix(LEAVES, SIZES, fast_leaves=0)
        with pytest.raises(WorkloadError):
            affinity_matrix(LEAVES, SIZES, slow_factor=0.5)


class TestPartition:
    def test_group_structure(self):
        rows = partition_matrix(LEAVES, SIZES, num_groups=3, slow_factor=16.0, rng=0)
        for row, p in zip(rows, SIZES):
            values = set(row.values())
            assert values <= {p, p * 16.0}
            fast = [v for v in LEAVES if row[v] == p]
            assert len(fast) == len(LEAVES) // 3

    def test_validation(self):
        with pytest.raises(WorkloadError):
            partition_matrix(LEAVES, SIZES, num_groups=0)
        with pytest.raises(WorkloadError):
            partition_matrix(LEAVES, SIZES, num_groups=len(LEAVES) + 1)


class TestRestrictedAssignment:
    def test_values_are_p_or_inf(self):
        rows = restricted_assignment_matrix(LEAVES, SIZES, feasible_fraction=0.4, rng=0)
        for row, p in zip(rows, SIZES):
            assert set(row.values()) <= {p, math.inf}

    def test_at_least_one_feasible(self):
        rows = restricted_assignment_matrix(
            LEAVES, [1.0] * 200, feasible_fraction=0.01, rng=1
        )
        for row in rows:
            assert any(math.isfinite(v) for v in row.values())

    def test_fraction_one_all_feasible(self):
        rows = restricted_assignment_matrix(LEAVES, SIZES, feasible_fraction=1.0, rng=2)
        for row in rows:
            assert all(math.isfinite(v) for v in row.values())

    def test_validation(self):
        with pytest.raises(WorkloadError):
            restricted_assignment_matrix(LEAVES, SIZES, feasible_fraction=0.0)
        with pytest.raises(WorkloadError):
            restricted_assignment_matrix(LEAVES, [0.0])


def test_determinism_across_generators():
    for gen in (
        lambda r: uniform_speed_matrix(LEAVES, SIZES, rng=r),
        lambda r: affinity_matrix(LEAVES, SIZES, rng=r),
        lambda r: partition_matrix(LEAVES, SIZES, num_groups=2, rng=r),
        lambda r: restricted_assignment_matrix(LEAVES, SIZES, rng=r),
    ):
        assert gen(7) == gen(7)
