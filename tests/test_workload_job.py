"""Unit tests for Job and JobSet."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.workload.job import Job, JobSet


class TestJobValidation:
    def test_valid_identical_job(self):
        j = Job(id=0, release=1.5, size=2.0)
        assert not j.is_unrelated
        assert j.processing_on_leaf(99) == 2.0

    def test_negative_id_rejected(self):
        with pytest.raises(WorkloadError, match="id"):
            Job(id=-1, release=0.0, size=1.0)

    def test_negative_release_rejected(self):
        with pytest.raises(WorkloadError, match="release"):
            Job(id=0, release=-0.1, size=1.0)

    def test_nan_release_rejected(self):
        with pytest.raises(WorkloadError, match="release"):
            Job(id=0, release=float("nan"), size=1.0)

    def test_zero_size_rejected(self):
        with pytest.raises(WorkloadError, match="size"):
            Job(id=0, release=0.0, size=0.0)

    def test_infinite_size_rejected(self):
        with pytest.raises(WorkloadError, match="size"):
            Job(id=0, release=0.0, size=math.inf)

    def test_empty_leaf_sizes_rejected(self):
        with pytest.raises(WorkloadError, match="empty"):
            Job(id=0, release=0.0, size=1.0, leaf_sizes={})

    def test_all_infinite_leaves_rejected(self):
        with pytest.raises(WorkloadError, match="no leaf"):
            Job(id=0, release=0.0, size=1.0, leaf_sizes={3: math.inf})

    def test_inf_allowed_for_some_leaves(self):
        j = Job(id=0, release=0.0, size=1.0, leaf_sizes={3: math.inf, 4: 2.0})
        assert j.is_unrelated
        assert j.processing_on_leaf(3) == math.inf
        assert j.processing_on_leaf(4) == 2.0

    def test_nonpositive_leaf_size_rejected(self):
        with pytest.raises(WorkloadError, match="leaf"):
            Job(id=0, release=0.0, size=1.0, leaf_sizes={3: 0.0})

    def test_missing_leaf_lookup_rejected(self):
        j = Job(id=0, release=0.0, size=1.0, leaf_sizes={3: 1.0})
        with pytest.raises(WorkloadError, match="missing"):
            j.processing_on_leaf(7)

    def test_with_leaf_sizes_copies(self):
        j = Job(id=0, release=0.0, size=1.0)
        j2 = j.with_leaf_sizes({5: 2.0})
        assert j2.is_unrelated and not j.is_unrelated
        assert j2.id == j.id and j2.release == j.release


class TestJobSet:
    def test_sorted_by_release_then_id(self):
        jobs = JobSet(
            [
                Job(id=2, release=1.0, size=1.0),
                Job(id=0, release=2.0, size=1.0),
                Job(id=1, release=1.0, size=1.0),
            ]
        )
        assert [j.id for j in jobs] == [1, 2, 0]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(WorkloadError, match="duplicate"):
            JobSet([Job(id=0, release=0.0, size=1.0), Job(id=0, release=1.0, size=1.0)])

    def test_by_id(self):
        js = JobSet([Job(id=5, release=0.0, size=3.0)])
        assert js.by_id(5).size == 3.0
        with pytest.raises(WorkloadError, match="unknown"):
            js.by_id(0)
        assert 5 in js and 0 not in js

    def test_array_views(self):
        js = JobSet([Job(id=i, release=float(i), size=2.0) for i in range(4)])
        assert np.allclose(js.releases(), [0, 1, 2, 3])
        assert np.allclose(js.sizes(), [2, 2, 2, 2])
        assert js.total_volume() == 8.0
        assert js.time_horizon() == 3.0

    def test_empty_set(self):
        js = JobSet([])
        assert len(js) == 0
        assert js.time_horizon() == 0.0
        assert js.releases().shape == (0,)

    def test_indexing_and_ids(self):
        js = JobSet([Job(id=i, release=float(i), size=1.0) for i in range(3)])
        assert js[1].id == 1
        assert js.ids == (0, 1, 2)

    def test_is_unrelated_flag(self):
        a = JobSet([Job(id=0, release=0.0, size=1.0)])
        b = JobSet([Job(id=0, release=0.0, size=1.0, leaf_sizes={2: 1.0})])
        assert not a.is_unrelated
        assert b.is_unrelated


class TestJobSetBuild:
    def test_build_identical(self):
        js = JobSet.build([0.0, 1.0], [2.0, 3.0])
        assert len(js) == 2
        assert js.by_id(1).size == 3.0

    def test_build_unrelated(self):
        js = JobSet.build([0.0], [2.0], [{4: 1.0}])
        assert js.by_id(0).leaf_sizes == {4: 1.0}

    def test_build_length_mismatch(self):
        with pytest.raises(WorkloadError, match="differ in length"):
            JobSet.build([0.0, 1.0], [2.0])
        with pytest.raises(WorkloadError, match="differ in length"):
            JobSet.build([0.0], [2.0], [])
