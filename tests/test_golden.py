"""Golden regression tests.

Small, fully deterministic scenarios with frozen expected outputs.
These catch *any* behavioural drift in the engine, the policies, or the
workload generators — including changes that are individually plausible
but alter schedules (tie-breaking, event ordering, settle semantics).
If one of these fails after an intentional semantic change, update the
constant *and* document the change in docs/model.md.
"""

from __future__ import annotations

import pytest

from repro.core.assignment import GreedyIdenticalAssignment
from repro.core.scheduler import run_paper_algorithm
from repro.lp.primal import solve_primal_lp
from repro.network.builders import figure1_tree, kary_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet


class TestGoldenSchedules:
    def test_figure1_walkthrough(self):
        """The F1 walkthrough's exact completions (also shown in
        EXPERIMENTS.md)."""
        tree = figure1_tree()
        releases = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
        sizes = [2.0, 1.0, 1.0, 2.0, 1.0, 1.0]
        instance = Instance(tree, JobSet.build(releases, sizes), Setting.IDENTICAL)
        result = run_paper_algorithm(instance, eps=0.5)
        completions = [round(result.records[j].completion, 4) for j in range(6)]
        assert completions == [3.1111, 2.0556, 2.7222, 4.6111, 3.5556, 4.2222]
        assert result.total_flow_time() == pytest.approx(12.7778, abs=1e-4)

    def test_two_branch_burst(self):
        """Six simultaneous unit jobs, two branches, unit speeds."""
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=i, release=0.0, size=1.0) for i in range(6)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        result = simulate(instance, GreedyIdenticalAssignment(1.0))
        # Greedy alternates branches as F grows; each branch pipelines
        # three unit jobs: completions 2,3,4 per branch.
        flows = sorted(r.flow_time for r in result.records.values())
        assert flows == [2.0, 2.0, 3.0, 3.0, 4.0, 4.0]

    def test_seeded_poisson_instance_total(self):
        """Frozen end-to-end number for a seeded random workload."""
        from repro.analysis.experiments.workloads import identical_instance

        instance = identical_instance(kary_tree(2, 3), 30, load=0.9, seed=42)
        result = run_paper_algorithm(instance, eps=0.25)
        assert result.total_flow_time() == pytest.approx(249.7884, abs=1e-3)
        assert result.fractional_flow == pytest.approx(212.3201, abs=1e-3)
        assert result.num_events == 120

    def test_lp_optimum_frozen(self):
        tree = star_of_paths(2, 1)
        jobs = JobSet([Job(id=i, release=float(i), size=2.0) for i in range(4)])
        instance = Instance(tree, jobs, Setting.IDENTICAL)
        sol = solve_primal_lp(instance, SpeedProfile.uniform(1.0))
        assert sol.objective == pytest.approx(16.0, abs=1e-6)

    def test_theorem_speeds_frozen(self):
        sp = SpeedProfile.theorem2(0.25)
        assert (sp.root_children, sp.interior, sp.leaves) == (2.5, 3.125, 3.125)
