# Convenience targets; everything assumes the in-tree package layout
# (PYTHONPATH=src), no install required.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test smoke bench report clean-cache

# Tier-1: the fast unit/contract suite (benchmarks are marked slow).
test:
	$(PY) -m pytest -x -q -m "not slow"

# CI smoke: the two fastest experiments through the parallel runner.
# Exercises worker processes, the result cache, and the counters path
# end to end in a couple of seconds.
smoke:
	$(PY) -m repro experiments F1 F2 --parallel 2 --counters --summary-only

# Full experiment regenerations via pytest-benchmark.
bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -s

# Regenerate EXPERIMENTS.md from live runs.
report:
	$(PY) -m repro report -o EXPERIMENTS.md

clean-cache:
	rm -rf .cache
