"""Benchmark L3 — Lemma 3's potential function.

Regenerates the Φ-vs-realised-residual audit after the final arrival.
Expected shape: Φ dominates the realised residual time and never
increases between events.
"""

from benchmarks.conftest import run_and_report


def test_l3_potential(benchmark):
    result = run_and_report(benchmark, "L3")
    assert result.metrics["min_slack"] >= -1e-7
