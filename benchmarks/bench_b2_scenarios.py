"""Benchmark B2 — the application scenarios, end to end.

Regenerates the scenario × policy grid on the named workloads the
introduction motivates (shuffle-heavy analytics, interactive+batch,
sensor fan-out, data locality).  Expected shape: the paper's scheduler
wins or ties on mean flow almost everywhere and never loses to
closest-leaf dispatch on congested shapes.
"""

from benchmarks.conftest import run_and_report


def test_b2_scenarios(benchmark):
    result = run_and_report(benchmark, "B2")
    assert result.metrics["scenarios_won_or_tied"] >= 3
