"""Shared benchmark harness.

Each ``bench_*`` module regenerates one experiment of the index in
``DESIGN.md`` §4.  :func:`run_and_report` wraps the experiment in the
pytest-benchmark timer (single round — experiments are end-to-end
regenerations, not micro-kernels), prints the regenerated table so the
benchmark log doubles as the experiment report, and asserts the
experiment's own pass criterion.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import run_experiment


def pytest_collection_modifyitems(config, items):
    """Mark every benchmark as ``slow`` so tier-1 can deselect them.

    ``pytest -m "not slow"`` (the Makefile's ``test`` target) runs only
    the fast unit/contract suite; ``pytest benchmarks/`` still runs the
    full experiment regenerations.
    """
    for item in items:
        if "benchmarks" in str(item.fspath):
            item.add_marker(pytest.mark.slow)


def run_and_report(benchmark, exp_id: str, **params):
    """Time one full experiment regeneration, print it, assert it passes."""
    result = benchmark.pedantic(
        lambda: run_experiment(exp_id, **params), rounds=1, iterations=1
    )
    print()
    print(result.render())
    assert result.passed, f"{exp_id} failed its pass criterion"
    return result
