"""Benchmark T1 — Theorem 1's shape (identical endpoints).

Regenerates the speed-augmentation sweep: the paper algorithm's
flow-time ratio against the LP/combinatorial lower bound across
topologies and speeds, side by side with the closest-leaf baseline.
Expected shape: bounded small ratios for the paper algorithm at
``s ≥ 1+ε``; greedy beats closest-leaf on congested topologies.
"""

from benchmarks.conftest import run_and_report


def test_t1_identical_competitive(benchmark):
    result = run_and_report(benchmark, "T1")
    # Shape assertions beyond the experiment's own criterion: ratios are
    # finite and the table covers every (tree, policy, speed) row.
    assert result.metrics["worst_mean_ratio_at_top_speed"] < 10.0
    assert len(result.table) == 5 * 2 * 5  # trees x policies x speeds
