"""Benchmark X5 — dynamic events: realized-instance competitiveness.

Regenerates the breakdown/cancellation robustness table: each policy
runs event-free and under a deterministic outage + cancellation deck,
measured against the LP lower bound of the realized instance (cancelled
jobs removed).  Expected shape: the greedy's ratio barely moves under
the storm while closest-leaf degrades further.
"""

from benchmarks.conftest import run_and_report


def test_x5_dynamic_events(benchmark):
    result = run_and_report(benchmark, "X5")
    assert result.metrics["closest_over_greedy_events"] > 1.0
    assert (
        result.metrics["greedy_ratio_events"]
        <= 1.5 * result.metrics["greedy_ratio_static"]
    )
