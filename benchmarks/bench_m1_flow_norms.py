"""Benchmark M1 — max flow time and ℓ_k norms on a line network.

Regenerates the norms probe on the line-network regime of Antoniadis et
al. [5] (the conclusion's open question).  Expected shape: max flow
within a small factor of the pipeline-latency lower bound at augmented
speeds; ℓ₁ ≥ ℓ₂ ≥ max orderings exact.
"""

from benchmarks.conftest import run_and_report


def test_m1_flow_norms(benchmark):
    result = run_and_report(benchmark, "M1")
    assert result.metrics["worst_max_over_lb_at_augmented_speed"] <= 3.0
