"""Benchmark T5 — Theorems 5/6's fractional competitiveness, measured.

Regenerates the fractional-flow ratio of the broomstick algorithm at the
theorems' exact asymmetric speed profiles against the unit-speed LP
optimum.  Expected shape: small constants, far inside the dual-fitting
guarantees (10/ε³ and 20/ε³).
"""

from benchmarks.conftest import run_and_report


def test_t5_fractional_broomstick(benchmark):
    result = run_and_report(benchmark, "T5")
    assert result.metrics["worst_fractional_ratio"] > 0
