"""Benchmark L4 — Lemma 4's per-phase waiting bounds.

Regenerates the last-job phase-wait audit on single-burst broomstick
workloads (the lemma's arrival-free hypothesis).  Expected shape: every
phase wait within its bound; the top-tier bound is typically *tight*
(the last job of a burst waits exactly the higher-priority volume).
"""

from benchmarks.conftest import run_and_report


def test_l4_phase_waits(benchmark):
    result = run_and_report(benchmark, "L4")
    assert result.metrics["worst_fraction_of_bound"] <= 1.0 + 1e-9
