"""Benchmark X3 — ablation of the greedy's 6/ε² distance weight.

Regenerates the multiplier sweep on depth-heterogeneous branches.
Expected shape: flow time monotone non-decreasing in the weight — the
congestion term carries the performance and the worst-case coefficient
is conservative on average-case workloads.
"""

from benchmarks.conftest import run_and_report


def test_x3_weight_ablation(benchmark):
    result = run_and_report(benchmark, "X3")
    assert result.metrics["extreme_over_paper"] >= 1.0 - 1e-9
