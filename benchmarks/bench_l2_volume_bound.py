"""Benchmark L2 — Lemma 2's available-volume bound.

Regenerates the per-event audit of higher-priority available volume at
interior nodes.  Expected shape: never exceeds ``(2/ε)·p_j``.
"""

from benchmarks.conftest import run_and_report


def test_l2_volume_bound(benchmark):
    result = run_and_report(benchmark, "L2")
    assert result.metrics["worst_fraction_of_bound"] <= 1.0
