"""Benchmark F1 — Figure 1 (the tree network model) reproduced.

Regenerates the model walkthrough: topology rendering plus a per-job
trace on the Figure-1 tree showing store-and-forward availability
chains.
"""

from benchmarks.conftest import run_and_report


def test_f1_model_figure(benchmark):
    result = run_and_report(benchmark, "F1")
    assert result.metrics["num_leaves"] == 7.0
