"""Benchmark T4 — Theorem 4's shape (broomstick preserves the optimum).

Regenerates the LP-vs-LP comparison: optimum on the augmented broomstick
divided by the optimum on the original tree.  Expected shape: a modest
constant (Theorem 4 allows ``O(1/ε³)``; measured values land near 1–2).
"""

from benchmarks.conftest import run_and_report


def test_t4_broomstick_opt(benchmark):
    result = run_and_report(benchmark, "T4")
    assert 0.0 < result.metrics["worst_opt_ratio"] <= 4.0
