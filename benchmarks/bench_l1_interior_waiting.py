"""Benchmark L1 — Lemma 1's interior waiting bound.

Regenerates the normalised interior-delay audit on deep bursty trees in
exactly Lemma 1's speed configuration.  Expected shape: the max
normalised delay sits well below ``6/ε²``.
"""

from benchmarks.conftest import run_and_report


def test_l1_interior_waiting(benchmark):
    result = run_and_report(benchmark, "L1")
    assert result.metrics["worst_fraction_of_bound"] <= 1.0
