"""Benchmark X4 — scanning the [1+ε, 2+ε] speed interval (open question).

Regenerates the unrelated-endpoint ratio scan between Theorem 2's
required speed and the conjectured 1+ε.  Expected shape: smooth
degradation, no cliff at 2 — evidence (not proof) that the 2+ε
requirement is not realised by stochastic workloads.
"""

from benchmarks.conftest import run_and_report


def test_x4_speed_requirement(benchmark):
    result = run_and_report(benchmark, "X4")
    assert result.metrics["worst_ratio_cliff_1eps_over_2eps"] < 5.0
