"""Benchmark T3 — Theorem 3's shape (fractional→integral conversion).

Regenerates the integral/fractional flow-time ratio grid for the paper
algorithm.  Expected shape: the gap sits far below the generic
``1 + 1/ε`` conversion budget because SJF runs on the leaves.
"""

from benchmarks.conftest import run_and_report


def test_t3_fractional_integral(benchmark):
    result = run_and_report(benchmark, "T3")
    # The measured conversion gap must stay below even the tightest
    # swept budget (1 + 1/0.5 = 3) with clear margin.
    assert result.metrics["worst_total_over_fractional"] < 3.0
