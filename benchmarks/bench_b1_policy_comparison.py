"""Benchmark B1 — the motivation table: congestion-aware dispatch wins.

Regenerates the policy × node-order × load grid on the datacenter
topology.  Expected shape: closest-leaf collapses at high load, SJF
beats FIFO, and the paper's greedy is the overall winner.
"""

from benchmarks.conftest import run_and_report


def test_b1_policy_comparison(benchmark):
    result = run_and_report(benchmark, "B1")
    assert result.metrics["closest_over_greedy_at_high_load"] >= 1.1
    assert result.metrics["fifo_over_sjf_for_greedy"] >= 1.0
