"""Benchmark X2 — jobs created at arbitrary nodes (future work, §4).

Regenerates the origin-placement comparison (root vs pod vs rack data
origins) in the downward-routing variant.  Expected shape: deeper
origins strictly reduce flow time; subtree constraints always hold.
"""

from benchmarks.conftest import run_and_report


def test_x2_arbitrary_origins(benchmark):
    result = run_and_report(benchmark, "X2")
    assert result.metrics["root_over_rack_mean_flow"] > 1.0
    assert result.metrics["root_over_pod_mean_flow"] > 1.0
