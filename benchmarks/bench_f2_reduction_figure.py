"""Benchmark F2 — Figure 2 (the broomstick reduction) reproduced.

Regenerates the structural audit of the reduction over assorted trees:
broomstick image, leaf bijection, +2 depth shift, handle lengths.
"""

from benchmarks.conftest import run_and_report


def test_f2_reduction_figure(benchmark):
    result = run_and_report(benchmark, "F2")
    assert result.metrics["trees_audited"] >= 6
