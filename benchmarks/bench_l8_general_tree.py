"""Benchmark L8 — Lemma 8's domination of A_T by the broomstick shadow.

Regenerates the per-job flow comparison between the general-tree run and
its broomstick shadow.  Expected shape: exact per-job domination in the
identical setting; total domination with at most rare marginal per-job
exceptions in the unrelated setting (see the experiment module's
reproduction finding).
"""

from benchmarks.conftest import run_and_report


def test_l8_general_tree(benchmark):
    result = run_and_report(benchmark, "L8")
    assert result.metrics["worst_relative_perjob_excess"] < 0.05
