"""Benchmark S1 — simulator scalability.

Regenerates the throughput table (events/sec vs instance size) and
additionally micro-benchmarks the engine on a fixed mid-size instance so
pytest-benchmark's statistics track engine performance over time.
"""

from benchmarks.conftest import run_and_report
from repro.analysis.experiments.workloads import identical_instance
from repro.core.assignment import GreedyIdenticalAssignment
from repro.network.builders import datacenter_tree
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile


def test_s1_scalability(benchmark):
    result = run_and_report(benchmark, "S1")
    assert result.metrics["events_per_sec_at_largest"] > 1000


def test_s1_engine_kernel(benchmark):
    """Steady-state engine micro-benchmark: 400 jobs on a 40-node tree."""
    tree = datacenter_tree(3, 3, 4)
    instance = identical_instance(tree, 400, load=0.85, seed=99)

    def run():
        return simulate(
            instance, GreedyIdenticalAssignment(0.25), speeds=SpeedProfile.uniform(1.5)
        )

    result = benchmark(run)
    assert result.num_events > 0
