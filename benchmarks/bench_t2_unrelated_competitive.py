"""Benchmark T2 — Theorem 2's shape (unrelated endpoints).

Regenerates the ``(2+ε)``-speed sweep on affinity and partition
matrices.  Expected shape: the paper algorithm's ratio stabilises once
speed clears ≈2 and beats closest-leaf in aggregate at high speed.
"""

from benchmarks.conftest import run_and_report


def test_t2_unrelated_competitive(benchmark):
    result = run_and_report(benchmark, "T2")
    assert result.metrics["worst_ratio_at_top_speed"] < 12.0
    assert (
        result.metrics["aggregate_paper_ratio_fast"]
        <= result.metrics["aggregate_closest_ratio_fast"]
    )
