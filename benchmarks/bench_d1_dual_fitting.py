"""Benchmark D1 — the dual fitting of Sections 3.5/3.6 as certificates.

Regenerates the certificate grid: constraint residuals after scaling,
scaled dual objectives, and weak-duality audits against the exactly
solved LP.  Expected shape: all certificates feasible with zero
violation; dual objectives positive and below LP*.
"""

from benchmarks.conftest import run_and_report


def test_d1_dual_fitting(benchmark):
    result = run_and_report(benchmark, "D1")
    assert result.metrics["worst_constraint_violation"] <= 1e-7
