"""Benchmark X1 — the divisible-routing extension of Section 2.

Regenerates the store-and-forward vs chunked comparison on deep
branches.  Expected shape: flow time improves as pieces shrink —
interior congestion is "effectively negated", as the paper asserts for
this variant.
"""

from benchmarks.conftest import run_and_report


def test_x1_divisible_routing(benchmark):
    result = run_and_report(benchmark, "X1")
    assert result.metrics["store_forward_over_finest_chunked"] >= 1.0
