"""Regression guard: engine throughput must scale near-linearly.

With the incremental congestion aggregates, an arrival costs O(path
length + branch count) instead of O(leaves x alive), so events/s should
be roughly flat as the job count grows.  This guard runs the S1 sweep
(via ``repro bench``'s harness, best-of-N walls to shed scheduler noise)
and asserts the largest size retains at least ``1/MAX_DEGRADATION`` of
the smallest size's throughput — the same band ``repro bench --compare``
enforces against the checked-in baseline.  A quadratic-scan regression
shows up as a 3-10x drop at 2400 jobs, far past the band.

Marked ``slow`` by the benchmarks conftest, so tier-1 stays fast.
"""

from __future__ import annotations

from repro.analysis.bench import MAX_DEGRADATION, run_bench


def test_throughput_scales_near_linearly():
    doc = run_bench(
        sizes=(200, 800, 2400), repeats=3,
        include_policies=False, include_registry=False,
    )
    rates = {int(size): row["events_per_s"] for size, row in doc["scaling"].items()}
    smallest = rates[min(rates)]
    largest = rates[max(rates)]
    assert largest >= smallest / MAX_DEGRADATION, (
        f"throughput degraded {smallest / largest:.2f}x from "
        f"{min(rates)} to {max(rates)} jobs "
        f"({smallest:,.0f} -> {largest:,.0f} events/s); "
        f"allowed: {MAX_DEGRADATION}x"
    )
