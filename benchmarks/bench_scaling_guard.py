"""Regression guards on raw engine throughput.

Two gates, both driven by the S1 sweep harness (best-of-N walls to shed
scheduler noise):

* **near-linear scaling** — with the incremental congestion aggregates,
  an arrival costs O(path length + branch count) instead of
  O(leaves x alive), so events/s must stay roughly flat as the job
  count grows.  A quadratic-scan regression shows up as a 3-10x drop at
  2400 jobs, far past the band.
* **disabled-path overhead** — the observability hooks (counters and
  the trace recorder) are compiled into the engine but off by default;
  each hook site must cost one ``is None`` test and nothing more.  The
  guard compares a fresh hooks-off run against the checked-in
  ``BENCH_engine.json`` and requires the *best* size to stay within
  ``MAX_HOOK_OVERHEAD`` of the baseline.  Taking the minimum slowdown
  across sizes is deliberate: genuine per-event overhead slows every
  size uniformly, while machine noise rarely depresses all sizes at
  once, so the min is the noise-robust estimator of the floor.

Marked ``slow`` by the benchmarks conftest, so tier-1 stays fast.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.bench import MAX_DEGRADATION, run_bench

#: Allowed fresh-vs-baseline throughput ratio for the hooks-off engine:
#: the ISSUE's acceptance bar of <5% disabled-path overhead.
MAX_HOOK_OVERHEAD = 1.05

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def test_throughput_scales_near_linearly():
    doc = run_bench(
        sizes=(200, 800, 2400), repeats=3,
        include_policies=False, include_registry=False,
    )
    for backend, rows in doc["scaling"].items():
        rates = {int(size): row["events_per_s"] for size, row in rows.items()}
        smallest = rates[min(rates)]
        largest = rates[max(rates)]
        assert largest >= smallest / MAX_DEGRADATION, (
            f"[{backend}] throughput degraded {smallest / largest:.2f}x from "
            f"{min(rates)} to {max(rates)} jobs "
            f"({smallest:,.0f} -> {largest:,.0f} events/s); "
            f"allowed: {MAX_DEGRADATION}x"
        )


#: Enforced floor on each accelerated backend's throughput ratio over
#: the python engine at 2400 jobs.  Interleaved best-of-N on a quiet
#: machine measures ~2.3-2.8x for numpy and ~3-4x for the compiled C
#: kernel; each gate sits below its band so scheduler noise cannot
#: flake it, while any real backend regression (the ratio falling
#: toward 1x) still trips.  The numpy ratio is bounded by design: the
#: backends are pinned bit-identical (tests/test_backends.py), which
#: forbids the float-reordering vectorization of the final drain, and
#: the arrival phase is a sequential policy-feedback loop (each greedy
#: decision mutates the state the next one scores).  The C kernel runs
#: that same loop compiled, which is where the rest of the speedup
#: comes from.
MIN_BACKEND_SPEEDUP = {"numpy": 2.0, "c": 4.0}


@pytest.mark.parametrize("backend", sorted(MIN_BACKEND_SPEEDUP))
def test_backend_outruns_python(backend):
    """Each accelerated backend must beat the python engine's event
    throughput on the S1 2400-job sweep by its floor ratio."""
    from repro.sim.backends import backend_available

    ok, reason = backend_available(backend)
    if not ok:
        pytest.skip(f"{backend} backend unavailable: {reason}")
    doc = run_bench(
        sizes=(2400,), repeats=3,
        include_policies=False, include_registry=False,
        backends=("python", backend),
    )
    python = doc["scaling"]["python"]["2400"]["events_per_s"]
    accel = doc["scaling"][backend]["2400"]["events_per_s"]
    floor = MIN_BACKEND_SPEEDUP[backend]
    assert accel >= floor * python, (
        f"{backend} backend at {accel:,.0f} events/s is only "
        f"{accel / python:.2f}x the python engine ({python:,.0f}); "
        f"need {floor}x"
    )


def test_disabled_hooks_cost_under_five_percent():
    if not _BASELINE.exists():  # pragma: no cover - fresh checkout only
        pytest.skip(f"no baseline at {_BASELINE}")
    baseline = json.loads(_BASELINE.read_text())["scaling"]["python"]
    sizes = tuple(sorted(int(s) for s in baseline))
    fresh = run_bench(
        sizes=sizes, repeats=5,
        include_policies=False, include_registry=False,
        backends=("python",),
    )["scaling"]["python"]
    slowdowns = {
        n: baseline[str(n)]["events_per_s"] / fresh[str(n)]["events_per_s"]
        for n in sizes
    }
    floor = min(slowdowns.values())
    detail = ", ".join(f"{n}: {s:.3f}x" for n, s in sorted(slowdowns.items()))
    assert floor <= MAX_HOOK_OVERHEAD, (
        f"hooks-off engine is uniformly >{(MAX_HOOK_OVERHEAD - 1) * 100:.0f}% "
        f"slower than BENCH_engine.json (per-size slowdown {detail}); "
        "the disabled instrumentation path is no longer free"
    )
