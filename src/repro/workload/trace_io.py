"""JSON serialisation of instances.

A saved instance is a single JSON document holding the tree's parent map
and names, every job, and the endpoint setting — enough to re-run any
experiment bit-for-bit on another machine.  ``inf`` leaf times (forbidden
leaves) are encoded as the string ``"inf"`` for JSON portability.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from repro.exceptions import WorkloadError
from repro.network.tree import TreeNetwork
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job, JobSet

__all__ = ["instance_to_json", "instance_from_json", "save_instance", "load_instance"]

_FORMAT_VERSION = 1


def instance_to_json(instance: Instance) -> str:
    """Serialise an instance to a JSON string."""
    tree = instance.tree
    doc: dict[str, Any] = {
        "format": "treesched-instance",
        "version": _FORMAT_VERSION,
        "name": instance.name,
        "setting": instance.setting.value,
        "tree": {
            "parent_map": {
                str(v): p for v, p in tree.parent_map().items()
            },
            "names": {
                str(node.id): node.name for node in tree if node.name
            },
        },
        "jobs": [
            {
                "id": job.id,
                "release": job.release,
                "size": job.size,
                "origin": job.origin,
                "leaf_sizes": (
                    None
                    if job.leaf_sizes is None
                    else {
                        str(v): ("inf" if math.isinf(p) else p)
                        for v, p in job.leaf_sizes.items()
                    }
                ),
                # Optional key: omitted for fully-known sizes so legacy
                # documents and new ones stay byte-identical there.
                **(
                    {}
                    if job.size_estimate is None
                    else {"size_estimate": job.size_estimate}
                ),
            }
            for job in instance.jobs
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def instance_from_json(text: str) -> Instance:
    """Parse an instance from a JSON string produced by
    :func:`instance_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"invalid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "treesched-instance":
        raise WorkloadError("not a treesched instance document")
    if doc.get("version") != _FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported format version {doc.get('version')!r}; "
            f"expected {_FORMAT_VERSION}"
        )
    tree_doc = doc["tree"]
    parent_map = {
        int(v): (None if p is None else int(p))
        for v, p in tree_doc["parent_map"].items()
    }
    names = {int(v): str(s) for v, s in tree_doc.get("names", {}).items()}
    tree = TreeNetwork(parent_map, names)

    jobs = []
    for row in doc["jobs"]:
        leaf_sizes = row.get("leaf_sizes")
        parsed = None
        if leaf_sizes is not None:
            parsed = {
                int(v): (math.inf if p == "inf" else float(p))
                for v, p in leaf_sizes.items()
            }
        origin = row.get("origin")
        estimate = row.get("size_estimate")
        jobs.append(
            Job(
                id=int(row["id"]),
                release=float(row["release"]),
                size=float(row["size"]),
                leaf_sizes=parsed,
                origin=None if origin is None else int(origin),
                size_estimate=None if estimate is None else float(estimate),
            )
        )
    return Instance(
        tree=tree,
        jobs=JobSet(jobs),
        setting=Setting(doc["setting"]),
        name=str(doc.get("name", "")),
    )


def save_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance to ``path`` as JSON."""
    Path(path).write_text(instance_to_json(instance))


def load_instance(path: str | Path) -> Instance:
    """Read an instance previously written by :func:`save_instance`."""
    return instance_from_json(Path(path).read_text())
