"""Dynamic event schedules: node breakdowns, repairs, and cancellations.

The engine's workload space is otherwise static: a fixed tree, a fixed
job set, sizes known at release.  An :class:`EventSchedule` injects
mid-run changes — the scenario pack ROADMAP names after RK0731's event
narrator and Dinitz–Moseley's reconfigurable networks:

* :class:`NodeDown` / :class:`NodeUp` — a non-root node stops serving at
  ``time``; queued jobs stall there (store-and-forward still holds: they
  neither advance nor migrate) until the matching ``NodeUp``.
* :class:`Cancel` — a job is withdrawn at ``time``: removed from
  whichever queue holds it, truncated if in service, and recorded with a
  *cancelled* terminal state instead of a completion.

Event semantics are defined once (``docs/dynamic-events.md``) and
implemented four times — python engine, numpy kernel, and both fuzz
oracles — so schedules validate aggressively here: a malformed schedule
must fail loudly at construction, never diverge silently mid-run.

Ordering contract (shared by every implementation): events are stored
sorted by ``(time, kind_rank, node-or-job id)`` with ``down < up <
cancel`` at equal instants, and at equal times the engine processes
*completions first, then dynamic events, then arrivals* — a job that
finishes exactly when its node fails has finished, and a cancel firing
exactly at its job's release is a no-op (the job was not yet admitted,
so it runs to completion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.exceptions import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.instance import Instance

__all__ = ["NodeDown", "NodeUp", "Cancel", "EventSchedule", "DynEvent"]


def _check_time(kind: str, time: float) -> None:
    if not math.isfinite(time) or time < 0:
        raise WorkloadError(
            f"{kind} time must be finite and >= 0, got {time}"
        )


@dataclass(frozen=True, slots=True)
class NodeDown:
    """Node ``node`` stops serving at ``time``."""

    time: float
    node: int

    def __post_init__(self) -> None:
        _check_time("NodeDown", self.time)
        if self.node < 0:
            raise WorkloadError(f"NodeDown node must be >= 0, got {self.node}")


@dataclass(frozen=True, slots=True)
class NodeUp:
    """Node ``node`` resumes serving at ``time``."""

    time: float
    node: int

    def __post_init__(self) -> None:
        _check_time("NodeUp", self.time)
        if self.node < 0:
            raise WorkloadError(f"NodeUp node must be >= 0, got {self.node}")


@dataclass(frozen=True, slots=True)
class Cancel:
    """Job ``job_id`` is withdrawn at ``time``.

    A cancel is effective only while the job is alive: cancels at or
    before the job's release, after its completion, or naming a job the
    run never admits are recorded no-ops (the schedule stays valid — an
    open-system stream cannot know its job ids up front).
    """

    time: float
    job_id: int

    def __post_init__(self) -> None:
        _check_time("Cancel", self.time)
        if self.job_id < 0:
            raise WorkloadError(f"Cancel job_id must be >= 0, got {self.job_id}")


DynEvent = NodeDown | NodeUp | Cancel

#: Tie-break rank at equal event times (down before up before cancel).
_KIND_RANK = {NodeDown: 0, NodeUp: 1, Cancel: 2}

_KIND_NAME = {NodeDown: "node_down", NodeUp: "node_up", Cancel: "cancel"}
_NAME_KIND = {name: cls for cls, name in _KIND_NAME.items()}


def _sort_key(ev: DynEvent) -> tuple[float, int, int]:
    rank = _KIND_RANK[type(ev)]
    ident = ev.job_id if isinstance(ev, Cancel) else ev.node
    return (ev.time, rank, ident)


class EventSchedule:
    """An immutable, validated, time-ordered dynamic-event schedule.

    Validation enforced at construction:

    * every node's down/up events strictly alternate, starting with a
      ``NodeDown``, at strictly increasing times;
    * every ``NodeDown`` has a matching ``NodeUp`` (no node stays down
      forever — a permanently failed node would stall its queued jobs
      past any horizon and batch runs must terminate);
    * at most one ``Cancel`` per job id.

    Node and job *existence* is checked separately by
    :meth:`validate_for`, so a schedule can be built before the instance
    it will run against (open-system streams).
    """

    __slots__ = ("_events", "_cancel_times", "_down_intervals")

    def __init__(self, events: "Iterator[DynEvent] | list[DynEvent] | tuple[DynEvent, ...]" = ()) -> None:
        ordered = sorted(events, key=_sort_key)
        for ev in ordered:
            if not isinstance(ev, (NodeDown, NodeUp, Cancel)):
                raise WorkloadError(
                    f"unknown event type {type(ev).__name__}; expected "
                    "NodeDown, NodeUp or Cancel"
                )
        cancel_times: dict[int, float] = {}
        open_down: dict[int, float] = {}
        last_touch: dict[int, float] = {}
        intervals: dict[int, list[tuple[float, float]]] = {}
        for ev in ordered:
            if isinstance(ev, Cancel):
                if ev.job_id in cancel_times:
                    raise WorkloadError(
                        f"job {ev.job_id} cancelled more than once"
                    )
                cancel_times[ev.job_id] = ev.time
                continue
            prev = last_touch.get(ev.node)
            if prev is not None and not ev.time > prev:
                raise WorkloadError(
                    f"node {ev.node}: down/up events must be strictly "
                    f"increasing in time (got {ev.time} after {prev})"
                )
            last_touch[ev.node] = ev.time
            if isinstance(ev, NodeDown):
                if ev.node in open_down:
                    raise WorkloadError(
                        f"node {ev.node}: NodeDown at {ev.time} while "
                        f"already down since {open_down[ev.node]}"
                    )
                open_down[ev.node] = ev.time
            else:
                start = open_down.pop(ev.node, None)
                if start is None:
                    raise WorkloadError(
                        f"node {ev.node}: NodeUp at {ev.time} without a "
                        "preceding NodeDown"
                    )
                intervals.setdefault(ev.node, []).append((start, ev.time))
        if open_down:
            node, start = next(iter(open_down.items()))
            raise WorkloadError(
                f"node {node}: NodeDown at {start} has no matching NodeUp "
                "(every outage must end — a forever-down node never drains)"
            )
        self._events: tuple[DynEvent, ...] = tuple(ordered)
        self._cancel_times = cancel_times
        self._down_intervals = {v: tuple(iv) for v, iv in intervals.items()}

    # -- container protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[DynEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> DynEvent:
        return self._events[index]

    def __bool__(self) -> bool:
        return bool(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def __repr__(self) -> str:
        downs = sum(1 for e in self._events if isinstance(e, NodeDown))
        return (
            f"EventSchedule(n={len(self._events)}, outages={downs}, "
            f"cancels={len(self._cancel_times)})"
        )

    # -- queries ---------------------------------------------------------
    @property
    def events(self) -> tuple[DynEvent, ...]:
        """All events in canonical ``(time, kind, id)`` order."""
        return self._events

    def cancel_times(self) -> dict[int, float]:
        """``job id -> cancel time`` (a copy)."""
        return dict(self._cancel_times)

    def down_intervals(self) -> dict[int, tuple[tuple[float, float], ...]]:
        """``node -> ((down, up), ...)`` outage intervals, time-ordered."""
        return dict(self._down_intervals)

    def validate_for(self, instance: "Instance") -> None:
        """Check the schedule against an instance: down/up nodes must be
        existing non-root nodes.  Cancel job ids are *not* required to
        exist (unknown-job cancels are defined no-ops)."""
        tree = instance.tree
        nodes = set(tree.node_ids)
        for ev in self._events:
            if isinstance(ev, Cancel):
                continue
            if ev.node not in nodes:
                raise WorkloadError(
                    f"{_KIND_NAME[type(ev)]} at {ev.time}: node {ev.node} "
                    "is not in the tree"
                )
            if ev.node == tree.root:
                raise WorkloadError(
                    f"{_KIND_NAME[type(ev)]} at {ev.time}: the root holds "
                    "no queue and cannot go down"
                )

    # -- serialisation ---------------------------------------------------
    def to_doc(self) -> list[dict]:
        """JSON-ready list form (used by the fuzz corpus)."""
        out: list[dict] = []
        for ev in self._events:
            doc: dict = {"kind": _KIND_NAME[type(ev)], "time": ev.time}
            if isinstance(ev, Cancel):
                doc["job"] = ev.job_id
            else:
                doc["node"] = ev.node
            out.append(doc)
        return out

    @staticmethod
    def from_doc(doc: "list[dict] | None") -> "EventSchedule":
        events: list[DynEvent] = []
        for item in doc or ():
            kind = _NAME_KIND.get(item.get("kind"))
            if kind is None:
                raise WorkloadError(
                    f"unknown event kind {item.get('kind')!r} in document"
                )
            if kind is Cancel:
                events.append(Cancel(float(item["time"]), int(item["job"])))
            else:
                events.append(kind(float(item["time"]), int(item["node"])))
        return EventSchedule(events)
