"""Divisible routing: jobs sent in small pieces through the routers.

Section 2 of the paper notes that all its results extend to the variant
where a job's data can be divided into small packets while routing —
store-and-forward congestion at interior routers is "effectively
negated" because pieces pipeline.  This module implements that variant
as an instance transformation:

* :func:`chunk_instance` splits every job into equal pieces of router
  size at most ``chunk_size``; each piece is an ordinary job of the
  chunk-level instance (released at the parent's release time), so the
  unchanged engine simulates cut-through pipelining at piece
  granularity;
* :func:`chunk_priority` ranks pieces by their *parent's* original
  processing time, so SJF semantics match the unchunked system (pieces
  of the same job then order by index);
* :class:`ChunkedAssignment` pins all pieces of a job to the leaf the
  base policy chooses for its first piece (non-migratory, immediate
  dispatch, exactly once per job);
* :func:`aggregate_chunk_result` folds piece completions back to job
  completions (a job finishes when its last piece finishes on the leaf).

The ``X1`` experiment (:mod:`repro.analysis.experiments.x1`) uses this to
measure the pipelining win the paper asserts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import WorkloadError
from repro.sim.engine import PriorityFn, SchedulerView
from repro.sim.result import SimulationResult
from repro.workload.instance import Instance
from repro.workload.job import Job, JobSet

__all__ = [
    "ChunkedInstance",
    "chunk_instance",
    "chunk_priority",
    "ChunkedAssignment",
    "ChunkedRunSummary",
    "aggregate_chunk_result",
]


@dataclass(frozen=True)
class ChunkedInstance:
    """A chunk-level instance plus the bookkeeping back to the original.

    Attributes
    ----------
    original:
        The unchunked instance.
    instance:
        The chunk-level instance the engine runs.
    parent_of:
        ``chunk job id -> original job id``.
    chunks_of:
        ``original job id -> tuple of chunk job ids`` (ascending; the
        first entry is the piece that triggers leaf assignment).
    """

    original: Instance
    instance: Instance
    parent_of: dict[int, int] = field(repr=False)
    chunks_of: dict[int, tuple[int, ...]] = field(repr=False)

    @property
    def num_chunks(self) -> int:
        return len(self.parent_of)


def chunk_instance(instance: Instance, chunk_size: float) -> ChunkedInstance:
    """Split every job into equal pieces of router size ≤ ``chunk_size``.

    A job of size ``p_j`` becomes ``m = ceil(p_j / chunk_size)`` pieces
    of router size ``p_j/m``; in the unrelated setting each piece carries
    ``p_{j,v}/m`` on leaf ``v`` (``inf`` stays ``inf``).  Piece ids are
    contiguous ascending per job, so a job's first piece is dispatched
    first among its siblings.
    """
    if not math.isfinite(chunk_size) or chunk_size <= 0:
        raise WorkloadError(f"chunk_size must be finite and > 0, got {chunk_size}")
    chunks: list[Job] = []
    parent_of: dict[int, int] = {}
    chunks_of: dict[int, tuple[int, ...]] = {}
    next_id = 0
    for job in instance.jobs:
        m = max(1, math.ceil(job.size / chunk_size))
        piece_size = job.size / m
        piece_leaf_sizes = None
        if job.leaf_sizes is not None:
            piece_leaf_sizes = {
                v: (p if math.isinf(p) else p / m) for v, p in job.leaf_sizes.items()
            }
        ids = []
        for _ in range(m):
            chunks.append(
                Job(
                    id=next_id,
                    release=job.release,
                    size=piece_size,
                    leaf_sizes=piece_leaf_sizes,
                )
            )
            parent_of[next_id] = job.id
            ids.append(next_id)
            next_id += 1
        chunks_of[job.id] = tuple(ids)
    chunked = Instance(
        instance.tree,
        JobSet(chunks),
        instance.setting,
        name=f"{instance.name}::chunks" if instance.name else "chunks",
    )
    return ChunkedInstance(
        original=instance,
        instance=chunked,
        parent_of=parent_of,
        chunks_of=chunks_of,
    )


def chunk_priority(chunked: ChunkedInstance) -> PriorityFn:
    """SJF by the *parent job's* original processing time.

    Pieces of the same job tie-break by piece id, preserving their
    natural order; across jobs the ranking matches the unchunked SJF.
    """
    parent_of = chunked.parent_of
    original = chunked.original

    def priority(instance: Instance, job: Job, node: int) -> tuple:
        parent = original.jobs.by_id(parent_of[job.id])
        return (
            original.processing_time(parent, node),
            parent.release,
            parent.id,
            job.id,
        )

    return priority


class ChunkedAssignment:
    """Dispatch pieces: the base policy chooses once per job, siblings pin.

    The base policy sees the chunk-level view (so its congestion estimates
    price the actual queues the pieces will join).
    """

    def __init__(self, chunked: ChunkedInstance, base_policy) -> None:
        self.chunked = chunked
        self.base_policy = base_policy
        self.leaf_of_parent: dict[int, int] = {}

    def assign(self, view: SchedulerView, job: Job, now: float) -> int:
        parent = self.chunked.parent_of[job.id]
        leaf = self.leaf_of_parent.get(parent)
        if leaf is None:
            leaf = self.base_policy.assign(view, job, now)
            self.leaf_of_parent[parent] = leaf
        return leaf


@dataclass(frozen=True)
class ChunkedRunSummary:
    """Job-level metrics recovered from a chunk-level run.

    Attributes
    ----------
    completions:
        ``original job id -> completion of its last piece``.
    flow_times:
        ``original job id -> completion − release``.
    assignment:
        ``original job id -> leaf`` (identical for all pieces).
    """

    completions: dict[int, float]
    flow_times: dict[int, float]
    assignment: dict[int, int]

    def total_flow_time(self) -> float:
        return sum(self.flow_times.values())

    def mean_flow_time(self) -> float:
        return (
            sum(self.flow_times.values()) / len(self.flow_times)
            if self.flow_times
            else 0.0
        )

    def max_flow_time(self) -> float:
        return max(self.flow_times.values(), default=0.0)


def aggregate_chunk_result(
    chunked: ChunkedInstance, result: SimulationResult
) -> ChunkedRunSummary:
    """Fold a chunk-level :class:`SimulationResult` back to job level.

    Raises
    ------
    WorkloadError
        If pieces of one job landed on different leaves (the pinning
        policy was not used).
    """
    completions: dict[int, float] = {}
    flow_times: dict[int, float] = {}
    assignment: dict[int, int] = {}
    for parent_id, piece_ids in chunked.chunks_of.items():
        job = chunked.original.jobs.by_id(parent_id)
        leaves = {result.records[p].leaf for p in piece_ids}
        if len(leaves) != 1:
            raise WorkloadError(
                f"pieces of job {parent_id} landed on multiple leaves {leaves}"
            )
        done = max(result.records[p].completion for p in piece_ids)
        completions[parent_id] = done
        flow_times[parent_id] = done - job.release
        assignment[parent_id] = leaves.pop()
    return ChunkedRunSummary(
        completions=completions, flow_times=flow_times, assignment=assignment
    )
