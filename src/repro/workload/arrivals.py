"""Arrival-time generators.

The batch generators return a 1-D float numpy array of non-decreasing
release times.  Randomness flows through a
:class:`numpy.random.Generator` (or a seed convertible to one) so every
workload is reproducible.

The *stream* generators (:func:`poisson_process`,
:func:`uniform_size_stream`, :func:`job_stream`) are lazy and may be
infinite: they feed the open-system streaming mode
(:func:`repro.api.open_system`) one value at a time, so an unbounded
arrival process never materialises in memory.  Internally they draw in
chunks for numpy throughput but the chunk size never changes the drawn
sequence — ``chunk`` is a speed knob, not a semantic one.

Load calibration
----------------
For flow-time experiments the interesting regime is near the capacity of
the bottleneck tier.  :func:`poisson_arrivals` therefore takes an
explicit ``rate`` (jobs per unit time); the helpers in
:mod:`repro.workload.instance` compute the rate that loads a given tree
to a target utilisation.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import WorkloadError
from repro.workload.job import Job

__all__ = [
    "poisson_arrivals",
    "deterministic_arrivals",
    "batch_arrivals",
    "bursty_arrivals",
    "adversarial_bursts",
    "tied_arrivals",
    "poisson_process",
    "uniform_size_stream",
    "job_stream",
]


def _check_n(n: int) -> None:
    if n < 0:
        raise WorkloadError(f"number of jobs must be >= 0, got {n}")


def poisson_arrivals(
    n: int, rate: float, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """``n`` arrivals of a Poisson process with the given rate.

    Inter-arrival times are iid exponential with mean ``1/rate``.
    """
    _check_n(n)
    if rate <= 0:
        raise WorkloadError(f"rate must be > 0, got {rate}")
    rng = np.random.default_rng(rng)
    gaps = rng.exponential(1.0 / rate, size=n)
    return np.cumsum(gaps)


def deterministic_arrivals(n: int, spacing: float, start: float = 0.0) -> np.ndarray:
    """``n`` evenly spaced arrivals starting at ``start``."""
    _check_n(n)
    if spacing < 0:
        raise WorkloadError(f"spacing must be >= 0, got {spacing}")
    if start < 0:
        raise WorkloadError(f"start must be >= 0, got {start}")
    return start + spacing * np.arange(n, dtype=float)


def batch_arrivals(batch_sizes: Sequence[int], batch_times: Sequence[float]) -> np.ndarray:
    """Batches of simultaneous arrivals at the given times.

    ``batch_sizes[i]`` jobs arrive at ``batch_times[i]``.  Times must be
    non-decreasing.
    """
    if len(batch_sizes) != len(batch_times):
        raise WorkloadError("batch_sizes and batch_times differ in length")
    out: list[float] = []
    prev = 0.0
    for size, t in zip(batch_sizes, batch_times):
        if size < 0:
            raise WorkloadError(f"batch size must be >= 0, got {size}")
        if t < prev:
            raise WorkloadError("batch_times must be non-decreasing")
        prev = t
        out.extend([float(t)] * size)
    return np.asarray(out, dtype=float)


def bursty_arrivals(
    n: int,
    burst_rate: float,
    idle_rate: float,
    mean_burst: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A two-state (on/off) modulated Poisson process.

    The process alternates between a *burst* state generating arrivals at
    ``burst_rate`` and an *idle* state at ``idle_rate``; the expected
    number of arrivals per burst visit is ``mean_burst``.  This produces
    the queue-buildup-then-drain pattern that stresses the interior
    waiting bounds (Lemma 1/Lemma 2).
    """
    _check_n(n)
    if burst_rate <= 0 or idle_rate <= 0:
        raise WorkloadError("burst_rate and idle_rate must be > 0")
    if mean_burst <= 0:
        raise WorkloadError(f"mean_burst must be > 0, got {mean_burst}")
    rng = np.random.default_rng(rng)
    times: list[float] = []
    t = 0.0
    in_burst = True
    # Probability of leaving the burst state after each burst arrival.
    leave_p = min(1.0, 1.0 / mean_burst)
    while len(times) < n:
        rate = burst_rate if in_burst else idle_rate
        t += float(rng.exponential(1.0 / rate))
        times.append(t)
        if in_burst:
            if rng.random() < leave_p:
                in_burst = False
        else:
            in_burst = True
    return np.asarray(times[:n], dtype=float)


def adversarial_bursts(
    num_bursts: int,
    jobs_per_burst: int,
    gap: float,
    jitter: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Tight bursts separated by drain gaps.

    Each burst releases ``jobs_per_burst`` jobs within ``jitter`` time of
    the burst start; consecutive bursts are ``gap`` apart.  With
    ``jitter = 0`` all jobs of a burst arrive simultaneously — the
    adversarial pattern behind the lower bounds for parallel-machine flow
    time [Leonardi & Raz].
    """
    if num_bursts < 0 or jobs_per_burst < 0:
        raise WorkloadError("num_bursts and jobs_per_burst must be >= 0")
    if gap < 0 or jitter < 0:
        raise WorkloadError("gap and jitter must be >= 0")
    rng = np.random.default_rng(rng)
    times: list[float] = []
    for b in range(num_bursts):
        start = b * gap
        if jitter == 0.0:
            times.extend([start] * jobs_per_burst)
        else:
            offsets = np.sort(rng.uniform(0.0, jitter, size=jobs_per_burst))
            times.extend((start + offsets).tolist())
    return np.asarray(times, dtype=float)


def poisson_process(
    rate: float,
    rng: np.random.Generator | int | None = None,
    *,
    start: float = 0.0,
    chunk: int = 1024,
) -> Iterator[float]:
    """An *infinite* Poisson arrival process: lazily yields the
    non-decreasing absolute release times one by one.

    The stream counterpart of :func:`poisson_arrivals`: taking the first
    ``n`` values reproduces ``start + poisson_arrivals(n, rate, rng)``
    for the same seed (gaps are drawn in the same order).
    """
    if rate <= 0:
        raise WorkloadError(f"rate must be > 0, got {rate}")
    if chunk < 1:
        raise WorkloadError(f"chunk must be >= 1, got {chunk}")
    rng = np.random.default_rng(rng)
    t = start
    while True:
        for gap in rng.exponential(1.0 / rate, size=chunk):
            t += float(gap)
            yield t


def uniform_size_stream(
    low: float = 1.0,
    high: float = 4.0,
    rng: np.random.Generator | int | None = None,
    *,
    chunk: int = 1024,
) -> Iterator[float]:
    """An *infinite* stream of iid uniform job sizes on ``[low, high]``."""
    if not 0 < low <= high:
        raise WorkloadError(f"need 0 < low <= high, got [{low}, {high}]")
    if chunk < 1:
        raise WorkloadError(f"chunk must be >= 1, got {chunk}")
    rng = np.random.default_rng(rng)
    while True:
        yield from (float(x) for x in rng.uniform(low, high, size=chunk))


def job_stream(
    releases: Iterable[float],
    sizes: Iterable[float] | float,
    *,
    start_id: int = 0,
    limit: int | None = None,
) -> Iterator[Job]:
    """Zip release and size streams into a lazy :class:`Job` stream.

    ``sizes`` may be a single float (every job the same size) or an
    iterable drawn in lockstep with ``releases``; ids are assigned
    sequentially from ``start_id``.  ``limit`` truncates an infinite
    stream to a finite prefix (``None`` = unbounded).  The output is the
    shape :meth:`Engine.stream_start <repro.sim.engine.Engine>` and
    :func:`repro.api.open_system` consume.
    """
    if limit is not None and limit < 0:
        raise WorkloadError(f"limit must be >= 0, got {limit}")
    size_it: Iterator[float] = (
        itertools.repeat(float(sizes)) if isinstance(sizes, (int, float))
        else iter(sizes)
    )
    pairs = zip(releases, size_it)
    if limit is not None:
        pairs = itertools.islice(pairs, limit)
    for jid, (release, size) in enumerate(pairs, start=start_id):
        yield Job(jid, float(release), float(size))


def tied_arrivals(
    n: int,
    num_distinct: int = 3,
    spacing: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """``n`` arrivals spread over only ``num_distinct`` release instants.

    Each job lands uniformly on one of ``num_distinct`` evenly spaced
    instants (``0, spacing, 2*spacing, ...``), so many jobs share exact
    release times.  This is the boundary regime for simultaneous-event
    handling (settle-then-drain ordering, identical ``(p, release)``
    priority prefixes) and is used by the fuzzing grids in
    :mod:`repro.testing.generate`.
    """
    _check_n(n)
    if num_distinct < 1:
        raise WorkloadError(f"num_distinct must be >= 1, got {num_distinct}")
    if spacing < 0:
        raise WorkloadError(f"spacing must be >= 0, got {spacing}")
    rng = np.random.default_rng(rng)
    slots = rng.integers(num_distinct, size=n)
    return np.sort(slots.astype(float) * spacing)
