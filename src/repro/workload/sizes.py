"""Processing-time (data size) distributions and the ``(1+ε)``-class
machinery of Section 2.

The paper assumes every processing time is a power of ``(1+ε)`` — jobs of
size ``(1+ε)^i`` form *class* ``i`` on a node, and SJF breaks ties within
a class by age.  :func:`round_to_classes` performs the rounding (up, so
rounded instances dominate the original work-wise) and
:func:`class_index` recovers the class of a size.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import WorkloadError

__all__ = [
    "uniform_sizes",
    "bounded_pareto_sizes",
    "bimodal_sizes",
    "near_tie_sizes",
    "geometric_class_sizes",
    "round_to_classes",
    "class_index",
]


def uniform_sizes(
    n: int, low: float, high: float, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """``n`` iid sizes uniform on ``[low, high]``."""
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if not 0 < low <= high:
        raise WorkloadError(f"need 0 < low <= high, got low={low}, high={high}")
    rng = np.random.default_rng(rng)
    return rng.uniform(low, high, size=n)


def bounded_pareto_sizes(
    n: int,
    alpha: float = 1.5,
    low: float = 1.0,
    high: float = 100.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """``n`` iid sizes from a bounded Pareto distribution.

    Heavy-tailed sizes are the classic stress for SJF-style policies: a
    few huge jobs coexist with many small ones, maximising the value of
    size-aware prioritisation.  Sampling is by inversion of the bounded
    Pareto CDF, vectorised.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if alpha <= 0:
        raise WorkloadError(f"alpha must be > 0, got {alpha}")
    if not 0 < low < high:
        raise WorkloadError(f"need 0 < low < high, got low={low}, high={high}")
    rng = np.random.default_rng(rng)
    u = rng.random(size=n)
    la, ha = low**alpha, high**alpha
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)


def bimodal_sizes(
    n: int,
    small: float = 1.0,
    large: float = 50.0,
    large_fraction: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """``n`` sizes that are ``small`` w.p. ``1-large_fraction`` else ``large``.

    The mice-and-elephants mix used by the policy-comparison experiment:
    FIFO-style policies head-of-line block the mice behind the elephants.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if small <= 0 or large <= 0:
        raise WorkloadError("small and large must be > 0")
    if not 0.0 <= large_fraction <= 1.0:
        raise WorkloadError(f"large_fraction must be in [0,1], got {large_fraction}")
    rng = np.random.default_rng(rng)
    mask = rng.random(size=n) < large_fraction
    return np.where(mask, float(large), float(small))


def near_tie_sizes(
    n: int,
    bases: Sequence[float] = (1.0, 2.0),
    jitter: float = 1e-7,
    tie_fraction: float = 0.5,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """``n`` sizes drawn from ``bases``, half exact and half nudged by
    ``±jitter``.

    The boundary regime for SJF tie-breaking: exact duplicates exercise
    the ``(release, id)`` tie chain, near-duplicates exercise priority
    comparisons that differ in the last few ulps — the inputs most
    likely to expose a mixed-tolerance or drain-ordering bug in the
    engine.  Used by the fuzzing grids in :mod:`repro.testing.generate`.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if not bases or any(b <= 0 for b in bases):
        raise WorkloadError(f"bases must be positive and non-empty, got {bases}")
    if jitter < 0:
        raise WorkloadError(f"jitter must be >= 0, got {jitter}")
    if not 0.0 <= tie_fraction <= 1.0:
        raise WorkloadError(f"tie_fraction must be in [0,1], got {tie_fraction}")
    rng = np.random.default_rng(rng)
    out = rng.choice(np.asarray(bases, dtype=float), size=n)
    nudge = rng.random(size=n) >= tie_fraction
    sign = np.where(rng.random(size=n) < 0.5, -1.0, 1.0)
    return np.where(nudge, out + sign * jitter, out)


def geometric_class_sizes(
    n: int,
    eps: float,
    num_classes: int,
    base: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """``n`` sizes drawn uniformly from the class set ``base·(1+ε)^i``.

    Produces instances that are already class-rounded, exercising the
    within-class age tie-breaking of SJF directly.
    """
    if n < 0:
        raise WorkloadError(f"n must be >= 0, got {n}")
    if eps <= 0:
        raise WorkloadError(f"eps must be > 0, got {eps}")
    if num_classes < 1:
        raise WorkloadError(f"num_classes must be >= 1, got {num_classes}")
    if base <= 0:
        raise WorkloadError(f"base must be > 0, got {base}")
    rng = np.random.default_rng(rng)
    classes = rng.integers(0, num_classes, size=n)
    return base * (1.0 + eps) ** classes


def round_to_classes(sizes: np.ndarray | list[float], eps: float) -> np.ndarray:
    """Round every size *up* to the nearest power of ``(1+ε)``.

    Section 2: assuming sizes are powers of ``(1+ε)`` costs only a
    ``(1+ε)`` speed factor.  Rounding up means the rounded instance has
    at least as much work, so bounds measured on it are conservative.
    """
    if eps <= 0:
        raise WorkloadError(f"eps must be > 0, got {eps}")
    arr = np.asarray(sizes, dtype=float)
    if arr.size and (not np.all(np.isfinite(arr)) or np.any(arr <= 0)):
        raise WorkloadError("sizes must be finite and > 0")
    log_base = np.log1p(eps)
    k = np.ceil(np.log(arr) / log_base - 1e-12)
    return (1.0 + eps) ** k


def class_index(size: float, eps: float) -> int:
    """The class ``i`` with ``(1+ε)^i == size`` (to rounding tolerance).

    Raises
    ------
    WorkloadError
        If ``size`` is not a power of ``(1+ε)`` within tolerance.
    """
    if eps <= 0:
        raise WorkloadError(f"eps must be > 0, got {eps}")
    if not math.isfinite(size) or size <= 0:
        raise WorkloadError(f"size must be finite and > 0, got {size}")
    k = round(math.log(size) / math.log1p(eps))
    if not math.isclose((1.0 + eps) ** k, size, rel_tol=1e-9, abs_tol=1e-12):
        raise WorkloadError(
            f"size {size} is not a power of (1+{eps}); round_to_classes first"
        )
    return int(k)
