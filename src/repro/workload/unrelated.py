"""Unrelated-endpoint processing-time matrix generators.

In the unrelated-endpoint setting a job requires ``p_j`` on every router
but ``p_{j,v}`` on leaf ``v``, where the ``p_{j,v}`` can be arbitrary.
Each generator below returns one ``{leaf id: p_{j,v}}`` mapping per job
(ready for :attr:`repro.workload.job.Job.leaf_sizes`), structured to
exercise a distinct failure mode of congestion-oblivious assignment:

* :func:`uniform_speed_matrix` — leaves behave like *related* machines
  (per-leaf speed factors); a sanity regime between identical and fully
  unrelated.
* :func:`affinity_matrix` — each job is fast on a few random leaves and
  slow elsewhere; mild heterogeneity.
* :func:`partition_matrix` — job types are fast only on their own leaf
  group; assignment must respect the partition or pay a large factor.
* :func:`restricted_assignment_matrix` — the classic restricted
  assignment special case: each job is runnable (``p_j``) on a random
  feasible subset and forbidden (``inf``) elsewhere.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import WorkloadError

__all__ = [
    "uniform_speed_matrix",
    "affinity_matrix",
    "partition_matrix",
    "restricted_assignment_matrix",
]


def _check(leaves: Sequence[int], sizes: Sequence[float]) -> None:
    if not leaves:
        raise WorkloadError("need at least one leaf")
    if len(set(leaves)) != len(leaves):
        raise WorkloadError("duplicate leaf ids")
    if any((not math.isfinite(p)) or p <= 0 for p in sizes):
        raise WorkloadError("sizes must be finite and > 0")


def uniform_speed_matrix(
    leaves: Sequence[int],
    sizes: Sequence[float],
    speed_low: float = 0.5,
    speed_high: float = 2.0,
    rng: np.random.Generator | int | None = None,
) -> list[dict[int, float]]:
    """Related-machine style: ``p_{j,v} = p_j / s_v`` with random ``s_v``.

    One speed per leaf, shared by all jobs.
    """
    _check(leaves, sizes)
    if not 0 < speed_low <= speed_high:
        raise WorkloadError("need 0 < speed_low <= speed_high")
    rng = np.random.default_rng(rng)
    speeds = rng.uniform(speed_low, speed_high, size=len(leaves))
    return [
        {leaf: float(p) / float(s) for leaf, s in zip(leaves, speeds)} for p in sizes
    ]


def affinity_matrix(
    leaves: Sequence[int],
    sizes: Sequence[float],
    fast_leaves: int = 2,
    slow_factor: float = 8.0,
    rng: np.random.Generator | int | None = None,
) -> list[dict[int, float]]:
    """Each job is fast (``p_j``) on ``fast_leaves`` random leaves and
    ``slow_factor`` times slower everywhere else.

    Models data locality: the job's data has replicas on a few machines.
    """
    _check(leaves, sizes)
    if fast_leaves < 1:
        raise WorkloadError(f"fast_leaves must be >= 1, got {fast_leaves}")
    if slow_factor < 1.0:
        raise WorkloadError(f"slow_factor must be >= 1, got {slow_factor}")
    rng = np.random.default_rng(rng)
    k = min(fast_leaves, len(leaves))
    rows: list[dict[int, float]] = []
    leaf_arr = np.asarray(leaves)
    for p in sizes:
        fast = set(rng.choice(leaf_arr, size=k, replace=False).tolist())
        rows.append(
            {
                int(leaf): float(p) if leaf in fast else float(p) * slow_factor
                for leaf in leaf_arr
            }
        )
    return rows


def partition_matrix(
    leaves: Sequence[int],
    sizes: Sequence[float],
    num_groups: int,
    slow_factor: float = 16.0,
    rng: np.random.Generator | int | None = None,
) -> list[dict[int, float]]:
    """Leaves are split into ``num_groups`` groups; each job belongs to a
    random group and is fast only on that group's leaves.

    The sharp case for congestion-aware assignment: if many consecutive
    jobs share a group, their group's subtree congests and a good
    scheduler must start paying the ``slow_factor`` elsewhere — exactly
    the trade-off the greedy rule of Section 3.4 arbitrates.
    """
    _check(leaves, sizes)
    if num_groups < 1 or num_groups > len(leaves):
        raise WorkloadError(
            f"num_groups must be in [1, {len(leaves)}], got {num_groups}"
        )
    if slow_factor < 1.0:
        raise WorkloadError(f"slow_factor must be >= 1, got {slow_factor}")
    rng = np.random.default_rng(rng)
    groups = [int(i) % num_groups for i in range(len(leaves))]
    rows: list[dict[int, float]] = []
    for p in sizes:
        g = int(rng.integers(num_groups))
        rows.append(
            {
                int(leaf): float(p) if groups[i] == g else float(p) * slow_factor
                for i, leaf in enumerate(leaves)
            }
        )
    return rows


def restricted_assignment_matrix(
    leaves: Sequence[int],
    sizes: Sequence[float],
    feasible_fraction: float = 0.4,
    rng: np.random.Generator | int | None = None,
) -> list[dict[int, float]]:
    """Restricted assignment: ``p_{j,v} ∈ {p_j, ∞}``.

    Each leaf is independently feasible with probability
    ``feasible_fraction``; at least one feasible leaf per job is
    guaranteed (a uniformly random one is forced feasible when the coin
    flips all fail).
    """
    _check(leaves, sizes)
    if not 0.0 < feasible_fraction <= 1.0:
        raise WorkloadError(
            f"feasible_fraction must be in (0,1], got {feasible_fraction}"
        )
    rng = np.random.default_rng(rng)
    rows: list[dict[int, float]] = []
    leaf_list = [int(v) for v in leaves]
    for p in sizes:
        feasible = rng.random(size=len(leaf_list)) < feasible_fraction
        if not feasible.any():
            feasible[int(rng.integers(len(leaf_list)))] = True
        rows.append(
            {
                leaf: float(p) if ok else math.inf
                for leaf, ok in zip(leaf_list, feasible)
            }
        )
    return rows
