"""Job and job-set objects.

A :class:`Job` carries the data of the paper's ``J_j``: a release time
``r_j``, a router processing time ``p_j`` (the data size — the time the
job occupies any identical node), and, in the unrelated-endpoint setting,
a per-leaf processing-time mapping ``p_{j,v}``.

:class:`JobSet` is an immutable ordered collection with numpy views used
by the workload generators and the metrics layer.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import WorkloadError

__all__ = ["Job", "JobSet"]


@dataclass(frozen=True, slots=True)
class Job:
    """A single job.

    Attributes
    ----------
    id:
        Unique non-negative identifier; also the deterministic tie-break
        of last resort in SJF ordering.
    release:
        Arrival time ``r_j`` at the root (non-negative).
    size:
        Router processing time ``p_j`` (strictly positive, finite).  In
        the identical setting this is also the leaf processing time.
    leaf_sizes:
        ``None`` in the identical setting.  In the unrelated-endpoint
        setting, a mapping ``leaf id -> p_{j,v}``; ``math.inf`` marks a
        leaf the job cannot run on.  At least one leaf must be finite.
    origin:
        Node the job's data is created at.  ``None`` (the default) means
        the root — the paper's model.  A router id enables the
        arbitrary-arrival extension the paper's conclusion poses as
        future work: the job is routed only through nodes strictly below
        its origin and must be assigned to a leaf of the origin's
        subtree.  Validated against the tree by
        :class:`~repro.workload.instance.Instance`.
    size_estimate:
        ``None`` (the default) means the size is known at release — the
        paper's model.  A positive float marks a *partial-information*
        job: assignment policies see only this estimate (the engine
        masks ``size`` before ``policy.assign``); the true ``size``
        still drives processing and node priorities, and is revealed at
        completion (the ``reveal`` trace event).  Identical setting
        only — estimates cannot be combined with ``leaf_sizes``.
    """

    id: int
    release: float
    size: float
    leaf_sizes: Mapping[int, float] | None = field(default=None)
    origin: int | None = field(default=None)
    size_estimate: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise WorkloadError(f"job id must be non-negative, got {self.id}")
        if not math.isfinite(self.release) or self.release < 0:
            raise WorkloadError(
                f"job {self.id}: release must be finite and >= 0, got {self.release}"
            )
        if not math.isfinite(self.size) or self.size <= 0:
            raise WorkloadError(
                f"job {self.id}: size must be finite and > 0, got {self.size}"
            )
        if self.leaf_sizes is not None:
            if not self.leaf_sizes:
                raise WorkloadError(f"job {self.id}: empty leaf_sizes mapping")
            finite = False
            for leaf, p in self.leaf_sizes.items():
                if math.isnan(p) or p <= 0:
                    raise WorkloadError(
                        f"job {self.id}: leaf {leaf} processing time must be > 0 "
                        f"(inf allowed for forbidden leaves), got {p}"
                    )
                finite = finite or math.isfinite(p)
            if not finite:
                raise WorkloadError(
                    f"job {self.id}: no leaf has a finite processing time"
                )
        if self.origin is not None and self.origin < 0:
            raise WorkloadError(
                f"job {self.id}: origin must be a node id >= 0, got {self.origin}"
            )
        if self.size_estimate is not None:
            if self.leaf_sizes is not None:
                raise WorkloadError(
                    f"job {self.id}: size_estimate requires the identical "
                    "setting (cannot combine with leaf_sizes)"
                )
            if not math.isfinite(self.size_estimate) or self.size_estimate <= 0:
                raise WorkloadError(
                    f"job {self.id}: size_estimate must be finite and > 0, "
                    f"got {self.size_estimate}"
                )

    @property
    def is_unrelated(self) -> bool:
        """Whether the job carries per-leaf processing times."""
        return self.leaf_sizes is not None

    def processing_on_leaf(self, leaf: int) -> float:
        """``p_{j,v}`` for leaf ``v`` (``p_j`` in the identical setting)."""
        if self.leaf_sizes is None:
            return self.size
        try:
            return self.leaf_sizes[leaf]
        except KeyError:
            raise WorkloadError(
                f"job {self.id}: leaf {leaf} missing from leaf_sizes"
            ) from None

    def with_leaf_sizes(self, leaf_sizes: Mapping[int, float] | None) -> "Job":
        """A copy of this job with a different per-leaf mapping."""
        return Job(
            self.id, self.release, self.size, leaf_sizes, self.origin,
            self.size_estimate,
        )

    @property
    def policy_size(self) -> float:
        """The size an assignment policy is allowed to read: the
        estimate when one is set, else the true size."""
        return self.size if self.size_estimate is None else self.size_estimate

    def masked(self) -> "Job":
        """The policy-facing view of this job: ``size`` replaced by the
        estimate.  Identity when no estimate is set."""
        if self.size_estimate is None:
            return self
        return Job(
            self.id, self.release, self.size_estimate, None, self.origin,
            self.size_estimate,
        )


class JobSet:
    """An immutable collection of jobs ordered by release time.

    Jobs are stored sorted by ``(release, id)``; duplicate ids are
    rejected.  The paper assumes distinct arrival times for analysis but
    the implementation tolerates ties, resolving them by id.
    """

    __slots__ = ("_jobs", "_by_id")

    def __init__(self, jobs: Sequence[Job]) -> None:
        ordered = sorted(jobs, key=lambda j: (j.release, j.id))
        by_id: dict[int, Job] = {}
        for job in ordered:
            if job.id in by_id:
                raise WorkloadError(f"duplicate job id {job.id}")
            by_id[job.id] = job
        self._jobs: tuple[Job, ...] = tuple(ordered)
        self._by_id = by_id

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> Job:
        return self._jobs[index]

    def __contains__(self, job_id: int) -> bool:
        return job_id in self._by_id

    def by_id(self, job_id: int) -> Job:
        """The job with the given id."""
        try:
            return self._by_id[job_id]
        except KeyError:
            raise WorkloadError(f"unknown job id {job_id}") from None

    @property
    def ids(self) -> tuple[int, ...]:
        """Job ids in release order."""
        return tuple(j.id for j in self._jobs)

    def releases(self) -> np.ndarray:
        """Release times in release order, as a float array."""
        return np.array([j.release for j in self._jobs], dtype=float)

    def sizes(self) -> np.ndarray:
        """Router sizes ``p_j`` in release order, as a float array."""
        return np.array([j.size for j in self._jobs], dtype=float)

    def total_volume(self) -> float:
        """Sum of router sizes (one hop's worth of total work)."""
        return float(sum(j.size for j in self._jobs))

    @property
    def is_unrelated(self) -> bool:
        """Whether any job carries per-leaf processing times."""
        return any(j.is_unrelated for j in self._jobs)

    def time_horizon(self) -> float:
        """Latest release time (0.0 for an empty set)."""
        return self._jobs[-1].release if self._jobs else 0.0

    def __repr__(self) -> str:
        return f"JobSet(n={len(self)}, unrelated={self.is_unrelated})"

    @staticmethod
    def build(
        releases: Sequence[float],
        sizes: Sequence[float],
        leaf_size_rows: Sequence[Mapping[int, float] | None] | None = None,
        origins: Sequence[int | None] | None = None,
        size_estimates: Sequence[float | None] | None = None,
    ) -> "JobSet":
        """Assemble a job set from parallel arrays.

        ``leaf_size_rows`` may be ``None`` (identical setting) or one
        mapping (or ``None``) per job; ``origins`` and
        ``size_estimates`` likewise (``None`` entries mean root origin /
        fully-known size).
        """
        if len(releases) != len(sizes):
            raise WorkloadError(
                f"releases ({len(releases)}) and sizes ({len(sizes)}) differ in length"
            )
        if leaf_size_rows is not None and len(leaf_size_rows) != len(releases):
            raise WorkloadError(
                f"leaf_size_rows ({len(leaf_size_rows)}) and releases "
                f"({len(releases)}) differ in length"
            )
        if origins is not None and len(origins) != len(releases):
            raise WorkloadError(
                f"origins ({len(origins)}) and releases ({len(releases)}) "
                "differ in length"
            )
        if size_estimates is not None and len(size_estimates) != len(releases):
            raise WorkloadError(
                f"size_estimates ({len(size_estimates)}) and releases "
                f"({len(releases)}) differ in length"
            )
        jobs = [
            Job(
                id=i,
                release=float(releases[i]),
                size=float(sizes[i]),
                leaf_sizes=None if leaf_size_rows is None else leaf_size_rows[i],
                origin=None if origins is None else origins[i],
                size_estimate=(
                    None
                    if size_estimates is None or size_estimates[i] is None
                    else float(size_estimates[i])
                ),
            )
            for i in range(len(releases))
        ]
        return JobSet(jobs)
