"""Named workload scenarios.

Presets bundling topology + arrival process + size distribution (+
unrelated matrix where it fits) into the application shapes the paper's
introduction motivates.  Each returns a fully seeded
:class:`~repro.workload.instance.Instance`; all parameters can be
overridden.

* :func:`mapreduce_shuffle` — analytics jobs whose *data movement*
  dominates (big transfers to a datacenter tree, heavy-tailed sizes);
* :func:`interactive_plus_batch` — a latency-sensitive stream of tiny
  requests sharing the tree with periodic large batch jobs;
* :func:`sensor_fanout` — packet-routing style: dense bursts of small
  payloads pushed down deep paths;
* :func:`locality_cluster` — unrelated endpoints with replica locality
  and a fraction of machine-restricted jobs.
"""

from __future__ import annotations

import numpy as np

from repro.network.builders import datacenter_tree, star_of_paths
from repro.workload.arrivals import (
    adversarial_bursts,
    deterministic_arrivals,
    poisson_arrivals,
)
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet
from repro.workload.sizes import bimodal_sizes, bounded_pareto_sizes
from repro.workload.unrelated import affinity_matrix, restricted_assignment_matrix

__all__ = [
    "mapreduce_shuffle",
    "interactive_plus_batch",
    "sensor_fanout",
    "locality_cluster",
]


def mapreduce_shuffle(
    n: int = 120,
    *,
    pods: int = 3,
    racks: int = 3,
    machines: int = 4,
    load: float = 0.85,
    seed: int = 0,
) -> Instance:
    """Shuffle-heavy analytics on a three-tier datacenter tree.

    Heavy-tailed transfer sizes (bounded Pareto, α=1.3) at the given
    bottleneck load — the MapReduce/Hadoop regime of the introduction
    where moving data between machines is the main time constraint.
    """
    rng = np.random.default_rng(seed)
    tree = datacenter_tree(pods, racks, machines)
    sizes = bounded_pareto_sizes(n, alpha=1.3, low=1.0, high=40.0, rng=rng)
    rate = Instance.poisson_rate_for_load(tree, float(sizes.mean()), load)
    releases = poisson_arrivals(n, rate, rng)
    return Instance(
        tree, JobSet.build(releases, sizes), Setting.IDENTICAL, name="mapreduce_shuffle"
    )


def interactive_plus_batch(
    n_interactive: int = 100,
    n_batch: int = 10,
    *,
    pods: int = 2,
    racks: int = 2,
    machines: int = 3,
    batch_size: float = 25.0,
    seed: int = 0,
) -> Instance:
    """Tiny latency-sensitive requests sharing the fabric with periodic
    large batch jobs — the mice-vs-elephants mix where SJF's value shows.
    """
    rng = np.random.default_rng(seed)
    tree = datacenter_tree(pods, racks, machines)
    inter_rel = poisson_arrivals(n_interactive, rate=1.5, rng=rng)
    horizon = float(inter_rel[-1]) if n_interactive else 10.0
    batch_rel = deterministic_arrivals(
        n_batch, spacing=max(horizon, 1.0) / max(n_batch, 1)
    )
    releases = np.concatenate([inter_rel, batch_rel])
    sizes = np.concatenate(
        [np.full(n_interactive, 1.0), np.full(n_batch, batch_size)]
    )
    return Instance(
        tree,
        JobSet.build(releases, sizes),
        Setting.IDENTICAL,
        name="interactive_plus_batch",
    )


def sensor_fanout(
    num_bursts: int = 6,
    burst_size: int = 20,
    *,
    branches: int = 4,
    depth: int = 5,
    gap: float = 30.0,
    seed: int = 0,
) -> Instance:
    """Bursts of near-unit packets pushed down deep distribution paths —
    the packet-forwarding application of Section 2."""
    rng = np.random.default_rng(seed)
    tree = star_of_paths(branches, depth)
    releases = adversarial_bursts(num_bursts, burst_size, gap, jitter=0.5, rng=rng)
    sizes = np.full(len(releases), 1.0)
    return Instance(
        tree, JobSet.build(releases, sizes), Setting.IDENTICAL, name="sensor_fanout"
    )


def locality_cluster(
    n: int = 80,
    *,
    pods: int = 2,
    racks: int = 3,
    machines: int = 3,
    replicas: int = 2,
    remote_penalty: float = 5.0,
    restricted_fraction: float = 0.25,
    load: float = 0.75,
    seed: int = 0,
) -> Instance:
    """Unrelated endpoints with data locality.

    Each job is fast on ``replicas`` machines and ``remote_penalty``×
    slower elsewhere; a ``restricted_fraction`` of jobs can only run on a
    random feasible subset at all (restricted assignment).
    """
    rng = np.random.default_rng(seed)
    tree = datacenter_tree(pods, racks, machines)
    sizes = bimodal_sizes(n, small=1.0, large=8.0, large_fraction=0.2, rng=rng)
    rate = Instance.poisson_rate_for_load(tree, float(sizes.mean()), load)
    releases = poisson_arrivals(n, rate, rng)
    local_rows = affinity_matrix(
        tree.leaves, sizes, fast_leaves=replicas, slow_factor=remote_penalty, rng=rng
    )
    restricted_rows = restricted_assignment_matrix(
        tree.leaves, sizes, feasible_fraction=0.4, rng=rng
    )
    pick_restricted = rng.random(n) < restricted_fraction
    rows = [
        restricted_rows[i] if pick_restricted[i] else local_rows[i] for i in range(n)
    ]
    return Instance(
        tree,
        JobSet.build(releases, sizes, rows),
        Setting.UNRELATED,
        name="locality_cluster",
    )
