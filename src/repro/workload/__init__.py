"""Workload substrate: jobs, arrival processes, size distributions,
unrelated-endpoint matrices, instances, and trace IO.

The paper evaluates nothing empirically, so worst-case-flavoured
synthetic workloads are built here to exercise the algorithms at the
stress points of the proofs: congestion at the root-adjacent routers
(Lemma 6), priority mixing inside subtrees (Lemma 2), and skewed
machine affinities in the unrelated-endpoint setting (Theorem 2).
"""

from repro.workload.events import Cancel, EventSchedule, NodeDown, NodeUp
from repro.workload.job import Job, JobSet
from repro.workload.arrivals import (
    adversarial_bursts,
    batch_arrivals,
    bursty_arrivals,
    deterministic_arrivals,
    poisson_arrivals,
    tied_arrivals,
)
from repro.workload.sizes import (
    bimodal_sizes,
    bounded_pareto_sizes,
    class_index,
    geometric_class_sizes,
    near_tie_sizes,
    round_to_classes,
    uniform_sizes,
)
from repro.workload.unrelated import (
    affinity_matrix,
    partition_matrix,
    restricted_assignment_matrix,
    uniform_speed_matrix,
)
from repro.workload.instance import Instance, Setting
from repro.workload.scenarios import (
    interactive_plus_batch,
    locality_cluster,
    mapreduce_shuffle,
    sensor_fanout,
)
from repro.workload.trace_io import instance_from_json, instance_to_json

__all__ = [
    "Job",
    "JobSet",
    "EventSchedule",
    "NodeDown",
    "NodeUp",
    "Cancel",
    "poisson_arrivals",
    "deterministic_arrivals",
    "batch_arrivals",
    "bursty_arrivals",
    "adversarial_bursts",
    "tied_arrivals",
    "uniform_sizes",
    "bounded_pareto_sizes",
    "bimodal_sizes",
    "near_tie_sizes",
    "geometric_class_sizes",
    "round_to_classes",
    "class_index",
    "uniform_speed_matrix",
    "affinity_matrix",
    "partition_matrix",
    "restricted_assignment_matrix",
    "Instance",
    "Setting",
    "instance_to_json",
    "instance_from_json",
    "mapreduce_shuffle",
    "interactive_plus_batch",
    "sensor_fanout",
    "locality_cluster",
]
