"""Problem instances: a tree, a job set, and the endpoint setting.

:class:`Instance` is the unit every simulator, algorithm, LP, and
experiment consumes.  It validates that the jobs are compatible with the
tree (unrelated jobs must price every leaf) and centralises the paper's
processing-time notation:

* :meth:`Instance.processing_time` — ``p_{j,v}``;
* :meth:`Instance.path_volume` — ``P_{v,j}``, the total processing of a
  job over the whole root-to-leaf path (a per-job flow-time lower bound);
* :meth:`Instance.eta` — ``η_{j,v}``, the total processing on the path
  from the root to node ``v`` (used by the LP objective).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.network.broomstick import BroomstickReduction
from repro.network.tree import TreeNetwork
from repro.workload.job import Job, JobSet

__all__ = ["Setting", "Instance"]


class Setting(enum.Enum):
    """Which endpoint model the instance lives in (Section 2)."""

    IDENTICAL = "identical"
    UNRELATED = "unrelated"


@dataclass(frozen=True)
class Instance:
    """A complete scheduling instance.

    Attributes
    ----------
    tree:
        The network topology.
    jobs:
        The job set, ordered by release time.
    setting:
        :class:`Setting` member; ``UNRELATED`` requires every job to carry
        ``leaf_sizes`` covering every leaf of ``tree``, ``IDENTICAL``
        requires no job to carry them.
    name:
        Optional label used in experiment reports.
    """

    tree: TreeNetwork
    jobs: JobSet
    setting: Setting
    name: str = ""

    def __post_init__(self) -> None:
        leaves = set(self.tree.leaves)
        for job in self.jobs:
            if self.setting is Setting.IDENTICAL:
                if job.is_unrelated:
                    raise WorkloadError(
                        f"job {job.id} has leaf_sizes but the instance is IDENTICAL"
                    )
            else:
                if not job.is_unrelated:
                    raise WorkloadError(
                        f"job {job.id} lacks leaf_sizes but the instance is UNRELATED"
                    )
                assert job.leaf_sizes is not None
                missing = leaves - set(job.leaf_sizes)
                if missing:
                    raise WorkloadError(
                        f"job {job.id} leaf_sizes missing leaves {sorted(missing)[:5]}"
                    )
                if all(math.isinf(job.leaf_sizes[v]) for v in leaves):
                    raise WorkloadError(f"job {job.id} has no feasible leaf")
            if job.origin is not None and job.origin != self.tree.root:
                if job.origin not in self.tree:
                    raise WorkloadError(
                        f"job {job.id}: origin {job.origin} is not in the tree"
                    )
                if self.tree.node(job.origin).is_leaf:
                    raise WorkloadError(
                        f"job {job.id}: origin {job.origin} is a leaf; data must "
                        "originate at the root or a router"
                    )
                under = self.tree.leaves_under(job.origin)
                if not any(
                    math.isfinite(job.processing_on_leaf(v)) for v in under
                ):
                    raise WorkloadError(
                        f"job {job.id}: no feasible leaf below origin {job.origin}"
                    )

    # ------------------------------------------------------------------
    # the paper's processing-time notation
    # ------------------------------------------------------------------
    def processing_time(self, job: Job, node: int) -> float:
        """``p_{j,v}``: the processing of ``job`` on ``node``.

        Routers always cost ``p_j``; leaves cost ``p_j`` in the identical
        setting and ``p_{j,v}`` in the unrelated one.
        """
        if self.tree.node(node).is_leaf:
            return job.processing_on_leaf(node)
        return job.size

    def path_volume(self, job: Job, leaf: int) -> float:
        """``P_{v,j}``: total processing over the path to ``leaf``.

        With ``d`` nodes on the processing path this is
        ``(d-1)·p_j + p_{j,leaf}``.  It lower-bounds the job's flow time
        if assigned to ``leaf`` (at unit speeds).
        """
        d = self.tree.d(leaf)
        return (d - 1) * job.size + job.processing_on_leaf(leaf)

    def eta(self, job: Job, node: int) -> float:
        """``η_{j,v}``: total processing on the root-to-``v`` path.

        Equals :meth:`path_volume` when ``v`` is a leaf.
        """
        if self.tree.node(node).is_leaf:
            return self.path_volume(job, node)
        return self.tree.d(node) * job.size

    def feasible_leaves(self, job: Job) -> tuple[int, ...]:
        """Leaves the job may run on: finite processing time, and inside
        the origin's subtree when the job has a non-root origin."""
        if job.origin is not None and job.origin != self.tree.root:
            candidates = self.tree.leaves_under(job.origin)
        else:
            candidates = self.tree.leaves
        return tuple(
            v for v in candidates if math.isfinite(job.processing_on_leaf(v))
        )

    def processing_path_for(self, job: Job, leaf: int) -> tuple[int, ...]:
        """The nodes ``job`` is processed on when assigned to ``leaf``.

        For root-origin jobs this is the usual processing path; for a
        router origin it is the path strictly below the origin.
        """
        if job.origin is None or job.origin == self.tree.root:
            return self.tree.processing_path(leaf)
        path = self.tree.path_between(job.origin, leaf)
        return path[1:]

    def min_path_volume(self, job: Job) -> float:
        """The smallest ``P_{v,j}`` over feasible leaves.

        The per-job flow-time lower bound used by the combinatorial
        bounds in :mod:`repro.lp.bounds`.
        """
        best = math.inf
        for v in self.tree.leaves:
            p = job.processing_on_leaf(v)
            if math.isfinite(p):
                best = min(best, (self.tree.d(v) - 1) * job.size + p)
        return best

    # ------------------------------------------------------------------
    # load accounting
    # ------------------------------------------------------------------
    def tier_utilisations(self) -> dict[str, float]:
        """Rough offered-load estimates for the two capacity tiers.

        ``root_children``: total router volume that must cross the
        root-adjacent tier divided by (tier width × makespan window).
        ``leaves``: total minimum leaf volume divided by
        (leaf count × window).  The window is the arrival span plus one
        mean job size, so single-burst instances do not divide by zero.
        Purely diagnostic — used to label experiment rows.
        """
        n = len(self.jobs)
        if n == 0:
            return {"root_children": 0.0, "leaves": 0.0}
        sizes = self.jobs.sizes()
        window = float(self.jobs.time_horizon()) + float(sizes.mean())
        top_volume = float(sizes.sum())
        leaf_volume = 0.0
        for job in self.jobs:
            best = min(
                (
                    job.processing_on_leaf(v)
                    for v in self.tree.leaves
                    if math.isfinite(job.processing_on_leaf(v))
                ),
                default=0.0,
            )
            leaf_volume += best
        width_top = len(self.tree.root_children)
        width_leaf = self.tree.num_leaves
        return {
            "root_children": top_volume / (width_top * window),
            "leaves": leaf_volume / (width_leaf * window),
        }

    @staticmethod
    def poisson_rate_for_load(
        tree: TreeNetwork, mean_size: float, load: float
    ) -> float:
        """The Poisson rate that offers ``load`` to the tighter tier.

        With arrival rate ``λ`` and mean router size ``E[p]``, the
        root-adjacent tier of width ``|R|`` sees utilisation
        ``λ·E[p]/|R|`` (in the best balanced case) and the leaf tier of
        width ``|L|`` sees ``λ·E[p]/|L|``.  The returned rate makes the
        *smaller* tier hit ``load``.
        """
        if mean_size <= 0:
            raise WorkloadError(f"mean_size must be > 0, got {mean_size}")
        if load <= 0:
            raise WorkloadError(f"load must be > 0, got {load}")
        width = min(len(tree.root_children), tree.num_leaves)
        return load * width / mean_size

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def on_broomstick(self, reduction: BroomstickReduction) -> "Instance":
        """This instance translated onto the broomstick ``T'``.

        Router sizes are unchanged; in the unrelated setting each job's
        leaf mapping is re-keyed through the reduction's leaf
        correspondence (Section 3.3: a copied leaf keeps the original
        leaf's processing time).
        """
        if reduction.original is not self.tree and (
            reduction.original.parent_map() != self.tree.parent_map()
        ):
            raise WorkloadError("reduction was built from a different tree")
        if self.setting is Setting.IDENTICAL:
            jobs = self.jobs
        else:
            remapped = []
            for job in self.jobs:
                assert job.leaf_sizes is not None
                remapped.append(
                    job.with_leaf_sizes(
                        {
                            reduction.leaf_map[v]: p
                            for v, p in job.leaf_sizes.items()
                            if v in reduction.leaf_map
                        }
                    )
                )
            jobs = JobSet(remapped)
        return Instance(
            tree=reduction.broomstick,
            jobs=jobs,
            setting=self.setting,
            name=f"{self.name}::broomstick" if self.name else "broomstick",
        )

    def rounded(self, eps: float) -> "Instance":
        """A copy with every processing time rounded up to a
        ``(1+ε)`` power (Section 2's class assumption)."""
        from repro.workload.sizes import round_to_classes

        new_jobs = []
        for job in self.jobs:
            size = float(round_to_classes(np.array([job.size]), eps)[0])
            leaf_sizes = None
            if job.leaf_sizes is not None:
                leaf_sizes = {
                    v: (
                        p
                        if math.isinf(p)
                        else float(round_to_classes(np.array([p]), eps)[0])
                    )
                    for v, p in job.leaf_sizes.items()
                }
            new_jobs.append(Job(job.id, job.release, size, leaf_sizes, job.origin))
        return Instance(self.tree, JobSet(new_jobs), self.setting, self.name)

    def __repr__(self) -> str:
        return (
            f"Instance(name={self.name!r}, setting={self.setting.value}, "
            f"tree={self.tree!r}, jobs={len(self.jobs)})"
        )
