"""treesched — online flow-time scheduling in bandwidth-constrained tree
networks.

A complete reproduction of *Scheduling in Bandwidth Constrained Tree
Networks* (Im & Moseley, SPAA 2015): the tree network model, the SJF +
greedy-dispatch online algorithm, the broomstick reduction, the LP lower
bounds and dual-fitting certificates, baselines, and an empirical
validation harness for every theorem and lemma in the paper.

Quickstart
----------
>>> from repro import (
...     kary_tree, Instance, Setting, JobSet, Job,
...     run_paper_algorithm,
... )
>>> tree = kary_tree(branching=2, depth=3)
>>> jobs = JobSet([Job(id=i, release=float(i), size=1.0) for i in range(8)])
>>> instance = Instance(tree, jobs, Setting.IDENTICAL)
>>> result = run_paper_algorithm(instance, eps=0.5)
>>> result.total_flow_time() > 0
True
"""

from repro.exceptions import (
    AnalysisError,
    AssignmentError,
    InvariantViolation,
    LPError,
    SimulationError,
    TopologyError,
    TreeSchedError,
    WorkloadError,
)
from repro.network import (
    BroomstickReduction,
    Node,
    NodeKind,
    TreeNetwork,
    broomstick_tree,
    caterpillar_tree,
    datacenter_tree,
    figure1_tree,
    kary_tree,
    random_tree,
    reduce_to_broomstick,
    spine_tree,
    star_of_paths,
    tree_from_parent_map,
)
from repro.workload import (
    Instance,
    Job,
    JobSet,
    Setting,
    adversarial_bursts,
    affinity_matrix,
    batch_arrivals,
    bimodal_sizes,
    bounded_pareto_sizes,
    bursty_arrivals,
    deterministic_arrivals,
    geometric_class_sizes,
    instance_from_json,
    instance_to_json,
    partition_matrix,
    poisson_arrivals,
    restricted_assignment_matrix,
    round_to_classes,
    uniform_sizes,
    uniform_speed_matrix,
)
from repro.sim import (
    Engine,
    EngineCounters,
    SchedulerView,
    SimulationResult,
    SpeedProfile,
)
from repro.core import (
    FixedAssignment,
    GeneralTreeScheduler,
    GreedyIdenticalAssignment,
    GreedyUnrelatedAssignment,
    fifo_priority,
    higher_priority_volume,
    phi_potential,
    run_broomstick_algorithm,
    run_general_tree,
    run_paper_algorithm,
    sjf_priority,
)
from repro.baselines import (
    ClosestLeafAssignment,
    LeastLoadedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
)
from repro.workload.chunking import (
    ChunkedAssignment,
    ChunkedInstance,
    aggregate_chunk_result,
    chunk_instance,
    chunk_priority,
)
from repro.sim.gantt import render_gantt
from repro.analysis.norms import flow_lk_norm, flow_norm_summary
from repro import api
from repro.api import (
    build_tree,
    make_instance,
    open_system,
    run_experiments,
    trace_run,
)
from repro.service import StreamSession
from repro.obs import (
    GaugeSample,
    SimulationTrace,
    TraceConfig,
    TracePoint,
    TraceRecorder,
    TraceSpan,
)

__version__ = "1.0.0"


__all__ = [
    # errors
    "TreeSchedError",
    "TopologyError",
    "WorkloadError",
    "SimulationError",
    "InvariantViolation",
    "AssignmentError",
    "LPError",
    "AnalysisError",
    # network
    "Node",
    "NodeKind",
    "TreeNetwork",
    "tree_from_parent_map",
    "kary_tree",
    "star_of_paths",
    "caterpillar_tree",
    "spine_tree",
    "broomstick_tree",
    "random_tree",
    "datacenter_tree",
    "figure1_tree",
    "BroomstickReduction",
    "reduce_to_broomstick",
    # workload
    "Job",
    "JobSet",
    "Instance",
    "Setting",
    "poisson_arrivals",
    "deterministic_arrivals",
    "batch_arrivals",
    "bursty_arrivals",
    "adversarial_bursts",
    "uniform_sizes",
    "bounded_pareto_sizes",
    "bimodal_sizes",
    "geometric_class_sizes",
    "round_to_classes",
    "uniform_speed_matrix",
    "affinity_matrix",
    "partition_matrix",
    "restricted_assignment_matrix",
    "instance_to_json",
    "instance_from_json",
    # sim
    "Engine",
    "EngineCounters",
    "SchedulerView",
    "SimulationResult",
    "SpeedProfile",
    # stable facade
    "api",
    "build_tree",
    "make_instance",
    "open_system",
    "run_experiments",
    "trace_run",
    "StreamSession",
    # observability
    "TraceConfig",
    "TraceRecorder",
    "SimulationTrace",
    "TracePoint",
    "TraceSpan",
    "GaugeSample",
    # core
    "sjf_priority",
    "fifo_priority",
    "GreedyIdenticalAssignment",
    "GreedyUnrelatedAssignment",
    "FixedAssignment",
    "GeneralTreeScheduler",
    "run_general_tree",
    "run_paper_algorithm",
    "run_broomstick_algorithm",
    "phi_potential",
    "higher_priority_volume",
    # baselines
    "ClosestLeafAssignment",
    "RandomAssignment",
    "LeastLoadedAssignment",
    "RoundRobinAssignment",
    # extensions
    "ChunkedInstance",
    "ChunkedAssignment",
    "chunk_instance",
    "chunk_priority",
    "aggregate_chunk_result",
    "render_gantt",
    "flow_lk_norm",
    "flow_norm_summary",
    "__version__",
]
