"""Post-hoc schedule validation.

:func:`validate_schedule` replays a finished
:class:`~repro.sim.result.SimulationResult` (run with
``record_segments=True``) against the model of Section 2 and raises
:class:`~repro.exceptions.InvariantViolation` on the first discrepancy:

1. **Mutual exclusion** — no node processes two jobs at once.
2. **Work conservation** — per (job, node), segment durations × node
   speed sum to exactly the job's processing requirement there.
3. **Store-and-forward** — a job is only processed on a node inside its
   availability window there, and becomes available on node ``i+1`` at
   the instant it completes on node ``i``.
4. **Release respect** — nothing is processed before its release.

Jobs withdrawn by a :class:`~repro.workload.events.Cancel` event are
validated against a truncated model: completed hops obey the rules
above, the hop in progress at the cancel may have processed *at most*
its requirement with every segment ending by ``cancelled_at``, and no
processing exists past the truncation point.

These checks are independent of the engine's internal bookkeeping: they
consume only the emitted segments and records, so an engine bug cannot
hide itself.
"""

from __future__ import annotations

from collections import defaultdict

from repro.exceptions import InvariantViolation
from repro.sim.result import SimulationResult
from repro.sim.tolerances import SCHEDULE_TOL

__all__ = ["validate_schedule"]


def validate_schedule(result: SimulationResult, *, tol: float = SCHEDULE_TOL) -> None:
    """Validate a recorded schedule against the tree network model.

    Raises
    ------
    InvariantViolation
        Describing the first violated property.
    """
    if result.segments is None:
        raise InvariantViolation(
            "result has no segments; run the engine with record_segments=True"
        )
    instance = result.instance

    by_node: dict[int, list] = defaultdict(list)
    by_job_node: dict[tuple[int, int], float] = defaultdict(float)
    for seg in result.segments:
        if seg.end < seg.start - tol:
            raise InvariantViolation(f"segment with negative duration: {seg}")
        by_node[seg.node].append(seg)
        by_job_node[(seg.job_id, seg.node)] += seg.duration

    # 1. mutual exclusion per node
    for node, segs in by_node.items():
        segs.sort(key=lambda s: (s.start, s.end))
        for a, b in zip(segs, segs[1:]):
            if b.start < a.end - tol:
                raise InvariantViolation(
                    f"node {node} overlaps: job {a.job_id} [{a.start},{a.end}] "
                    f"vs job {b.job_id} [{b.start},{b.end}]"
                )

    for rec in result.records.values():
        job = instance.jobs.by_id(rec.job_id)
        if rec.cancelled:
            _validate_cancelled(rec, job, instance, result, by_job_node, tol)
            continue
        if len(rec.available_at) != len(rec.path) or len(rec.completed_at) != len(
            rec.path
        ):
            raise InvariantViolation(
                f"job {rec.job_id}: incomplete per-node records"
            )
        # 4. release respect + monotone chain
        if rec.available_at[0] < job.release - tol:
            raise InvariantViolation(
                f"job {rec.job_id} available before release"
            )
        for i, node in enumerate(rec.path):
            speed = result.speeds.speed_of(instance.tree, node)
            required = instance.processing_time(job, node)
            done = by_job_node.pop((rec.job_id, node), 0.0) * speed
            # 2. work conservation
            if abs(done - required) > tol * max(1.0, required):
                raise InvariantViolation(
                    f"job {rec.job_id} on node {node}: processed {done}, "
                    f"required {required}"
                )
            # 3. store-and-forward ordering
            if rec.completed_at[i] < rec.available_at[i] - tol:
                raise InvariantViolation(
                    f"job {rec.job_id} completed on node {node} before available"
                )
            if i + 1 < len(rec.path):
                if abs(rec.available_at[i + 1] - rec.completed_at[i]) > tol:
                    raise InvariantViolation(
                        f"job {rec.job_id}: availability on {rec.path[i + 1]} "
                        f"({rec.available_at[i + 1]}) does not match completion "
                        f"on {node} ({rec.completed_at[i]})"
                    )

    # Any leftover work on nodes not on the job's path is illegal.
    stray = {k: v for k, v in by_job_node.items() if v > tol}
    if stray:
        raise InvariantViolation(f"processing off the assigned path: {stray}")

    # 3b. segments must lie inside the availability window on their node.
    # For a cancelled job the window of the hop in progress closes at the
    # cancel instant, and hops never reached have no window at all.
    windows = {}
    for rec in result.records.values():
        n_done = len(rec.completed_at)
        for i, node in enumerate(rec.path):
            if i < n_done:
                windows[(rec.job_id, node)] = (
                    rec.available_at[i],
                    rec.completed_at[i],
                )
            elif rec.cancelled and i < len(rec.available_at):
                windows[(rec.job_id, node)] = (
                    rec.available_at[i],
                    rec.cancelled_at,
                )
    for seg in result.segments:
        window = windows.get((seg.job_id, seg.node))
        if window is None:
            raise InvariantViolation(
                f"segment for job {seg.job_id} on off-path node {seg.node}"
            )
        lo, hi = window
        if seg.start < lo - tol or seg.end > hi + tol:
            raise InvariantViolation(
                f"segment {seg} outside availability window [{lo}, {hi}]"
            )


def _validate_cancelled(rec, job, instance, result, by_job_node, tol) -> None:
    """Truncated-model validation of one cancelled job record."""
    n_avail = len(rec.available_at)
    n_done = len(rec.completed_at)
    ct = rec.cancelled_at
    if n_done > n_avail or n_avail > len(rec.path):
        raise InvariantViolation(
            f"job {rec.job_id}: inconsistent cancelled record "
            f"({n_avail} availabilities, {n_done} hop completions)"
        )
    if n_avail and rec.available_at[0] < job.release - tol:
        raise InvariantViolation(f"job {rec.job_id} available before release")
    for i in range(n_done):
        node = rec.path[i]
        speed = result.speeds.speed_of(instance.tree, node)
        required = instance.processing_time(job, node)
        done = by_job_node.pop((rec.job_id, node), 0.0) * speed
        if abs(done - required) > tol * max(1.0, required):
            raise InvariantViolation(
                f"job {rec.job_id} on node {node}: processed {done}, "
                f"required {required}"
            )
        if rec.completed_at[i] < rec.available_at[i] - tol:
            raise InvariantViolation(
                f"job {rec.job_id} completed on node {node} before available"
            )
        if rec.completed_at[i] > ct + tol:
            raise InvariantViolation(
                f"job {rec.job_id}: hop completion on node {node} at "
                f"{rec.completed_at[i]} after cancellation at {ct}"
            )
        if i + 1 < n_avail and abs(rec.available_at[i + 1] - rec.completed_at[i]) > tol:
            raise InvariantViolation(
                f"job {rec.job_id}: availability on {rec.path[i + 1]} "
                f"({rec.available_at[i + 1]}) does not match completion "
                f"on {node} ({rec.completed_at[i]})"
            )
    if n_avail > n_done:
        # the hop in progress at the cancel: work is truncated, never over.
        node = rec.path[n_done]
        speed = result.speeds.speed_of(instance.tree, node)
        required = instance.processing_time(job, node)
        done = by_job_node.pop((rec.job_id, node), 0.0) * speed
        if done > required + tol * max(1.0, required):
            raise InvariantViolation(
                f"job {rec.job_id} on node {node}: processed {done} exceeds "
                f"requirement {required} despite cancellation"
            )
        if rec.available_at[n_done] > ct + tol:
            raise InvariantViolation(
                f"job {rec.job_id}: became available on node {node} after "
                f"its cancellation at {ct}"
            )
