"""Single source of truth for the simulator's float tolerances.

Before this module existed the engine, the event log, and the Gantt
renderer each hard-coded their own epsilons (``-1e-9``, ``1e-12``,
``1e-7``...) with no shared rationale.  The audit that consolidated them
classified every comparison by the *scale* of the quantity involved:

* **Clock comparisons** (is time monotone?) are absolute in simulated
  time.  Event times are sums/quotients of job sizes, so an absolute
  ``1e-9`` slack is many orders of magnitude above double rounding for
  any realistic horizon; :data:`CLOCK_EPS` keeps the historical value.
* **"Is this job finished?"** compares remaining work against zero.
  Remaining work is computed as ``rem_start - speed * elapsed``; its
  rounding error scales with the job's processing time on the node, so
  a purely absolute ``1e-12`` threshold (the old value) silently missed
  finished jobs whose sizes were large.  :func:`finished_tol` blends an
  absolute floor with a relative term in the processing time.
* **Invariant bands** (is remaining within ``[0, p]``?) must be at
  least as permissive as :func:`finished_tol`, otherwise a job the
  engine has already declared finished (``remaining <= finished_tol``)
  could still fail the lower band — the mixed-tolerance bug this module
  fixes.  The relative upper band keeps the historical ``1e-9``.
* **Completion-event guards** check that a predicted completion left no
  work behind.  The prediction ``now + remaining / speed`` loses about
  one ulp of the *clock*, which corresponds to ``speed * now * 2^-52``
  of *work*; :func:`completion_guard_tol` scales with both the job and
  the clock.
"""

from __future__ import annotations

__all__ = [
    "CLOCK_EPS",
    "REL_EPS",
    "REMAINING_ATOL",
    "REMAINING_RTOL",
    "DRIFT_RTOL",
    "SCHEDULE_TOL",
    "ULP",
    "finished_tol",
    "completion_guard_tol",
]

#: One double-precision ulp at unit scale (``2**-52``).
ULP = 2.220446049250313e-16

#: Absolute slack for simulated-clock monotonicity checks.
CLOCK_EPS = 1e-9

#: Relative slack for quantities compared at the scale of a processing
#: time (the invariant upper band ``rem <= p * (1 + REL_EPS)``).
REL_EPS = 1e-9

#: Absolute floor below which remaining work counts as zero.
REMAINING_ATOL = 1e-12

#: Relative component of the finished test: residuals from
#: ``rem_start - speed * elapsed`` grow with the job's size on the node.
REMAINING_RTOL = 1e-12

#: Relative slack for the alive-fraction bookkeeping cross-check.
DRIFT_RTOL = 1e-6

#: Default tolerance for post-hoc schedule validation
#: (:func:`repro.sim.invariants.validate_schedule`).  Segment endpoints
#: are recorded event times, so their error is clock-scale, but work
#: conservation sums many ``duration * speed`` products; ``1e-6`` (the
#: historical value, now sourced here instead of a hard-coded literal)
#: leaves headroom for that accumulation while staying far below any
#: real scheduling discrepancy.
SCHEDULE_TOL = 1e-6


def finished_tol(processing_time: float) -> float:
    """Remaining-work threshold under which a job counts as finished.

    ``processing_time`` is the job's (original) processing requirement
    on the node in question — the natural scale of the residual left by
    settle arithmetic.
    """
    return max(REMAINING_ATOL, REMAINING_RTOL * processing_time)


def completion_guard_tol(rem_start: float, speed: float, now: float) -> float:
    """Largest residual a legitimate completion event may leave behind.

    Blends a relative term in the work the event was scheduled for with
    a clock-resolution term: one ulp of event-time error at time ``now``
    leaves ``speed * now * 2**-52`` work unprocessed.
    """
    return max(
        1e-7 * max(1.0, rem_start),
        256.0 * speed * max(abs(now), 1.0) * ULP,
    )
