"""Structured event logs for simulation runs.

:class:`EventLog` is an engine observer that records a typed timeline —
arrivals (with the dispatched leaf), per-node handoffs, completions, and
inferred preemptions — and offers query helpers.  Useful for debugging
policies, for teaching walkthroughs, and as the data source for trace
assertions in tests that care about *when* things happened rather than
only aggregate metrics.

Usage::

    log = EventLog()
    result = simulate(instance, policy, observer=log)
    log.events                      # the full timeline
    log.preemptions_at(node_id)     # who bumped whom, when
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.sim.engine import SchedulerView
from repro.sim.tolerances import finished_tol

__all__ = ["EventKind", "TraceEvent", "EventLog"]


class EventKind(enum.Enum):
    """What happened at a timeline entry."""

    ARRIVAL = "arrival"
    HANDOFF = "handoff"  # a job finished one node and moved to the next
    FINISH = "finish"  # a job completed on its leaf
    PREEMPTION = "preemption"  # a running job lost its node to another


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timeline entry.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        The :class:`EventKind`.
    job_id:
        The job the event is about (for preemptions, the *preempted* job).
    node:
        The node involved (arrival: the first processing node; handoff:
        the node just completed; finish: the leaf; preemption: where it
        happened).
    other_job:
        For preemptions, the job that took the node; else ``None``.
    """

    time: float
    kind: EventKind
    job_id: int
    node: int
    other_job: int | None = None


class EventLog:
    """Engine observer producing a typed event timeline (see module doc).

    Instances are callables matching the engine's observer signature;
    pass one as ``observer=`` to :class:`~repro.sim.engine.Engine` or
    :func:`~repro.sim.engine.simulate`.

    .. deprecated:: 1.0
        Superseded by the structured tracing layer (:mod:`repro.obs`):
        a :class:`~repro.obs.trace.TraceRecorder` captures the same
        timeline (plus service spans and gauges) from exact engine
        hooks instead of observer-side inference, and exports to JSONL
        / Chrome trace format.  ``EventLog`` keeps working for one
        release and emits a :class:`DeprecationWarning` on construction.
    """

    def __init__(self) -> None:
        import warnings

        warnings.warn(
            "EventLog is deprecated; use repro.obs.TraceRecorder (pass "
            "tracer=... to the engine, or repro.api.trace_run) for "
            "structured traces",
            DeprecationWarning,
            stacklevel=2,
        )
        self.events: list[TraceEvent] = []
        self._active: dict[int, int | None] = {}
        self._job_positions: dict[int, int | None] = {}

    # -- observer protocol ----------------------------------------------
    def __call__(self, view: SchedulerView, kind: str, subject: int) -> None:
        now = view.now
        if kind == "arrival":
            node = view.current_node_of(subject)
            if node is not None:
                self.events.append(
                    TraceEvent(now, EventKind.ARRIVAL, subject, node)
                )
        elif kind == "completion":
            self._record_progress(view, now)
        self._record_preemptions(view, now)

    def _record_progress(self, view: SchedulerView, now: float) -> None:
        for jid in list(self._job_positions):
            if jid not in view.alive_jobs():
                # finished since last event
                leaf = view.assigned_leaf(jid)
                self.events.append(TraceEvent(now, EventKind.FINISH, jid, leaf))
                del self._job_positions[jid]
        for jid in view.alive_jobs():
            node = view.current_node_of(jid)
            prev = self._job_positions.get(jid)
            if prev is not None and node != prev:
                self.events.append(TraceEvent(now, EventKind.HANDOFF, jid, prev))
            self._job_positions[jid] = node

    def _record_preemptions(self, view: SchedulerView, now: float) -> None:
        for jid in view.alive_jobs():
            node = view.current_node_of(jid)
            self._job_positions.setdefault(jid, node)
        # Detect active-job changes where the displaced job is still at
        # the node with work left: a preemption.
        seen_nodes = {view.current_node_of(j) for j in view.alive_jobs()}
        seen_nodes.discard(None)
        for node in seen_nodes:
            active = view.active_at(node)
            prev = self._active.get(node)
            if (
                prev is not None
                and active is not None
                and active != prev
                and prev in view.alive_jobs()
                and view.current_node_of(prev) == node
                and view.live_remaining(prev)
                > finished_tol(view.instance.processing_time(view.job(prev), node))
            ):
                self.events.append(
                    TraceEvent(now, EventKind.PREEMPTION, prev, node, other_job=active)
                )
            self._active[node] = active

    # -- queries ----------------------------------------------------------
    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    def for_job(self, job_id: int) -> list[TraceEvent]:
        """All events mentioning a job (as subject or preemptor)."""
        return [
            e for e in self.events if e.job_id == job_id or e.other_job == job_id
        ]

    def preemptions_at(self, node: int) -> list[TraceEvent]:
        """Preemption events on one node."""
        return [
            e
            for e in self.events
            if e.kind is EventKind.PREEMPTION and e.node == node
        ]

    def __len__(self) -> int:
        return len(self.events)
