"""Typed timeline vocabulary for simulation traces.

:class:`EventKind` and :class:`TraceEvent` describe what happened at a
timeline entry — arrivals, per-node handoffs, completions, and
preemptions.  The structured tracing layer (:mod:`repro.obs`) records
these from exact engine hooks; the old observer-side ``EventLog``
recorder was removed after its one-release deprecation window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["EventKind", "TraceEvent"]


class EventKind(enum.Enum):
    """What happened at a timeline entry."""

    ARRIVAL = "arrival"
    HANDOFF = "handoff"  # a job finished one node and moved to the next
    FINISH = "finish"  # a job completed on its leaf
    PREEMPTION = "preemption"  # a running job lost its node to another


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timeline entry.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        The :class:`EventKind`.
    job_id:
        The job the event is about (for preemptions, the *preempted* job).
    node:
        The node involved (arrival: the first processing node; handoff:
        the node just completed; finish: the leaf; preemption: where it
        happened).
    other_job:
        For preemptions, the job that took the node; else ``None``.
    """

    time: float
    kind: EventKind
    job_id: int
    node: int
    other_job: int | None = None
