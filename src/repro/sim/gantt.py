"""Plain-text Gantt rendering of recorded schedules.

Turns the segments of a :class:`~repro.sim.result.SimulationResult`
(run with ``record_segments=True``) into a per-node timeline — the
visual of choice for seeing store-and-forward pipelines and SJF
preemptions in examples and bug reports.

Each node gets one row; time is quantised into fixed-width cells; a cell
shows the job occupying the node for the majority of that cell (by id,
mod 62, as ``0-9a-zA-Z``), ``.`` when idle.
"""

from __future__ import annotations

import string

from repro.exceptions import AnalysisError
from repro.sim.result import SimulationResult

__all__ = ["render_gantt"]

_GLYPHS = string.digits + string.ascii_lowercase + string.ascii_uppercase


def _glyph(job_id: int) -> str:
    return _GLYPHS[job_id % len(_GLYPHS)]


def render_gantt(
    result: SimulationResult,
    *,
    width: int = 80,
    until: float | None = None,
) -> str:
    """Render the schedule as one timeline row per processing node.

    Parameters
    ----------
    result:
        A finished run with recorded segments.
    width:
        Number of time cells per row.
    until:
        Right edge of the rendered window (defaults to the makespan).

    Raises
    ------
    AnalysisError
        If the result has no segments.
    """
    if result.segments is None:
        raise AnalysisError(
            "no segments recorded; run the engine with record_segments=True"
        )
    horizon = until if until is not None else result.makespan()
    if horizon <= 0:
        return "(empty schedule)"
    cell = horizon / width

    tree = result.instance.tree
    rows: dict[int, list[str]] = {
        node.id: ["."] * width for node in tree if not node.is_root
    }
    # For each cell pick the job with the largest overlap.
    occupancy: dict[int, list[tuple[float, int]]] = {
        v: [(0.0, -1)] * width for v in rows
    }
    for seg in result.segments:
        if seg.node not in rows:
            continue
        # Cell i spans [i*cell, (i+1)*cell).  Integer division of the
        # endpoints can land one cell off (float quotients round both
        # ways, and an end exactly on a boundary belongs to the cell it
        # closes, not the one it opens), so correct both indices against
        # the actual boundaries.  An absolute epsilon cannot do this: it
        # mis-binned segments shorter than one cell that start on a
        # boundary.
        first = max(0, int(seg.start / cell))
        if (first + 1) * cell <= seg.start:
            first += 1
        if first >= width:  # segment lies beyond the rendered window
            continue
        last = min(width - 1, int(seg.end / cell))
        if last * cell >= seg.end:
            last -= 1
        last = max(last, first)
        for i in range(first, last + 1):
            lo = max(seg.start, i * cell)
            hi = min(seg.end, (i + 1) * cell)
            overlap = hi - lo
            if overlap > occupancy[seg.node][i][0]:
                occupancy[seg.node][i] = (overlap, seg.job_id)
    for v, cells in occupancy.items():
        for i, (overlap, jid) in enumerate(cells):
            if jid >= 0:
                rows[v][i] = _glyph(jid)

    label_width = max(len(tree.node(v).label()) for v in rows)
    lines = [
        f"{'time':>{label_width}} | 0{' ' * (width - len(f'{horizon:.1f}') - 1)}{horizon:.1f}"
    ]
    for v in sorted(rows, key=lambda u: (tree.depth(u), u)):
        lines.append(f"{tree.node(v).label():>{label_width}} | {''.join(rows[v])}")
    lines.append(
        f"{'legend':>{label_width}} | job id -> glyph: 0-9a-zA-Z (mod 62); '.' idle"
    )
    return "\n".join(lines)
