"""Resource-augmentation speed profiles.

The paper's theorems augment different tiers of the tree by different
factors; :class:`SpeedProfile` captures that: one speed for the
root-adjacent nodes (the paper's ``R``), one for the remaining interior
routers, one for the leaves, plus optional per-node overrides.

Named constructors build the exact profiles of the analysis:

* :meth:`SpeedProfile.theorem1` — the algorithm's speeds in the identical
  setting of Section 3.5: ``(1+ε)`` on ``R``, ``(1+ε)²`` elsewhere.
* :meth:`SpeedProfile.theorem2` — the unrelated-endpoint speeds of
  Section 3.6: ``2(1+ε)`` on ``R``, ``2(1+ε)²`` elsewhere.
* :meth:`SpeedProfile.theorem4_opt` — the augmentation granted to the
  *optimum on the broomstick* in Theorem 4: ``(1+ε)`` on ``R``,
  ``(1+ε)²`` elsewhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import SimulationError
from repro.network.tree import TreeNetwork

__all__ = ["SpeedProfile"]


@dataclass(frozen=True)
class SpeedProfile:
    """Per-tier node speeds with optional per-node overrides.

    Attributes
    ----------
    root_children:
        Speed of every node adjacent to the root (the paper's ``R``).
    interior:
        Speed of every other interior router.
    leaves:
        Speed of every leaf machine.
    overrides:
        Mapping ``node id -> speed`` taking precedence over the tiers.
    """

    root_children: float = 1.0
    interior: float = 1.0
    leaves: float = 1.0
    overrides: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for label, s in (
            ("root_children", self.root_children),
            ("interior", self.interior),
            ("leaves", self.leaves),
            *((f"override[{v}]", s) for v, s in self.overrides.items()),
        ):
            if not math.isfinite(s) or s <= 0:
                raise SimulationError(f"speed {label} must be finite and > 0, got {s}")

    # ------------------------------------------------------------------
    def speed_of(self, tree: TreeNetwork, v: int) -> float:
        """The speed of node ``v`` in ``tree``.

        The root performs no processing; querying its speed is an error.
        """
        node = tree.node(v)
        if node.is_root:
            raise SimulationError("the root performs no processing; it has no speed")
        if v in self.overrides:
            return self.overrides[v]
        if node.is_leaf:
            return self.leaves
        if node.parent == tree.root:
            return self.root_children
        return self.interior

    def speeds_for(self, tree: TreeNetwork) -> dict[int, float]:
        """Concrete ``node id -> speed`` map for every non-root node."""
        return {
            node.id: self.speed_of(tree, node.id)
            for node in tree
            if not node.is_root
        }

    def scaled(self, factor: float) -> "SpeedProfile":
        """Every speed multiplied by ``factor`` (> 0)."""
        if not math.isfinite(factor) or factor <= 0:
            raise SimulationError(f"factor must be finite and > 0, got {factor}")
        return SpeedProfile(
            root_children=self.root_children * factor,
            interior=self.interior * factor,
            leaves=self.leaves * factor,
            overrides={v: s * factor for v, s in self.overrides.items()},
        )

    # ------------------------------------------------------------------
    # named profiles from the paper
    # ------------------------------------------------------------------
    @staticmethod
    def uniform(speed: float = 1.0) -> "SpeedProfile":
        """Every node runs at the same speed (the adversary's profile)."""
        return SpeedProfile(speed, speed, speed)

    @staticmethod
    def theorem1(eps: float) -> "SpeedProfile":
        """Section 3.5 algorithm speeds (identical endpoints):
        ``(1+ε)`` on root-adjacent nodes, ``(1+ε)²`` below."""
        _check_eps(eps)
        return SpeedProfile(
            root_children=1.0 + eps,
            interior=(1.0 + eps) ** 2,
            leaves=(1.0 + eps) ** 2,
        )

    @staticmethod
    def theorem2(eps: float) -> "SpeedProfile":
        """Section 3.6 algorithm speeds (unrelated endpoints):
        ``2(1+ε)`` on root-adjacent nodes, ``2(1+ε)²`` below."""
        _check_eps(eps)
        return SpeedProfile(
            root_children=2.0 * (1.0 + eps),
            interior=2.0 * (1.0 + eps) ** 2,
            leaves=2.0 * (1.0 + eps) ** 2,
        )

    @staticmethod
    def theorem4_opt(eps: float) -> "SpeedProfile":
        """Theorem 4's augmentation of the broomstick optimum:
        ``(1+ε)`` on root-adjacent nodes, ``(1+ε)²`` below."""
        _check_eps(eps)
        return SpeedProfile(
            root_children=1.0 + eps,
            interior=(1.0 + eps) ** 2,
            leaves=(1.0 + eps) ** 2,
        )

    @staticmethod
    def lemma1(eps: float) -> "SpeedProfile":
        """Lemma 1's setting: unit speed on root-adjacent nodes and
        ``s ≥ 1+ε`` on every other node."""
        _check_eps(eps)
        return SpeedProfile(
            root_children=1.0, interior=1.0 + eps, leaves=1.0 + eps
        )


def _check_eps(eps: float) -> None:
    if not math.isfinite(eps) or eps <= 0:
        raise SimulationError(f"eps must be finite and > 0, got {eps}")
