"""The continuous-time event-driven simulation engine.

Semantics implemented (Section 2 of the paper):

* Jobs arrive at the root at their release times.  The root performs no
  processing: an arriving job is immediately available on the first node
  of its assigned processing path (the root-adjacent node ``R(v)``).
* A job occupies exactly one node at a time.  It becomes available on
  the next node of its path only once fully processed on the current one
  (store-and-forward).
* Each node processes at most one job at any moment, preemptively, at
  its speed from the :class:`~repro.sim.speed.SpeedProfile`.
* The per-node order is a pluggable priority (default SJF by *original*
  processing time on that node, ties by release then id — the paper's
  "oldest in class first" under class-rounded sizes).
* The leaf assignment is chosen by an
  :class:`AssignmentPolicy` at arrival (immediate dispatch) and never
  changes (non-migratory).

Event machinery
---------------
Two event sources exist: the sorted arrival list and per-node completion
predictions.  Completion events are pushed onto a heap tagged with the
node's *version*; any change to a node's queue bumps the version, so
stale events are skipped lazily.  Between events every quantity needed
for the paper's fractional flow time changes affinely, so the integral
is accumulated exactly (no discretisation error).

Incremental congestion aggregates
---------------------------------
The policies and lemma audits repeatedly query the paper's congestion
quantities — ``|Q_v(t)|``, the remaining volume routed through ``v``,
and the volume queued at a node.  Scanning the alive set for each query
costs O(arrivals x leaves x alive) over a run, so the engine maintains
them *incrementally*: per-node alive counts (``_through_count``),
remaining through-volumes (``_through_volume``) and queued volumes
(``_queue_volume``) are adjusted in O(path length) at the three mutation
points — release (:meth:`Engine._handle_arrival`), hop advance
(:meth:`Engine._advance_job`) and settle (:meth:`Engine._settle`) — and
read in O(1) via :meth:`SchedulerView.jobs_through_count`,
:meth:`SchedulerView.volume_through` and
:meth:`SchedulerView.queue_volume_at`.  The old alive-set scan survives
as the debug oracle behind ``check_invariants``.  See
``docs/architecture.md`` for the maintenance invariants.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable, Iterable, Iterator
from heapq import heappop as _heappop, heappush as _heappush
from time import perf_counter
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> analysis)
    from repro.obs.trace import TraceRecorder

from repro.exceptions import (
    AssignmentError,
    InvariantViolation,
    SimulationError,
    TopologyError,
)
from repro.sim.counters import EngineCounters, global_counters
from repro.sim.result import JobRecord, ScheduleSegment, SimulationResult
from repro.sim.tolerances import (
    CLOCK_EPS,
    DRIFT_RTOL,
    REL_EPS,
    ULP,
    finished_tol,
)
from repro.sim.speed import SpeedProfile
from repro.workload.events import Cancel, DynEvent, EventSchedule, NodeDown
from repro.workload.instance import Instance
from repro.workload.job import Job

__all__ = [
    "PriorityFn",
    "sjf_priority",
    "fifo_priority",
    "AssignmentPolicy",
    "SchedulerView",
    "Engine",
    "simulate",
]

#: A per-node ordering: maps (instance, job, node) to a sortable key;
#: smaller keys run first.
PriorityFn = Callable[[Instance, Job, int], tuple]


def sjf_priority(instance: Instance, job: Job, node: int) -> tuple:
    """Shortest-Job-First by original processing time on the node.

    Ties break by release time ("the oldest job in the class") and then
    by id for full determinism.
    """
    return (instance.processing_time(job, node), job.release, job.id)


def fifo_priority(instance: Instance, job: Job, node: int) -> tuple:
    """First-in-first-out by release time — the ablation node policy."""
    return (job.release, job.id)


class AssignmentPolicy(Protocol):
    """Chooses the leaf for each arriving job (immediate dispatch)."""

    def assign(self, view: "SchedulerView", job: Job, now: float) -> int:
        """Return the leaf id ``job`` is dispatched to at time ``now``."""
        ...  # pragma: no cover


class _JobState:
    """Mutable runtime state of one released job."""

    __slots__ = (
        "job",
        "record",
        "idx",
        "remaining",
        "path",
        "pos_of",
        "leaf_time",
        "node_key",
        "leaf_key",
    )

    def __init__(
        self, job: Job, record: JobRecord, pos_of: dict[int, int] | None = None
    ) -> None:
        self.job = job
        self.record = record
        self.path = record.path
        # Shared per-leaf position maps are precomputed by the engine;
        # direct construction (tests) falls back to building one here.
        self.pos_of = (
            pos_of
            if pos_of is not None
            else {v: i for i, v in enumerate(record.path)}
        )
        self.idx = 0
        self.remaining = 0.0
        self.leaf_time = job.size
        # Precomputed heap keys for the engine's priority fast path
        # (``None`` means "call the priority function").
        self.node_key: tuple | None = None
        self.leaf_key: tuple | None = None

    @property
    def current_node(self) -> int | None:
        return self.path[self.idx] if self.idx < len(self.path) else None

    @property
    def done(self) -> bool:
        return self.idx >= len(self.path)


class _NodeState:
    """Mutable runtime state of one processing node."""

    __slots__ = (
        "node_id",
        "speed",
        "is_leaf",
        "heap",
        "version",
        "active_id",
        "active_started",
        "active_rem_start",
        "down",
    )

    def __init__(self, node_id: int, speed: float, is_leaf: bool) -> None:
        self.node_id = node_id
        self.speed = speed
        self.is_leaf = is_leaf
        self.heap: list[tuple[tuple, int]] = []
        self.version = 0
        self.active_id: int | None = None
        self.active_started = 0.0
        self.active_rem_start = 0.0
        self.down = False


#: Shared empty result for :meth:`SchedulerView.downed_nodes` — the
#: overwhelmingly common (event-free) case allocates nothing.
_NO_NODES: frozenset[int] = frozenset()


class SchedulerView:
    """Read-only window onto live engine state for assignment policies.

    The queries mirror the paper's notation at the current simulation
    time ``t``:

    * :meth:`queue_at` — the jobs *available to schedule* on a node
      (the jobs physically at the node);
    * :meth:`jobs_through` — ``Q_v(t)``: released jobs with ``v`` on
      their path not yet completed on ``v``;
    * :meth:`remaining_on` — ``p^A_{i,v}(t)``: the remaining processing
      of job ``i`` on node ``v`` (full if the job has not reached ``v``,
      zero once past it).

    The aggregate reads — :meth:`jobs_through_count`,
    :meth:`volume_through`, :meth:`queue_volume_at` — answer the same
    congestion questions in O(1) from the engine's incrementally
    maintained per-node counters.
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine

    # -- static context -------------------------------------------------
    @property
    def instance(self) -> Instance:
        return self._engine.instance

    @property
    def tree(self):
        return self._engine.instance.tree

    @property
    def speeds(self) -> SpeedProfile:
        return self._engine.speeds

    @property
    def now(self) -> float:
        return self._engine.now

    def speed_of(self, node: int) -> float:
        return self._engine._nodes[node].speed

    # -- dynamic state ---------------------------------------------------
    def queue_at(self, node: int) -> tuple[int, ...]:
        """Ids of jobs currently available to schedule on ``node``,
        sorted by the node's priority key (highest priority first).

        The sort makes the order a documented contract: policies that
        iterate queues see the actual dispatch order rather than the
        internal heap-array layout, which is not a priority order and
        depends on the history of pushes and pops.
        """
        return tuple(jid for _, jid in sorted(self._engine._nodes[node].heap))

    def active_at(self, node: int) -> int | None:
        """Id of the job being processed on ``node``, if any."""
        return self._engine._nodes[node].active_id

    def jobs_through(self, node: int) -> tuple[int, ...]:
        """``Q_v(t)``: alive jobs routed through ``node`` and not yet
        completed on it.

        For a root-adjacent node this equals :meth:`queue_at` (nothing is
        upstream of the first hop); for a leaf it is the alive jobs
        assigned to that leaf; in general it is computed by scanning the
        alive set.  For the cardinality or total volume alone, prefer the
        O(1) :meth:`jobs_through_count` / :meth:`volume_through`.
        """
        eng = self._engine
        if node in eng._root_adjacent:
            return self.queue_at(node)
        if node in eng._alive_at_leaf:
            return tuple(sorted(eng._alive_at_leaf[node]))
        out = []
        for jid in eng._alive:
            st = eng._states[jid]
            pos = st.pos_of.get(node)
            if pos is not None and st.idx <= pos:
                out.append(jid)
        return tuple(out)

    # -- O(1) aggregate reads -------------------------------------------
    def jobs_through_count(self, node: int) -> int:
        """``|Q_v(t)|`` — the size of :meth:`jobs_through`, in O(1)."""
        eng = self._engine
        if eng._counters is not None:
            eng._counters.aggregate_reads += 1
        try:
            return eng._through_count[node]
        except KeyError:
            raise TopologyError(f"unknown non-root node id {node}") from None

    def volume_through(self, node: int) -> float:
        """Total remaining volume of ``Q_v(t)`` on ``node``, in O(1).

        Equals ``sum(remaining_on(j, node) for j in jobs_through(node))``:
        full processing time for jobs still upstream, live remaining for
        the job currently at ``node``.  Exactly ``0.0`` when ``Q_v(t)``
        is empty.
        """
        eng = self._engine
        if eng._counters is not None:
            eng._counters.aggregate_reads += 1
        try:
            if eng._through_count[node] == 0:
                return 0.0
        except KeyError:
            raise TopologyError(f"unknown non-root node id {node}") from None
        vol = eng._through_volume[node] - eng._live_processed(eng._nodes[node])
        return vol if vol > 0.0 else 0.0

    def queue_volume_at(self, node: int) -> float:
        """Total remaining volume physically queued at ``node``, in O(1).

        Equals ``sum(remaining_on(j, node) for j in queue_at(node))``.
        Exactly ``0.0`` when the queue is empty.
        """
        eng = self._engine
        if eng._counters is not None:
            eng._counters.aggregate_reads += 1
        try:
            ns = eng._nodes[node]
        except KeyError:
            raise TopologyError(f"unknown non-root node id {node}") from None
        if not ns.heap:
            return 0.0
        vol = eng._queue_volume[node] - eng._live_processed(ns)
        return vol if vol > 0.0 else 0.0

    def alive_jobs(self) -> tuple[int, ...]:
        """Ids of all released, uncompleted jobs."""
        return tuple(sorted(self._engine._alive))

    def job(self, job_id: int) -> Job:
        return self._engine._states[job_id].job

    def assigned_leaf(self, job_id: int) -> int:
        return self._engine._states[job_id].record.leaf

    def current_node_of(self, job_id: int) -> int | None:
        """The node job ``job_id`` is currently available on (``None``
        once completed)."""
        return self._engine._states[job_id].current_node

    def remaining_on(self, job_id: int, node: int) -> float:
        """``p^A_{i,v}(t)`` — remaining processing of the job on ``node``.

        Zero for nodes already passed (or off-path), live remaining for
        the current node, full requirement for nodes not yet reached.
        """
        eng = self._engine
        st = eng._states[job_id]
        pos = st.pos_of.get(node)
        if pos is None or st.idx > pos or st.done:
            return 0.0
        if st.idx < pos:
            return eng.instance.processing_time(st.job, node)
        return eng._live_remaining(st)

    def live_remaining(self, job_id: int) -> float:
        """Remaining processing of the job on its *current* node."""
        return self._engine._live_remaining(self._engine._states[job_id])

    # -- dynamic events --------------------------------------------------
    def downed_nodes(self) -> frozenset[int]:
        """Ids of nodes currently down (empty on event-free runs).

        Down-aware policies exclude leaves whose processing path crosses
        a downed node; every other query keeps reporting the stalled
        queues truthfully (jobs neither advance nor migrate while their
        node is down).
        """
        down = self._engine._down
        return frozenset(down) if down else _NO_NODES

    def is_down(self, node: int) -> bool:
        """Whether ``node`` is currently down."""
        return node in self._engine._down


class Engine:
    """One simulation run over an :class:`~repro.workload.instance.Instance`.

    Parameters
    ----------
    instance:
        The instance to simulate.
    policy:
        The leaf :class:`AssignmentPolicy` (immediate dispatch).
    speeds:
        Per-node speeds; defaults to unit speed everywhere.
    priority:
        The per-node ordering; defaults to :func:`sjf_priority`.
    record_segments:
        When true, every maximal (node, job) processing interval is
        recorded — required by the dual-fitting and LP audits.
    check_invariants:
        When true, model invariants are asserted after every event
        (simulation slows down by a small constant factor).
    observer:
        Optional callback invoked after every processed event as
        ``observer(view, kind, subject)`` where ``kind`` is ``"arrival"``
        (``subject`` is the job id) or ``"completion"`` (``subject`` is
        the node id).  Used by the potential-function and dual-fitting
        experiments to snapshot live state; must not mutate anything.
    collect_counters:
        When true, tally :class:`~repro.sim.counters.EngineCounters`
        for this run (surfaced on ``SimulationResult.counters``).  When
        ``None`` (the default), collection follows the process-wide
        switch (:func:`~repro.sim.counters.enable_global_counters`);
        disabled collection costs nothing in the hot path.
    events:
        Optional :class:`~repro.workload.events.EventSchedule` of
        dynamic mid-run events — node breakdowns/repairs and job
        cancellations (see ``docs/dynamic-events.md``).  ``None`` (the
        default) is bit-identical to an empty schedule.  At equal times
        the engine processes completions first, then dynamic events,
        then arrivals.
    on_admit / on_finish / on_cancel:
        Optional open-system hooks.  ``on_admit(job)`` fires after each
        job is admitted (released and dispatched); ``on_finish(record)``
        fires when a job completes on its leaf, with the finished
        :class:`~repro.sim.result.JobRecord`; ``on_cancel(record)``
        fires when an alive job is withdrawn by a
        :class:`~repro.workload.events.Cancel` event, with the record's
        ``cancelled_at`` already stamped.  Like the tracer these are
        purely observational and cost one ``is None`` test when unset.
    evict_finished:
        When true, a job's runtime state (and its record) is dropped
        from the engine the moment it finishes — ``on_finish`` is the
        only place the record is still reachable.  This is what bounds
        memory in the open-system streaming mode
        (:mod:`repro.service`); the final
        :class:`~repro.sim.result.SimulationResult` then carries only
        the jobs still in flight.
    max_events:
        Safety bound on processed events; exceeding it raises
        :class:`~repro.exceptions.SimulationError`.  ``None`` disables
        the bound — required for unbounded streaming runs.
    tracer:
        Optional :class:`~repro.obs.trace.TraceRecorder` collecting the
        structured simulation trace (job-lifecycle spans and sampled
        per-node gauges; see :mod:`repro.obs`).  Purely observational —
        schedules and results are bit-identical with tracing on or off —
        and, like counters, the disabled path costs one ``is None`` test
        per hook site.  The assembled trace is surfaced on
        ``SimulationResult.trace``.
    """

    def __init__(
        self,
        instance: Instance,
        policy: AssignmentPolicy,
        speeds: SpeedProfile | None = None,
        *,
        priority: PriorityFn = sjf_priority,
        record_segments: bool = False,
        check_invariants: bool = False,
        max_events: int | None = 10_000_000,
        observer: Callable[["SchedulerView", str, int], None] | None = None,
        collect_counters: bool | None = None,
        tracer: "TraceRecorder | None" = None,
        on_admit: Callable[[Job], None] | None = None,
        on_finish: Callable[[JobRecord], None] | None = None,
        on_cancel: Callable[[JobRecord], None] | None = None,
        evict_finished: bool = False,
        events: EventSchedule | None = None,
    ) -> None:
        self.instance = instance
        self.policy = policy
        self.speeds = speeds or SpeedProfile.uniform(1.0)
        self.priority = priority
        self.record_segments = record_segments
        self.check_invariants = check_invariants
        self.max_events = max_events

        tree = instance.tree
        self._nodes: dict[int, _NodeState] = {}
        for node in tree:
            if node.is_root:
                continue
            self._nodes[node.id] = _NodeState(
                node.id, self.speeds.speed_of(tree, node.id), node.is_leaf
            )
        self._states: dict[int, _JobState] = {}
        self._alive: set[int] = set()
        self._alive_at_leaf: dict[int, set[int]] = {v: set() for v in tree.leaves}

        # Static per-leaf layout, computed once so arrivals cost O(path)
        # with no tree walks: processing paths, position maps (shared by
        # every job assigned to the leaf) and path depths (``d_v``).
        self._root_adjacent = frozenset(tree.root_children)
        self._leaf_paths: dict[int, tuple[int, ...]] = {
            leaf: tree.processing_path(leaf) for leaf in tree.leaves
        }
        self._leaf_pos: dict[int, dict[int, int]] = {
            leaf: {v: i for i, v in enumerate(path)}
            for leaf, path in self._leaf_paths.items()
        }
        self._leaf_depth: dict[int, int] = {
            leaf: len(path) for leaf, path in self._leaf_paths.items()
        }
        # (origin, leaf) -> (path, pos_of) for the arbitrary-origin
        # extension; populated lazily (most workloads are root-origin).
        self._origin_layouts: dict[tuple[int, int], tuple[tuple[int, ...], dict[int, int]]] = {}

        # Incremental congestion aggregates (see module docstring).
        self._through_count: dict[int, int] = {v: 0 for v in self._nodes}
        self._through_volume: dict[int, float] = {v: 0.0 for v in self._nodes}
        self._queue_volume: dict[int, float] = {v: 0.0 for v in self._nodes}

        # Priority fast path: for the two built-in orderings the heap key
        # is a pure function of (job, node kind), so it is computed once
        # per arrival instead of once per push.
        if priority is sjf_priority:
            self._prio_kind = 1
        elif priority is fifo_priority:
            self._prio_kind = 2
        else:
            self._prio_kind = 0

        self.now = 0.0
        self._events: list[tuple[float, int, int, int]] = []  # (t, version, seq, node)
        self._seq = 0
        self._num_events = 0

        # fractional-flow accounting
        self._frac_integral = 0.0
        self._alive_fraction = 0.0  # Σ_alive remaining_leaf/p_leaf at self.now
        self._drain = 0.0  # d/dt of the above (≥ 0): Σ over draining leaves
        self._leaf_drain: dict[int, float] = {v: 0.0 for v in tree.leaves}
        self._alive_integral = 0.0

        self._segments: list[ScheduleSegment] | None = (
            [] if record_segments else None
        )
        # Dynamic-event state: the canonical (time, kind, id)-ordered
        # event tuple, a cursor into it, and the set of down node ids.
        if events is not None and events:
            events.validate_for(instance)
            self._dyn: tuple[DynEvent, ...] = events.events
        else:
            self._dyn = ()
        self._dyn_i = 0
        self._down: set[int] = set()

        self._view = SchedulerView(self)
        self._observer = observer
        self._on_admit = on_admit
        self._on_finish = on_finish
        self._on_cancel = on_cancel
        self._evict_finished = evict_finished
        self._finished = False
        # Open-system streaming state (see stream_start / _stream_loop):
        # the lazy arrival source and its one-job lookahead.
        self._arrivals_iter: Iterator[Job] | None = None
        self._pending_job: Job | None = None
        self._result: SimulationResult | None = None
        self._run_seconds = 0.0
        if collect_counters is None:
            collect_counters = global_counters() is not None
        self._counters: EngineCounters | None = (
            EngineCounters(runs=1) if collect_counters else None
        )
        self._tracer = tracer
        if tracer is not None:
            tracer.attach(self)

    @property
    def alive_count(self) -> int:
        """Number of released, uncompleted jobs — O(1)."""
        return len(self._alive)

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _live_remaining(self, st: _JobState) -> float:
        """Remaining processing of ``st`` on its current node, *now*."""
        if st.done:
            return 0.0
        node = self._nodes[st.path[st.idx]]
        if node.active_id == st.job.id:
            rem = node.active_rem_start - node.speed * (self.now - node.active_started)
            return max(rem, 0.0)
        return st.remaining

    def _live_processed(self, ns: _NodeState) -> float:
        """Work done by ``ns``'s active job since arming, not yet settled
        into the static aggregates (0 when idle)."""
        if ns.active_id is None:
            return 0.0
        elapsed = self.now - ns.active_started
        if elapsed <= 0.0:
            return 0.0
        done = ns.speed * elapsed
        return done if done < ns.active_rem_start else ns.active_rem_start

    def _processing_on(self, ns: _NodeState, st: _JobState) -> float:
        """``p_{j,v}`` for a node on the job's path, without tree walks."""
        return st.leaf_time if ns.is_leaf else st.job.size

    def _settle(self, ns: _NodeState) -> None:
        """Fold elapsed processing into the active job's remaining and
        close its schedule segment.  Leaves the node with no active job;
        callers must follow with :meth:`_rearm`.

        This is the aggregate mutation point for *processing*: the work
        done since arming leaves the node's through/queued volumes here.
        """
        if self._counters is not None:
            self._counters.settle_calls += 1
        if ns.active_id is None:
            return
        st = self._states[ns.active_id]
        elapsed = self.now - ns.active_started
        if elapsed > 0.0:
            new_rem = ns.active_rem_start - ns.speed * elapsed
            if new_rem < 0.0:
                new_rem = 0.0
            delta = st.remaining - new_rem  # st.remaining == active_rem_start
            if delta != 0.0:
                node_id = ns.node_id
                self._through_volume[node_id] -= delta
                self._queue_volume[node_id] -= delta
                if self._counters is not None:
                    self._counters.aggregate_updates += 2
            st.remaining = new_rem
            if self._segments is not None:
                self._segments.append(
                    ScheduleSegment(ns.node_id, ns.active_id, ns.active_started, self.now)
                )
            if self._tracer is not None:
                self._tracer.on_service(
                    ns.node_id, ns.active_id, ns.active_started, self.now
                )
        else:
            st.remaining = ns.active_rem_start
        if ns.is_leaf:
            self._set_leaf_drain(ns.node_id, 0.0)
        ns.active_id = None

    def _rearm(self, ns: _NodeState) -> None:
        """Start the highest-priority available job (if any) and schedule
        its completion event."""
        ns.version += 1
        if self._counters is not None:
            self._counters.rearm_calls += 1
        if not ns.heap:
            return
        _, jid = ns.heap[0]
        st = self._states[jid]
        ns.active_id = jid
        ns.active_started = self.now
        ns.active_rem_start = st.remaining
        finish = self.now + st.remaining / ns.speed
        self._seq += 1
        _heappush(self._events, (finish, ns.version, self._seq, ns.node_id))
        if self._counters is not None:
            self._counters.heap_pushes += 1
        if ns.is_leaf:
            self._set_leaf_drain(ns.node_id, ns.speed / st.leaf_time)

    def _set_leaf_drain(self, leaf: int, value: float) -> None:
        old = self._leaf_drain[leaf]
        if old != value:
            self._drain += value - old
            self._leaf_drain[leaf] = value

    def _advance(self, t: float) -> None:
        """Move simulated time to ``t``, accumulating exact integrals."""
        dt = t - self.now
        if dt < 0:
            if dt < -CLOCK_EPS:
                raise SimulationError(f"time went backwards: {self.now} -> {t}")
            dt = 0.0
        if dt > 0.0:
            self._frac_integral += self._alive_fraction * dt - 0.5 * self._drain * dt * dt
            self._alive_fraction = max(self._alive_fraction - self._drain * dt, 0.0)
            self._alive_integral += len(self._alive) * dt
            self.now = t

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _enqueue(self, ns: _NodeState, st: _JobState) -> None:
        """Make ``st`` (just made available) queue on ``ns``, restarting
        the node only when the newcomer outranks the active job.

        When it does not outrank, the node's schedule is untouched: there
        is nothing to settle, the pending completion event stays valid
        (no version bump, so no stale event), and the active job's
        schedule segment is not split.  This keeps event-heap traffic
        proportional to actual preemptions instead of all pushes.
        """
        key = st.leaf_key if ns.is_leaf else st.node_key
        if key is None:
            key = self.priority(self.instance, st.job, ns.node_id)
        if ns.down:
            # A down node accepts queued work but never settles, drains
            # or rearms — the job stalls until the matching NodeUp.
            _heappush(ns.heap, (key, st.job.id))
            self._queue_volume[ns.node_id] += st.remaining
            if self._counters is not None:
                self._counters.heap_pushes += 1
                self._counters.aggregate_updates += 1
            return
        if ns.active_id is not None:
            if ns.heap[0][0] < key:
                _heappush(ns.heap, (key, st.job.id))
                self._queue_volume[ns.node_id] += st.remaining
                if self._counters is not None:
                    self._counters.heap_pushes += 1
                    self._counters.aggregate_updates += 1
                return
            self._settle(ns)
        self._drain_finished_top(ns)
        _heappush(ns.heap, (key, st.job.id))
        self._queue_volume[ns.node_id] += st.remaining
        if self._counters is not None:
            self._counters.heap_pushes += 1
            self._counters.aggregate_updates += 1
        self._rearm(ns)

    def _advance_job(self, ns: _NodeState, jid: int) -> None:
        """Pop ``jid`` (the fully-processed heap top of ``ns``) and move it
        to the next node of its path (or finish it).

        This is the *hop advance* aggregate mutation point: the job's
        residual leaves the node's count/volumes, and its full next-hop
        requirement enters the next node's queued volume.
        """
        _heappop(ns.heap)
        st = self._states[jid]
        node_id = ns.node_id
        residual = st.remaining
        self._through_count[node_id] -= 1
        self._through_volume[node_id] -= residual
        self._queue_volume[node_id] -= residual
        if self._counters is not None:
            self._counters.aggregate_updates += 3
        st.remaining = 0.0
        st.record.completed_at.append(self.now)
        st.idx += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.on_hop_complete(self.now, jid, node_id)
        if st.done:
            self._alive.discard(jid)
            self._alive_at_leaf[st.record.leaf].discard(jid)
            if tracer is not None:
                tracer.on_finish(self.now, jid, st.record.leaf)
                if st.job.size_estimate is not None:
                    tracer.on_reveal(self.now, jid, st.job.size)
            if self._on_finish is not None:
                self._on_finish(st.record)
            if self._evict_finished:
                del self._states[jid]
            return
        nxt = self._nodes[st.path[st.idx]]
        st.remaining = self._processing_on(nxt, st)
        st.record.available_at.append(self.now)
        if tracer is not None:
            tracer.on_available(self.now, jid, nxt.node_id)
        self._enqueue(nxt, st)

    def _drain_finished_top(self, ns: _NodeState) -> None:
        """Complete every fully-processed job stranded at the heap top.

        A job whose remaining work reached zero is *done* on this node;
        it must advance before a simultaneous push can outrank it (ties
        at identical priority would otherwise re-queue finished work
        behind a full-size job).  More than one finished job can be
        queued at once — e.g. two jobs preempted at the brink of
        completion, released when a simultaneous completion settles the
        node — so the drain loops until the top has work left; the
        recursive advance settles downstream nodes the same way.
        """
        if ns.active_id is not None:
            return
        while ns.heap:
            _, jid = ns.heap[0]
            st = self._states[jid]
            p = self._processing_on(ns, st)
            if st.remaining > finished_tol(p):
                return
            if self._counters is not None:
                self._counters.drained_finished += 1
            self._advance_job(ns, jid)

    def _layout_for(
        self, job: Job, leaf: int
    ) -> tuple[tuple[int, ...], dict[int, int]]:
        """The (path, position-map) pair for ``job`` assigned to ``leaf``,
        validating the assignment exactly as the policy contract demands."""
        origin = job.origin
        tree = self.instance.tree
        if origin is None or origin == tree.root:
            layout = self._leaf_paths.get(leaf)
            if layout is None:
                raise AssignmentError(
                    f"policy assigned job {job.id} to non-leaf node {leaf!r}"
                )
            return layout, self._leaf_pos[leaf]
        if leaf not in self._leaf_paths:
            raise AssignmentError(
                f"policy assigned job {job.id} to non-leaf node {leaf!r}"
            )
        key = (origin, leaf)
        cached = self._origin_layouts.get(key)
        if cached is None:
            try:
                path = self.instance.processing_path_for(job, leaf)
            except TopologyError as exc:
                raise AssignmentError(
                    f"policy assigned job {job.id} to leaf {leaf} outside its "
                    f"origin's subtree: {exc}"
                ) from exc
            if not path:
                raise AssignmentError(
                    f"job {job.id}: empty processing path to leaf {leaf}"
                )
            cached = (path, {v: i for i, v in enumerate(path)})
            self._origin_layouts[key] = cached
        return cached

    def _handle_arrival(self, job: Job) -> None:
        # Partial information: the policy scores the arriving job by its
        # declared estimate (``masked()`` is identity when none is set);
        # engine-side priorities, aggregates and processing use the true
        # size, which is revealed at completion.
        leaf = self.policy.assign(self._view, job.masked(), self.now)
        path, pos_of = self._layout_for(job, leaf)
        p_leaf = job.processing_on_leaf(leaf)
        if not math.isfinite(p_leaf):
            raise AssignmentError(
                f"policy assigned job {job.id} to forbidden leaf {leaf} (p=inf)"
            )
        record = JobRecord(
            job_id=job.id,
            release=job.release,
            leaf=leaf,
            path=path,
            size_estimate=job.size_estimate,
        )
        st = _JobState(job, record, pos_of)
        st.leaf_time = p_leaf
        if self._prio_kind == 1:
            st.node_key = (job.size, job.release, job.id)
            st.leaf_key = (p_leaf, job.release, job.id)
        elif self._prio_kind == 2:
            st.node_key = st.leaf_key = (job.release, job.id)
        self._states[job.id] = st
        self._alive.add(job.id)
        self._alive_at_leaf[leaf].add(job.id)
        self._alive_fraction += 1.0

        # Release mutation point: the whole path gains one routed job and
        # its full per-node requirement.
        size = job.size
        tc = self._through_count
        tv = self._through_volume
        for v in path:
            tc[v] += 1
            tv[v] += size
        if p_leaf != size:
            tv[leaf] += p_leaf - size
        if self._counters is not None:
            self._counters.aggregate_updates += len(path)

        first = self._nodes[path[0]]
        st.remaining = self._processing_on(first, st)
        record.available_at.append(self.now)
        if self._tracer is not None:
            self._tracer.on_arrival(self.now, job.id, leaf)
            self._tracer.on_available(self.now, job.id, path[0])
        self._enqueue(first, st)
        if self._on_admit is not None:
            self._on_admit(job)

    def _handle_completion(self, ns: _NodeState) -> None:
        jid = ns.active_id
        if jid is None:
            # The active job was drained by a simultaneous event on
            # another node before this (now stale-by-settlement, but
            # version-valid) completion fired; nothing left to do except
            # restart whatever is queued.
            self._drain_finished_top(ns)
            self._rearm(ns)
            return
        # Specialised settle + hop advance for the hottest event path:
        # a valid completion leaves (numerically) zero work behind, so
        # the job departs this node in one step and its full pre-settle
        # remaining (== active_rem_start) exits the node's aggregates —
        # one fused update instead of settle-delta plus residual.
        counters = self._counters
        now = self.now
        st = self._states[jid]
        elapsed = now - ns.active_started
        new_rem = ns.active_rem_start - ns.speed * elapsed
        if new_rem > 0.0:  # pragma: no cover - numerical guard
            # completion_guard_tol(active_rem_start, speed, now), inlined —
            # keep in sync with repro.sim.tolerances.
            rs = ns.active_rem_start
            tol = 1e-7 * rs if rs > 1.0 else 1e-7
            t_scale = now if now >= 0.0 else -now
            clock = 256.0 * ULP * ns.speed * (t_scale if t_scale > 1.0 else 1.0)
            if tol < clock:
                tol = clock
            if new_rem > tol:
                raise SimulationError(
                    f"completion event fired with {new_rem} work left "
                    f"(job {jid} on node {ns.node_id})"
                )
        if counters is not None:
            counters.settle_calls += 1
            counters.aggregate_updates += 3
        if elapsed > 0.0 and self._segments is not None:
            self._segments.append(
                ScheduleSegment(ns.node_id, jid, ns.active_started, now)
            )
        tracer = self._tracer
        if tracer is not None and elapsed > 0.0:
            tracer.on_service(ns.node_id, jid, ns.active_started, now)
        node_id = ns.node_id
        if ns.is_leaf:
            old = self._leaf_drain[node_id]
            if old != 0.0:
                self._drain -= old
                self._leaf_drain[node_id] = 0.0
        ns.active_id = None
        residual = st.remaining  # == active_rem_start: frozen while active
        self._through_count[node_id] -= 1
        self._through_volume[node_id] -= residual
        self._queue_volume[node_id] -= residual
        _heappop(ns.heap)
        st.remaining = 0.0
        st.record.completed_at.append(now)
        st.idx += 1
        if tracer is not None:
            tracer.on_hop_complete(now, jid, node_id)
        if st.idx >= len(st.path):
            self._alive.discard(jid)
            self._alive_at_leaf[st.record.leaf].discard(jid)
            if tracer is not None:
                tracer.on_finish(now, jid, st.record.leaf)
                if st.job.size_estimate is not None:
                    tracer.on_reveal(now, jid, st.job.size)
            if self._on_finish is not None:
                self._on_finish(st.record)
            if self._evict_finished:
                del self._states[jid]
        else:
            nxt = self._nodes[st.path[st.idx]]
            st.remaining = st.leaf_time if nxt.is_leaf else st.job.size
            st.record.available_at.append(now)
            if tracer is not None:
                tracer.on_available(now, jid, nxt.node_id)
            self._enqueue(nxt, st)
        # Inlined _rearm(ns): restart the (possibly new) heap top.
        ns.version += 1
        if counters is not None:
            counters.rearm_calls += 1
        heap = ns.heap
        if heap:
            nxt_jid = heap[0][1]
            nxt_st = self._states[nxt_jid]
            ns.active_id = nxt_jid
            ns.active_started = now
            rem = nxt_st.remaining
            ns.active_rem_start = rem
            self._seq += 1
            _heappush(
                self._events, (now + rem / ns.speed, ns.version, self._seq, node_id)
            )
            if counters is not None:
                counters.heap_pushes += 1
            if ns.is_leaf:
                self._set_leaf_drain(node_id, ns.speed / nxt_st.leaf_time)

    # ------------------------------------------------------------------
    # dynamic events (node breakdowns/repairs, cancellations)
    # ------------------------------------------------------------------
    def _handle_dyn(self, ev: DynEvent) -> None:
        """Apply one dynamic event at ``self.now == ev.time``."""
        if type(ev) is Cancel:
            self._handle_cancel(ev.job_id)
        elif type(ev) is NodeDown:
            self._handle_node_down(ev.node)
        else:
            self._handle_node_up(ev.node)

    def _handle_node_down(self, node: int) -> None:
        """Node ``node`` stops serving: settle the active run, complete
        any zero-remaining heap tops *at the down instant* (a job whose
        work hit exactly zero has finished — the completions-first tie
        rule, which the exact-replay oracle shares), invalidate the
        pending completion prediction, and mark the node down."""
        ns = self._nodes[node]
        self._settle(ns)
        self._drain_finished_top(ns)
        # _settle does not bump the version (its callers normally rearm,
        # which does).  A down node must not rearm, so bump here or the
        # stale completion event would restart the node mid-outage.
        ns.version += 1
        ns.down = True
        self._down.add(node)
        if self._tracer is not None:
            self._tracer.on_node_down(self.now, node)

    def _handle_node_up(self, node: int) -> None:
        """Node ``node`` resumes serving: drain (arrivals while down
        carry full work, so this is a guard, not a work source) and
        restart the highest-priority stalled job."""
        ns = self._nodes[node]
        ns.down = False
        self._down.discard(node)
        self._drain_finished_top(ns)
        self._rearm(ns)
        if self._tracer is not None:
            self._tracer.on_node_up(self.now, node)

    def _handle_cancel(self, job_id: int) -> None:
        """Withdraw ``job_id`` if it is alive; otherwise a defined no-op
        (unknown id, not yet released, or already finished)."""
        st = self._states.get(job_id)
        if st is None or st.done:
            return
        cur = st.path[st.idx]
        ns = self._nodes[cur]
        if ns.active_id == job_id:
            # In service: settle folds the elapsed work (closing the
            # schedule segment), then the job — still the heap top —
            # is popped and the node restarted on the next job.
            self._settle(ns)
            _heappop(ns.heap)
            self._drain_finished_top(ns)
            self._rearm(ns)
        else:
            # Queued (possibly on a down node): remove its heap entry.
            # Removing a non-minimum entry keeps heap[0] — and with it
            # the active job's pending completion event — valid, so the
            # version is deliberately NOT bumped.
            heap = ns.heap
            for pos, (_, jid) in enumerate(heap):
                if jid == job_id:
                    heap[pos] = heap[-1]
                    heap.pop()
                    heapq.heapify(heap)
                    break

        # Aggregate mutation point: the cancelled job's residual leaves
        # its current node's volumes and its future requirements leave
        # every remaining node of its path.
        rem = st.remaining
        self._queue_volume[cur] -= rem
        tc = self._through_count
        tv = self._through_volume
        path = st.path
        for pos in range(st.idx, len(path)):
            v = path[pos]
            tc[v] -= 1
            tv[v] -= rem if pos == st.idx else self._processing_on(
                self._nodes[v], st
            )
        if self._counters is not None:
            self._counters.aggregate_updates += len(path) - st.idx + 1

        # Fractional-flow accounting: the job's alive fraction vanishes.
        leaf = st.record.leaf
        lpos = st.pos_of[leaf]
        if st.idx < lpos:
            af = self._alive_fraction - 1.0
        else:
            af = self._alive_fraction - rem / st.leaf_time
        self._alive_fraction = af if af > 0.0 else 0.0

        self._alive.discard(job_id)
        self._alive_at_leaf[leaf].discard(job_id)
        st.idx = len(path)
        st.remaining = 0.0
        st.record.cancelled_at = self.now
        if self._tracer is not None:
            self._tracer.on_cancel(self.now, job_id, cur)
        if self._on_cancel is not None:
            self._on_cancel(st.record)
        if self._evict_finished:
            del self._states[job_id]

    # ------------------------------------------------------------------
    # main loop (open-system core; batch run() is the closed special case)
    # ------------------------------------------------------------------
    def stream_start(self, arrivals: Iterable[Job]) -> None:
        """Attach the lazy arrival source and claim the engine for a run.

        ``arrivals`` may be any iterable of release-ordered
        :class:`~repro.workload.job.Job` — a list, a ``JobSet``, or an
        *infinite generator* (see :mod:`repro.workload.arrivals`).  Jobs
        are pulled one at a time with a single-job lookahead, so an
        unbounded stream never materialises.  Out-of-order releases
        surface as the engine's usual "time went backwards"
        :class:`~repro.exceptions.SimulationError`.
        """
        if self._finished:
            raise SimulationError("an Engine instance can only run once")
        self._finished = True
        self._arrivals_iter = iter(arrivals)
        self._pending_job = next(self._arrivals_iter, None)

    def _stream_loop(self, until: float | None) -> None:
        """Process events (admissions and completions) in time order.

        Returns when the next event lies past ``until`` — after advancing
        time exactly to ``until`` so the integrals cover the full window
        — or, with ``until=None``, when both the arrival source and the
        event heap are exhausted.  Re-enterable: per-call state is only
        the arrival lookahead, written back on every exit path.
        """
        counters = self._counters
        tracer = self._tracer
        run_started = perf_counter() if counters is not None else 0.0
        events = self._events
        nodes = self._nodes
        inf = math.inf
        max_events = self.max_events
        if max_events is None:
            max_events = inf
        it = self._arrivals_iter
        pending = self._pending_job
        dyn = self._dyn
        dyn_i = self._dyn_i
        n_dyn = len(dyn)

        try:
            while True:
                # Earliest valid completion event.
                while events:
                    t, version, _, node_id = events[0]
                    if nodes[node_id].version == version:
                        break
                    _heappop(events)
                    if counters is not None:
                        counters.stale_events_skipped += 1
                next_completion = events[0][0] if events else inf
                next_arrival = pending.release if pending is not None else inf
                next_dyn = dyn[dyn_i].time if dyn_i < n_dyn else inf
                if until is not None and (
                    min(next_completion, next_arrival, next_dyn) > until
                ):
                    self._advance(until)
                    break
                if (
                    next_completion is inf
                    and next_arrival is inf
                    and next_dyn is inf
                ):
                    break
                self._num_events += 1
                if self._num_events > max_events:
                    raise SimulationError(
                        f"exceeded max_events={self.max_events}; "
                        "likely a policy or engine bug"
                    )
                phase_started = perf_counter() if counters is not None else 0.0
                # Tie rule at equal instants: completions first, then
                # dynamic events, then arrivals.
                if next_completion <= next_arrival and next_completion <= next_dyn:
                    t, version, _, node_id = _heappop(events)
                    if tracer is not None:
                        tracer.before_advance(t)
                    # Inlined _advance(t): exact affine integral accumulation.
                    dt = t - self.now
                    if dt > 0.0:
                        drain = self._drain
                        af = self._alive_fraction
                        self._frac_integral += af * dt - 0.5 * drain * dt * dt
                        af -= drain * dt
                        self._alive_fraction = af if af > 0.0 else 0.0
                        self._alive_integral += len(self._alive) * dt
                        self.now = t
                    elif dt < -CLOCK_EPS:
                        raise SimulationError(
                            f"time went backwards: {self.now} -> {t}"
                        )
                    self._handle_completion(nodes[node_id])
                    if counters is not None:
                        counters.events_processed += 1
                        counters.completions += 1
                        counters.completion_seconds += perf_counter() - phase_started
                    if self._observer is not None:
                        self._observer(self._view, "completion", node_id)
                elif next_dyn <= next_arrival:
                    ev = dyn[dyn_i]
                    dyn_i += 1
                    if tracer is not None:
                        tracer.before_advance(next_dyn)
                    self._advance(next_dyn)
                    self._handle_dyn(ev)
                    if counters is not None:
                        counters.events_processed += 1
                        counters.dyn_events += 1
                    if self._observer is not None:
                        if type(ev) is Cancel:
                            self._observer(self._view, "cancel", ev.job_id)
                        elif type(ev) is NodeDown:
                            self._observer(self._view, "node_down", ev.node)
                        else:
                            self._observer(self._view, "node_up", ev.node)
                else:
                    if tracer is not None:
                        tracer.before_advance(next_arrival)
                    self._advance(next_arrival)
                    job = pending
                    self._handle_arrival(job)
                    pending = next(it, None)
                    if counters is not None:
                        counters.events_processed += 1
                        counters.arrivals += 1
                        counters.arrival_seconds += perf_counter() - phase_started
                    if self._observer is not None:
                        self._observer(self._view, "arrival", job.id)
                if self.check_invariants:
                    self._assert_invariants()
        finally:
            self._pending_job = pending
            self._dyn_i = dyn_i
            if counters is not None:
                self._run_seconds += perf_counter() - run_started

    def stream_step(self, *, until: float) -> float:
        """Advance the open system exactly to time ``until``.

        Processes every admission and completion at or before ``until``
        and moves the clock to ``until``.  Nodes are *not* settled —
        in-flight work keeps running across steps — so per-job results
        are bit-identical however the timeline is sliced into steps.
        Returns the new :attr:`now` (== ``until``).
        """
        if self._arrivals_iter is None:
            raise SimulationError("stream_step() before stream_start()")
        if self._result is not None:
            raise SimulationError("stream_step() after stream_result()")
        if until < self.now - CLOCK_EPS:
            raise SimulationError(
                f"stream_step until={until} is before now={self.now}"
            )
        self._stream_loop(until)
        return self.now

    def stream_idle(self) -> bool:
        """True when the stream can produce no further events: the
        arrival source is exhausted and no admitted job is alive (any
        events left on the heap are provably stale)."""
        return self._pending_job is None and not self._alive

    def stream_result(self, *, verify: bool = False) -> SimulationResult:
        """Close the stream and build the final result.

        Settles every node at the current time so recorded segments and
        trace spans cover exactly ``[0, now]``.  Idempotent — repeated
        calls return the same :class:`SimulationResult`.  With
        ``evict_finished=True`` the result carries only still-in-flight
        jobs; finished records were handed to ``on_finish``.
        """
        if self._arrivals_iter is None:
            raise SimulationError("stream_result() before stream_start()")
        if self._result is None:
            for ns in self._nodes.values():
                self._settle(ns)
        return self._build_result(verify=verify)

    def _build_result(self, *, verify: bool) -> SimulationResult:
        if self._result is not None:
            return self._result
        counters = self._counters
        tracer = self._tracer
        trace = None
        if tracer is not None:
            tracer.finalize(self.now)
            trace = tracer.build(self.now)
            if counters is not None:
                counters.trace_records += len(trace)
        if counters is not None:
            counters.run_seconds += self._run_seconds
            self._run_seconds = 0.0
            aggregate = global_counters()
            if aggregate is not None and aggregate is not counters:
                aggregate.merge(counters)
        result = SimulationResult(
            instance=self.instance,
            speeds=self.speeds,
            records={jid: st.record for jid, st in self._states.items()},
            fractional_flow=self._frac_integral,
            alive_integral=self._alive_integral,
            num_events=self._num_events,
            segments=self._segments,
            counters=counters,
            trace=trace,
        )
        if verify:
            result.verify_complete()
        self._result = result
        return result

    def run(self, *, until: float | None = None) -> SimulationResult:
        """Simulate until every released job completes.

        The batch entry point: streams the instance's (finite) job set
        through the open-system core in one uninterrupted step.

        Parameters
        ----------
        until:
            Optional time horizon.  When set, the run stops at the first
            event past ``until`` (time is advanced exactly to ``until``
            so the integrals cover ``[0, until]``); jobs still in flight
            stay unfinished in the result (``records`` with partial
            completion lists — use
            :meth:`~repro.sim.result.SimulationResult.completed_records`).
            Jobs released after ``until`` are not admitted.
        """
        self.stream_start(self.instance.jobs)
        if until is not None and until < 0:
            raise SimulationError(f"until must be >= 0, got {until}")
        self._stream_loop(until)
        if until is not None:
            # Close open schedule segments at the horizon so recorded
            # segments cover exactly [0, until].
            for ns in self._nodes.values():
                self._settle(ns)
        return self._build_result(verify=until is None)

    # ------------------------------------------------------------------
    # invariants (enabled via check_invariants=True)
    # ------------------------------------------------------------------
    def _assert_invariants(self) -> None:
        tree = self.instance.tree
        seen: dict[int, int] = {}
        for ns in self._nodes.values():
            # Each queued job must actually be at this node.
            for _, jid in ns.heap:
                st = self._states[jid]
                if st.done or st.path[st.idx] != ns.node_id:
                    raise InvariantViolation(
                        f"job {jid} queued on node {ns.node_id} but is at "
                        f"{'done' if st.done else st.path[st.idx]}"
                    )
                if jid in seen:
                    raise InvariantViolation(
                        f"job {jid} queued on two nodes: {seen[jid]}, {ns.node_id}"
                    )
                seen[jid] = ns.node_id
            # A down node must be idle (its queue stalls, it never arms)
            # and the down flag must agree with the engine's down set.
            if ns.down:
                if ns.active_id is not None:
                    raise InvariantViolation(
                        f"down node {ns.node_id} has active job {ns.active_id}"
                    )
                if ns.node_id not in self._down:
                    raise InvariantViolation(
                        f"node {ns.node_id} flagged down but absent from the "
                        "down set"
                    )
            elif ns.node_id in self._down:
                raise InvariantViolation(
                    f"node {ns.node_id} in the down set but not flagged down"
                )
            # The active job must be the heap minimum.
            if ns.active_id is not None:
                if not ns.heap or ns.heap[0][1] != ns.active_id:
                    raise InvariantViolation(
                        f"node {ns.node_id} active job {ns.active_id} is not "
                        "the queue minimum"
                    )
        for jid in self._alive:
            st = self._states[jid]
            if st.done:
                raise InvariantViolation(f"done job {jid} still in alive set")
            rem = self._live_remaining(st)
            p = self.instance.processing_time(st.job, st.path[st.idx])
            # The lower band must admit anything finished_tol treats as
            # zero, or a job the drain just declared finished could fail
            # the invariant it satisfies semantically.
            if rem < -finished_tol(p) or rem > p * (1.0 + REL_EPS):
                raise InvariantViolation(
                    f"job {jid} remaining {rem} outside [0, {p}]"
                )
        # Fractional bookkeeping must match a from-scratch recomputation.
        expected = 0.0
        for jid in self._alive:
            st = self._states[jid]
            leaf = st.record.leaf
            p_leaf = self.instance.processing_time(st.job, leaf)
            pos = st.pos_of[leaf]
            if st.idx < pos:
                expected += 1.0
            elif st.idx == pos:
                expected += self._live_remaining(st) / p_leaf
        if abs(expected - self._alive_fraction) > DRIFT_RTOL * max(1.0, expected):
            raise InvariantViolation(
                f"alive-fraction drift: tracked {self._alive_fraction}, "
                f"recomputed {expected}"
            )
        self._assert_aggregates()
        _ = tree  # reserved for future structural checks

    def _assert_aggregates(self) -> None:
        """The debug oracle for the incremental congestion aggregates: a
        brute-force alive-set scan must reproduce every per-node count
        and (within float-drift tolerance) every volume the O(1) reads
        report."""
        count = {v: 0 for v in self._nodes}
        volume = {v: 0.0 for v in self._nodes}
        queued = {v: 0.0 for v in self._nodes}
        for jid in self._alive:
            st = self._states[jid]
            live = self._live_remaining(st)
            for pos in range(st.idx, len(st.path)):
                v = st.path[pos]
                count[v] += 1
                if pos == st.idx:
                    volume[v] += live
                    queued[v] += live
                else:
                    volume[v] += self._processing_on(self._nodes[v], st)
        view = self._view
        for v in self._nodes:
            if count[v] != self._through_count[v]:
                raise InvariantViolation(
                    f"node {v}: tracked through-count {self._through_count[v]}, "
                    f"scanned {count[v]}"
                )
            got = view.volume_through(v)
            tol = DRIFT_RTOL * max(1.0, volume[v])
            if abs(got - volume[v]) > tol:
                raise InvariantViolation(
                    f"node {v}: volume_through drift: tracked {got}, "
                    f"scanned {volume[v]}"
                )
            got_q = view.queue_volume_at(v)
            if abs(got_q - queued[v]) > DRIFT_RTOL * max(1.0, queued[v]):
                raise InvariantViolation(
                    f"node {v}: queue_volume_at drift: tracked {got_q}, "
                    f"scanned {queued[v]}"
                )


def simulate(
    instance: Instance,
    policy: AssignmentPolicy,
    *,
    speeds: SpeedProfile | None = None,
    priority: PriorityFn = sjf_priority,
    record_segments: bool = False,
    check_invariants: bool = False,
    observer: Callable[[SchedulerView, str, int], None] | None = None,
    until: float | None = None,
    collect_counters: bool | None = None,
    tracer: "TraceRecorder | None" = None,
    events: EventSchedule | None = None,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`Engine` and run it.

    Every option is keyword-only, matching the :mod:`repro.api` facade
    (the positional ``speeds`` form was removed after its one-release
    deprecation window).
    """
    return Engine(
        instance,
        policy,
        speeds,
        priority=priority,
        record_segments=record_segments,
        check_invariants=check_invariants,
        observer=observer,
        collect_counters=collect_counters,
        tracer=tracer,
        events=events,
    ).run(until=until)
