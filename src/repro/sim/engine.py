"""The continuous-time event-driven simulation engine.

Semantics implemented (Section 2 of the paper):

* Jobs arrive at the root at their release times.  The root performs no
  processing: an arriving job is immediately available on the first node
  of its assigned processing path (the root-adjacent node ``R(v)``).
* A job occupies exactly one node at a time.  It becomes available on
  the next node of its path only once fully processed on the current one
  (store-and-forward).
* Each node processes at most one job at any moment, preemptively, at
  its speed from the :class:`~repro.sim.speed.SpeedProfile`.
* The per-node order is a pluggable priority (default SJF by *original*
  processing time on that node, ties by release then id — the paper's
  "oldest in class first" under class-rounded sizes).
* The leaf assignment is chosen by an
  :class:`AssignmentPolicy` at arrival (immediate dispatch) and never
  changes (non-migratory).

Event machinery
---------------
Two event sources exist: the sorted arrival list and per-node completion
predictions.  Completion events are pushed onto a heap tagged with the
node's *version*; any change to a node's queue bumps the version, so
stale events are skipped lazily.  Between events every quantity needed
for the paper's fractional flow time changes affinely, so the integral
is accumulated exactly (no discretisation error).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Callable
from time import perf_counter
from typing import Protocol

from repro.exceptions import (
    AssignmentError,
    InvariantViolation,
    SimulationError,
    TopologyError,
)
from repro.sim.counters import EngineCounters, global_counters
from repro.sim.result import JobRecord, ScheduleSegment, SimulationResult
from repro.sim.tolerances import (
    CLOCK_EPS,
    DRIFT_RTOL,
    REL_EPS,
    completion_guard_tol,
    finished_tol,
)
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance
from repro.workload.job import Job

__all__ = [
    "PriorityFn",
    "sjf_priority",
    "fifo_priority",
    "AssignmentPolicy",
    "SchedulerView",
    "Engine",
    "simulate",
]

#: A per-node ordering: maps (instance, job, node) to a sortable key;
#: smaller keys run first.
PriorityFn = Callable[[Instance, Job, int], tuple]


def sjf_priority(instance: Instance, job: Job, node: int) -> tuple:
    """Shortest-Job-First by original processing time on the node.

    Ties break by release time ("the oldest job in the class") and then
    by id for full determinism.
    """
    return (instance.processing_time(job, node), job.release, job.id)


def fifo_priority(instance: Instance, job: Job, node: int) -> tuple:
    """First-in-first-out by release time — the ablation node policy."""
    return (job.release, job.id)


class AssignmentPolicy(Protocol):
    """Chooses the leaf for each arriving job (immediate dispatch)."""

    def assign(self, view: "SchedulerView", job: Job, now: float) -> int:
        """Return the leaf id ``job`` is dispatched to at time ``now``."""
        ...  # pragma: no cover


class _JobState:
    """Mutable runtime state of one released job."""

    __slots__ = ("job", "record", "idx", "remaining", "path", "pos_of")

    def __init__(self, job: Job, record: JobRecord) -> None:
        self.job = job
        self.record = record
        self.path = record.path
        self.pos_of = {v: i for i, v in enumerate(record.path)}
        self.idx = 0
        self.remaining = 0.0

    @property
    def current_node(self) -> int | None:
        return self.path[self.idx] if self.idx < len(self.path) else None

    @property
    def done(self) -> bool:
        return self.idx >= len(self.path)


class _NodeState:
    """Mutable runtime state of one processing node."""

    __slots__ = (
        "node_id",
        "speed",
        "is_leaf",
        "heap",
        "version",
        "active_id",
        "active_started",
        "active_rem_start",
    )

    def __init__(self, node_id: int, speed: float, is_leaf: bool) -> None:
        self.node_id = node_id
        self.speed = speed
        self.is_leaf = is_leaf
        self.heap: list[tuple[tuple, int]] = []
        self.version = 0
        self.active_id: int | None = None
        self.active_started = 0.0
        self.active_rem_start = 0.0


class SchedulerView:
    """Read-only window onto live engine state for assignment policies.

    The queries mirror the paper's notation at the current simulation
    time ``t``:

    * :meth:`queue_at` — the jobs *available to schedule* on a node
      (the jobs physically at the node);
    * :meth:`jobs_through` — ``Q_v(t)``: released jobs with ``v`` on
      their path not yet completed on ``v``;
    * :meth:`remaining_on` — ``p^A_{i,v}(t)``: the remaining processing
      of job ``i`` on node ``v`` (full if the job has not reached ``v``,
      zero once past it).
    """

    __slots__ = ("_engine",)

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine

    # -- static context -------------------------------------------------
    @property
    def instance(self) -> Instance:
        return self._engine.instance

    @property
    def tree(self):
        return self._engine.instance.tree

    @property
    def speeds(self) -> SpeedProfile:
        return self._engine.speeds

    @property
    def now(self) -> float:
        return self._engine.now

    def speed_of(self, node: int) -> float:
        return self._engine._nodes[node].speed

    # -- dynamic state ---------------------------------------------------
    def queue_at(self, node: int) -> tuple[int, ...]:
        """Ids of jobs currently available to schedule on ``node``."""
        return tuple(jid for _, jid in self._engine._nodes[node].heap)

    def active_at(self, node: int) -> int | None:
        """Id of the job being processed on ``node``, if any."""
        return self._engine._nodes[node].active_id

    def jobs_through(self, node: int) -> tuple[int, ...]:
        """``Q_v(t)``: alive jobs routed through ``node`` and not yet
        completed on it.

        For a root-adjacent node this equals :meth:`queue_at` (nothing is
        upstream of the first hop); for a leaf it is the alive jobs
        assigned to that leaf; in general it is computed by scanning the
        alive set.
        """
        eng = self._engine
        tree = eng.instance.tree
        if tree.node(node).parent == tree.root:
            return self.queue_at(node)
        if node in eng._alive_at_leaf:
            return tuple(sorted(eng._alive_at_leaf[node]))
        out = []
        for jid in eng._alive:
            st = eng._states[jid]
            pos = st.pos_of.get(node)
            if pos is not None and st.idx <= pos:
                out.append(jid)
        return tuple(out)

    def alive_jobs(self) -> tuple[int, ...]:
        """Ids of all released, uncompleted jobs."""
        return tuple(sorted(self._engine._alive))

    def job(self, job_id: int) -> Job:
        return self._engine._states[job_id].job

    def assigned_leaf(self, job_id: int) -> int:
        return self._engine._states[job_id].record.leaf

    def current_node_of(self, job_id: int) -> int | None:
        """The node job ``job_id`` is currently available on (``None``
        once completed)."""
        return self._engine._states[job_id].current_node

    def remaining_on(self, job_id: int, node: int) -> float:
        """``p^A_{i,v}(t)`` — remaining processing of the job on ``node``.

        Zero for nodes already passed (or off-path), live remaining for
        the current node, full requirement for nodes not yet reached.
        """
        eng = self._engine
        st = eng._states[job_id]
        pos = st.pos_of.get(node)
        if pos is None or st.idx > pos or st.done:
            return 0.0
        if st.idx < pos:
            return eng.instance.processing_time(st.job, node)
        return eng._live_remaining(st)

    def live_remaining(self, job_id: int) -> float:
        """Remaining processing of the job on its *current* node."""
        return self._engine._live_remaining(self._engine._states[job_id])


class Engine:
    """One simulation run over an :class:`~repro.workload.instance.Instance`.

    Parameters
    ----------
    instance:
        The instance to simulate.
    policy:
        The leaf :class:`AssignmentPolicy` (immediate dispatch).
    speeds:
        Per-node speeds; defaults to unit speed everywhere.
    priority:
        The per-node ordering; defaults to :func:`sjf_priority`.
    record_segments:
        When true, every maximal (node, job) processing interval is
        recorded — required by the dual-fitting and LP audits.
    check_invariants:
        When true, model invariants are asserted after every event
        (simulation slows down by a small constant factor).
    max_events:
        Safety bound on processed events; exceeding it raises
        :class:`~repro.exceptions.SimulationError`.
    observer:
        Optional callback invoked after every processed event as
        ``observer(view, kind, subject)`` where ``kind`` is ``"arrival"``
        (``subject`` is the job id) or ``"completion"`` (``subject`` is
        the node id).  Used by the potential-function and dual-fitting
        experiments to snapshot live state; must not mutate anything.
    collect_counters:
        When true, tally :class:`~repro.sim.counters.EngineCounters`
        for this run (surfaced on ``SimulationResult.counters``).  When
        ``None`` (the default), collection follows the process-wide
        switch (:func:`~repro.sim.counters.enable_global_counters`);
        disabled collection costs nothing in the hot path.
    """

    def __init__(
        self,
        instance: Instance,
        policy: AssignmentPolicy,
        speeds: SpeedProfile | None = None,
        *,
        priority: PriorityFn = sjf_priority,
        record_segments: bool = False,
        check_invariants: bool = False,
        max_events: int = 10_000_000,
        observer: Callable[["SchedulerView", str, int], None] | None = None,
        collect_counters: bool | None = None,
    ) -> None:
        self.instance = instance
        self.policy = policy
        self.speeds = speeds or SpeedProfile.uniform(1.0)
        self.priority = priority
        self.record_segments = record_segments
        self.check_invariants = check_invariants
        self.max_events = max_events

        tree = instance.tree
        self._nodes: dict[int, _NodeState] = {}
        for node in tree:
            if node.is_root:
                continue
            self._nodes[node.id] = _NodeState(
                node.id, self.speeds.speed_of(tree, node.id), node.is_leaf
            )
        self._states: dict[int, _JobState] = {}
        self._alive: set[int] = set()
        self._alive_at_leaf: dict[int, set[int]] = {v: set() for v in tree.leaves}

        self.now = 0.0
        self._events: list[tuple[float, int, int, int]] = []  # (t, version, seq, node)
        self._seq = 0
        self._num_events = 0

        # fractional-flow accounting
        self._frac_integral = 0.0
        self._alive_fraction = 0.0  # Σ_alive remaining_leaf/p_leaf at self.now
        self._drain = 0.0  # d/dt of the above (≥ 0): Σ over draining leaves
        self._leaf_drain: dict[int, float] = {v: 0.0 for v in tree.leaves}
        self._alive_integral = 0.0

        self._segments: list[ScheduleSegment] | None = (
            [] if record_segments else None
        )
        self._view = SchedulerView(self)
        self._observer = observer
        self._finished = False
        if collect_counters is None:
            collect_counters = global_counters() is not None
        self._counters: EngineCounters | None = (
            EngineCounters(runs=1) if collect_counters else None
        )

    # ------------------------------------------------------------------
    # internal helpers
    # ------------------------------------------------------------------
    def _live_remaining(self, st: _JobState) -> float:
        """Remaining processing of ``st`` on its current node, *now*."""
        if st.done:
            return 0.0
        node = self._nodes[st.path[st.idx]]
        if node.active_id == st.job.id:
            rem = node.active_rem_start - node.speed * (self.now - node.active_started)
            return max(rem, 0.0)
        return st.remaining

    def _settle(self, ns: _NodeState) -> None:
        """Fold elapsed processing into the active job's remaining and
        close its schedule segment.  Leaves the node with no active job;
        callers must follow with :meth:`_rearm`."""
        if self._counters is not None:
            self._counters.settle_calls += 1
        if ns.active_id is None:
            return
        st = self._states[ns.active_id]
        elapsed = self.now - ns.active_started
        if elapsed > 0.0:
            st.remaining = max(ns.active_rem_start - ns.speed * elapsed, 0.0)
            if self._segments is not None:
                self._segments.append(
                    ScheduleSegment(ns.node_id, ns.active_id, ns.active_started, self.now)
                )
        else:
            st.remaining = ns.active_rem_start
        if ns.is_leaf:
            self._set_leaf_drain(ns.node_id, 0.0)
        ns.active_id = None

    def _rearm(self, ns: _NodeState) -> None:
        """Start the highest-priority available job (if any) and schedule
        its completion event."""
        ns.version += 1
        if self._counters is not None:
            self._counters.rearm_calls += 1
        if not ns.heap:
            return
        _, jid = ns.heap[0]
        st = self._states[jid]
        ns.active_id = jid
        ns.active_started = self.now
        ns.active_rem_start = st.remaining
        finish = self.now + st.remaining / ns.speed
        self._seq += 1
        heapq.heappush(self._events, (finish, ns.version, self._seq, ns.node_id))
        if self._counters is not None:
            self._counters.heap_pushes += 1
        if ns.is_leaf:
            p_leaf = self.instance.processing_time(st.job, ns.node_id)
            self._set_leaf_drain(ns.node_id, ns.speed / p_leaf)

    def _set_leaf_drain(self, leaf: int, value: float) -> None:
        old = self._leaf_drain[leaf]
        if old != value:
            self._drain += value - old
            self._leaf_drain[leaf] = value

    def _advance(self, t: float) -> None:
        """Move simulated time to ``t``, accumulating exact integrals."""
        dt = t - self.now
        if dt < 0:
            if dt < -CLOCK_EPS:
                raise SimulationError(f"time went backwards: {self.now} -> {t}")
            dt = 0.0
        if dt > 0.0:
            self._frac_integral += self._alive_fraction * dt - 0.5 * self._drain * dt * dt
            self._alive_fraction = max(self._alive_fraction - self._drain * dt, 0.0)
            self._alive_integral += len(self._alive) * dt
            self.now = t

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _advance_job(self, ns: _NodeState, jid: int) -> None:
        """Pop ``jid`` (the fully-processed heap top of ``ns``) and move it
        to the next node of its path (or finish it)."""
        heapq.heappop(ns.heap)
        st = self._states[jid]
        st.remaining = 0.0
        st.record.completed_at.append(self.now)
        st.idx += 1
        if st.done:
            self._alive.discard(jid)
            self._alive_at_leaf[st.record.leaf].discard(jid)
            return
        nxt = self._nodes[st.path[st.idx]]
        st.remaining = self.instance.processing_time(st.job, nxt.node_id)
        st.record.available_at.append(self.now)
        self._settle(nxt)
        self._drain_finished_top(nxt)
        heapq.heappush(
            nxt.heap, (self.priority(self.instance, st.job, nxt.node_id), jid)
        )
        if self._counters is not None:
            self._counters.heap_pushes += 1
        self._rearm(nxt)

    def _drain_finished_top(self, ns: _NodeState) -> None:
        """Complete every fully-processed job stranded at the heap top.

        A job whose remaining work reached zero is *done* on this node;
        it must advance before a simultaneous push can outrank it (ties
        at identical priority would otherwise re-queue finished work
        behind a full-size job).  More than one finished job can be
        queued at once — e.g. two jobs preempted at the brink of
        completion, released when a simultaneous completion settles the
        node — so the drain loops until the top has work left; the
        recursive advance settles downstream nodes the same way.
        """
        if ns.active_id is not None:
            return
        while ns.heap:
            _, jid = ns.heap[0]
            st = self._states[jid]
            p = self.instance.processing_time(st.job, ns.node_id)
            if st.remaining > finished_tol(p):
                return
            if self._counters is not None:
                self._counters.drained_finished += 1
            self._advance_job(ns, jid)

    def _handle_arrival(self, job: Job) -> None:
        leaf = self.policy.assign(self._view, job, self.now)
        tree = self.instance.tree
        if leaf not in tree or not tree.node(leaf).is_leaf:
            raise AssignmentError(
                f"policy assigned job {job.id} to non-leaf node {leaf!r}"
            )
        p_leaf = self.instance.processing_time(job, leaf)
        if not math.isfinite(p_leaf):
            raise AssignmentError(
                f"policy assigned job {job.id} to forbidden leaf {leaf} (p=inf)"
            )
        try:
            path = self.instance.processing_path_for(job, leaf)
        except TopologyError as exc:
            raise AssignmentError(
                f"policy assigned job {job.id} to leaf {leaf} outside its "
                f"origin's subtree: {exc}"
            ) from exc
        if not path:
            raise AssignmentError(
                f"job {job.id}: empty processing path to leaf {leaf}"
            )
        record = JobRecord(job_id=job.id, release=job.release, leaf=leaf, path=path)
        st = _JobState(job, record)
        self._states[job.id] = st
        self._alive.add(job.id)
        self._alive_at_leaf[leaf].add(job.id)
        self._alive_fraction += 1.0

        first = self._nodes[path[0]]
        st.remaining = self.instance.processing_time(job, path[0])
        record.available_at.append(self.now)
        self._settle(first)
        self._drain_finished_top(first)
        heapq.heappush(first.heap, (self.priority(self.instance, job, path[0]), job.id))
        if self._counters is not None:
            self._counters.heap_pushes += 1
        self._rearm(first)

    def _handle_completion(self, ns: _NodeState) -> None:
        jid = ns.active_id
        if jid is None:
            # The active job was drained by a simultaneous event on
            # another node before this (now stale-by-settlement, but
            # version-valid) completion fired; nothing left to do except
            # restart whatever is queued.
            self._drain_finished_top(ns)
            self._rearm(ns)
            return
        self._settle(ns)
        st = self._states[jid]
        tol = completion_guard_tol(ns.active_rem_start, ns.speed, self.now)
        if st.remaining > tol:  # pragma: no cover - numerical guard
            raise SimulationError(
                f"completion event fired with {st.remaining} work left "
                f"(job {jid} on node {ns.node_id})"
            )
        self._advance_job(ns, jid)
        self._rearm(ns)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, until: float | None = None) -> SimulationResult:
        """Simulate until every released job completes.

        Parameters
        ----------
        until:
            Optional time horizon.  When set, the run stops at the first
            event past ``until`` (time is advanced exactly to ``until``
            so the integrals cover ``[0, until]``); jobs still in flight
            stay unfinished in the result (``records`` with partial
            completion lists — use
            :meth:`~repro.sim.result.SimulationResult.completed_records`).
            Jobs released after ``until`` are not admitted.
        """
        if self._finished:
            raise SimulationError("an Engine instance can only run once")
        self._finished = True
        if until is not None and until < 0:
            raise SimulationError(f"until must be >= 0, got {until}")

        arrivals = list(self.instance.jobs)
        arr_idx = 0
        n_arr = len(arrivals)
        counters = self._counters
        run_started = perf_counter() if counters is not None else 0.0

        while True:
            # Earliest valid completion event.
            while self._events:
                t, version, _, node_id = self._events[0]
                if self._nodes[node_id].version == version:
                    break
                heapq.heappop(self._events)
                if counters is not None:
                    counters.stale_events_skipped += 1
            next_completion = self._events[0][0] if self._events else math.inf
            next_arrival = arrivals[arr_idx].release if arr_idx < n_arr else math.inf
            if until is not None and min(next_completion, next_arrival) > until:
                self._advance(until)
                break
            if next_completion is math.inf and next_arrival is math.inf:
                break
            self._num_events += 1
            if self._num_events > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events}; "
                    "likely a policy or engine bug"
                )
            phase_started = perf_counter() if counters is not None else 0.0
            if next_completion <= next_arrival:
                t, version, _, node_id = heapq.heappop(self._events)
                self._advance(t)
                self._handle_completion(self._nodes[node_id])
                if counters is not None:
                    counters.events_processed += 1
                    counters.completions += 1
                    counters.completion_seconds += perf_counter() - phase_started
                if self._observer is not None:
                    self._observer(self._view, "completion", node_id)
            else:
                self._advance(next_arrival)
                job_id = arrivals[arr_idx].id
                self._handle_arrival(arrivals[arr_idx])
                arr_idx += 1
                if counters is not None:
                    counters.events_processed += 1
                    counters.arrivals += 1
                    counters.arrival_seconds += perf_counter() - phase_started
                if self._observer is not None:
                    self._observer(self._view, "arrival", job_id)
            if self.check_invariants:
                self._assert_invariants()

        if until is not None:
            # Close open schedule segments at the horizon so recorded
            # segments cover exactly [0, until].
            for ns in self._nodes.values():
                self._settle(ns)
        if counters is not None:
            counters.run_seconds += perf_counter() - run_started
            aggregate = global_counters()
            if aggregate is not None and aggregate is not counters:
                aggregate.merge(counters)
        result = SimulationResult(
            instance=self.instance,
            speeds=self.speeds,
            records={jid: st.record for jid, st in self._states.items()},
            fractional_flow=self._frac_integral,
            alive_integral=self._alive_integral,
            num_events=self._num_events,
            segments=self._segments,
            counters=counters,
        )
        if until is None:
            result.verify_complete()
        return result

    # ------------------------------------------------------------------
    # invariants (enabled via check_invariants=True)
    # ------------------------------------------------------------------
    def _assert_invariants(self) -> None:
        tree = self.instance.tree
        seen: dict[int, int] = {}
        for ns in self._nodes.values():
            # Each queued job must actually be at this node.
            for _, jid in ns.heap:
                st = self._states[jid]
                if st.done or st.path[st.idx] != ns.node_id:
                    raise InvariantViolation(
                        f"job {jid} queued on node {ns.node_id} but is at "
                        f"{'done' if st.done else st.path[st.idx]}"
                    )
                if jid in seen:
                    raise InvariantViolation(
                        f"job {jid} queued on two nodes: {seen[jid]}, {ns.node_id}"
                    )
                seen[jid] = ns.node_id
            # The active job must be the heap minimum.
            if ns.active_id is not None:
                if not ns.heap or ns.heap[0][1] != ns.active_id:
                    raise InvariantViolation(
                        f"node {ns.node_id} active job {ns.active_id} is not "
                        "the queue minimum"
                    )
        for jid in self._alive:
            st = self._states[jid]
            if st.done:
                raise InvariantViolation(f"done job {jid} still in alive set")
            rem = self._live_remaining(st)
            p = self.instance.processing_time(st.job, st.path[st.idx])
            # The lower band must admit anything finished_tol treats as
            # zero, or a job the drain just declared finished could fail
            # the invariant it satisfies semantically.
            if rem < -finished_tol(p) or rem > p * (1.0 + REL_EPS):
                raise InvariantViolation(
                    f"job {jid} remaining {rem} outside [0, {p}]"
                )
        # Fractional bookkeeping must match a from-scratch recomputation.
        expected = 0.0
        for jid in self._alive:
            st = self._states[jid]
            leaf = st.record.leaf
            p_leaf = self.instance.processing_time(st.job, leaf)
            pos = st.pos_of[leaf]
            if st.idx < pos:
                expected += 1.0
            elif st.idx == pos:
                expected += self._live_remaining(st) / p_leaf
        if abs(expected - self._alive_fraction) > DRIFT_RTOL * max(1.0, expected):
            raise InvariantViolation(
                f"alive-fraction drift: tracked {self._alive_fraction}, "
                f"recomputed {expected}"
            )
        _ = tree  # reserved for future structural checks


def simulate(
    instance: Instance,
    policy: AssignmentPolicy,
    speeds: SpeedProfile | None = None,
    *,
    priority: PriorityFn = sjf_priority,
    record_segments: bool = False,
    check_invariants: bool = False,
    observer: Callable[[SchedulerView, str, int], None] | None = None,
    until: float | None = None,
    collect_counters: bool | None = None,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`Engine` and run it."""
    return Engine(
        instance,
        policy,
        speeds,
        priority=priority,
        record_segments=record_segments,
        check_invariants=check_invariants,
        observer=observer,
        collect_counters=collect_counters,
    ).run(until=until)
