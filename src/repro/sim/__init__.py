"""Continuous-time event-driven simulator for the tree network model.

The engine (:mod:`repro.sim.engine`) implements exactly the semantics of
Section 2 of the paper: store-and-forward movement of jobs through the
tree, one job per node at a time, preemptive per-node priority queues,
per-node speeds (resource augmentation), immediate dispatch, and
non-migratory leaf assignments.  Results carry per-job per-node timing
records and exact fractional flow-time integrals
(:mod:`repro.sim.result`, :mod:`repro.sim.metrics`).
"""

from repro.sim.speed import SpeedProfile
from repro.sim.counters import (
    EngineCounters,
    disable_global_counters,
    enable_global_counters,
    global_counters,
    global_counters_enabled,
    reset_global_counters,
)
from repro.sim.engine import Engine, SchedulerView, simulate
from repro.sim.events import EventKind, TraceEvent
from repro.sim.gantt import render_gantt
from repro.sim.result import JobRecord, ScheduleSegment, SimulationResult
from repro.sim.metrics import (
    flow_time_per_job,
    interior_delay,
    max_stretch,
    mean_flow_time,
    total_flow_time,
    waiting_decomposition,
)

__all__ = [
    "SpeedProfile",
    "EngineCounters",
    "enable_global_counters",
    "disable_global_counters",
    "global_counters",
    "global_counters_enabled",
    "reset_global_counters",
    "Engine",
    "SchedulerView",
    "simulate",
    "SimulationResult",
    "JobRecord",
    "ScheduleSegment",
    "total_flow_time",
    "mean_flow_time",
    "flow_time_per_job",
    "max_stretch",
    "interior_delay",
    "waiting_decomposition",
    "EventKind",
    "TraceEvent",
    "render_gantt",
]
