"""Simulation outputs: per-job records, schedule segments, and the
:class:`SimulationResult` bundle consumed by metrics, analysis, and the
dual-fitting machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.sim.counters import EngineCounters
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance

__all__ = ["JobRecord", "ScheduleSegment", "SimulationResult"]


@dataclass(slots=True)
class JobRecord:
    """Everything the simulator recorded about one job.

    Attributes
    ----------
    job_id:
        The job's id.
    release:
        Its arrival time ``r_j``.
    leaf:
        The leaf machine it was (immediately) dispatched to.
    path:
        The processing path — the nodes from ``R(leaf)`` down to ``leaf``.
    available_at:
        ``available_at[i]`` is the time the job became available to
        schedule on ``path[i]``; ``available_at[0] == release``.
    completed_at:
        ``completed_at[i]`` is the time the job finished processing on
        ``path[i]``.  The final entry is the completion time ``C_j``.
    cancelled_at:
        ``None`` unless the job was withdrawn mid-run by a
        :class:`~repro.workload.events.Cancel` event, in which case this
        is the cancellation instant — a *terminal* state distinct from
        completion (``finished`` stays false; the job is excluded from
        flow-time metrics).
    size_estimate:
        The declared size estimate the assignment policy saw (``None``
        for fully-known sizes) — recorded so traces and audits can
        reconstruct the policy's information set.
    """

    job_id: int
    release: float
    leaf: int
    path: tuple[int, ...]
    available_at: list[float] = field(default_factory=list)
    completed_at: list[float] = field(default_factory=list)
    cancelled_at: float | None = None
    size_estimate: float | None = None

    @property
    def completion(self) -> float:
        """``C_j`` — completion on the leaf."""
        if len(self.completed_at) != len(self.path):
            raise SimulationError(f"job {self.job_id} did not complete")
        return self.completed_at[-1]

    @property
    def flow_time(self) -> float:
        """``C_j − r_j``."""
        return self.completion - self.release

    @property
    def finished(self) -> bool:
        """Whether the job completed on its leaf."""
        return len(self.completed_at) == len(self.path)

    @property
    def cancelled(self) -> bool:
        """Whether the job ended in the cancelled terminal state."""
        return self.cancelled_at is not None

    def time_on_node(self, i: int) -> float:
        """Wall-clock the job spent associated with ``path[i]``
        (waiting plus processing)."""
        return self.completed_at[i] - self.available_at[i]


@dataclass(frozen=True, slots=True)
class ScheduleSegment:
    """A maximal interval during which ``node`` processed ``job_id``.

    Only recorded when the engine is run with ``record_segments=True``;
    the dual-fitting and LP-comparison machinery replays these.
    """

    node: int
    job_id: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SimulationResult:
    """The full outcome of one simulation run.

    Attributes
    ----------
    instance:
        The simulated instance.
    speeds:
        The speed profile the algorithm ran with.
    records:
        ``job id -> JobRecord`` for every released job.
    fractional_flow:
        The paper's fractional flow time: the exact integral of the sum
        over alive jobs of the remaining fraction on their assigned leaf.
    alive_integral:
        Exact integral of the number of alive jobs — equals the total
        (integral) flow time; kept as an independent cross-check.
    num_events:
        Number of engine events processed.
    segments:
        Schedule segments if recording was enabled, else ``None``.
    counters:
        :class:`~repro.sim.counters.EngineCounters` for the run when the
        engine collected them (``collect_counters=True`` or the global
        switch), else ``None``.
    trace:
        The structured :class:`~repro.obs.trace.SimulationTrace` when a
        :class:`~repro.obs.trace.TraceRecorder` was attached
        (``tracer=...``), else ``None``.
    """

    instance: Instance
    speeds: SpeedProfile
    records: dict[int, JobRecord]
    fractional_flow: float
    alive_integral: float
    num_events: int
    segments: list[ScheduleSegment] | None = None
    counters: EngineCounters | None = None
    trace: "SimulationTrace | None" = None

    # ------------------------------------------------------------------
    def assignment(self) -> dict[int, int]:
        """``job id -> leaf id`` dispatch map."""
        return {j: rec.leaf for j, rec in self.records.items()}

    def completed_records(self) -> dict[int, JobRecord]:
        """Only the jobs that finished — the whole record set for a full
        run, a strict subset after a bounded-horizon run."""
        return {j: rec for j, rec in self.records.items() if rec.finished}

    def cancelled_records(self) -> dict[int, JobRecord]:
        """Only the jobs withdrawn by a ``Cancel`` event (empty for
        event-free runs)."""
        return {j: rec for j, rec in self.records.items() if rec.cancelled}

    def unfinished_job_ids(self) -> tuple[int, ...]:
        """Ids of admitted jobs still in flight (bounded-horizon runs);
        cancelled jobs are terminal, not in flight."""
        return tuple(
            sorted(
                j
                for j, rec in self.records.items()
                if not rec.finished and not rec.cancelled
            )
        )

    def completions(self) -> dict[int, float]:
        """``job id -> C_j`` over finished jobs (cancelled jobs have no
        completion and are excluded)."""
        return {
            j: rec.completion
            for j, rec in self.records.items()
            if not rec.cancelled
        }

    def flow_times(self) -> np.ndarray:
        """Per-job flow times in job-id order.

        Cancelled jobs never appear here: a withdrawn job has no
        completion, so it contributes to no flow-time statistic.  An
        unfinished *non-cancelled* record still raises, exactly as
        before.
        """
        return np.array(
            [
                self.records[j].flow_time
                for j in sorted(self.records)
                if not self.records[j].cancelled
            ],
            dtype=float,
        )

    def total_flow_time(self) -> float:
        """``Σ_j (C_j − r_j)``."""
        return float(self.flow_times().sum())

    def mean_flow_time(self) -> float:
        """Average flow time."""
        flows = self.flow_times()
        return float(flows.mean()) if flows.size else 0.0

    def max_flow_time(self) -> float:
        """Maximum flow time over jobs."""
        flows = self.flow_times()
        return float(flows.max()) if flows.size else 0.0

    def makespan(self) -> float:
        """Latest completion time among finished jobs."""
        return max(
            (r.completion for r in self.records.values() if r.finished),
            default=0.0,
        )

    def verify_complete(self) -> None:
        """Raise if any released job failed to reach a terminal state
        (finished, or cancelled by a dynamic event)."""
        unfinished = [
            j for j, r in self.records.items() if not r.finished and not r.cancelled
        ]
        if unfinished:
            raise SimulationError(f"jobs did not complete: {unfinished[:10]}")

    def __repr__(self) -> str:
        return (
            f"SimulationResult(jobs={len(self.records)}, "
            f"total_flow={self.total_flow_time():.3f}, "
            f"fractional_flow={self.fractional_flow:.3f}, "
            f"events={self.num_events})"
        )
