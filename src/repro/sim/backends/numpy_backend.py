"""The vectorized structure-of-arrays (SoA) event kernel.

The python :class:`~repro.sim.engine.Engine` interleaves every node's
events through one global heap, paying per-event dict lookups, object
attribute traffic and version bookkeeping.  This backend replays the
*same schedule* with a different execution strategy:

* **SoA job state** — releases, sizes, ids, priority ranks, per-node
  finished-tolerances are batch-precomputed into numpy arrays once per
  run (``np.lexsort`` replaces per-push key tuples); the mutation-heavy
  columns (remaining work, hop index, per-job record lists) are dense
  python-list mirrors indexed by job *index*, not id.
* **Encoded priority heaps** — for the built-in orderings the heap key
  is a single int (the job's rank in the total priority order), so heap
  sifts compare machine ints instead of 3-tuples of floats.  Generic
  priority callables and unrelated-leaf queues keep ``(key, job_id)``
  tuples, exactly like the engine.
* **Batched per-node sweeps** — there is no global event heap.  Each
  node keeps a time-sorted pending list of admissions fed by its single
  parent (availability flows strictly root-to-leaf in the
  store-and-forward model) plus a ``node_next`` cache of its earliest
  outstanding event, and :meth:`NumpyEngine._advance_node` runs the
  node forward through *all* of its completions and admissions up to a
  time limit in one tight loop.  During the arrival phase a node is
  touched only when its ``node_next`` has actually been reached — a
  policy query over an idle node costs one float compare; after the
  last arrival every node drains to infinity in one preorder pass.
* **Lazy congestion aggregates** — the O(1) ``volume_through`` /
  ``queue_volume_at`` counters are built (from the alive set) the first
  time a policy reads them and maintained incrementally from then on;
  policies that never read them (greedy, closest) pay nothing.

Equivalence to the engine is by construction, not by tolerance: the
kernel reproduces the engine's run accounting verbatim — settle only
when a newcomer outranks the running job, completion predicted as
``run_start + remaining/speed``, residuals of drained finished jobs
dropped at the admission instant, completions processed before
equal-time admissions — so per-node heap contents, run boundaries and
completion times are bit-identical on drain-free runs and agree to
``SCHEDULE_TOL`` in general.  The differential-fuzz battery
(``repro fuzz --backends``) enforces this against the reference and
exact-replay oracles.

Dynamic events (:class:`~repro.workload.events.EventSchedule`) keep the
same execution strategy: the run loop interleaves the schedule with the
arrival stream (events before same-instant arrivals, matching the
engine's completions-then-events-then-arrivals tie order), and each
event is applied at a *global sync barrier* — ``_sync_all()`` first
runs every node through its completions up to the event instant (the
sweeps never settle at their limit, so a completion landing exactly on
the event time is processed by the barrier itself: completion-first
ties for free), then the handler mutates node state exactly as the
engine's: breakdowns settle the active run and drain finished tops (a
down node's sweep degenerates to consuming pending admissions into its
heap — nothing arms), repairs drain and rearm, cancellations
swap-remove from whichever heap holds the job with the engine's
aggregate and fractional-flow adjustments.

The one quantity that is *not* schedule-determined is ``num_events``:
when two hop completions on adjacent nodes land on the same instant,
the engine either counts both or folds the downstream one into the
upstream cascade (an uncounted drain whose scheduled event goes stale)
depending on event-heap insertion order.  The kernel counts each
fused completion it processes, so the two counters can differ by the
number of such same-instant collisions; the recorded schedules do not.

What this backend does *not* support (the dispatcher in
:mod:`repro.sim.backends` falls back to the python engine): per-event
``observer`` callbacks, ``tracer`` hooks, bounded horizons (``until``)
and engine counters — all are defined in terms of the global event
order the batched sweeps deliberately avoid.
"""

from __future__ import annotations

import math
from heapq import (
    heapify as _heapify,
    heappop as _heappop,
    heappush as _heappush,
)

import numpy as np

from repro.exceptions import (
    AssignmentError,
    SimulationError,
    TopologyError,
)
from repro.sim.engine import AssignmentPolicy, PriorityFn, fifo_priority, sjf_priority
from repro.sim.result import JobRecord, ScheduleSegment, SimulationResult
from repro.sim.speed import SpeedProfile
from repro.sim.tolerances import REMAINING_ATOL, REMAINING_RTOL
from repro.workload.events import Cancel, EventSchedule, NodeDown
from repro.workload.instance import Instance, Setting
from repro.workload.job import Job

__all__ = ["NumpyEngine", "NumpyView", "simulate_numpy"]

_INF = math.inf


class NumpyView:
    """The :class:`~repro.sim.engine.SchedulerView` surface over the
    numpy kernel.

    Queries sync exactly the nodes whose state they expose (ancestors
    first — a node's admissions come from its parent), so policies see
    the same time-``t`` state the engine's globally-ordered loop would
    show them.  The ``_f_top_value`` / ``_f_prime_value`` methods are
    the fast-path hooks :mod:`repro.core.fvalues` picks up via
    ``getattr``; they return ``None`` for inputs outside their fast
    path, which sends the caller to the generic public-method form.
    """

    __slots__ = ("_k",)

    def __init__(self, kernel: "NumpyEngine") -> None:
        self._k = kernel

    # -- static context -------------------------------------------------
    @property
    def instance(self) -> Instance:
        return self._k.instance

    @property
    def tree(self):
        return self._k.instance.tree

    @property
    def speeds(self) -> SpeedProfile:
        return self._k.speeds

    @property
    def now(self) -> float:
        return self._k.now

    def speed_of(self, node: int) -> float:
        return self._k._speed_l[self._k._ni_of[node]]

    # -- dynamic state ---------------------------------------------------
    def queue_at(self, node: int) -> tuple[int, ...]:
        k = self._k
        ni = k._ni_of[node]
        k._sync_chain(ni)
        heap = k._heaps[ni]
        if k._enc_l[ni]:
            by_rank = k._by_rank
            id_l = k._id_l
            return tuple(id_l[by_rank[rk]] for rk in sorted(heap))
        return tuple(jid for _, jid in sorted(heap))

    def active_at(self, node: int) -> int | None:
        k = self._k
        ni = k._ni_of[node]
        k._sync_chain(ni)
        a = k._actives[ni]
        return k._id_l[a] if a >= 0 else None

    def jobs_through(self, node: int) -> tuple[int, ...]:
        k = self._k
        if node in k._root_adjacent_ids:
            return self.queue_at(node)
        if node in k._alive_at_leaf:
            k._sync_chain(k._ni_of[node])
            return tuple(sorted(k._alive_at_leaf[node]))
        k._sync_all()
        out = []
        for jid in k._alive:
            i = k._idx_of_id[jid]
            pos = k._pos_of_l[i].get(node)
            if pos is not None and k._hop_l[i] <= pos:
                out.append(jid)
        return tuple(out)

    # -- O(1) aggregate reads -------------------------------------------
    def jobs_through_count(self, node: int) -> int:
        k = self._k
        ni = k._ni_of.get(node)
        if ni is None:
            raise TopologyError(f"unknown non-root node id {node}")
        k._ensure_aggregates()
        k._sync_chain(ni)
        return k._through_count[ni]

    def volume_through(self, node: int) -> float:
        k = self._k
        ni = k._ni_of.get(node)
        if ni is None:
            raise TopologyError(f"unknown non-root node id {node}")
        k._ensure_aggregates()
        k._sync_chain(ni)
        if k._through_count[ni] == 0:
            return 0.0
        vol = k._through_volume[ni] - k._live_processed(ni)
        return vol if vol > 0.0 else 0.0

    def queue_volume_at(self, node: int) -> float:
        k = self._k
        ni = k._ni_of.get(node)
        if ni is None:
            raise TopologyError(f"unknown non-root node id {node}")
        k._ensure_aggregates()
        k._sync_chain(ni)
        if not k._heaps[ni]:
            return 0.0
        vol = k._queue_volume[ni] - k._live_processed(ni)
        return vol if vol > 0.0 else 0.0

    def alive_jobs(self) -> tuple[int, ...]:
        self._k._sync_all()
        return tuple(sorted(self._k._alive))

    def downed_nodes(self) -> frozenset[int]:
        """Node ids currently down (empty when no outage is active)."""
        return frozenset(self._k._down_ids)

    def is_down(self, node: int) -> bool:
        return node in self._k._down_ids

    def job(self, job_id: int) -> Job:
        return self._k._jobs_l[self._k._idx_of_id[job_id]]

    def assigned_leaf(self, job_id: int) -> int:
        return self._k._leaf_l[self._k._idx_of_id[job_id]]

    def current_node_of(self, job_id: int) -> int | None:
        k = self._k
        i = k._idx_of_id[job_id]
        k._sync_path(i)
        hop = k._hop_l[i]
        path = k._path_ids_l[i]
        return path[hop] if hop < len(path) else None

    def remaining_on(self, job_id: int, node: int) -> float:
        k = self._k
        i = k._idx_of_id[job_id]
        k._sync_path(i)
        pos = k._pos_of_l[i].get(node)
        hop = k._hop_l[i]
        if pos is None or hop > pos or hop >= len(k._path_ids_l[i]):
            return 0.0
        if hop < pos:
            return k.instance.processing_time(k._jobs_l[i], node)
        return k._live_remaining(i)

    def live_remaining(self, job_id: int) -> float:
        k = self._k
        i = k._idx_of_id[job_id]
        k._sync_path(i)
        return k._live_remaining(i)

    # -- fvalues fast-path hooks ----------------------------------------
    def _f_top_values(self, job: Job, tops) -> list[float] | None:
        """Batched ``F(j, ·)`` over one arrival's candidate entry nodes.

        :class:`~repro.core.assignment.GreedyIdenticalAssignment` scores
        every root-adjacent branch per arrival; evaluating them in one
        call amortises the per-call prologue (index lookups, rank/size
        column fetches) the per-entry hook pays ``len(tops)`` times.
        Covers the SJF-priority encoded-heap case only — there a heap
        entry *is* the job's SJF rank, so the priority test against the
        arriving job is a single int compare — and returns ``None``
        otherwise, sending the caller to the per-entry form.  Summation
        stays in heap-array order, so every score is bit-identical to
        :func:`repro.core.fvalues.f_top_value` on either backend.
        """
        k = self._k
        if k._est:
            # Size estimates in play: the precomputed true-size SJF
            # ranks cannot express the engine's masked-vs-true tuple
            # compare; fall back to the per-entry hook, which can.
            return None
        nis = k._ftv_nis.get(tops, False)
        if nis is False:
            nis = None
            if k._prio_kind == 1:
                ni_of = k._ni_of
                root_adjacent = k._root_adjacent_nis
                enc_l = k._enc_l
                resolved = []
                for top in tops:
                    ni = ni_of.get(top)
                    if ni is None or ni not in root_adjacent or not enc_l[ni]:
                        break
                    resolved.append(ni)
                else:
                    nis = tuple(resolved)
            k._ftv_nis[tops] = nis
        if nis is None:
            return None
        now = k.now
        node_next = k._node_next
        heaps = k._heaps
        p_j = job.size
        out = []
        r_j = -1  # rank columns fetched lazily: most heaps are empty
        for ni in nis:
            if node_next[ni] <= now:  # root-adjacent: the chain is (ni,)
                k._advance_node(ni, now)
            total = p_j
            heap = heaps[ni]
            if heap:
                if r_j < 0:
                    rank = k._rank  # == _sjf_rank for prio_kind 1
                    r_j = rank[k._idx_of_id[job.id]]
                    rem = k._rem_l
                    by_rank = k._by_rank
                    size_by_rank = k._size_by_rank
                    p_leaf_l = k._p_leaf_l
                    actives = k._actives
                    is_leaf_l = k._is_leaf_l
                active = actives[ni]
                if active >= 0:
                    live = k._arems[ni] - k._speed_l[ni] * (now - k._astarts[ni])
                    if live < 0.0:
                        live = 0.0
                    arank = rank[active]
                else:
                    live = 0.0
                    arank = -1
                if is_leaf_l[ni]:
                    for e in heap:
                        if e < r_j:
                            total += live if e == arank else rem[by_rank[e]]
                        elif p_leaf_l[by_rank[e]] > p_j:
                            total += p_j
                else:
                    for e in heap:
                        if e < r_j:
                            total += live if e == arank else rem[by_rank[e]]
                        elif size_by_rank[e] > p_j:
                            total += p_j
            out.append(total)
        return out

    def _ll_bases(self, job: Job, layout) -> list[float] | None:
        """Batched volume reads for one least-loaded arrival.

        :class:`~repro.baselines.policies.LeastLoadedAssignment` scores
        candidate leaf ``v`` as ``queue_volume_at(R(v)) +
        volume_through(v) + d_v * p_j``; the per-candidate public-method
        calls are each O(1) against the aggregates but pay a python
        attribute-and-guard prologue that, times ``leaves + branches``
        per arrival, left the numpy backend *slower* than the python
        engine on this policy.  This hook evaluates every base term
        (everything except the job's own ``d_v * p_j``) in one call:
        same reads, same sync order (all root children in
        ``root_children`` order first, then each candidate's leaf
        chain), same clamps — so ``base + own`` reassembles the exact
        score float.  Returns ``None`` for layouts outside the fast
        path (an unknown node id), sending the caller back to the
        public methods.
        """
        k = self._k
        resolved = k._llb_nis.get(layout, False)
        if resolved is False:
            resolved = None
            ni_of = k._ni_of
            tops_nis = []
            ok = True
            for top in k.instance.tree.root_children:
                tni = ni_of.get(top)
                if tni is None:  # pragma: no cover - malformed tree
                    ok = False
                    break
                tops_nis.append((top, tni))
            cand = []
            if ok:
                for v, top, _d in layout:
                    ni = ni_of.get(v)
                    if ni is None:
                        ok = False
                        break
                    cand.append((ni, top))
            if ok:
                resolved = (tuple(tops_nis), tuple(cand))
            k._llb_nis[layout] = resolved
        if resolved is None:
            return None
        tops_nis, cand = resolved
        k._ensure_aggregates()
        now = k.now
        node_next = k._node_next
        heaps = k._heaps
        tc = k._through_count
        tv = k._through_volume
        qv = k._queue_volume
        chain_of = k._chain_of
        advance = k._advance_node
        live_processed = k._live_processed
        # top_load, in root_children order (queue_volume_at verbatim).
        top_load: dict[int, float] = {}
        for top, tni in tops_nis:
            if node_next[tni] <= now:  # root-adjacent: the chain is (tni,)
                advance(tni, now)
            if not heaps[tni]:
                top_load[top] = 0.0
            else:
                vol = qv[tni] - live_processed(tni)
                top_load[top] = vol if vol > 0.0 else 0.0
        # Per-candidate volume_through, in layout order.
        out = []
        for ni, top in cand:
            for a in chain_of[ni]:
                if node_next[a] <= now:
                    advance(a, now)
            if tc[ni] == 0:
                vol = 0.0
            else:
                vol = tv[ni] - live_processed(ni)
                if vol <= 0.0:
                    vol = 0.0
            out.append(top_load[top] + vol)
        return out

    def _f_top_value(self, job: Job, top: int) -> float | None:
        """``F(j, ·)`` at root-adjacent ``top`` — the greedy hot path.

        Iterates the node's heap in *array order* (which matches the
        engine's, push for push) comparing precomputed SJF ranks, so the
        float summation order — and hence the score — is bit-identical
        to :func:`repro.core.fvalues.f_top_value` on the engine.
        """
        k = self._k
        ni = k._ni_of.get(top)
        if ni is None or ni not in k._root_adjacent_nis:
            return None
        is_leaf = k._is_leaf_l[ni]
        now = k.now
        if k._est:
            # Size estimates in play: the arriving job's ``size`` is its
            # masked estimate while queued jobs keep their true sizes,
            # so the single-key rank compare cannot express the engine's
            # mixed tuple compare.  Mirror it literally — same heap
            # array order, same live-remaining handling.
            if k._node_next[ni] <= now:  # root-adjacent: chain is (ni,)
                k._advance_node(ni, now)
            p_j = job.size
            r_j = job.release
            id_j = job.id
            total = p_j
            heap = k._heaps[ni]
            if not heap:
                return total
            rem = k._rem_l
            active = k._actives[ni]
            live = 0.0
            if active >= 0:
                live = k._arems[ni] - k._speed_l[ni] * (now - k._astarts[ni])
                if live < 0.0:
                    live = 0.0
            size_l = k._size_l
            p_leaf_l = k._p_leaf_l
            rel_l = k._rel_l
            id_l = k._id_l
            if k._enc_l[ni]:
                by_rank = k._by_rank
                indices = [by_rank[e] for e in heap]
            else:
                idx_of_id = k._idx_of_id
                indices = [idx_of_id[e[1]] for e in heap]
            for i in indices:
                p_i = p_leaf_l[i] if is_leaf else size_l[i]
                if (p_i, rel_l[i], id_l[i]) < (p_j, r_j, id_j):
                    total += live if i == active else rem[i]
                elif p_i > p_j:
                    total += p_j
            return total
        if is_leaf and not k._identical:
            return None  # per-leaf sizes: the global SJF rank is invalid
        if k._node_next[ni] <= now:  # root-adjacent: the chain is (ni,)
            k._advance_node(ni, now)
        sjf_rank = k._sjf_rank
        r_j = sjf_rank[k._idx_of_id[job.id]]
        p_j = job.size
        total = p_j
        heap = k._heaps[ni]
        if not heap:
            return total
        rem = k._rem_l
        active = k._actives[ni]
        live = 0.0
        if active >= 0:
            # The engine recomputes this inside its loop; every input is
            # loop-invariant, so hoisting it is float-identical.
            live = k._arems[ni] - k._speed_l[ni] * (now - k._astarts[ni])
            if live < 0.0:
                live = 0.0
        size_l = k._size_l
        p_leaf_l = k._p_leaf_l
        if k._enc_l[ni]:
            by_rank = k._by_rank
            if is_leaf:
                for e in heap:
                    i = by_rank[e]
                    if sjf_rank[i] < r_j:
                        total += live if i == active else rem[i]
                    elif p_leaf_l[i] > p_j:
                        total += p_j
            else:
                for e in heap:
                    i = by_rank[e]
                    if sjf_rank[i] < r_j:
                        total += live if i == active else rem[i]
                    elif size_l[i] > p_j:
                        total += p_j
        else:
            idx_of_id = k._idx_of_id
            for e in heap:
                i = idx_of_id[e[1]]
                if sjf_rank[i] < r_j:
                    total += live if i == active else rem[i]
                else:
                    p_i = p_leaf_l[i] if is_leaf else size_l[i]
                    if p_i > p_j:
                        total += p_j
        return total

    def _f_prime_value(self, job: Job, leaf: int) -> float | None:
        """``F'(j, v)`` over the alive set assigned to ``leaf``, in
        ascending-id order — the engine hot path's summation order."""
        k = self._k
        alive_here = k._alive_at_leaf.get(leaf)
        if alive_here is None:
            return None
        ni = k._ni_of[leaf]
        k._sync_chain(ni)
        p_jv = job.processing_on_leaf(leaf)
        total = p_jv
        r_j = job.release
        id_j = job.id
        idx_of_id = k._idx_of_id
        rem = k._rem_l
        p_leaf_l = k._p_leaf_l
        hop_l = k._hop_l
        path_ni_l = k._path_ni_l
        active = k._actives[ni]
        live = 0.0
        if active >= 0:
            live = k._arems[ni] - k._speed_l[ni] * (k.now - k._astarts[ni])
            if live < 0.0:
                live = 0.0
        jobs_l = k._jobs_l
        for jid in sorted(alive_here):
            i = idx_of_id[jid]
            other = jobs_l[i]
            p_iv = p_leaf_l[i]
            if hop_l[i] == len(path_ni_l[i]) - 1:  # physically at the leaf
                r = live if i == active else rem[i]
            else:  # still upstream: full leaf requirement remains
                r = p_iv
            if (p_iv, other.release, other.id) < (p_jv, r_j, id_j):
                total += r
            elif p_iv > p_jv:
                total += p_jv * r / p_iv
        return total


class NumpyEngine:
    """One simulation run on the SoA kernel.

    Accepts the same (keyword-only) construction surface as the subset
    of :class:`~repro.sim.engine.Engine` options the backend supports;
    unsupported options are rejected by :func:`simulate_numpy` /
    :func:`repro.sim.backends.simulate` before reaching here.
    """

    def __init__(
        self,
        instance: Instance,
        policy: AssignmentPolicy,
        speeds: SpeedProfile | None = None,
        *,
        priority: PriorityFn = sjf_priority,
        record_segments: bool = False,
        check_invariants: bool = False,
        max_events: int = 10_000_000,
        events: EventSchedule | None = None,
    ) -> None:
        self.instance = instance
        self.policy = policy
        self.speeds = speeds or SpeedProfile.uniform(1.0)
        self.priority = priority
        self.record_segments = record_segments
        self.check_invariants = check_invariants
        self.max_events = max_events
        self.now = 0.0
        if events is not None:
            events.validate_for(instance)
        self._dyn = events.events if events is not None else ()

        tree = instance.tree
        root = tree.root
        # Dense node index in preorder (parents before children) — the
        # topological order every full sweep uses.
        order = [v for v in tree.node_ids if v != root]
        self._node_order = order
        n_nodes = len(order)
        ni_of = {v: i for i, v in enumerate(order)}
        self._ni_of = ni_of
        self._nid_l = order
        self._is_leaf_l = [tree.node(v).is_leaf for v in order]
        self._speed_l = [self.speeds.speed_of(tree, v) for v in order]
        self._root_adjacent_ids = frozenset(tree.root_children)
        self._root_adjacent_nis = frozenset(ni_of[v] for v in tree.root_children)
        # Ancestor chain (root-adjacent .. node, inclusive), as dense
        # indices — the sync order for any single-node query.
        chain_of: list[tuple[int, ...]] = [()] * n_nodes
        for v in order:
            ni = ni_of[v]
            p = tree.parent(v)
            chain_of[ni] = (ni,) if p == root else chain_of[ni_of[p]] + (ni,)
        self._chain_of = chain_of

        # Per-node sweep state.  ``_node_next`` caches each node's
        # earliest outstanding event time (min of the active run's
        # finish and the pending head): a sync is one float compare
        # unless the node actually has work due.
        self._pendings: list[list] = [[] for _ in range(n_nodes)]
        self._pis = [0] * n_nodes
        self._heaps: list[list] = [[] for _ in range(n_nodes)]
        self._actives = [-1] * n_nodes
        self._astarts = [0.0] * n_nodes
        self._arems = [0.0] * n_nodes
        self._node_next = [_INF] * n_nodes
        # Dynamic-event state: per-node down flags (dense) plus the
        # node-id set the view exposes; cancellations record the job
        # *index* -> cancel instant.
        self._down_l = [False] * n_nodes
        self._down_ids: set[int] = set()
        self._cancelled: dict[int, float] = {}

        # Incremental congestion aggregates (same maintenance points as
        # the engine: release, settle, hop advance) — built lazily by
        # :meth:`_ensure_aggregates` on first use; ``None`` until then.
        self._through_count: list[int] | None = None
        self._through_volume: list[float] | None = None
        self._queue_volume: list[float] | None = None

        # ---- SoA job columns (batch-precomputed with numpy) ----------
        jobs = list(instance.jobs)
        n = len(jobs)
        self._jobs_l = jobs
        rel = np.array([j.release for j in jobs], dtype=float)
        size = np.array([j.size for j in jobs], dtype=float)
        ids = np.array([j.id for j in jobs], dtype=np.int64)
        self._rel_l = rel.tolist()
        self._size_l = size.tolist()
        self._id_l = ids.tolist()
        self._idx_of_id = {jid: i for i, jid in enumerate(self._id_l)}
        self._ftol_size_l = np.maximum(REMAINING_ATOL, REMAINING_RTOL * size).tolist()
        # Partial information: with declared estimates the precomputed
        # SJF ranks no longer encode the *policy-visible* priority of an
        # arriving job, so the rank-encoded fvalues fast paths switch to
        # the engine's explicit float-tuple comparisons (same heap
        # iteration order, same floats).
        self._est = any(j.size_estimate is not None for j in jobs)

        if priority is sjf_priority:
            self._prio_kind = 1
        elif priority is fifo_priority:
            self._prio_kind = 2
        else:
            self._prio_kind = 0
        self._identical = instance.setting is Setting.IDENTICAL

        # Total priority orders as integer ranks.  The SJF rank doubles
        # as the fvalues comparison order regardless of the node policy.
        sjf_order = np.lexsort((ids, rel, size))
        sjf_rank = np.empty(n, dtype=np.int64)
        sjf_rank[sjf_order] = np.arange(n)
        self._sjf_rank = sjf_rank.tolist()
        if self._prio_kind == 2:
            fifo_order = np.lexsort((ids, rel))
            fifo_rank = np.empty(n, dtype=np.int64)
            fifo_rank[fifo_order] = np.arange(n)
            self._rank = fifo_rank.tolist()
            self._by_rank = fifo_order.tolist()
            self._size_by_rank = size[fifo_order].tolist()
        else:
            self._rank = self._sjf_rank
            self._by_rank = sjf_order.tolist()
            self._size_by_rank = size[sjf_order].tolist()
        # Which nodes may use the encoded (int-rank) heap: the rank is a
        # per-run constant total order, valid wherever the node key is a
        # pure function of the job — everywhere for fifo, and everywhere
        # but unrelated leaves for sjf.  Generic callables always take
        # the tuple path.
        if self._prio_kind == 2:
            self._enc_l = [True] * n_nodes
        elif self._prio_kind == 1:
            self._enc_l = [
                (not leaf) or self._identical for leaf in self._is_leaf_l
            ]
        else:
            self._enc_l = [False] * n_nodes

        # Mutable job columns (python-list mirrors of the SoA layout).
        self._rem_l = [0.0] * n
        self._hop_l = [0] * n
        self._leaf_l = [-1] * n
        self._p_leaf_l = [0.0] * n
        self._ftol_leaf_l = [0.0] * n
        self._path_ids_l: list[tuple[int, ...]] = [()] * n
        self._path_ni_l: list[tuple[int, ...]] = [()] * n
        self._pathlen_l = [0] * n
        self._pos_of_l: list[dict[int, int]] = [{}] * n
        # Availability/completion timelines, pre-seeded at construction:
        # a job's first availability is exactly its release instant, so
        # the arrival path never touches either list.
        self._avail_l: list[list[float]] = [[r] for r in self._rel_l]
        self._comp_l: list[list[float]] = [[] for _ in range(n)]
        # Fractional-flow accounting: deficit_j = ∫ (1 - frac_j(t)) dt
        # accumulated at the job's leaf; prev_end is the end of the last
        # accounted leaf interval (starts at leaf availability).
        self._deficit_l = [0.0] * n
        self._prev_end_l = [0.0] * n

        self._alive: set[int] = set()
        self._alive_at_leaf: dict[int, set[int]] = {v: set() for v in tree.leaves}

        # Static per-leaf layouts + lazily cached origin layouts,
        # validated exactly as the engine's policy contract demands.
        self._leaf_layouts: dict[int, tuple[tuple[int, ...], tuple[int, ...], dict[int, int]]] = {}
        for leaf in tree.leaves:
            path = tree.processing_path(leaf)
            self._leaf_layouts[leaf] = (
                path,
                tuple(ni_of[v] for v in path),
                {v: i for i, v in enumerate(path)},
            )
        self._origin_layouts: dict[tuple[int, int], tuple[tuple[int, ...], tuple[int, ...], dict[int, int]]] = {}
        # tops-tuple -> dense entry indices (or None = outside the fast
        # path), memoising the batched-F hook's validity precheck; the
        # policy passes the same cached tuple every arrival.
        self._ftv_nis: dict[tuple[int, ...], tuple[int, ...] | None] = {}
        # layout-tuple -> resolved dense indices for the batched
        # least-loaded hook (same memoisation idea as _ftv_nis).
        self._llb_nis: dict[tuple, tuple | None] = {}

        self._num_events = 0
        self._segments: list[ScheduleSegment] | None = (
            [] if (record_segments or check_invariants) else None
        )
        self._view = NumpyView(self)
        self._finished = False

        # One-load prologue for the hot sweeps: every stable container
        # the per-event loops touch, unpacked in a single statement
        # instead of ~30 attribute lookups per call.  All entries are
        # mutated in place, never rebound (the lazily-built aggregates,
        # which *are* rebound, stay out).
        self._hot = (
            self._pendings, self._pis, self._heaps, self._actives,
            self._astarts, self._arems, self._speed_l, self._node_next,
            self._by_rank, self._idx_of_id, self._rem_l, self._hop_l,
            self._path_ni_l, self._size_l, self._id_l, self._rel_l,
            self._rank, self._p_leaf_l, self._is_leaf_l, self._enc_l,
            self._prev_end_l, self._deficit_l, self._comp_l,
            self._avail_l, self._alive, self._alive_at_leaf,
            self._leaf_l, self._ftol_leaf_l, self._ftol_size_l,
            self._nid_l, self._segments, self._pathlen_l, self._down_l,
        )

    # ------------------------------------------------------------------
    # helpers shared with the view
    # ------------------------------------------------------------------
    def _live_processed(self, ni: int) -> float:
        if self._actives[ni] < 0:
            return 0.0
        elapsed = self.now - self._astarts[ni]
        if elapsed <= 0.0:
            return 0.0
        done = self._speed_l[ni] * elapsed
        arem = self._arems[ni]
        return done if done < arem else arem

    def _live_remaining(self, i: int) -> float:
        hop = self._hop_l[i]
        if hop >= len(self._path_ni_l[i]):
            return 0.0
        ni = self._path_ni_l[i][hop]
        if self._actives[ni] == i:
            r = self._arems[ni] - self._speed_l[ni] * (self.now - self._astarts[ni])
            return r if r > 0.0 else 0.0
        return self._rem_l[i]

    def _sync_chain(self, ni: int) -> None:
        t = self.now
        node_next = self._node_next
        for a in self._chain_of[ni]:
            if node_next[a] <= t:
                self._advance_node(a, t)

    def _sync_path(self, i: int) -> None:
        t = self.now
        node_next = self._node_next
        for a in self._path_ni_l[i]:
            if node_next[a] <= t:
                self._advance_node(a, t)

    def _sync_all(self) -> None:
        t = self.now
        node_next = self._node_next
        for ni in range(len(self._nid_l)):
            if node_next[ni] <= t:
                self._advance_node(ni, t)

    def _ensure_aggregates(self) -> None:
        """Build the O(1) congestion aggregates on first use.

        Rebuilt from the alive set at a globally-synced instant; from
        then on every advance/admission maintains them incrementally at
        the engine's own mutation points.  Policies that read them do so
        on every arrival (the first included, when no work has been
        processed yet), so the maintained floats match the engine's
        increment-for-increment.
        """
        if self._through_count is not None:
            return
        self._sync_all()
        n_nodes = len(self._nid_l)
        tc = [0] * n_nodes
        tv = [0.0] * n_nodes
        qv = [0.0] * n_nodes
        idx_of_id = self._idx_of_id
        hop_l = self._hop_l
        path_ni_l = self._path_ni_l
        rem = self._rem_l
        size_l = self._size_l
        p_leaf_l = self._p_leaf_l
        is_leaf_l = self._is_leaf_l
        for jid in self._alive:
            i = idx_of_id[jid]
            path = path_ni_l[i]
            h = hop_l[i]
            qv[path[h]] += rem[i]
            for pos in range(h, len(path)):
                ni = path[pos]
                tc[ni] += 1
                if pos == h:
                    tv[ni] += rem[i]
                else:
                    tv[ni] += p_leaf_l[i] if is_leaf_l[ni] else size_l[i]
        self._through_count = tc
        self._through_volume = tv
        self._queue_volume = qv

    # ------------------------------------------------------------------
    # emission key (generic-priority path only; the built-in orderings
    # are inlined at the emission sites)
    # ------------------------------------------------------------------
    def _key_for(self, ni: int, i: int):
        """The heap key of job index ``i`` on node ``ni``."""
        if self._enc_l[ni]:
            return self._rank[i]
        if self._prio_kind == 1:  # unrelated leaf
            return (self._p_leaf_l[i], self._rel_l[i], self._id_l[i])
        return self.priority(self.instance, self._jobs_l[i], self._nid_l[ni])

    # ------------------------------------------------------------------
    # the batched per-node sweep
    # ------------------------------------------------------------------
    def _advance_node(self, ni: int, limit: float) -> None:
        """Run node ``ni`` through every completion and admission up to
        and including ``limit`` (ancestors must already be synced there).

        Run accounting replicates :class:`~repro.sim.engine.Engine`
        verbatim: the active run is settled only when an admission
        outranks it; a completion fires at ``run_start + rem/speed``
        (ties with admissions resolve completion-first, matching the
        engine's ``next_completion <= next_arrival``); finished residuals
        at the heap top are drained — completed at the admission
        instant, residual dropped — before the newcomer is pushed.
        """
        (pendings, pis, heaps, actives, astarts, arems, speed_l,
         node_next, by_rank, idx_of_id, rem, hop_l, path_ni_l, size_l,
         id_l, rel_l, rank, p_leaf_l, is_leaf_l, enc_l, prev_end,
         deficit, comp, avail, alive, alive_at_leaf, leaf_l,
         ftol_leaf_l, ftol_size_l, nid_l, segs, pathlen_l,
         down_l) = self._hot
        if down_l[ni]:
            # A down node performs no work: its sweep degenerates to
            # consuming due pending admissions into the heap (arrivals
            # keep queueing through an outage — the engine's down-mode
            # ``_enqueue``).  Nothing arms; the repair handler drains
            # and rearms.
            pend = pendings[ni]
            pi = pis[ni]
            heap = heaps[ni]
            enc = enc_l[ni]
            agg = self._through_count is not None
            while pi < len(pend) and pend[pi][0] <= limit:
                _t, key, i = pend[pi]
                pi += 1
                _heappush(heap, key if enc else (key, id_l[i]))
                if agg:
                    self._queue_volume[ni] += rem[i]
            pis[ni] = pi
            node_next[ni] = pend[pi][0] if pi < len(pend) else _INF
            return
        pend = pendings[ni]
        pi = pis[ni]
        heap = heaps[ni]
        active = actives[ni]
        astart = astarts[ni]
        arem = arems[ni]
        speed = speed_l[ni]
        is_leaf = is_leaf_l[ni]
        enc = enc_l[ni]
        nid = nid_l[ni]
        tc = self._through_count
        agg = tc is not None
        if agg:
            tv = self._through_volume
            qv = self._queue_volume
        pk1 = self._prio_kind == 1
        ftol = ftol_leaf_l if is_leaf else ftol_size_l
        npend = len(pend)
        num_events = self._num_events
        max_events = self.max_events

        if pi >= npend:
            # Completion-only sweep.  With no outstanding admissions —
            # true on every call for root-adjacent nodes, whose parent
            # is the infinite-capacity root and so never emits — none
            # can appear mid-loop either (emissions land on *other*
            # nodes), so the pending/t_next machinery vanishes.  The
            # completion body below is a verbatim copy of the general
            # loop's (same float ops in the same order: bit-parity with
            # the reference engine depends on it).
            while active >= 0:
                finish = astart + arem / speed
                if finish > limit:
                    break
                _heappop(heap)
                if segs is not None and finish > astart:
                    segs.append(
                        ScheduleSegment(nid, id_l[active], astart, finish)
                    )
                if agg:
                    residual = rem[active]
                    tc[ni] -= 1
                    tv[ni] -= residual
                    qv[ni] -= residual
                rem[active] = 0.0
                comp[active].append(finish)
                if is_leaf:
                    pl = p_leaf_l[active]
                    deficit[active] += (pl - arem) / pl * (
                        astart - prev_end[active]
                    ) + (2.0 * pl - arem) / (2.0 * pl) * (finish - astart)
                h = hop_l[active] + 1
                hop_l[active] = h
                if h < pathlen_l[active]:
                    nxt = path_ni_l[active][h]
                    if is_leaf_l[nxt]:
                        rem[active] = p_leaf_l[active]
                        prev_end[active] = finish
                    else:
                        rem[active] = size_l[active]
                    avail[active].append(finish)
                    if enc_l[nxt]:
                        if (
                            actives[nxt] < 0
                            and not heaps[nxt]
                            and pis[nxt] >= len(pendings[nxt])
                            and not down_l[nxt]
                        ):
                            heaps[nxt].append(rank[active])
                            actives[nxt] = active
                            astarts[nxt] = finish
                            r = rem[active]
                            arems[nxt] = r
                            node_next[nxt] = finish + r / speed_l[nxt]
                            if agg:
                                qv[nxt] += r
                        else:
                            pendings[nxt].append(
                                (finish, rank[active], active)
                            )
                            if finish < node_next[nxt]:
                                node_next[nxt] = finish
                    elif pk1:
                        pendings[nxt].append(
                            (
                                finish,
                                (p_leaf_l[active], rel_l[active], id_l[active]),
                                active,
                            )
                        )
                        if finish < node_next[nxt]:
                            node_next[nxt] = finish
                    else:
                        pendings[nxt].append(
                            (finish, self._key_for(nxt, active), active)
                        )
                        if finish < node_next[nxt]:
                            node_next[nxt] = finish
                else:
                    jid = id_l[active]
                    alive.discard(jid)
                    alive_at_leaf[leaf_l[active]].discard(jid)
                num_events += 1
                if heap:
                    top = heap[0]
                    active = by_rank[top] if enc else idx_of_id[top[1]]
                    astart = finish
                    arem = rem[active]
                else:
                    active = -1
            actives[ni] = active
            astarts[ni] = astart
            arems[ni] = arem
            self._num_events = num_events
            if num_events > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; "
                    "likely a policy or engine bug"
                )
            node_next[ni] = astart + arem / speed if active >= 0 else _INF
            return

        while True:
            t_next = pend[pi][0] if pi < npend else _INF
            if active >= 0:
                finish = astart + arem / speed
                if finish <= t_next and finish <= limit:
                    # -- completion (fused settle + hop advance) -------
                    _heappop(heap)
                    if segs is not None and finish > astart:
                        segs.append(
                            ScheduleSegment(nid, id_l[active], astart, finish)
                        )
                    if agg:
                        residual = rem[active]  # == arem: frozen while active
                        tc[ni] -= 1
                        tv[ni] -= residual
                        qv[ni] -= residual
                    rem[active] = 0.0
                    comp[active].append(finish)
                    if is_leaf:
                        pl = p_leaf_l[active]
                        deficit[active] += (pl - arem) / pl * (
                            astart - prev_end[active]
                        ) + (2.0 * pl - arem) / (2.0 * pl) * (finish - astart)
                    h = hop_l[active] + 1
                    hop_l[active] = h
                    if h < pathlen_l[active]:
                        nxt = path_ni_l[active][h]
                        if is_leaf_l[nxt]:
                            rem[active] = p_leaf_l[active]
                            prev_end[active] = finish
                        else:
                            rem[active] = size_l[active]
                        avail[active].append(finish)
                        if enc_l[nxt]:
                            if (
                                actives[nxt] < 0
                                and not heaps[nxt]
                                and pis[nxt] >= len(pendings[nxt])
                                and not down_l[nxt]
                            ):
                                # Fused admission: the child is idle with
                                # every prior admission consumed, so the
                                # push-settle-drain-rearm round trip
                                # degenerates to placing the run directly
                                # (state-identical, minus a pending-list
                                # append and a later sweep wake-up).
                                heaps[nxt].append(rank[active])
                                actives[nxt] = active
                                astarts[nxt] = finish
                                r = rem[active]
                                arems[nxt] = r
                                node_next[nxt] = finish + r / speed_l[nxt]
                                if agg:
                                    qv[nxt] += r
                            else:
                                pendings[nxt].append(
                                    (finish, rank[active], active)
                                )
                                if finish < node_next[nxt]:
                                    node_next[nxt] = finish
                        elif pk1:
                            pendings[nxt].append(
                                (
                                    finish,
                                    (p_leaf_l[active], rel_l[active], id_l[active]),
                                    active,
                                )
                            )
                            if finish < node_next[nxt]:
                                node_next[nxt] = finish
                        else:
                            pendings[nxt].append(
                                (finish, self._key_for(nxt, active), active)
                            )
                            if finish < node_next[nxt]:
                                node_next[nxt] = finish
                    else:
                        jid = id_l[active]
                        alive.discard(jid)
                        alive_at_leaf[leaf_l[active]].discard(jid)
                    num_events += 1
                    # Inlined rearm *without* drain: a pre-finished new
                    # top completes via its own (immediate) completion.
                    if heap:
                        top = heap[0]
                        active = by_rank[top] if enc else idx_of_id[top[1]]
                        astart = finish
                        arem = rem[active]
                    else:
                        active = -1
                    continue
            if t_next > limit or pi >= npend:
                break
            # -- admission --------------------------------------------
            t, key, i = pend[pi]
            pi += 1
            if active < 0:
                if not heap:
                    # Idle, fully-drained node (the common drain shape at
                    # sub-critical load): the newcomer starts at once —
                    # push-drain-rearm degenerates to a plain append.
                    heap.append(key if enc else (key, id_l[i]))
                    if agg:
                        qv[ni] += rem[i]
                    active = i
                    astart = t
                    arem = rem[i]
                    continue
            elif (heap[0] if enc else heap[0][0]) < key:
                # The incumbent outranks the newcomer: plain push,
                # the run continues unbroken (no settle, no segment
                # split) — the engine's non-preempting enqueue.
                _heappush(heap, key if enc else (key, id_l[i]))
                if agg:
                    qv[ni] += rem[i]
                continue
            else:
                # Settle the preempted run.
                elapsed = t - astart
                if elapsed > 0.0:
                    new_rem = arem - speed * elapsed
                    if new_rem < 0.0:
                        new_rem = 0.0
                    if agg:
                        delta = arem - new_rem
                        if delta != 0.0:
                            tv[ni] -= delta
                            qv[ni] -= delta
                    rem[active] = new_rem
                    if segs is not None:
                        segs.append(ScheduleSegment(nid, id_l[active], astart, t))
                    if is_leaf:
                        pl = p_leaf_l[active]
                        deficit[active] += (pl - arem) / pl * (
                            astart - prev_end[active]
                        ) + (2.0 * pl - arem - new_rem) / (2.0 * pl) * (t - astart)
                        prev_end[active] = t
                else:
                    rem[active] = arem
                active = -1
            # Drain finished jobs stranded at the heap top.
            while heap:
                top = heap[0]
                ti = by_rank[top] if enc else idx_of_id[top[1]]
                if rem[ti] > ftol[ti]:
                    break
                _heappop(heap)
                residual = rem[ti]
                if agg:
                    tc[ni] -= 1
                    tv[ni] -= residual
                    qv[ni] -= residual
                rem[ti] = 0.0
                comp[ti].append(t)
                if is_leaf:
                    pl = p_leaf_l[ti]
                    deficit[ti] += (pl - residual) / pl * (t - prev_end[ti])
                hop_l[ti] += 1
                h = hop_l[ti]
                if h < pathlen_l[ti]:
                    nxt = path_ni_l[ti][h]
                    if is_leaf_l[nxt]:
                        rem[ti] = p_leaf_l[ti]
                        prev_end[ti] = t
                    else:
                        rem[ti] = size_l[ti]
                    avail[ti].append(t)
                    if enc_l[nxt]:
                        if (
                            actives[nxt] < 0
                            and not heaps[nxt]
                            and pis[nxt] >= len(pendings[nxt])
                            and not down_l[nxt]
                        ):
                            # Fused admission (see the completion branch).
                            heaps[nxt].append(rank[ti])
                            actives[nxt] = ti
                            astarts[nxt] = t
                            r = rem[ti]
                            arems[nxt] = r
                            node_next[nxt] = t + r / speed_l[nxt]
                            if agg:
                                qv[nxt] += r
                        else:
                            pendings[nxt].append((t, rank[ti], ti))
                            if t < node_next[nxt]:
                                node_next[nxt] = t
                    elif pk1:
                        pendings[nxt].append(
                            (t, (p_leaf_l[ti], rel_l[ti], id_l[ti]), ti)
                        )
                        if t < node_next[nxt]:
                            node_next[nxt] = t
                    else:
                        pendings[nxt].append((t, self._key_for(nxt, ti), ti))
                        if t < node_next[nxt]:
                            node_next[nxt] = t
                else:
                    jid = id_l[ti]
                    alive.discard(jid)
                    alive_at_leaf[leaf_l[ti]].discard(jid)
            # Push the newcomer and rearm the (possibly new) top.
            _heappush(heap, key if enc else (key, id_l[i]))
            if agg:
                qv[ni] += rem[i]
            top = heap[0]
            active = by_rank[top] if enc else idx_of_id[top[1]]
            astart = t
            arem = rem[active]

        pis[ni] = pi
        actives[ni] = active
        astarts[ni] = astart
        arems[ni] = arem
        self._num_events = num_events
        # The runaway backstop, hoisted out of the completion loop: a
        # single call's iteration count is bounded (emissions go to
        # *other* nodes), so checking at the call boundary still trips
        # on any global cascade, just without a per-event compare.
        if num_events > max_events:
            raise SimulationError(
                f"exceeded max_events={max_events}; "
                "likely a policy or engine bug"
            )
        # Recompute the node's next-event time: both candidates are
        # strictly past ``limit`` now (the loop consumed everything due).
        if active >= 0:
            nn = astart + arem / speed
            if pi < npend and pend[pi][0] < nn:
                nn = pend[pi][0]
        elif pi < npend:
            nn = pend[pi][0]
        else:
            nn = _INF
        node_next[ni] = nn

    # ------------------------------------------------------------------
    # direct admission (arrivals)
    # ------------------------------------------------------------------
    def _admit_now(self, ni: int, t: float, i: int) -> None:
        """Admit job index ``i`` on node ``ni`` at the current instant
        ``t`` — the node must already be synced to ``t``.

        This is the arrival-side twin of :meth:`_advance_node`'s
        admission branch (the engine's ``_enqueue``): plain push when
        the incumbent outranks the newcomer, else settle, drain
        finished top residuals, push, rearm.  Bypassing the pending
        list keeps it reserved for parent emissions, which arrive
        pre-sorted — no insertion sorting anywhere.
        """
        heap = self._heaps[ni]
        enc = self._enc_l[ni]
        rem = self._rem_l
        id_l = self._id_l
        agg = self._through_count is not None
        if enc:
            key = self._rank[i]
            entry = key
        else:
            if self._prio_kind == 1:  # unrelated leaf
                key = (self._p_leaf_l[i], self._rel_l[i], id_l[i])
            else:
                key = self.priority(self.instance, self._jobs_l[i], self._nid_l[ni])
            entry = (key, id_l[i])
        if self._down_l[ni]:
            # Downed node: park the newcomer in the queue.  Nothing
            # arms while the node is out, so its next event stays the
            # pending head (untouched here).
            _heappush(heap, entry)
            if agg:
                self._queue_volume[ni] += rem[i]
            return
        active = self._actives[ni]
        speed = self._speed_l[ni]
        is_leaf = self._is_leaf_l[ni]
        if active >= 0:
            astart = self._astarts[ni]
            arem = self._arems[ni]
            if (heap[0] if enc else heap[0][0]) < key:
                # Incumbent outranks the newcomer: run continues
                # unbroken, so the node's next event is unchanged.
                _heappush(heap, entry)
                if agg:
                    self._queue_volume[ni] += rem[i]
                return
            # Settle the preempted run.
            elapsed = t - astart
            if elapsed > 0.0:
                new_rem = arem - speed * elapsed
                if new_rem < 0.0:
                    new_rem = 0.0
                if agg:
                    delta = arem - new_rem
                    if delta != 0.0:
                        self._through_volume[ni] -= delta
                        self._queue_volume[ni] -= delta
                rem[active] = new_rem
                if self._segments is not None:
                    self._segments.append(
                        ScheduleSegment(self._nid_l[ni], id_l[active], astart, t)
                    )
                if is_leaf:
                    pl = self._p_leaf_l[active]
                    self._deficit_l[active] += (pl - arem) / pl * (
                        astart - self._prev_end_l[active]
                    ) + (2.0 * pl - arem - new_rem) / (2.0 * pl) * (t - astart)
                    self._prev_end_l[active] = t
            else:
                rem[active] = arem
        by_rank = self._by_rank
        idx_of_id = self._idx_of_id
        # Drain finished jobs stranded at the heap top.
        if heap:
            ftol = self._ftol_leaf_l if is_leaf else self._ftol_size_l
            node_next = self._node_next
            while heap:
                top = heap[0]
                ti = by_rank[top] if enc else idx_of_id[top[1]]
                if rem[ti] > ftol[ti]:
                    break
                _heappop(heap)
                residual = rem[ti]
                if agg:
                    self._through_count[ni] -= 1
                    self._through_volume[ni] -= residual
                    self._queue_volume[ni] -= residual
                rem[ti] = 0.0
                self._comp_l[ti].append(t)
                if is_leaf:
                    pl = self._p_leaf_l[ti]
                    self._deficit_l[ti] += (
                        (pl - residual) / pl * (t - self._prev_end_l[ti])
                    )
                self._hop_l[ti] += 1
                h = self._hop_l[ti]
                path = self._path_ni_l[ti]
                if h < len(path):
                    nxt = path[h]
                    if self._is_leaf_l[nxt]:
                        rem[ti] = self._p_leaf_l[ti]
                        self._prev_end_l[ti] = t
                    else:
                        rem[ti] = self._size_l[ti]
                    self._avail_l[ti].append(t)
                    self._pendings[nxt].append((t, self._key_for(nxt, ti), ti))
                    if t < node_next[nxt]:
                        node_next[nxt] = t
                else:
                    jid = id_l[ti]
                    self._alive.discard(jid)
                    self._alive_at_leaf[self._leaf_l[ti]].discard(jid)
        # Push the newcomer and rearm the (possibly new) top.
        _heappush(heap, entry)
        if agg:
            self._queue_volume[ni] += rem[i]
        top = heap[0]
        active = by_rank[top] if enc else idx_of_id[top[1]]
        self._actives[ni] = active
        self._astarts[ni] = t
        arem = rem[active]
        self._arems[ni] = arem
        nn = t + arem / speed
        pend = self._pendings[ni]
        pi = self._pis[ni]
        if pi < len(pend) and pend[pi][0] < nn:
            nn = pend[pi][0]
        self._node_next[ni] = nn

    # ------------------------------------------------------------------
    # dynamic events
    # ------------------------------------------------------------------
    def _settle_active(self, ni: int, t: float) -> int:
        """Settle node ``ni``'s active run at ``t`` (the preemption
        algebra of :meth:`_admit_now`, shared by the dynamic-event
        handlers) and return the settled job index, or ``-1`` when the
        node was idle.  Leaves the heap and ``_actives`` untouched."""
        active = self._actives[ni]
        if active < 0:
            return -1
        astart = self._astarts[ni]
        arem = self._arems[ni]
        elapsed = t - astart
        rem = self._rem_l
        if elapsed > 0.0:
            speed = self._speed_l[ni]
            new_rem = arem - speed * elapsed
            if new_rem < 0.0:
                new_rem = 0.0
            if self._through_count is not None:
                delta = arem - new_rem
                if delta != 0.0:
                    self._through_volume[ni] -= delta
                    self._queue_volume[ni] -= delta
            rem[active] = new_rem
            if self._segments is not None:
                self._segments.append(
                    ScheduleSegment(
                        self._nid_l[ni], self._id_l[active], astart, t
                    )
                )
            if self._is_leaf_l[ni]:
                pl = self._p_leaf_l[active]
                self._deficit_l[active] += (pl - arem) / pl * (
                    astart - self._prev_end_l[active]
                ) + (2.0 * pl - arem - new_rem) / (2.0 * pl) * (t - astart)
                self._prev_end_l[active] = t
        else:
            rem[active] = arem
        return active

    def _drain_tops(self, ni: int, t: float) -> None:
        """Complete zero-remaining jobs stranded at the heap top and
        forward them (the drain loop of :meth:`_admit_now`, shared by
        the dynamic-event handlers)."""
        heap = self._heaps[ni]
        if not heap:
            return
        enc = self._enc_l[ni]
        rem = self._rem_l
        id_l = self._id_l
        agg = self._through_count is not None
        is_leaf = self._is_leaf_l[ni]
        by_rank = self._by_rank
        idx_of_id = self._idx_of_id
        ftol = self._ftol_leaf_l if is_leaf else self._ftol_size_l
        node_next = self._node_next
        while heap:
            top = heap[0]
            ti = by_rank[top] if enc else idx_of_id[top[1]]
            if rem[ti] > ftol[ti]:
                break
            _heappop(heap)
            residual = rem[ti]
            if agg:
                self._through_count[ni] -= 1
                self._through_volume[ni] -= residual
                self._queue_volume[ni] -= residual
            rem[ti] = 0.0
            self._comp_l[ti].append(t)
            if is_leaf:
                pl = self._p_leaf_l[ti]
                self._deficit_l[ti] += (
                    (pl - residual) / pl * (t - self._prev_end_l[ti])
                )
            self._hop_l[ti] += 1
            h = self._hop_l[ti]
            path = self._path_ni_l[ti]
            if h < len(path):
                nxt = path[h]
                if self._is_leaf_l[nxt]:
                    rem[ti] = self._p_leaf_l[ti]
                    self._prev_end_l[ti] = t
                else:
                    rem[ti] = self._size_l[ti]
                self._avail_l[ti].append(t)
                self._pendings[nxt].append((t, self._key_for(nxt, ti), ti))
                if t < node_next[nxt]:
                    node_next[nxt] = t
            else:
                jid = id_l[ti]
                self._alive.discard(jid)
                self._alive_at_leaf[self._leaf_l[ti]].discard(jid)

    def _rearm(self, ni: int, t: float) -> None:
        """Arm the heap top (if any) at ``t`` and recompute the node's
        next-event time."""
        heap = self._heaps[ni]
        if heap:
            top = heap[0]
            active = (
                self._by_rank[top]
                if self._enc_l[ni]
                else self._idx_of_id[top[1]]
            )
            self._actives[ni] = active
            self._astarts[ni] = t
            arem = self._rem_l[active]
            self._arems[ni] = arem
            nn = t + arem / self._speed_l[ni]
        else:
            self._actives[ni] = -1
            nn = _INF
        pend = self._pendings[ni]
        pi = self._pis[ni]
        if pi < len(pend) and pend[pi][0] < nn:
            nn = pend[pi][0]
        self._node_next[ni] = nn

    def _apply_dyn(self, ev) -> None:
        """Apply one dynamic event at a global sync barrier.

        Mirrors the engine's tie order: ``_sync_all`` first processes
        every completion/admission due at or before ``ev.time``, then
        the event handler mutates the (now-current) state."""
        self.now = ev.time
        self._sync_all()
        if isinstance(ev, NodeDown):
            self._on_down(ev.node, ev.time)
        elif isinstance(ev, Cancel):
            self._on_cancel(ev.job_id, ev.time)
        else:
            self._on_up(ev.node, ev.time)

    def _on_down(self, node: int, t: float) -> None:
        ni = self._ni_of[node]
        if self._settle_active(ni, t) >= 0:
            self._actives[ni] = -1
            self._drain_tops(ni, t)
        self._down_l[ni] = True
        self._down_ids.add(node)
        # Nothing arms while down: the only future event the node can
        # see is a parent emission landing in its pending list.
        pend = self._pendings[ni]
        pi = self._pis[ni]
        self._node_next[ni] = pend[pi][0] if pi < len(pend) else _INF

    def _on_up(self, node: int, t: float) -> None:
        ni = self._ni_of[node]
        self._down_l[ni] = False
        self._down_ids.discard(node)
        self._drain_tops(ni, t)
        self._rearm(ni, t)

    def _on_cancel(self, job_id: int, t: float) -> None:
        i = self._idx_of_id.get(job_id)
        if i is None or job_id not in self._alive:
            return  # unknown, not yet admitted, or already terminal
        hop = self._hop_l[i]
        ni = self._path_ni_l[i][hop]
        heap = self._heaps[ni]
        enc = self._enc_l[ni]
        rem = self._rem_l
        agg = self._through_count is not None
        was_active = self._actives[ni] == i
        if was_active:
            self._settle_active(ni, t)
            _heappop(heap)
            self._actives[ni] = -1
        else:
            # Queued (or parked on a downed node): swap-remove plus
            # heapify, exactly the engine's queue surgery — the active
            # run (if any) keeps its armed completion.
            if enc:
                pos = heap.index(self._rank[i])
            else:
                pos = next(
                    p for p, e in enumerate(heap) if e[1] == job_id
                )
            last = heap.pop()
            if pos < len(heap):
                heap[pos] = last
                _heapify(heap)
        rem_i = rem[i]
        if agg:
            # Unwind the job's share of every aggregate it still
            # touches: its settled remainder here, its untouched quanta
            # downstream.
            self._queue_volume[ni] -= rem_i
            tc = self._through_count
            tv = self._through_volume
            path = self._path_ni_l[i]
            size = self._size_l[i]
            for pos in range(hop, len(path)):
                v = path[pos]
                tc[v] -= 1
                if pos == hop:
                    tv[v] -= rem_i
                elif self._is_leaf_l[v]:
                    tv[v] -= self._p_leaf_l[i]
                else:
                    tv[v] -= size
        if self._is_leaf_l[ni]:
            # Close out the fractional-flow deficit: the fraction is
            # ``rem / p_leaf`` and has been constant since the last
            # settle, so the integrand over the open window is exact.
            pl = self._p_leaf_l[i]
            self._deficit_l[i] += (
                (pl - rem_i) / pl * (t - self._prev_end_l[i])
            )
        rem[i] = 0.0
        self._hop_l[i] = self._pathlen_l[i]
        self._alive.discard(job_id)
        self._alive_at_leaf[self._leaf_l[i]].discard(job_id)
        self._cancelled[i] = t
        if was_active:
            self._drain_tops(ni, t)
            self._rearm(ni, t)

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------
    def _layout_for(
        self, job: Job, leaf: int
    ) -> tuple[tuple[int, ...], tuple[int, ...], dict[int, int]]:
        origin = job.origin
        tree = self.instance.tree
        if origin is None or origin == tree.root:
            layout = self._leaf_layouts.get(leaf)
            if layout is None:
                raise AssignmentError(
                    f"policy assigned job {job.id} to non-leaf node {leaf!r}"
                )
            return layout
        if leaf not in self._leaf_layouts:
            raise AssignmentError(
                f"policy assigned job {job.id} to non-leaf node {leaf!r}"
            )
        key = (origin, leaf)
        cached = self._origin_layouts.get(key)
        if cached is None:
            try:
                path = self.instance.processing_path_for(job, leaf)
            except TopologyError as exc:
                raise AssignmentError(
                    f"policy assigned job {job.id} to leaf {leaf} outside its "
                    f"origin's subtree: {exc}"
                ) from exc
            if not path:
                raise AssignmentError(
                    f"job {job.id}: empty processing path to leaf {leaf}"
                )
            cached = (
                path,
                tuple(self._ni_of[v] for v in path),
                {v: i for i, v in enumerate(path)},
            )
            self._origin_layouts[key] = cached
        return cached

    def _handle_arrival(self, job: Job) -> None:
        now = self.now
        # Policies see the masked job: the size estimate (when present)
        # substitutes for the true size, which is revealed only at
        # completion — identical to the engine's information model.
        leaf = self.policy.assign(self._view, job.masked(), now)
        origin = job.origin
        if origin is None or origin == self.instance.tree.root:
            layout = self._leaf_layouts.get(leaf)
            if layout is None:
                raise AssignmentError(
                    f"policy assigned job {job.id} to non-leaf node {leaf!r}"
                )
            path_ids, path_ni, pos_of = layout
        else:
            path_ids, path_ni, pos_of = self._layout_for(job, leaf)
        p_leaf = (
            job.size if job.leaf_sizes is None else job.processing_on_leaf(leaf)
        )
        if not math.isfinite(p_leaf):
            raise AssignmentError(
                f"policy assigned job {job.id} to forbidden leaf {leaf} (p=inf)"
            )
        (pendings, pis, heaps, actives, astarts, arems, speed_l,
         node_next, by_rank, idx_of_id, rem, hop_l, path_ni_l, size_l,
         id_l, rel_l, rank, p_leaf_l, is_leaf_l, enc_l, prev_end,
         deficit, comp, avail, alive, alive_at_leaf, leaf_l,
         ftol_leaf_l, ftol_size_l, nid_l, segs, pathlen_l,
         down_l) = self._hot
        jid = job.id
        i = idx_of_id[jid]
        leaf_l[i] = leaf
        p_leaf_l[i] = p_leaf
        ftol = REMAINING_RTOL * p_leaf
        ftol_leaf_l[i] = ftol if ftol > REMAINING_ATOL else REMAINING_ATOL
        self._path_ids_l[i] = path_ids
        path_ni_l[i] = path_ni
        pathlen_l[i] = len(path_ni)
        self._pos_of_l[i] = pos_of
        # hop/avail/comp need no writes here: hop is 0 from construction
        # (a kernel runs once) and avail/comp are pre-seeded with
        # [release] / [] — this instant's exact values.
        alive.add(jid)
        alive_at_leaf[leaf].add(jid)

        # Release mutation point for the congestion aggregates.
        tc = self._through_count
        if tc is not None:
            size = job.size
            tv = self._through_volume
            for ni in path_ni:
                tc[ni] += 1
                tv[ni] += size
            if p_leaf != size:
                tv[path_ni[-1]] += p_leaf - size

        first = path_ni[0]
        if is_leaf_l[first]:
            rem[i] = p_leaf
            prev_end[i] = now
        else:
            rem[i] = job.size
        for a in self._chain_of[first]:
            if node_next[a] <= now:
                self._advance_node(a, now)
        # Inlined fast admission paths (the two cases that dominate the
        # arrival phase); anything involving settles or finished-top
        # drains goes through the full :meth:`_admit_now`.
        if enc_l[first] and not down_l[first]:
            active = actives[first]
            heap = heaps[first]
            if active >= 0:
                key = rank[i]
                if heap[0] < key:
                    # Incumbent outranks the newcomer: plain push, run
                    # continues unbroken, node_next unchanged.
                    _heappush(heap, key)
                    if tc is not None:
                        self._queue_volume[first] += rem[i]
                    return
            elif not heap:
                # Idle, fully-drained node: the newcomer starts at once.
                heap.append(rank[i])
                actives[first] = i
                astarts[first] = now
                r = rem[i]
                arems[first] = r
                if tc is not None:
                    self._queue_volume[first] += r
                nn = now + r / speed_l[first]
                pend = pendings[first]
                pi = pis[first]
                if pi < len(pend) and pend[pi][0] < nn:
                    nn = pend[pi][0]
                node_next[first] = nn
                return
        self._admit_now(first, now, i)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, *, until: float | None = None) -> SimulationResult:
        if self._finished:
            raise SimulationError("a NumpyEngine instance can only run once")
        self._finished = True
        if until is not None:
            raise SimulationError(
                "the numpy backend does not support bounded horizons; "
                "use backend='python' for until=..."
            )

        handle = self._handle_arrival
        dyn = self._dyn
        di = 0
        ndyn = len(dyn)
        for job in self._jobs_l:
            # Dynamic events precede same-time arrivals (the engine's
            # tie order: completions <= dyn events <= arrivals).
            while di < ndyn and dyn[di].time <= job.release:
                self._apply_dyn(dyn[di])
                di += 1
            self.now = job.release
            handle(job)
        while di < ndyn:
            self._apply_dyn(dyn[di])
            di += 1
        # Arrivals and dynamic events count exactly as on the engine;
        # adding them in one step keeps the final total identical while
        # sparing the loop a counter read-modify-write per item.
        self._num_events += len(self._jobs_l) + ndyn

        # Final drain: preorder guarantees every node's parent empties
        # first, so one pass completes all in-flight work.
        for ni in range(len(self._nid_l)):
            self._advance_node(ni, _INF)

        # Per-job exact integrals, summed in arrival order.
        frac = 0.0
        alive_integral = 0.0
        records: dict[int, JobRecord] = {}
        for i, job in enumerate(self._jobs_l):
            ct = self._cancelled.get(i)
            rec = JobRecord(
                job_id=job.id,
                release=job.release,
                leaf=self._leaf_l[i],
                path=self._path_ids_l[i],
                available_at=self._avail_l[i],
                completed_at=self._comp_l[i],
                cancelled_at=ct,
                size_estimate=job.size_estimate,
            )
            records[job.id] = rec
            if ct is not None:
                # Truncated model: a cancelled job contributes its flow
                # up to the cancel instant, fractional deficit included.
                flow = ct - job.release
                alive_integral += flow
                frac += flow - self._deficit_l[i]
            elif len(self._comp_l[i]) == len(self._path_ids_l[i]) and self._comp_l[i]:
                flow = self._comp_l[i][-1] - job.release
                alive_integral += flow
                frac += flow - self._deficit_l[i]

        # The lazy sweeps append segments in per-node batches, not global
        # event order; canonicalize so the output is stable and easy to
        # diff against the python engine's (same multiset, sorted).
        if self._segments is not None:
            self._segments.sort(key=lambda s: (s.start, s.end, s.node, s.job_id))
        result = SimulationResult(
            instance=self.instance,
            speeds=self.speeds,
            records=records,
            fractional_flow=frac,
            alive_integral=alive_integral,
            num_events=self._num_events,
            segments=self._segments,
            counters=None,
            trace=None,
        )
        result.verify_complete()
        if self.check_invariants:
            from repro.sim.invariants import validate_schedule

            validate_schedule(result)
        if not self.record_segments:
            result.segments = None
        return result


def simulate_numpy(
    instance: Instance,
    policy: AssignmentPolicy,
    *,
    speeds: SpeedProfile | None = None,
    priority: PriorityFn = sjf_priority,
    record_segments: bool = False,
    check_invariants: bool = False,
    events: EventSchedule | None = None,
) -> SimulationResult:
    """Build a :class:`NumpyEngine` and run it to completion."""
    return NumpyEngine(
        instance,
        policy,
        speeds,
        priority=priority,
        record_segments=record_segments,
        check_invariants=check_invariants,
        events=events,
    ).run()
