"""The compiled (C) engine backend: planning, marshaling, results.

The heavy lifting lives in ``engine_kernel.c`` (built and loaded by
:mod:`repro.sim.backends.c_build`); this module is the Python half of
the contract:

* **Plan** — decide whether a simulation is *expressible* as one kernel
  call.  The kernel natively replays the built-in priorities (SJF /
  FIFO) and three policy shapes: statically-decidable assignments
  (closest / random / round-robin / fixed — their choices depend only
  on the instance, so they are precomputed by calling the real policy
  object once per arrival, consuming its RNG/counter state exactly as a
  live run would), the paper's greedy-identical rule, and the
  least-loaded baseline.  Anything else — generic priority callables,
  policies with dynamic state the kernel does not model, per-leaf-size
  greedy, origin-restricted greedy/least-loaded, segment recording —
  raises :class:`CKernelInapplicable`, and :func:`simulate_c` falls
  back to the numpy kernel (same schedule, slower execution).
* **Marshal** — batch-precompute every input column as a numpy array
  (the same ``np.lexsort`` ranks, finished-tolerances and preorder
  topology the numpy backend builds), allocate every output buffer, and
  hand the kernel one pointer-table struct (:class:`_KernelArgs`,
  field-for-field the C ``KernelArgs``).
* **Assemble** — turn the output columns back into a
  :class:`~repro.sim.result.SimulationResult`, with the per-job flow
  integrals summed in arrival order exactly as the reference engine
  sums them.

Parity with the python/numpy backends is exact (``==``), not
tolerance-based: the kernel replays the same float ops in the same
order (see the C source header for the three rules), and the fuzz
battery (``repro fuzz --backends``) plus ``tests/test_backends.py``
enforce it.
"""

from __future__ import annotations

import ctypes
import math

import numpy as np

from repro.core.assignment import FixedAssignment, GreedyIdenticalAssignment
from repro.baselines.policies import (
    ClosestLeafAssignment,
    LeastLoadedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
)
from repro.exceptions import AssignmentError, SimulationError, TopologyError
from repro.sim.backends import c_build
from repro.sim.backends.numpy_backend import simulate_numpy
from repro.sim.engine import AssignmentPolicy, PriorityFn, fifo_priority, sjf_priority
from repro.sim.result import JobRecord, SimulationResult
from repro.sim.speed import SpeedProfile
from repro.sim.tolerances import REMAINING_ATOL, REMAINING_RTOL
from repro.workload.instance import Instance, Setting

__all__ = ["CEngine", "CKernelInapplicable", "simulate_c"]

_INF = math.inf

#: Upper bound on ``n_jobs * n_nodes``: the kernel's per-node heap and
#: pending buffers are dense (28 bytes/slot), so past this the numpy
#: backend's per-node python lists are the better memory trade.
_MAX_DENSE_SLOTS = 20_000_000

#: Packed heap entries carry the job index in the low 32 bits.
_MAX_JOBS = 1 << 30

_STATIC_POLICIES = (
    ClosestLeafAssignment,
    RandomAssignment,
    RoundRobinAssignment,
    FixedAssignment,
)


class CKernelInapplicable(Exception):
    """This simulation cannot be expressed as a single kernel call."""


class _KernelArgs(ctypes.Structure):
    """Field-for-field mirror of ``KernelArgs`` in ``engine_kernel.c``."""

    _i32p = ctypes.POINTER(ctypes.c_int32)
    _i64p = ctypes.POINTER(ctypes.c_int64)
    _u8p = ctypes.POINTER(ctypes.c_uint8)
    _f64p = ctypes.POINTER(ctypes.c_double)
    _fields_ = [
        ("n_jobs", ctypes.c_int64),
        ("n_nodes", ctypes.c_int64),
        ("max_path", ctypes.c_int64),
        ("max_events", ctypes.c_int64),
        ("policy_kind", ctypes.c_int64),
        ("use_agg", ctypes.c_int64),
        ("n_entries", ctypes.c_int64),
        ("n_tops", ctypes.c_int64),
        ("n_cands", ctypes.c_int64),
        ("n_paths", ctypes.c_int64),
        ("weight", ctypes.c_double),
        ("chain_off", _i32p),
        ("chain_concat", _i32p),
        ("is_leaf", _u8p),
        ("enc", _u8p),
        ("speed", _f64p),
        ("path_off", _i32p),
        ("path_len", _i32p),
        ("path_concat", _i32p),
        ("rel", _f64p),
        ("size", _f64p),
        ("ftol_size", _f64p),
        ("rank", _i64p),
        ("leaf_rank", _i64p),
        ("job_path_id", _i32p),
        ("p_leaf_in", _f64p),
        ("ftol_leaf_in", _f64p),
        ("entry_ni", _i32p),
        ("entry_min_steps", _f64p),
        ("entry_tie_leaf_id", _i64p),
        ("entry_tie_path", _i32p),
        ("entry_min_leaf_id", _i64p),
        ("entry_min_leaf_path", _i32p),
        ("tops_ni", _i32p),
        ("cand_leaf_id", _i64p),
        ("cand_leaf_ni", _i32p),
        ("cand_top_pos", _i32p),
        ("cand_d", _f64p),
        ("cand_path", _i32p),
        ("out_path_id", _i32p),
        ("out_avail", _f64p),
        ("out_avail_cnt", _i32p),
        ("out_comp", _f64p),
        ("out_comp_cnt", _i32p),
        ("out_deficit", _f64p),
        ("out_num_events", _i64p),
    ]


def _ptr(arr: np.ndarray, ctype):
    return arr.ctypes.data_as(ctypes.POINTER(ctype))


class _StaticView:
    """The view handed to statically-decidable policies during the
    kind-0 precompute: arrival order and call count match a live run
    exactly (one ``assign`` per job, in release order), so seeded RNGs
    and round-robin counters advance identically — but only the static
    surface (tree, instance, speeds) is exposed.  The plan gate admits
    exactly the policy types that read nothing else."""

    __slots__ = ("instance", "speeds", "now")

    def __init__(self, instance: Instance, speeds: SpeedProfile) -> None:
        self.instance = instance
        self.speeds = speeds
        self.now = 0.0

    @property
    def tree(self):
        return self.instance.tree

    def speed_of(self, node: int) -> float:
        return self.speeds.speed_of(self.instance.tree, node)


class CEngine:
    """One simulation run on the compiled kernel.

    Construction plans and gates (raising :class:`CKernelInapplicable`
    when the kernel cannot express the call — the dispatcher then runs
    the numpy backend instead) and :meth:`run` precomputes the input
    columns, invokes ``repro_run`` once, and assembles the result.
    """

    def __init__(
        self,
        instance: Instance,
        policy: AssignmentPolicy,
        speeds: SpeedProfile | None = None,
        *,
        priority: PriorityFn = sjf_priority,
        record_segments: bool = False,
        check_invariants: bool = False,
        max_events: int = 10_000_000,
        events=None,
    ) -> None:
        self.instance = instance
        self.policy = policy
        self.speeds = speeds or SpeedProfile.uniform(1.0)
        self.priority = priority
        self.max_events = max_events
        self._finished = False

        if record_segments or check_invariants:
            raise CKernelInapplicable(
                "segment recording / invariant checks need the numpy backend"
            )
        if events is not None and len(events):
            raise CKernelInapplicable(
                "dynamic events (outages/cancellations) need the numpy backend"
            )
        if any(j.size_estimate is not None for j in instance.jobs):
            raise CKernelInapplicable(
                "size estimates (masked assignment) need the numpy backend"
            )
        if priority is sjf_priority:
            self._prio_kind = 1
        elif priority is fifo_priority:
            self._prio_kind = 2
        else:
            raise CKernelInapplicable("generic priority callables")

        jobs = list(instance.jobs)
        n = len(jobs)
        self._jobs = jobs
        tree = instance.tree
        n_nodes = len(tree.node_ids) - 1
        if n == 0:
            raise CKernelInapplicable("empty instance")
        if n > _MAX_JOBS or n * n_nodes > _MAX_DENSE_SLOTS:
            raise CKernelInapplicable("instance too large for dense buffers")
        self._identical = instance.setting is Setting.IDENTICAL

        root = tree.root
        root_origins = all(j.origin is None or j.origin == root for j in jobs)
        uniform_sizes = all(
            j.leaf_sizes is None and math.isfinite(j.size) for j in jobs
        )
        if type(policy) is GreedyIdenticalAssignment:
            if not (
                self._prio_kind == 1
                and self._identical
                and root_origins
                and tree.root_children
            ):
                raise CKernelInapplicable(
                    "greedy-identical needs sjf + identical sizes + root origins"
                )
            self._kind = 1
        elif type(policy) is LeastLoadedAssignment:
            if not (uniform_sizes and root_origins):
                raise CKernelInapplicable(
                    "least-loaded needs uniform sizes + root origins"
                )
            self._kind = 2
        elif type(policy) in _STATIC_POLICIES:
            self._kind = 0
        else:
            raise CKernelInapplicable(
                f"policy {type(policy).__name__} has no kernel plan"
            )

        # The library is loaded (building it on first use) at plan time
        # so an unavailable compiler surfaces as CKernelUnavailable here,
        # before any policy state is consumed.
        self._dll = c_build.load_kernel()

        # Static precompute — everything that does not consume policy
        # state — happens here, mirroring NumpyEngine's construction
        # split (run() keeps the policy replay, the kernel call and
        # result assembly).
        (
            self._is_leaf_a, self._speed_a, self._chain_off_a,
            self._chain_concat_a, self._enc_a,
        ) = self._plan_topology()
        rel = np.array([j.release for j in jobs], dtype=np.float64)
        size = np.array([j.size for j in jobs], dtype=np.float64)
        ids = np.array([j.id for j in jobs], dtype=np.int64)
        self._rel_a = rel
        self._size_a = size
        self._ids_a = ids
        self._ftol_size_a = np.maximum(REMAINING_ATOL, REMAINING_RTOL * size)
        rank = np.empty(n, dtype=np.int64)
        if self._prio_kind == 2:
            rank[np.lexsort((ids, rel))] = np.arange(n)
        else:
            rank[np.lexsort((ids, rel, size))] = np.arange(n)
        self._rank_a = rank

        self._paths: list[tuple[int, ...]] = []
        self._pid_of: dict[tuple[int, ...], int] = {}
        self._leaf_pid: dict[int, int] = {}
        self._weight = 0.0
        self._e_cols = self._ll_cols = None
        self._p_leaf_a = np.empty(n, dtype=np.float64)
        self._ftol_leaf_a = np.empty(n, dtype=np.float64)
        self._job_path_id_a = np.zeros(n, dtype=np.int32)
        self._leaf_rank_a: np.ndarray | None = None
        if self._kind != 0:
            # Identical-leaf settings: p_{j,leaf} == p_j for every leaf
            # the policy can pick (kind gates enforce it).
            self._p_leaf_a[:] = size
            self._ftol_leaf_a[:] = self._ftol_size_a
            self._leaf_rank_a = self._leaf_ranks()
            if self._kind == 1:
                self._e_cols = self._precompute_greedy()
                self._weight = float(policy.weight)
            else:
                self._ll_cols = self._precompute_least_loaded()

    # ------------------------------------------------------------------
    # precompute
    # ------------------------------------------------------------------
    def _plan_topology(self):
        instance = self.instance
        tree = instance.tree
        root = tree.root
        order = [v for v in tree.node_ids if v != root]
        ni_of = {v: i for i, v in enumerate(order)}
        self._order = order
        self._ni_of = ni_of
        n_nodes = len(order)
        is_leaf = np.zeros(n_nodes, dtype=np.uint8)
        speed = np.empty(n_nodes, dtype=np.float64)
        chains: list[tuple[int, ...]] = [()] * n_nodes
        for v in order:
            ni = ni_of[v]
            is_leaf[ni] = tree.node(v).is_leaf
            speed[ni] = self.speeds.speed_of(tree, v)
            p = tree.parent(v)
            chains[ni] = (ni,) if p == root else chains[ni_of[p]] + (ni,)
        chain_off = np.zeros(n_nodes + 1, dtype=np.int32)
        for ni, ch in enumerate(chains):
            chain_off[ni + 1] = chain_off[ni] + len(ch)
        chain_concat = np.fromiter(
            (a for ch in chains for a in ch), dtype=np.int32,
            count=int(chain_off[-1]),
        )
        if self._prio_kind == 2:
            enc = np.ones(n_nodes, dtype=np.uint8)
        else:
            enc = np.where(is_leaf == 0, 1, 1 if self._identical else 0)
            enc = enc.astype(np.uint8)
        return is_leaf, speed, chain_off, chain_concat, enc

    def _leaf_ranks(self) -> np.ndarray:
        """Leaf-heap order at unrelated-setting SJF leaves: the numpy
        backend pushes ``(p_leaf, release, id)`` tuples; per-leaf heaps
        never mix leaves, so one global rank orders each identically."""
        n = len(self._jobs)
        leaf_rank = np.empty(n, dtype=np.int64)
        leaf_rank[
            np.lexsort((self._ids_a, self._rel_a, self._p_leaf_a))
        ] = np.arange(n)
        return leaf_rank

    def _path_id(self, path_ids: tuple[int, ...]) -> int:
        pid = self._pid_of.get(path_ids)
        if pid is None:
            pid = len(self._paths)
            self._pid_of[path_ids] = pid
            self._paths.append(path_ids)
        return pid

    def _leaf_path_id(self, leaf: int) -> int:
        pid = self._leaf_pid.get(leaf)
        if pid is None:
            pid = self._path_id(self.instance.tree.processing_path(leaf))
            self._leaf_pid[leaf] = pid
        return pid

    def _precompute_static(self, p_leaf, ftol_leaf, job_path_id):
        """Kind 0: replay the policy per arrival against the static
        view, validating exactly as the numpy backend's arrival path."""
        instance = self.instance
        tree = instance.tree
        root = tree.root
        leaves = set(tree.leaves)
        view = _StaticView(instance, self.speeds)
        policy = self.policy
        for i, job in enumerate(self._jobs):
            view.now = job.release
            leaf = policy.assign(view, job, job.release)
            origin = job.origin
            if origin is None or origin == root:
                if leaf not in leaves:
                    raise AssignmentError(
                        f"policy assigned job {job.id} to non-leaf node {leaf!r}"
                    )
                pid = self._leaf_path_id(leaf)
            else:
                if leaf not in leaves:
                    raise AssignmentError(
                        f"policy assigned job {job.id} to non-leaf node {leaf!r}"
                    )
                try:
                    path = instance.processing_path_for(job, leaf)
                except TopologyError as exc:
                    raise AssignmentError(
                        f"policy assigned job {job.id} to leaf {leaf} outside "
                        f"its origin's subtree: {exc}"
                    ) from exc
                if not path:
                    raise AssignmentError(
                        f"job {job.id}: empty processing path to leaf {leaf}"
                    )
                pid = self._path_id(path)
            pl = (
                job.size
                if job.leaf_sizes is None
                else job.processing_on_leaf(leaf)
            )
            if not math.isfinite(pl):
                raise AssignmentError(
                    f"policy assigned job {job.id} to forbidden leaf {leaf} (p=inf)"
                )
            job_path_id[i] = pid
            p_leaf[i] = pl
            ft = REMAINING_RTOL * pl
            ftol_leaf[i] = ft if ft > REMAINING_ATOL else REMAINING_ATOL

    def _precompute_greedy(self):
        """Kind 1: the per-branch argmin records of
        :meth:`GreedyIdenticalAssignment._entries_for` (root origin)."""
        tree = self.instance.tree
        root = tree.root
        root_depth = tree.depth(root)
        e_ni, e_steps, e_tie, e_tie_p, e_min, e_min_p = [], [], [], [], [], []
        for entry in tree.children(root):
            pairs = [
                (leaf, tree.depth(leaf) - root_depth)
                for leaf in tree.leaves_under(entry)
            ]
            min_steps, min_steps_leaf = min(
                (steps, leaf) for leaf, steps in pairs
            )
            min_leaf = min(leaf for leaf, _ in pairs)
            e_ni.append(self._ni_of[entry])
            e_steps.append(float(min_steps))
            e_tie.append(min_steps_leaf)
            e_tie_p.append(self._leaf_path_id(min_steps_leaf))
            e_min.append(min_leaf)
            e_min_p.append(self._leaf_path_id(min_leaf))
        return (
            np.array(e_ni, dtype=np.int32),
            np.array(e_steps, dtype=np.float64),
            np.array(e_tie, dtype=np.int64),
            np.array(e_tie_p, dtype=np.int32),
            np.array(e_min, dtype=np.int64),
            np.array(e_min_p, dtype=np.int32),
        )

    def _precompute_least_loaded(self):
        """Kind 2: root-children order for ``top_load`` plus the
        ``tree.leaves``-ordered candidate layout of
        :meth:`LeastLoadedAssignment._layout_for` (origin ``None``)."""
        tree = self.instance.tree
        tops = list(tree.root_children)
        top_pos = {v: q for q, v in enumerate(tops)}
        tops_ni = np.array([self._ni_of[v] for v in tops], dtype=np.int32)
        c_id, c_ni, c_top, c_d, c_path = [], [], [], [], []
        for v in tree.leaves:
            c_id.append(v)
            c_ni.append(self._ni_of[v])
            c_top.append(top_pos[tree.top_router(v)])
            c_d.append(float(tree.d(v)))
            c_path.append(self._leaf_path_id(v))
        return (
            tops_ni,
            np.array(c_id, dtype=np.int64),
            np.array(c_ni, dtype=np.int32),
            np.array(c_top, dtype=np.int32),
            np.array(c_d, dtype=np.float64),
            np.array(c_path, dtype=np.int32),
        )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        if self._finished:
            raise SimulationError("a CEngine instance can only run once")
        self._finished = True

        jobs = self._jobs
        n = len(jobs)
        is_leaf, speed, chain_off, chain_concat, enc = (
            self._is_leaf_a, self._speed_a, self._chain_off_a,
            self._chain_concat_a, self._enc_a,
        )
        n_nodes = len(self._order)
        rel = self._rel_a
        size = self._size_a
        ftol_size = self._ftol_size_a
        rank = self._rank_a
        p_leaf = self._p_leaf_a
        ftol_leaf = self._ftol_leaf_a
        job_path_id = self._job_path_id_a
        kind = self._kind
        weight = self._weight
        e_cols = self._e_cols
        ll_cols = self._ll_cols

        if kind == 0:
            # The policy replay lives in run(), not construction: it
            # consumes the policy object's state (RNG draws, round-robin
            # counters) exactly as a live arrival loop would.
            self._precompute_static(p_leaf, ftol_leaf, job_path_id)
            leaf_rank = self._leaf_ranks()
        else:
            leaf_rank = self._leaf_rank_a

        path_len = np.array([len(p) for p in self._paths], dtype=np.int32)
        path_off = np.zeros(len(self._paths), dtype=np.int32)
        if len(self._paths) > 1:
            path_off[1:] = np.cumsum(path_len[:-1])
        ni_of = self._ni_of
        path_concat = np.fromiter(
            (ni_of[v] for p in self._paths for v in p),
            dtype=np.int32,
            count=int(path_len.sum()),
        )
        max_path = int(path_len.max()) if len(self._paths) else 1

        out_path_id = np.zeros(n, dtype=np.int32)
        out_avail = np.zeros(n * max_path, dtype=np.float64)
        out_avail_cnt = np.zeros(n, dtype=np.int32)
        out_comp = np.zeros(n * max_path, dtype=np.float64)
        out_comp_cnt = np.zeros(n, dtype=np.int32)
        out_deficit = np.zeros(n, dtype=np.float64)
        out_num_events = np.zeros(1, dtype=np.int64)
        if kind == 0:
            # Every path was chosen statically; echo them so result
            # assembly has one code path.
            out_path_id[:] = job_path_id

        i32, i64, u8, f64 = (
            ctypes.c_int32, ctypes.c_int64, ctypes.c_uint8, ctypes.c_double,
        )
        args = _KernelArgs(
            n_jobs=n,
            n_nodes=n_nodes,
            max_path=max_path,
            max_events=self.max_events,
            policy_kind=kind,
            use_agg=1 if kind == 2 else 0,
            n_entries=len(e_cols[0]) if e_cols else 0,
            n_tops=len(ll_cols[0]) if ll_cols else 0,
            n_cands=len(ll_cols[1]) if ll_cols else 0,
            n_paths=len(self._paths),
            weight=weight,
            chain_off=_ptr(chain_off, i32),
            chain_concat=_ptr(chain_concat, i32),
            is_leaf=_ptr(is_leaf, u8),
            enc=_ptr(enc, u8),
            speed=_ptr(speed, f64),
            path_off=_ptr(path_off, i32),
            path_len=_ptr(path_len, i32),
            path_concat=_ptr(path_concat, i32),
            rel=_ptr(rel, f64),
            size=_ptr(size, f64),
            ftol_size=_ptr(ftol_size, f64),
            rank=_ptr(rank, i64),
            leaf_rank=_ptr(leaf_rank, i64),
            job_path_id=_ptr(job_path_id, i32),
            p_leaf_in=_ptr(p_leaf, f64),
            ftol_leaf_in=_ptr(ftol_leaf, f64),
            entry_ni=_ptr(e_cols[0], i32) if e_cols else None,
            entry_min_steps=_ptr(e_cols[1], f64) if e_cols else None,
            entry_tie_leaf_id=_ptr(e_cols[2], i64) if e_cols else None,
            entry_tie_path=_ptr(e_cols[3], i32) if e_cols else None,
            entry_min_leaf_id=_ptr(e_cols[4], i64) if e_cols else None,
            entry_min_leaf_path=_ptr(e_cols[5], i32) if e_cols else None,
            tops_ni=_ptr(ll_cols[0], i32) if ll_cols else None,
            cand_leaf_id=_ptr(ll_cols[1], i64) if ll_cols else None,
            cand_leaf_ni=_ptr(ll_cols[2], i32) if ll_cols else None,
            cand_top_pos=_ptr(ll_cols[3], i32) if ll_cols else None,
            cand_d=_ptr(ll_cols[4], f64) if ll_cols else None,
            cand_path=_ptr(ll_cols[5], i32) if ll_cols else None,
            out_path_id=_ptr(out_path_id, i32),
            out_avail=_ptr(out_avail, f64),
            out_avail_cnt=_ptr(out_avail_cnt, i32),
            out_comp=_ptr(out_comp, f64),
            out_comp_cnt=_ptr(out_comp_cnt, i32),
            out_deficit=_ptr(out_deficit, f64),
            out_num_events=_ptr(out_num_events, i64),
        )
        status = self._dll.repro_run(ctypes.byref(args))
        if status == 1:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; "
                "likely a policy or engine bug"
            )
        if status != 0:
            raise SimulationError(f"engine kernel failed with status {status}")

        # Per-job exact integrals, summed in arrival order.  The count
        # and scalar columns drop to plain python lists up front so the
        # loop touches no numpy scalars (tolist converts exactly).
        frac = 0.0
        alive_integral = 0.0
        records: dict[int, JobRecord] = {}
        paths = self._paths
        pid_l = out_path_id.tolist()
        avail_rows = out_avail.reshape(n, max_path)
        comp_rows = out_comp.reshape(n, max_path)
        avail_cnt = out_avail_cnt.tolist()
        comp_cnt = out_comp_cnt.tolist()
        deficit_l = out_deficit.tolist()
        for i, job in enumerate(jobs):
            path_ids = paths[pid_l[i]]
            comp = comp_rows[i, : comp_cnt[i]].tolist()
            rec = JobRecord(
                job_id=job.id,
                release=job.release,
                leaf=path_ids[-1],
                path=path_ids,
                available_at=avail_rows[i, : avail_cnt[i]].tolist(),
                completed_at=comp,
            )
            records[job.id] = rec
            if len(comp) == len(path_ids) and comp:
                flow = comp[-1] - job.release
                alive_integral += flow
                frac += flow - deficit_l[i]

        result = SimulationResult(
            instance=self.instance,
            speeds=self.speeds,
            records=records,
            fractional_flow=frac,
            alive_integral=alive_integral,
            num_events=int(out_num_events[0]),
            segments=None,
            counters=None,
            trace=None,
        )
        result.verify_complete()
        return result


def simulate_c(
    instance: Instance,
    policy: AssignmentPolicy,
    *,
    speeds: SpeedProfile | None = None,
    priority: PriorityFn = sjf_priority,
    record_segments: bool = False,
    check_invariants: bool = False,
    events=None,
) -> SimulationResult:
    """Simulate on the compiled kernel, falling back to the numpy
    backend for calls outside its plan (the schedule is identical).

    Raises :class:`~repro.sim.backends.c_build.CKernelUnavailable` when
    no working compiler exists — callers gate on
    :func:`repro.sim.backends.c_build.availability` first.
    """
    try:
        eng = CEngine(
            instance,
            policy,
            speeds,
            priority=priority,
            record_segments=record_segments,
            check_invariants=check_invariants,
            events=events,
        )
    except CKernelInapplicable:
        return simulate_numpy(
            instance,
            policy,
            speeds=speeds,
            priority=priority,
            record_segments=record_segments,
            check_invariants=check_invariants,
            events=events,
        )
    return eng.run()
