"""Self-contained build pipeline for the compiled engine kernel.

The container pins its Python toolchain (no Cython, no numba, no
setuptools build isolation), so the kernel ships as one C source file
(``engine_kernel.c``) compiled on first use with whatever C compiler
the machine offers, into a shared library loaded via :mod:`ctypes`.

**Bit parity drives the flag set.**  The kernel replays the numpy
backend's float ops in the reference order, which IEEE-754 doubles
reproduce exactly *provided the compiler does not rewrite the ops*:

* ``-O2`` — plain optimisation; value-safe by default.
* ``-ffp-contract=off`` — gcc contracts ``a*b+c`` into fused
  multiply-adds by default at ``-O2`` (``-ffp-contract=fast``), which
  changes results by the skipped intermediate rounding.  Off, every
  multiply and add rounds exactly as the Python interpreter's did.
* On 32-bit x86, ``-msse2 -mfpmath=sse`` — x87 extended-precision
  registers would carry 80-bit intermediates; SSE2 keeps every
  intermediate a 64-bit double.  x86-64 uses SSE2 by default.
* ``-ffast-math`` (and friends: ``-funsafe-math-optimizations``,
  ``-Ofast``) is **forbidden**: it licenses reassociation, reciprocal
  approximation and FTZ, any one of which breaks parity.

**Cache.**  Compiled libraries live under a content-hash directory
(:func:`cache_dir`, default ``~/.cache/repro/ckernel``, override with
``REPRO_CKERNEL_CACHE``).  The hash covers the C source text, the
compiler identity line, the exact flag list and the kernel ABI version,
so editing the source, switching compilers, changing flags or bumping
the ABI each land in a fresh cache slot — a stale ``.so`` can never be
loaded.  As a second line of defence the loaded library's
``repro_abi_version()`` export is checked against :data:`ABI_VERSION`.

**Availability.**  Everything degrades gracefully: no compiler on PATH
(or ``REPRO_NO_CKERNEL=1``, the explicit opt-out) means
:func:`availability` reports the reason, ``backend="c"`` raises it, and
nothing else in the package notices.  ``REPRO_CC`` overrides discovery
with an explicit compiler command.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = [
    "ABI_VERSION",
    "CKernelUnavailable",
    "availability",
    "base_cflags",
    "build_library",
    "cache_dir",
    "find_compiler",
    "load_kernel",
    "source_path",
    "toolchain_info",
]

#: Kernel ABI version; must match ``REPRO_KERNEL_ABI`` in the C source.
#: Part of the cache key *and* verified against the loaded library's
#: ``repro_abi_version()`` export.
ABI_VERSION = 1

#: Compiler commands tried in order when ``REPRO_CC`` is unset.
_CANDIDATE_CCS = ("cc", "gcc", "clang")

_ENV_CC = "REPRO_CC"
_ENV_CACHE = "REPRO_CKERNEL_CACHE"
_ENV_DISABLE = "REPRO_NO_CKERNEL"


class CKernelUnavailable(RuntimeError):
    """The compiled kernel cannot be built or loaded on this machine."""


def source_path() -> Path:
    """Path of the kernel's C source, shipped next to this module."""
    return Path(__file__).resolve().parent / "engine_kernel.c"


def base_cflags() -> tuple[str, ...]:
    """The parity-preserving compile flags (see the module docstring)."""
    flags = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]
    if sys.platform.startswith("linux") and sys.maxsize <= 2**32:
        # 32-bit x86: force SSE2 doubles, never x87 extended precision.
        flags += ["-msse2", "-mfpmath=sse"]
    return tuple(flags)


def find_compiler() -> str | None:
    """The C compiler command to use, or ``None`` when disabled/absent.

    ``REPRO_NO_CKERNEL=1`` disables discovery outright; ``REPRO_CC``
    names an explicit command; otherwise the first of ``cc``, ``gcc``,
    ``clang`` found on PATH wins.
    """
    if os.environ.get(_ENV_DISABLE):
        return None
    override = os.environ.get(_ENV_CC)
    if override:
        return override if shutil.which(override) else None
    for cc in _CANDIDATE_CCS:
        if shutil.which(cc):
            return cc
    return None


def compiler_version(cc: str) -> str | None:
    """First line of ``cc --version``, or ``None`` if it won't run."""
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    line = out.stdout.splitlines()
    return line[0].strip() if line else None


def cache_dir() -> Path:
    """Root of the compiled-library cache."""
    override = os.environ.get(_ENV_CACHE)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "ckernel"


def _cache_key(source_text: str, cc_version: str, flags: tuple[str, ...]) -> str:
    h = hashlib.sha256()
    h.update(f"abi={ABI_VERSION}\n".encode())
    h.update(f"cc={cc_version}\n".encode())
    h.update(("flags=" + " ".join(flags) + "\n").encode())
    h.update(source_text.encode())
    return h.hexdigest()[:32]


def build_library(
    *,
    cc: str | None = None,
    source_text: str | None = None,
) -> Path:
    """Compile the kernel (if not cached) and return the library path.

    The compile runs in a scratch directory and the result is moved into
    the cache slot atomically (``os.replace``), so concurrent builders
    race benignly.  Raises :class:`CKernelUnavailable` with the compiler
    diagnostics on failure.
    """
    if cc is None:
        cc = find_compiler()
    if cc is None:
        raise CKernelUnavailable(
            "no C compiler found (set REPRO_CC, or unset REPRO_NO_CKERNEL)"
        )
    if source_text is None:
        source_text = source_path().read_text()
    cc_version = compiler_version(cc)
    if cc_version is None:
        raise CKernelUnavailable(f"compiler {cc!r} does not run (--version failed)")
    flags = base_cflags()
    key = _cache_key(source_text, cc_version, flags)
    lib = cache_dir() / f"engine_kernel-{key}.so"
    if lib.exists():
        return lib
    lib.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory(dir=lib.parent) as tmp:
        src = Path(tmp) / "engine_kernel.c"
        src.write_text(source_text)
        out = Path(tmp) / lib.name
        proc = subprocess.run(
            [cc, *flags, "-o", str(out), str(src)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        if proc.returncode != 0:
            raise CKernelUnavailable(
                f"compiling the engine kernel with {cc!r} failed:\n"
                + (proc.stderr or proc.stdout).strip()
            )
        os.replace(out, lib)
    return lib


# One entry per loaded library path: ctypes handles stay alive for the
# process, so repeated simulate() calls pay zero build/load cost.
_LOADED: dict[Path, ctypes.CDLL] = {}
# Memoized availability probe: (ok, reason).  Reset by tests that
# monkeypatch discovery.
_PROBE: tuple[bool, str | None] | None = None


def _configure(dll: ctypes.CDLL) -> ctypes.CDLL:
    dll.repro_abi_version.restype = ctypes.c_int
    dll.repro_abi_version.argtypes = ()
    dll.repro_run.restype = ctypes.c_int
    dll.repro_run.argtypes = (ctypes.c_void_p,)
    return dll


def load_kernel() -> ctypes.CDLL:
    """Build (if needed), load and ABI-check the kernel library."""
    lib = build_library()
    dll = _LOADED.get(lib)
    if dll is not None:
        return dll
    try:
        dll = _configure(ctypes.CDLL(str(lib)))
    except (OSError, AttributeError) as exc:
        raise CKernelUnavailable(f"loading {lib} failed: {exc}") from exc
    got = dll.repro_abi_version()
    if got != ABI_VERSION:
        raise CKernelUnavailable(
            f"kernel ABI mismatch: library reports {got}, "
            f"this build expects {ABI_VERSION}"
        )
    _LOADED[lib] = dll
    return dll


def availability() -> tuple[bool, str | None]:
    """``(available, reason-if-not)`` for the compiled backend.

    Probes once per process (a real build attempt, so "available" means
    the library actually compiled and loaded); tests reset the memo via
    :func:`_reset_probe` after monkeypatching discovery.
    """
    global _PROBE
    if _PROBE is None:
        try:
            load_kernel()
        except CKernelUnavailable as exc:
            _PROBE = (False, str(exc))
        else:
            _PROBE = (True, None)
    return _PROBE


def _reset_probe() -> None:
    """Forget the memoized availability verdict (test hook)."""
    global _PROBE
    _PROBE = None


def toolchain_info() -> dict:
    """Provenance block for benchmarks and run manifests: compiler
    identity/version/flags plus the availability verdict."""
    cc = find_compiler()
    ok, reason = availability()
    info: dict = {
        "compiler": cc,
        "compiler_version": compiler_version(cc) if cc else None,
        "cflags": list(base_cflags()),
        "abi_version": ABI_VERSION,
        "available": ok,
    }
    if not ok:
        info["unavailable_reason"] = reason
    return info
