/* The compiled event-loop kernel behind `repro.sim.backends.c_backend`.
 *
 * This file is a line-for-line transliteration of the hot loops of
 * `numpy_backend.py` (`_advance_node`, `_admit_now`, `_handle_arrival`,
 * the batched F-value hook and the least-loaded volume reads) into C.
 * Bit parity with the reference engine is the contract, so three rules
 * govern every edit here:
 *
 *   1. Every floating-point expression keeps the numpy backend's exact
 *      operand order and association.  IEEE-754 doubles are
 *      deterministic when the op sequence is; the build deliberately
 *      compiles with `-O2 -ffp-contract=off` and never `-ffast-math`,
 *      so the compiler may not fuse, reorder or approximate these ops.
 *      On x86-64 this is plain SSE2 double arithmetic (no x87 excess
 *      precision); 32-bit x86 builds force `-msse2 -mfpmath=sse`.
 *   2. The per-node priority heaps replicate CPython's `heapq` sift
 *      algorithms *exactly* (including `heappush` = append + siftdown
 *      and the backend's raw-append fast paths), because the F-value
 *      summation iterates the heap in array order — the same
 *      comparison outcomes must produce the same array layout.
 *   3. Heap entries are packed int64s `(rank << 32) | job_index`.
 *      Ranks are unique per node, so packed comparisons order exactly
 *      like the numpy backend's int-rank (or, at unrelated-setting SJF
 *      leaves, key-tuple) comparisons, and the payload decodes in O(1).
 *
 * The Python side (`c_backend.py`) precomputes every input column,
 * allocates every output buffer, and assembles `SimulationResult`; the
 * kernel owns only its scratch state.  The struct below is the ABI —
 * bump REPRO_KERNEL_ABI whenever its layout (or any semantic) changes,
 * so stale cached shared objects can never be loaded.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define REPRO_KERNEL_ABI 1

#define IDX_MASK 0xffffffffLL

/* Status codes returned by repro_run. */
#define ST_OK 0
#define ST_MAX_EVENTS 1
#define ST_NOMEM 2
#define ST_BAD_ARGS 3

typedef struct {
    /* sizes and limits */
    int64_t n_jobs;
    int64_t n_nodes;
    int64_t max_path;
    int64_t max_events;
    int64_t policy_kind; /* 0 fixed, 1 greedy-identical, 2 least-loaded */
    int64_t use_agg;     /* maintain congestion aggregates (kind 2) */
    int64_t n_entries;
    int64_t n_tops;
    int64_t n_cands;
    int64_t n_paths;
    double weight; /* greedy 6/eps^2 */
    /* topology (dense preorder node index, root excluded) */
    const int32_t *chain_off;    /* [n_nodes + 1] */
    const int32_t *chain_concat; /* ancestor chains, root-adjacent..node */
    const uint8_t *is_leaf;      /* [n_nodes] */
    const uint8_t *enc;          /* [n_nodes] encoded-heap nodes */
    const double *speed;         /* [n_nodes] */
    /* path table (node-index sequences, deduplicated) */
    const int32_t *path_off;    /* [n_paths] */
    const int32_t *path_len;    /* [n_paths] */
    const int32_t *path_concat; /* flattened paths */
    /* job columns */
    const double *rel;        /* [n_jobs] */
    const double *size;       /* [n_jobs] */
    const double *ftol_size;  /* [n_jobs] */
    const int64_t *rank;      /* [n_jobs] node-key rank (sjf or fifo) */
    const int64_t *leaf_rank; /* [n_jobs] leaf-key rank (unrelated sjf) */
    /* policy kind 0: precomputed per-job assignment */
    const int32_t *job_path_id; /* [n_jobs] */
    const double *p_leaf_in;    /* [n_jobs] */
    const double *ftol_leaf_in; /* [n_jobs] */
    /* policy kind 1: per-branch argmin records of GreedyIdentical */
    const int32_t *entry_ni;            /* [n_entries] root-adjacent nodes */
    const double *entry_min_steps;      /* [n_entries] */
    const int64_t *entry_tie_leaf_id;   /* [n_entries] min-(steps,leaf) leaf */
    const int32_t *entry_tie_path;      /* [n_entries] its path id */
    const int64_t *entry_min_leaf_id;   /* [n_entries] weight_p==0 leaf */
    const int32_t *entry_min_leaf_path; /* [n_entries] its path id */
    /* policy kind 2: least-loaded candidate layout */
    const int32_t *tops_ni;      /* [n_tops] root children, in order */
    const int64_t *cand_leaf_id; /* [n_cands] */
    const int32_t *cand_leaf_ni; /* [n_cands] */
    const int32_t *cand_top_pos; /* [n_cands] index into tops */
    const double *cand_d;        /* [n_cands] d_v as a double */
    const int32_t *cand_path;    /* [n_cands] path id */
    /* outputs (allocated by Python) */
    int32_t *out_path_id;    /* [n_jobs] chosen path per job */
    double *out_avail;       /* [n_jobs * max_path] */
    int32_t *out_avail_cnt;  /* [n_jobs] */
    double *out_comp;        /* [n_jobs * max_path] */
    int32_t *out_comp_cnt;   /* [n_jobs] */
    double *out_deficit;     /* [n_jobs] */
    int64_t *out_num_events; /* [1] */
} KernelArgs;

/* Mutable kernel state (scratch, one malloc block). */
typedef struct {
    const KernelArgs *a;
    long n;  /* n_jobs */
    long m;  /* n_nodes */
    long mp; /* max_path */
    double now;
    long num_events;
    int status;
    /* per node */
    int64_t *heap; /* m * n */
    long *heap_len;
    double *pend_t; /* m * n */
    int64_t *pend_key;
    int32_t *pend_idx;
    long *pend_len;
    long *pis;
    long *actives;
    double *astarts;
    double *arems;
    double *node_next;
    long *tc;   /* through_count */
    double *tv; /* through_volume */
    double *qv; /* queue_volume */
    /* per job */
    double *rem;
    long *hop;
    int32_t *jpath_off;
    int32_t *jpath_len;
    double *p_leaf;
    double *ftol_leaf;
    double *prev_end;
    /* policy scratch */
    double *bases;    /* n_entries */
    double *top_load; /* n_tops */
} K;

int repro_abi_version(void) { return REPRO_KERNEL_ABI; }

/* ---- CPython heapq, replicated exactly (unique int64 entries) ------- */

static inline void hpush(int64_t *h, long *len, int64_t item) {
    /* heappush: append, then _siftdown(heap, 0, len-1). */
    long pos = (*len)++;
    while (pos > 0) {
        long parentpos = (pos - 1) >> 1;
        int64_t parent = h[parentpos];
        if (item < parent) {
            h[pos] = parent;
            pos = parentpos;
            continue;
        }
        break;
    }
    h[pos] = item;
}

static inline void hpop(int64_t *h, long *len) {
    /* heappop with the return value discarded: pop the last element,
     * move it to the root, _siftup(heap, 0). */
    int64_t newitem = h[--(*len)];
    long endpos = *len;
    if (endpos == 0)
        return;
    long pos = 0;
    long childpos = 1;
    while (childpos < endpos) {
        long rightpos = childpos + 1;
        if (rightpos < endpos && !(h[childpos] < h[rightpos]))
            childpos = rightpos;
        h[pos] = h[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    h[pos] = newitem;
    /* _siftdown(heap, 0, pos) */
    while (pos > 0) {
        long parentpos = (pos - 1) >> 1;
        int64_t parent = h[parentpos];
        if (newitem < parent) {
            h[pos] = parent;
            pos = parentpos;
            continue;
        }
        break;
    }
    h[pos] = newitem;
}

/* ---- small helpers --------------------------------------------------- */

static inline int64_t pack(int64_t rank, long idx) {
    return (rank << 32) | (int64_t)idx;
}

static inline void comp_append(K *k, long i, double t) {
    k->a->out_comp[(size_t)i * k->mp + k->a->out_comp_cnt[i]++] = t;
}

static inline void avail_append(K *k, long i, double t) {
    k->a->out_avail[(size_t)i * k->mp + k->a->out_avail_cnt[i]++] = t;
}

/* Emission of job `ji` to node `nxt` at time `t`.  `allow_fused`
 * mirrors the numpy backend's branch structure: the fused idle-child
 * admission exists only at `_advance_node`'s encoded-heap emission
 * sites; `_admit_now`'s drain always appends to the pending list. */
static inline void emit(K *k, long nxt, double t, long ji, int allow_fused) {
    const KernelArgs *a = k->a;
    if (a->enc[nxt]) {
        if (allow_fused && k->actives[nxt] < 0 && k->heap_len[nxt] == 0 &&
            k->pis[nxt] >= k->pend_len[nxt]) {
            /* Fused admission: idle child with every prior admission
             * consumed — place the run directly (state-identical to
             * push-settle-drain-rearm, minus a pending append). */
            int64_t *h = k->heap + (size_t)nxt * k->n;
            h[0] = pack(a->rank[ji], ji);
            k->heap_len[nxt] = 1;
            k->actives[nxt] = ji;
            k->astarts[nxt] = t;
            double r = k->rem[ji];
            k->arems[nxt] = r;
            k->node_next[nxt] = t + r / a->speed[nxt];
            if (a->use_agg)
                k->qv[nxt] += r;
            return;
        }
        size_t p = (size_t)nxt * k->n + k->pend_len[nxt]++;
        k->pend_t[p] = t;
        k->pend_key[p] = pack(a->rank[ji], ji);
        k->pend_idx[p] = (int32_t)ji;
        if (t < k->node_next[nxt])
            k->node_next[nxt] = t;
    } else {
        /* Unrelated-setting SJF leaf: the numpy backend pushes the
         * (p_leaf, release, id) tuple; the per-leaf rank orders
         * identically. */
        size_t p = (size_t)nxt * k->n + k->pend_len[nxt]++;
        k->pend_t[p] = t;
        k->pend_key[p] = pack(a->leaf_rank[ji], ji);
        k->pend_idx[p] = (int32_t)ji;
        if (t < k->node_next[nxt])
            k->node_next[nxt] = t;
    }
}

/* Completion body shared by the completion-only sweep and the general
 * loop — one definition, because the numpy backend's two copies are
 * verbatim-identical and the parity contract needs them to stay so. */
static inline void complete_job(K *k, long ni, long ji, double astart,
                                double arem, double finish, int is_leaf,
                                int agg) {
    const KernelArgs *a = k->a;
    double *rem = k->rem;
    if (agg) {
        double residual = rem[ji]; /* == arem: frozen while active */
        k->tc[ni] -= 1;
        k->tv[ni] -= residual;
        k->qv[ni] -= residual;
    }
    rem[ji] = 0.0;
    comp_append(k, ji, finish);
    if (is_leaf) {
        double pl = k->p_leaf[ji];
        a->out_deficit[ji] +=
            (pl - arem) / pl * (astart - k->prev_end[ji]) +
            (2.0 * pl - arem) / (2.0 * pl) * (finish - astart);
    }
    long h = k->hop[ji] + 1;
    k->hop[ji] = h;
    if (h < k->jpath_len[ji]) {
        long nxt = a->path_concat[k->jpath_off[ji] + h];
        if (a->is_leaf[nxt]) {
            rem[ji] = k->p_leaf[ji];
            k->prev_end[ji] = finish;
        } else {
            rem[ji] = a->size[ji];
        }
        avail_append(k, ji, finish);
        emit(k, nxt, finish, ji, 1);
    }
}

/* Drain of a finished residual stranded at the heap top (completed at
 * the admission instant `t`, residual dropped). */
static inline void drain_job(K *k, long ni, long ti, double t, int is_leaf,
                             int agg, int allow_fused) {
    const KernelArgs *a = k->a;
    double *rem = k->rem;
    double residual = rem[ti];
    if (agg) {
        k->tc[ni] -= 1;
        k->tv[ni] -= residual;
        k->qv[ni] -= residual;
    }
    rem[ti] = 0.0;
    comp_append(k, ti, t);
    if (is_leaf) {
        double pl = k->p_leaf[ti];
        a->out_deficit[ti] += (pl - residual) / pl * (t - k->prev_end[ti]);
    }
    k->hop[ti] += 1;
    long h = k->hop[ti];
    if (h < k->jpath_len[ti]) {
        long nxt = a->path_concat[k->jpath_off[ti] + h];
        if (a->is_leaf[nxt]) {
            rem[ti] = k->p_leaf[ti];
            k->prev_end[ti] = t;
        } else {
            rem[ti] = a->size[ti];
        }
        avail_append(k, ti, t);
        emit(k, nxt, t, ti, allow_fused);
    }
}

/* ---- the batched per-node sweep (numpy _advance_node, verbatim) ----- */

static void advance_node(K *k, long ni, double limit) {
    if (k->status)
        return;
    const KernelArgs *a = k->a;
    double *pend_t = k->pend_t + (size_t)ni * k->n;
    int64_t *pend_key = k->pend_key + (size_t)ni * k->n;
    int32_t *pend_idx = k->pend_idx + (size_t)ni * k->n;
    long pi = k->pis[ni];
    int64_t *heap = k->heap + (size_t)ni * k->n;
    long hlen = k->heap_len[ni];
    long active = k->actives[ni];
    double astart = k->astarts[ni];
    double arem = k->arems[ni];
    double speed = a->speed[ni];
    int is_leaf = a->is_leaf[ni];
    int agg = (int)a->use_agg;
    const double *ftol = is_leaf ? k->ftol_leaf : a->ftol_size;
    long npend = k->pend_len[ni];
    long num_events = k->num_events;
    double *rem = k->rem;

    if (pi >= npend) {
        /* Completion-only sweep: no outstanding admissions (always the
         * case for root-adjacent nodes), and none can appear mid-loop
         * (emissions land on other nodes). */
        while (active >= 0) {
            double finish = astart + arem / speed;
            if (finish > limit)
                break;
            hpop(heap, &hlen);
            complete_job(k, ni, active, astart, arem, finish, is_leaf, agg);
            num_events += 1;
            if (hlen) {
                active = (long)(heap[0] & IDX_MASK);
                astart = finish;
                arem = rem[active];
            } else {
                active = -1;
            }
        }
        k->actives[ni] = active;
        k->astarts[ni] = astart;
        k->arems[ni] = arem;
        k->heap_len[ni] = hlen;
        k->num_events = num_events;
        if (num_events > a->max_events) {
            k->status = ST_MAX_EVENTS;
            return;
        }
        k->node_next[ni] = active >= 0 ? astart + arem / speed : INFINITY;
        return;
    }

    for (;;) {
        double t_next = pi < npend ? pend_t[pi] : INFINITY;
        if (active >= 0) {
            double finish = astart + arem / speed;
            if (finish <= t_next && finish <= limit) {
                /* -- completion (fused settle + hop advance) ---------- */
                hpop(heap, &hlen);
                complete_job(k, ni, active, astart, arem, finish, is_leaf,
                             agg);
                num_events += 1;
                /* Inlined rearm *without* drain: a pre-finished new top
                 * completes via its own (immediate) completion. */
                if (hlen) {
                    active = (long)(heap[0] & IDX_MASK);
                    astart = finish;
                    arem = rem[active];
                } else {
                    active = -1;
                }
                continue;
            }
        }
        if (t_next > limit || pi >= npend)
            break;
        /* -- admission ------------------------------------------------ */
        double t = pend_t[pi];
        int64_t key = pend_key[pi];
        long i = pend_idx[pi];
        pi += 1;
        if (active < 0) {
            if (hlen == 0) {
                /* Idle, fully-drained node: the newcomer starts at
                 * once — push-drain-rearm degenerates to an append. */
                heap[0] = key;
                hlen = 1;
                if (agg)
                    k->qv[ni] += rem[i];
                active = i;
                astart = t;
                arem = rem[i];
                continue;
            }
        } else if (heap[0] < key) {
            /* The incumbent outranks the newcomer: plain push, the run
             * continues unbroken — the non-preempting enqueue. */
            hpush(heap, &hlen, key);
            if (agg)
                k->qv[ni] += rem[i];
            continue;
        } else {
            /* Settle the preempted run. */
            double elapsed = t - astart;
            if (elapsed > 0.0) {
                double new_rem = arem - speed * elapsed;
                if (new_rem < 0.0)
                    new_rem = 0.0;
                if (agg) {
                    double delta = arem - new_rem;
                    if (delta != 0.0) {
                        k->tv[ni] -= delta;
                        k->qv[ni] -= delta;
                    }
                }
                rem[active] = new_rem;
                if (is_leaf) {
                    double pl = k->p_leaf[active];
                    a->out_deficit[active] +=
                        (pl - arem) / pl * (astart - k->prev_end[active]) +
                        (2.0 * pl - arem - new_rem) / (2.0 * pl) *
                            (t - astart);
                    k->prev_end[active] = t;
                }
            } else {
                rem[active] = arem;
            }
            active = -1;
        }
        /* Drain finished jobs stranded at the heap top. */
        while (hlen) {
            long ti = (long)(heap[0] & IDX_MASK);
            if (rem[ti] > ftol[ti])
                break;
            hpop(heap, &hlen);
            drain_job(k, ni, ti, t, is_leaf, agg, 1);
        }
        /* Push the newcomer and rearm the (possibly new) top. */
        hpush(heap, &hlen, key);
        if (agg)
            k->qv[ni] += rem[i];
        active = (long)(heap[0] & IDX_MASK);
        astart = t;
        arem = rem[active];
    }

    k->pis[ni] = pi;
    k->actives[ni] = active;
    k->astarts[ni] = astart;
    k->arems[ni] = arem;
    k->heap_len[ni] = hlen;
    k->num_events = num_events;
    if (num_events > a->max_events) {
        k->status = ST_MAX_EVENTS;
        return;
    }
    /* Recompute the node's next-event time: both candidates are
     * strictly past `limit` now (the loop consumed everything due). */
    double nn;
    if (active >= 0) {
        nn = astart + arem / speed;
        if (pi < npend && pend_t[pi] < nn)
            nn = pend_t[pi];
    } else if (pi < npend) {
        nn = pend_t[pi];
    } else {
        nn = INFINITY;
    }
    k->node_next[ni] = nn;
}

static inline void sync_chain(K *k, long ni, double now) {
    const int32_t *chain = k->a->chain_concat + k->a->chain_off[ni];
    long len = k->a->chain_off[ni + 1] - k->a->chain_off[ni];
    for (long q = 0; q < len; q++) {
        long a = chain[q];
        if (k->node_next[a] <= now)
            advance_node(k, a, now);
    }
}

/* ---- direct admission (numpy _admit_now, verbatim) ------------------ */

static void admit_now(K *k, long ni, double t, long i) {
    if (k->status)
        return;
    const KernelArgs *a = k->a;
    int64_t *heap = k->heap + (size_t)ni * k->n;
    long hlen = k->heap_len[ni];
    int enc = a->enc[ni];
    double *rem = k->rem;
    int agg = (int)a->use_agg;
    int64_t key = enc ? pack(a->rank[i], i) : pack(a->leaf_rank[i], i);
    long active = k->actives[ni];
    double speed = a->speed[ni];
    int is_leaf = a->is_leaf[ni];
    if (active >= 0) {
        double astart = k->astarts[ni];
        double arem = k->arems[ni];
        if (heap[0] < key) {
            /* Incumbent outranks the newcomer: run continues unbroken,
             * so the node's next event is unchanged. */
            hpush(heap, &hlen, key);
            k->heap_len[ni] = hlen;
            if (agg)
                k->qv[ni] += rem[i];
            return;
        }
        /* Settle the preempted run. */
        double elapsed = t - astart;
        if (elapsed > 0.0) {
            double new_rem = arem - speed * elapsed;
            if (new_rem < 0.0)
                new_rem = 0.0;
            if (agg) {
                double delta = arem - new_rem;
                if (delta != 0.0) {
                    k->tv[ni] -= delta;
                    k->qv[ni] -= delta;
                }
            }
            rem[active] = new_rem;
            if (is_leaf) {
                double pl = k->p_leaf[active];
                a->out_deficit[active] +=
                    (pl - arem) / pl * (astart - k->prev_end[active]) +
                    (2.0 * pl - arem - new_rem) / (2.0 * pl) * (t - astart);
                k->prev_end[active] = t;
            }
        } else {
            rem[active] = arem;
        }
    }
    /* Drain finished jobs stranded at the heap top (no fused admission
     * here: the numpy `_admit_now` always appends to the pending list). */
    if (hlen) {
        const double *ftol = is_leaf ? k->ftol_leaf : a->ftol_size;
        while (hlen) {
            long ti = (long)(heap[0] & IDX_MASK);
            if (rem[ti] > ftol[ti])
                break;
            hpop(heap, &hlen);
            drain_job(k, ni, ti, t, is_leaf, agg, 0);
        }
    }
    /* Push the newcomer and rearm the (possibly new) top. */
    hpush(heap, &hlen, key);
    k->heap_len[ni] = hlen;
    if (agg)
        k->qv[ni] += rem[i];
    active = (long)(heap[0] & IDX_MASK);
    k->actives[ni] = active;
    k->astarts[ni] = t;
    double arem = rem[active];
    k->arems[ni] = arem;
    double nn = t + arem / speed;
    long pi = k->pis[ni];
    if (pi < k->pend_len[ni] && k->pend_t[(size_t)ni * k->n + pi] < nn)
        nn = k->pend_t[(size_t)ni * k->n + pi];
    k->node_next[ni] = nn;
}

/* ---- arrivals (numpy _handle_arrival after the policy call) --------- */

static void handle_arrival(K *k, long i, long path_id, double now) {
    const KernelArgs *a = k->a;
    long off = a->path_off[path_id];
    long plen = a->path_len[path_id];
    k->jpath_off[i] = (int32_t)off;
    k->jpath_len[i] = (int32_t)plen;

    /* Release mutation point for the congestion aggregates. */
    if (a->use_agg) {
        double size = a->size[i];
        for (long q = 0; q < plen; q++) {
            long ni = a->path_concat[off + q];
            k->tc[ni] += 1;
            k->tv[ni] += size;
        }
        double pl = k->p_leaf[i];
        if (pl != size)
            k->tv[a->path_concat[off + plen - 1]] += pl - size;
    }

    long first = a->path_concat[off];
    if (a->is_leaf[first]) {
        k->rem[i] = k->p_leaf[i];
        k->prev_end[i] = now;
    } else {
        k->rem[i] = a->size[i];
    }
    sync_chain(k, first, now);
    if (k->status)
        return;
    /* Inlined fast admission paths (the two cases that dominate the
     * arrival phase); anything involving settles or finished-top
     * drains goes through the full admit_now. */
    if (a->enc[first]) {
        long active = k->actives[first];
        int64_t *heap = k->heap + (size_t)first * k->n;
        if (active >= 0) {
            int64_t key = pack(a->rank[i], i);
            if (heap[0] < key) {
                /* Incumbent outranks the newcomer: plain push, run
                 * continues unbroken, node_next unchanged. */
                hpush(heap, &k->heap_len[first], key);
                if (a->use_agg)
                    k->qv[first] += k->rem[i];
                return;
            }
        } else if (k->heap_len[first] == 0) {
            /* Idle, fully-drained node: the newcomer starts at once. */
            heap[0] = pack(a->rank[i], i);
            k->heap_len[first] = 1;
            k->actives[first] = i;
            k->astarts[first] = now;
            double r = k->rem[i];
            k->arems[first] = r;
            if (a->use_agg)
                k->qv[first] += r;
            double nn = now + r / a->speed[first];
            long pi = k->pis[first];
            if (pi < k->pend_len[first] &&
                k->pend_t[(size_t)first * k->n + pi] < nn)
                nn = k->pend_t[(size_t)first * k->n + pi];
            k->node_next[first] = nn;
            return;
        }
    }
    admit_now(k, first, now, i);
}

/* ---- policy: greedy-identical (Section 3.4, numpy hook, verbatim) --- */

static inline double live_processed(K *k, long ni, double now) {
    if (k->actives[ni] < 0)
        return 0.0;
    double elapsed = now - k->astarts[ni];
    if (elapsed <= 0.0)
        return 0.0;
    double done = k->a->speed[ni] * elapsed;
    double arem = k->arems[ni];
    return done < arem ? done : arem;
}

static long assign_greedy(K *k, long i, double now) {
    const KernelArgs *a = k->a;
    double p_j = a->size[i];
    double weight_p = a->weight * p_j;
    int64_t r_j = a->rank[i]; /* == sjf rank: kind 1 requires sjf */
    /* Batched F(j, ·) over the root-adjacent entries, exactly like
     * NumpyView._f_top_values: sync each entry, then sum its heap in
     * array order (entries are root-adjacent, hence never leaves). */
    for (long e = 0; e < a->n_entries; e++) {
        long ni = a->entry_ni[e];
        if (k->node_next[ni] <= now)
            advance_node(k, ni, now);
        double total = p_j;
        long hl = k->heap_len[ni];
        if (hl) {
            int64_t *h = k->heap + (size_t)ni * k->n;
            long active = k->actives[ni];
            double live = 0.0;
            int64_t arank = -1;
            if (active >= 0) {
                live = k->arems[ni] - a->speed[ni] * (now - k->astarts[ni]);
                if (live < 0.0)
                    live = 0.0;
                arank = a->rank[active];
            }
            for (long q = 0; q < hl; q++) {
                int64_t er = h[q] >> 32;
                if (er < r_j)
                    total += (er == arank) ? live
                                           : k->rem[h[q] & IDX_MASK];
                else if (a->size[h[q] & IDX_MASK] > p_j)
                    total += p_j;
            }
        }
        k->bases[e] = total;
    }
    if (k->status)
        return -1;
    /* Argmin with the policy's exact tie-breaks. */
    long best_pos = -1;
    int64_t best_leaf = 0;
    double best_score = INFINITY;
    if (weight_p > 0.0) {
        for (long e = 0; e < a->n_entries; e++) {
            double score = k->bases[e] + weight_p * a->entry_min_steps[e];
            int64_t leaf = a->entry_tie_leaf_id[e];
            if (score < best_score ||
                (score == best_score && (best_pos < 0 || leaf < best_leaf))) {
                best_score = score;
                best_leaf = leaf;
                best_pos = e;
            }
        }
        return best_pos >= 0 ? a->entry_tie_path[best_pos] : -1;
    }
    /* weight_p == 0.0: all leaves of a branch tie at `base` (the
     * pathological weight_p < 0 scan is gated out on the Python side —
     * job sizes are validated > 0, so it cannot occur here). */
    for (long e = 0; e < a->n_entries; e++) {
        double score = k->bases[e];
        int64_t leaf = a->entry_min_leaf_id[e];
        if (score < best_score ||
            (score == best_score && (best_pos < 0 || leaf < best_leaf))) {
            best_score = score;
            best_leaf = leaf;
            best_pos = e;
        }
    }
    return best_pos >= 0 ? a->entry_min_leaf_path[best_pos] : -1;
}

/* ---- policy: least-loaded (numpy aggregate reads, verbatim) --------- */

static long assign_least_loaded(K *k, long i, double now) {
    const KernelArgs *a = k->a;
    /* top_load = {top: queue_volume_at(top)} in root_children order. */
    for (long tpos = 0; tpos < a->n_tops; tpos++) {
        long ni = a->tops_ni[tpos];
        if (k->node_next[ni] <= now) /* chain of a root child is itself */
            advance_node(k, ni, now);
        double v;
        if (k->heap_len[ni] == 0) {
            v = 0.0;
        } else {
            v = k->qv[ni] - live_processed(k, ni, now);
            if (!(v > 0.0))
                v = 0.0;
        }
        k->top_load[tpos] = v;
    }
    double p = a->size[i];
    long best_pos = -1;
    int64_t best_leaf = 0;
    double best_score = INFINITY;
    for (long c = 0; c < a->n_cands; c++) {
        long lni = a->cand_leaf_ni[c];
        sync_chain(k, lni, now); /* volume_through syncs the leaf chain */
        double vol;
        if (k->tc[lni] == 0) {
            vol = 0.0;
        } else {
            vol = k->tv[lni] - live_processed(k, lni, now);
            if (!(vol > 0.0))
                vol = 0.0;
        }
        double own = a->cand_d[c] * p;
        double score = k->top_load[a->cand_top_pos[c]] + vol + own;
        int64_t leaf = a->cand_leaf_id[c];
        if (score < best_score ||
            (score == best_score && (best_pos < 0 || leaf < best_leaf))) {
            best_score = score;
            best_leaf = leaf;
            best_pos = c;
        }
    }
    if (k->status)
        return -1;
    return best_pos >= 0 ? a->cand_path[best_pos] : -1;
}

/* ---- entry point ----------------------------------------------------- */

int repro_run(const KernelArgs *a) {
    if (!a || a->n_jobs < 0 || a->n_nodes <= 0 || a->max_path <= 0)
        return ST_BAD_ARGS;
    long n = (long)a->n_jobs;
    long m = (long)a->n_nodes;
    if (n == 0) {
        *a->out_num_events = 0;
        return ST_OK;
    }

    K k;
    memset(&k, 0, sizeof(k));
    k.a = a;
    k.n = n;
    k.m = m;
    k.mp = (long)a->max_path;

    size_t mn = (size_t)m * (size_t)n;
    size_t bytes = 0;
    bytes += mn * sizeof(int64_t);        /* heap */
    bytes += mn * sizeof(double);         /* pend_t */
    bytes += mn * sizeof(int64_t);        /* pend_key */
    bytes += mn * sizeof(int32_t);        /* pend_idx */
    bytes += (size_t)m * sizeof(long) * 6;/* heap_len pend_len pis actives tc + pad */
    bytes += (size_t)m * sizeof(double) * 5; /* astarts arems node_next tv qv */
    bytes += (size_t)n * sizeof(double) * 4; /* rem p_leaf ftol_leaf prev_end */
    bytes += (size_t)n * sizeof(long);       /* hop */
    bytes += (size_t)n * sizeof(int32_t) * 2; /* jpath_off jpath_len */
    bytes += (size_t)(a->n_entries > 0 ? a->n_entries : 1) * sizeof(double);
    bytes += (size_t)(a->n_tops > 0 ? a->n_tops : 1) * sizeof(double);
    char *blob = (char *)malloc(bytes);
    if (!blob)
        return ST_NOMEM;
    char *p = blob;
#define TAKE(var, type, count)                                               \
    k.var = (type *)p;                                                       \
    p += (size_t)(count) * sizeof(type)
    TAKE(heap, int64_t, mn);
    TAKE(pend_t, double, mn);
    TAKE(pend_key, int64_t, mn);
    TAKE(pend_idx, int32_t, mn);
    TAKE(heap_len, long, m);
    TAKE(pend_len, long, m);
    TAKE(pis, long, m);
    TAKE(actives, long, m);
    TAKE(tc, long, m);
    TAKE(astarts, double, m);
    TAKE(arems, double, m);
    TAKE(node_next, double, m);
    TAKE(tv, double, m);
    TAKE(qv, double, m);
    TAKE(rem, double, n);
    TAKE(p_leaf, double, n);
    TAKE(ftol_leaf, double, n);
    TAKE(prev_end, double, n);
    TAKE(hop, long, n);
    TAKE(jpath_off, int32_t, n);
    TAKE(jpath_len, int32_t, n);
    TAKE(bases, double, a->n_entries > 0 ? a->n_entries : 1);
    TAKE(top_load, double, a->n_tops > 0 ? a->n_tops : 1);
#undef TAKE

    for (long ni = 0; ni < m; ni++) {
        k.heap_len[ni] = 0;
        k.pend_len[ni] = 0;
        k.pis[ni] = 0;
        k.actives[ni] = -1;
        k.tc[ni] = 0;
        k.astarts[ni] = 0.0;
        k.arems[ni] = 0.0;
        k.node_next[ni] = INFINITY;
        k.tv[ni] = 0.0;
        k.qv[ni] = 0.0;
    }
    for (long i = 0; i < n; i++) {
        k.rem[i] = 0.0;
        k.prev_end[i] = 0.0;
        k.hop[i] = 0;
        k.jpath_off[i] = 0;
        k.jpath_len[i] = 0;
        a->out_deficit[i] = 0.0;
        /* Availability timelines pre-seeded with the release instant,
         * exactly like the numpy backend's construction. */
        a->out_avail[(size_t)i * k.mp] = a->rel[i];
        a->out_avail_cnt[i] = 1;
        a->out_comp_cnt[i] = 0;
        if (a->policy_kind == 0) {
            k.p_leaf[i] = a->p_leaf_in[i];
            k.ftol_leaf[i] = a->ftol_leaf_in[i];
        }
    }

    long kind = (long)a->policy_kind;
    for (long i = 0; i < n; i++) {
        double now = a->rel[i];
        k.now = now;
        long path_id;
        if (kind == 0) {
            path_id = a->job_path_id[i];
        } else {
            /* Identical setting: p_{j,leaf} == p_j whichever leaf the
             * policy picks, so the leaf columns are fixed up front —
             * the same expression the numpy arrival path evaluates. */
            k.p_leaf[i] = a->size[i];
            k.ftol_leaf[i] = a->ftol_size[i];
            path_id = (kind == 1) ? assign_greedy(&k, i, now)
                                  : assign_least_loaded(&k, i, now);
            if (path_id < 0) {
                /* A nested advance tripped max_events, or (vacuous for
                 * validated instances) every score was NaN. */
                if (!k.status)
                    k.status = ST_BAD_ARGS;
                break;
            }
        }
        a->out_path_id[i] = (int32_t)path_id;
        handle_arrival(&k, i, path_id, now);
        if (k.status)
            break;
    }
    /* Arrivals count as events exactly as on the numpy backend. */
    k.num_events += n;

    /* Final drain: preorder guarantees every node's parent empties
     * first, so one pass completes all in-flight work. */
    if (!k.status) {
        for (long ni = 0; ni < m; ni++) {
            advance_node(&k, ni, INFINITY);
            if (k.status)
                break;
        }
    }

    *a->out_num_events = (int64_t)k.num_events;
    free(blob);
    return k.status;
}
