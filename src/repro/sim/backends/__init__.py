"""Engine backend registry and dispatch.

The selectable engine backends:

* ``"python"`` — the reference :class:`~repro.sim.engine.Engine`: one
  global event heap, per-event observer/tracer/counter hooks, bounded
  horizons.  Always available; always correct.
* ``"numpy"`` — the structure-of-arrays kernel
  (:mod:`repro.sim.backends.numpy_backend`): batch-precomputed job
  columns, int-encoded priority heaps, lazily-synced per-node sweeps.
  Several times faster on event-dense workloads, but it has no global
  event order, so options defined in terms of one (``observer``,
  ``tracer``, ``until``, engine counters) silently fall back to the
  python engine — results are equivalent either way, only the execution
  strategy differs.
* ``"c"`` — the compiled kernel (:mod:`repro.sim.backends.c_backend`):
  the numpy backend's event loop transliterated to C, built on demand
  from shipped source by :mod:`repro.sim.backends.c_build` and driven
  via ctypes.  Another ~3x over numpy, bit-identical output.  Optional:
  with no working compiler (or ``REPRO_NO_CKERNEL=1``) the backend is
  *unavailable* — requesting it explicitly raises, selecting it through
  the environment falls back to ``"python"`` with a warning.  Calls the
  kernel cannot express (generic priorities, custom policies, segment
  recording) transparently run on the numpy backend; event-order
  options fall back to the python engine as above.

Three implementations of the Section-2 semantics, one call surface.

Selection: one resolver, :func:`select_backend`, shared by
:func:`simulate`, :func:`repro.api.simulate`,
:func:`repro.api.open_system` and the CLI — the ``backend=`` keyword
wins, else the :data:`ENV_VAR` environment variable ``REPRO_BACKEND``,
else ``"python"``; unavailable backends raise when named explicitly and
warn-and-fall-back when selected through the environment.
"""

from __future__ import annotations

import os
import warnings
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

from repro.exceptions import SimulationError
from repro.sim import engine as _engine
from repro.sim.backends import c_build
from repro.sim.backends.c_backend import CEngine, simulate_c
from repro.sim.backends.numpy_backend import NumpyEngine, NumpyView, simulate_numpy
from repro.sim.counters import global_counters
from repro.sim.engine import (
    AssignmentPolicy,
    PriorityFn,
    SchedulerView,
    sjf_priority,
)
from repro.sim.result import SimulationResult
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "BackendChoice",
    "available_backends",
    "backend_available",
    "resolve_backend",
    "select_backend",
    "simulate",
    "CEngine",
    "NumpyEngine",
    "NumpyView",
    "simulate_numpy",
    "simulate_c",
]

#: The selectable engine backends.
BACKENDS = ("python", "numpy", "c")

#: Environment variable holding the default backend name.
ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: str | None = None) -> str:
    """The effective backend name: explicit argument, else the
    ``REPRO_BACKEND`` environment variable, else ``"python"``."""
    if backend is None:
        backend = os.environ.get(ENV_VAR) or "python"
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


@dataclass(frozen=True, slots=True)
class BackendChoice:
    """The outcome of one backend selection (see :func:`select_backend`).

    Attributes
    ----------
    requested:
        The ``backend=`` keyword as passed (``None`` when the caller
        left selection to the environment/default).
    source:
        Where the name came from: ``"kwarg"``, ``"env"`` or
        ``"default"`` — the documented precedence order.
    effective:
        The backend that will actually run.
    fallback_reason:
        Why ``effective`` differs from the selected name (``None`` when
        the selection was honoured).
    """

    requested: str | None
    source: str
    effective: str
    fallback_reason: str | None = None


def select_backend(backend: str | None = None) -> BackendChoice:
    """THE backend resolver — one precedence rule for every entry point.

    ``simulate()``, ``open_system()`` and the CLI all resolve through
    here: the explicit ``backend=`` keyword wins, else the
    ``REPRO_BACKEND`` environment variable, else ``"python"``.

    Availability policy: a backend named *explicitly* (kwarg) that is
    unavailable raises :class:`~repro.exceptions.SimulationError`; one
    selected through the environment falls back to ``"python"`` with a
    :class:`RuntimeWarning` naming the reason — an exported variable
    must not break every simulation on a compiler-less machine.  The
    returned :class:`BackendChoice` records what happened.
    """
    if backend is not None:
        source, name = "kwarg", backend
    else:
        env = os.environ.get(ENV_VAR)
        if env:
            source, name = "env", env
        else:
            source, name = "default", "python"
    if name not in BACKENDS:
        raise SimulationError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    ok, reason = backend_available(name)
    if ok:
        return BackendChoice(backend, source, name)
    if source == "kwarg":
        raise SimulationError(
            f"backend {name!r} is unavailable on this machine: {reason}"
        )
    warnings.warn(
        f"{ENV_VAR}={name} but that backend is unavailable ({reason}); "
        "falling back to the python engine",
        RuntimeWarning,
        stacklevel=3,
    )
    return BackendChoice(backend, source, "python", reason)


def backend_available(backend: str) -> tuple[bool, str | None]:
    """``(available, reason-if-not)`` for a backend name.

    ``python`` and ``numpy`` are always available; ``c`` requires a
    working C compiler (probed — and the kernel built — on first ask).
    """
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "c":
        return c_build.availability()
    return True, None


def available_backends() -> tuple[str, ...]:
    """The subset of :data:`BACKENDS` usable on this machine."""
    return tuple(b for b in BACKENDS if backend_available(b)[0])


def _numpy_applicable(
    observer: object,
    tracer: object,
    until: float | None,
    collect_counters: bool | None,
) -> bool:
    """Whether the numpy kernel can serve this call (see module doc)."""
    if observer is not None or tracer is not None or until is not None:
        return False
    if collect_counters or (collect_counters is None and global_counters() is not None):
        return False
    return True


#: One-shot flag: the C-kernel dynamic-events fallback warns once per
#: process, not once per call (event-bearing sweeps run thousands).
_warned_c_events = False


def simulate(
    instance: Instance,
    policy: AssignmentPolicy,
    *,
    backend: str | None = None,
    speeds: SpeedProfile | None = None,
    priority: PriorityFn = sjf_priority,
    record_segments: bool = False,
    check_invariants: bool = False,
    observer: Callable[[SchedulerView, str, int], None] | None = None,
    until: float | None = None,
    collect_counters: bool | None = None,
    tracer: "TraceRecorder | None" = None,
    events=None,
) -> SimulationResult:
    """Simulate on the selected backend.

    Accepts the full engine option surface; when ``backend="numpy"`` or
    ``backend="c"`` is combined with an option the kernels cannot honour
    (observer, tracer, ``until``, counters), the call transparently runs
    on the python engine instead — the schedule is the same either way.
    A dynamic-event schedule (``events=``) is honoured by the python
    and numpy backends natively; the C kernel cannot express it, so
    ``backend="c"`` with events falls back to the numpy backend with a
    once-per-process :class:`RuntimeWarning`.

    Selection and the unavailable-backend policy (explicit request
    raises, environment selection warns and falls back) live in
    :func:`select_backend` — the single resolver shared with
    :func:`repro.api.open_system` and the CLI.
    """
    backend = select_backend(backend).effective
    if backend == "c" and events is not None and len(events):
        global _warned_c_events
        if not _warned_c_events:
            _warned_c_events = True
            warnings.warn(
                "backend='c' cannot run dynamic events (outages/"
                "cancellations); falling back to the numpy backend for "
                "event-bearing runs",
                RuntimeWarning,
                stacklevel=2,
            )
        backend = "numpy"
    if backend == "c" and _numpy_applicable(
        observer, tracer, until, collect_counters
    ):
        return simulate_c(
            instance,
            policy,
            speeds=speeds,
            priority=priority,
            record_segments=record_segments,
            check_invariants=check_invariants,
            events=events,
        )
    if backend == "numpy" and _numpy_applicable(
        observer, tracer, until, collect_counters
    ):
        return simulate_numpy(
            instance,
            policy,
            speeds=speeds,
            priority=priority,
            record_segments=record_segments,
            check_invariants=check_invariants,
            events=events,
        )
    return _engine.simulate(
        instance,
        policy,
        speeds=speeds,
        priority=priority,
        record_segments=record_segments,
        check_invariants=check_invariants,
        observer=observer,
        until=until,
        collect_counters=collect_counters,
        tracer=tracer,
        events=events,
    )
