"""Engine backend registry and dispatch.

Two implementations of the Section-2 semantics live behind one call
surface:

* ``"python"`` — the reference :class:`~repro.sim.engine.Engine`: one
  global event heap, per-event observer/tracer/counter hooks, bounded
  horizons.  Always available; always correct.
* ``"numpy"`` — the structure-of-arrays kernel
  (:mod:`repro.sim.backends.numpy_backend`): batch-precomputed job
  columns, int-encoded priority heaps, lazily-synced per-node sweeps.
  Several times faster on event-dense workloads, but it has no global
  event order, so options defined in terms of one (``observer``,
  ``tracer``, ``until``, engine counters) silently fall back to the
  python engine — results are equivalent either way, only the execution
  strategy differs.

Selection: the ``backend=`` keyword on :func:`simulate` (and on
:func:`repro.api.simulate`), defaulting to the :data:`ENV_VAR`
environment variable ``REPRO_BACKEND``, defaulting to ``"python"``.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

from repro.exceptions import SimulationError
from repro.sim import engine as _engine
from repro.sim.backends.numpy_backend import NumpyEngine, NumpyView, simulate_numpy
from repro.sim.counters import global_counters
from repro.sim.engine import (
    AssignmentPolicy,
    PriorityFn,
    SchedulerView,
    sjf_priority,
)
from repro.sim.result import SimulationResult
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Instance

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "resolve_backend",
    "simulate",
    "NumpyEngine",
    "NumpyView",
    "simulate_numpy",
]

#: The selectable engine backends.
BACKENDS = ("python", "numpy")

#: Environment variable holding the default backend name.
ENV_VAR = "REPRO_BACKEND"


def resolve_backend(backend: str | None = None) -> str:
    """The effective backend name: explicit argument, else the
    ``REPRO_BACKEND`` environment variable, else ``"python"``."""
    if backend is None:
        backend = os.environ.get(ENV_VAR) or "python"
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def _numpy_applicable(
    observer: object,
    tracer: object,
    until: float | None,
    collect_counters: bool | None,
) -> bool:
    """Whether the numpy kernel can serve this call (see module doc)."""
    if observer is not None or tracer is not None or until is not None:
        return False
    if collect_counters or (collect_counters is None and global_counters() is not None):
        return False
    return True


def simulate(
    instance: Instance,
    policy: AssignmentPolicy,
    *,
    backend: str | None = None,
    speeds: SpeedProfile | None = None,
    priority: PriorityFn = sjf_priority,
    record_segments: bool = False,
    check_invariants: bool = False,
    observer: Callable[[SchedulerView, str, int], None] | None = None,
    until: float | None = None,
    collect_counters: bool | None = None,
    tracer: "TraceRecorder | None" = None,
) -> SimulationResult:
    """Simulate on the selected backend.

    Accepts the full engine option surface; when ``backend="numpy"`` is
    combined with an option the kernel cannot honour (observer, tracer,
    ``until``, counters), the call transparently runs on the python
    engine instead — the schedule is the same either way.
    """
    backend = resolve_backend(backend)
    if backend == "numpy" and _numpy_applicable(
        observer, tracer, until, collect_counters
    ):
        return simulate_numpy(
            instance,
            policy,
            speeds=speeds,
            priority=priority,
            record_segments=record_segments,
            check_invariants=check_invariants,
        )
    return _engine.simulate(
        instance,
        policy,
        speeds=speeds,
        priority=priority,
        record_segments=record_segments,
        check_invariants=check_invariants,
        observer=observer,
        until=until,
        collect_counters=collect_counters,
        tracer=tracer,
    )
