"""Metrics over simulation results.

Beyond the headline objectives (total/mean flow time, already on
:class:`~repro.sim.result.SimulationResult`), this module provides the
decompositions the paper's lemmas are stated in terms of:

* :func:`waiting_decomposition` — per job, the wall-clock spent at the
  root-adjacent node, on interior identical nodes, and at the leaf
  (Lemma 4's three terms);
* :func:`interior_delay` — the time from leaving ``R(v)`` until
  completion on the *last identical node* of the path, the quantity
  Lemma 1 bounds by ``(6/ε²)·p_j·d_v``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AnalysisError
from repro.sim.result import JobRecord, SimulationResult
from repro.workload.instance import Setting

__all__ = [
    "total_flow_time",
    "mean_flow_time",
    "flow_time_per_job",
    "max_stretch",
    "interior_delay",
    "normalized_interior_delay",
    "WaitingBreakdown",
    "waiting_decomposition",
]


def total_flow_time(result: SimulationResult) -> float:
    """``Σ_j (C_j − r_j)``."""
    return result.total_flow_time()


def mean_flow_time(result: SimulationResult) -> float:
    """Average flow time over jobs."""
    return result.mean_flow_time()


def flow_time_per_job(result: SimulationResult) -> dict[int, float]:
    """``job id -> C_j − r_j``."""
    return {j: rec.flow_time for j, rec in result.records.items()}


def max_stretch(result: SimulationResult) -> float:
    """Maximum over jobs of flow time divided by the job's minimum
    possible path volume (a scale-free slowdown measure)."""
    instance = result.instance
    worst = 0.0
    for rec in result.records.values():
        job = instance.jobs.by_id(rec.job_id)
        lower = instance.min_path_volume(job)
        if lower <= 0:
            raise AnalysisError(f"job {rec.job_id} has non-positive path volume")
        worst = max(worst, rec.flow_time / lower)
    return worst


def _last_identical_index(record: JobRecord, setting: Setting) -> int:
    """Index on the processing path of the last *identical* node.

    In the identical setting every node (including the leaf) is
    identical; in the unrelated-endpoint setting the leaf is unrelated,
    so the last identical node is the router just above it.
    """
    if setting is Setting.IDENTICAL:
        return len(record.path) - 1
    return len(record.path) - 2


def interior_delay(result: SimulationResult, job_id: int) -> float:
    """Time from completing on ``R(v)`` to completing on the last
    identical node of the path (Lemma 1's quantity).

    Zero for paths whose last identical node *is* ``R(v)``.
    """
    rec = result.records[job_id]
    last = _last_identical_index(rec, result.instance.setting)
    if last <= 0:
        return 0.0
    return rec.completed_at[last] - rec.completed_at[0]


def normalized_interior_delay(result: SimulationResult, job_id: int) -> float:
    """:func:`interior_delay` divided by ``p_j · d_v`` — directly
    comparable to Lemma 1's ``6/ε²`` constant."""
    rec = result.records[job_id]
    job = result.instance.jobs.by_id(job_id)
    # Path length == d_v for root-origin jobs; for the arbitrary-arrival
    # extension it is the origin-relative analogue.
    d_v = len(rec.path)
    return interior_delay(result, job_id) / (job.size * d_v)


@dataclass(frozen=True, slots=True)
class WaitingBreakdown:
    """Per-job wall-clock decomposition along the path (Lemma 4's terms).

    Attributes
    ----------
    at_top:
        Time associated with the root-adjacent node ``R(v)`` (waiting
        plus processing there).
    interior:
        Time on identical nodes strictly between ``R(v)`` and the last
        identical node.
    at_leaf:
        Time associated with the final node of the path (for unrelated
        endpoints, the unrelated machine).
    """

    at_top: float
    interior: float
    at_leaf: float

    @property
    def total(self) -> float:
        return self.at_top + self.interior + self.at_leaf


def waiting_decomposition(result: SimulationResult, job_id: int) -> WaitingBreakdown:
    """Split a job's flow time into Lemma 4's three phases."""
    rec = result.records[job_id]
    at_top = rec.completed_at[0] - rec.available_at[0]
    at_leaf = rec.completed_at[-1] - rec.available_at[-1]
    interior = rec.flow_time - at_top - at_leaf
    if len(rec.path) == 1:  # leaf adjacent to root (only in permissive tests)
        return WaitingBreakdown(at_top=at_top, interior=0.0, at_leaf=0.0)
    return WaitingBreakdown(at_top=at_top, interior=max(interior, 0.0), at_leaf=at_leaf)


def flow_time_array(result: SimulationResult) -> np.ndarray:
    """Per-job flow times as an array, in job-id order."""
    return result.flow_times()
