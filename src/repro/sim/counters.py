"""Lightweight engine performance counters.

:class:`EngineCounters` tallies where event-processing time goes inside
:class:`~repro.sim.engine.Engine`: events by kind, stale-event skips,
settle/rearm calls, heap pushes, and wall-clock per phase.  Collection
is off by default and costs one ``is None`` test per increment site when
disabled, so the hot path is unaffected.

Two ways to enable collection:

* per run — ``Engine(..., collect_counters=True)`` (or the same keyword
  on :func:`~repro.sim.engine.simulate`); the run's counters appear on
  ``SimulationResult.counters``;
* per process — :func:`enable_global_counters`; every subsequent run
  also merges its counters into a process-wide aggregate readable via
  :func:`global_counters`.  The experiment runner uses this to meter
  whole experiments (which run many simulations internally) without
  threading a flag through every call site.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = [
    "EngineCounters",
    "enable_global_counters",
    "disable_global_counters",
    "global_counters_enabled",
    "global_counters",
    "reset_global_counters",
]


@dataclass(slots=True)
class EngineCounters:
    """Tallies for one simulation run (or a merged aggregate of runs).

    Attributes
    ----------
    runs:
        Number of engine runs merged into this struct (1 for a single
        ``SimulationResult``).
    events_processed:
        Events handled by the main loop (arrivals + completions +
        dynamic events).
    arrivals / completions / dyn_events:
        The split of ``events_processed`` by kind (``dyn_events`` counts
        node breakdowns/repairs and cancellations from an
        :class:`~repro.workload.events.EventSchedule`).
    stale_events_skipped:
        Version-invalidated completion predictions popped and discarded.
    settle_calls / rearm_calls:
        Node bookkeeping operations (queue changes).
    heap_pushes:
        Pushes onto per-node priority heaps.
    drained_finished:
        Finished jobs advanced by the zero-remaining drain (ties at
        identical priority).
    aggregate_reads:
        O(1) congestion-aggregate queries answered by the view
        (``jobs_through_count`` / ``volume_through`` /
        ``queue_volume_at``).
    aggregate_updates:
        Per-node incremental adjustments to the congestion aggregates at
        the three mutation points (release, hop advance, settle).
    lp_memo_hits / lp_memo_misses:
        Lookups answered by / solved through the memoized lower-bound
        service of :mod:`repro.analysis.ratios` (counted only while
        global collection is on; the LP solver runs outside the engine,
        so per-run counters never see these).
    trace_records:
        Trace records (points + spans + gauge samples) collected when a
        :class:`~repro.obs.trace.TraceRecorder` was attached; 0 when
        tracing was off.
    arrival_seconds / completion_seconds:
        Wall-clock spent inside the two event handlers.
    run_seconds:
        Wall-clock of the whole ``Engine.run`` call(s).
    """

    runs: int = 0
    events_processed: int = 0
    arrivals: int = 0
    completions: int = 0
    dyn_events: int = 0
    stale_events_skipped: int = 0
    settle_calls: int = 0
    rearm_calls: int = 0
    heap_pushes: int = 0
    drained_finished: int = 0
    aggregate_reads: int = 0
    aggregate_updates: int = 0
    lp_memo_hits: int = 0
    lp_memo_misses: int = 0
    trace_records: int = 0
    arrival_seconds: float = 0.0
    completion_seconds: float = 0.0
    run_seconds: float = 0.0

    def merge(self, other: "EngineCounters") -> "EngineCounters":
        """Add ``other``'s tallies into this struct (and return self)."""
        for f in fields(EngineCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view (picklable, JSON-friendly)."""
        return {f.name: getattr(self, f.name) for f in fields(EngineCounters)}

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "EngineCounters":
        """Inverse of :meth:`as_dict`; unknown keys are ignored."""
        known = {f.name for f in fields(EngineCounters)}
        out = cls()
        for k, v in data.items():
            if k in known:
                setattr(out, k, v)
        return out

    @property
    def events_per_second(self) -> float:
        """Throughput over the measured run wall-clock (0 if unmeasured)."""
        if self.run_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.run_seconds


# -- process-wide aggregation ------------------------------------------
_global: EngineCounters | None = None


def enable_global_counters() -> EngineCounters:
    """Turn on process-wide collection; returns the (fresh) aggregate."""
    global _global
    _global = EngineCounters()
    return _global


def disable_global_counters() -> None:
    """Turn process-wide collection off (per-run flags still work)."""
    global _global
    _global = None


def global_counters_enabled() -> bool:
    return _global is not None


def global_counters() -> EngineCounters | None:
    """The process-wide aggregate, or ``None`` when disabled."""
    return _global


def reset_global_counters() -> None:
    """Zero the aggregate without disabling collection."""
    if _global is not None:
        enable_global_counters()
