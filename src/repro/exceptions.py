"""Typed exception hierarchy for the ``treesched`` library.

Every error raised intentionally by the library derives from
:class:`TreeSchedError`, so callers can catch library failures without
swallowing genuine programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "TreeSchedError",
    "TopologyError",
    "WorkloadError",
    "SimulationError",
    "InvariantViolation",
    "AssignmentError",
    "LPError",
    "AnalysisError",
]


class TreeSchedError(Exception):
    """Base class for all errors raised by the treesched library."""


class TopologyError(TreeSchedError):
    """A tree network is structurally invalid for the paper's model.

    Examples: multiple roots, a leaf adjacent to the root, a cycle,
    an unknown node id, or a non-positive node speed.
    """


class WorkloadError(TreeSchedError):
    """A job set or generator configuration is invalid.

    Examples: negative release times, non-positive processing times, an
    unrelated-endpoint matrix that does not cover every leaf, or a job
    with no feasible leaf.
    """


class SimulationError(TreeSchedError):
    """The simulator was driven into an unusable configuration.

    Examples: simulating an instance whose jobs reference nodes that are
    not in the tree, or requesting results before the run finished.
    """


class InvariantViolation(SimulationError):
    """A runtime model invariant was violated during simulation.

    Raised only when invariant checking is enabled; indicates a bug in a
    policy or in the engine itself, never a user input problem.
    """


class AssignmentError(TreeSchedError):
    """An assignment policy produced an illegal leaf choice."""


class LPError(TreeSchedError):
    """LP construction or solving failed.

    Examples: an instance too large for the discrete-time grid, a solver
    failure reported by scipy, or an infeasible primal that should have
    been feasible by construction.
    """


class AnalysisError(TreeSchedError):
    """An analysis routine received inconsistent experiment data."""
