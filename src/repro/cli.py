"""Command-line interface.

``python -m repro <command>``:

* ``run`` — build a synthetic instance (or load a JSON trace), schedule
  it with a chosen policy, and print metrics, optionally the per-job
  table and an ASCII Gantt chart;
* ``trace`` — the same simulation with structured tracing
  (:mod:`repro.obs`) enabled: export span/gauge records as
  schema-validated JSONL or Chrome trace JSON (Perfetto-loadable), print
  a per-node summary, or validate an existing JSONL trace;
* ``experiment`` — run one or all registered experiments serially and
  print their reports (the same tables the benchmarks regenerate);
* ``experiments`` — run many experiments through the trial-sharding
  parallel runner with content-addressed result caching
  (``--parallel N``, ``--no-cache``, ``--no-shard``, ``--counters``);
* ``list-experiments`` — show the registry;
* ``generate`` — write a synthetic instance to a JSON trace for later
  ``run --trace`` calls;
* ``bound`` — compute lower bounds (LP and combinatorial) for a trace;
* ``bench`` — engine scaling sweep, policy microbenchmarks and registry
  serial-vs-sharded timing, written to ``BENCH_engine.json`` so the
  perf trajectory is tracked across PRs; ``--compare`` gates a fresh
  run against the checked-in document instead;
* ``fuzz`` — differential fuzzing (:mod:`repro.testing`): run the
  engine against independent reference oracles over seeded instance
  grids, shrink any disagreement and persist it to the crash corpus;
  ``--replay DIGEST`` re-runs a saved repro, ``--list`` shows the
  corpus;
* ``serve`` — open-system streaming mode (:mod:`repro.service`): feed
  a (possibly infinite) Poisson arrival stream through the engine,
  aggregate windowed steady-state metrics and expose ``/metrics`` +
  ``/snapshot`` over HTTP; ``--smoke`` is the self-checking CI mode.

Every command is deterministic given ``--seed``; ``run --profile``
wraps the simulation in ``cProfile`` for hot-path hunts, and ``run
--backend`` / ``REPRO_BACKEND`` select the engine backend through the
same resolver as the API.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.analysis.tables import Table

__all__ = ["main", "build_parser"]

_TREES = ("kary", "paths", "caterpillar", "datacenter", "random", "figure1")
DEFAULT_BENCH_SIZES = (200, 800, 2400)
_POLICIES = ("greedy", "closest", "random", "least-loaded", "round-robin")
_SIZES = ("uniform", "pareto", "bimodal")


def _build_tree(args):
    from repro import api

    kind = args.tree
    a, b, c = args.tree_args
    params_by_kind = {
        "kary": {"branching": a, "depth": b},
        "paths": {"num_paths": a, "path_length": b},
        "caterpillar": {"spine_length": a, "leaves_per_node": b},
        "datacenter": {"num_pods": a, "racks_per_pod": b, "machines_per_rack": c},
        "random": {"num_nodes": a, "rng": args.seed},
        "figure1": {},
    }
    return api.build_tree(kind, **params_by_kind[kind])


def _build_instance(args):
    from repro import api

    if args.trace:
        from repro.workload.trace_io import load_instance

        return load_instance(args.trace)
    # The tree is built here (not inside make_instance) so --tree-args
    # keep their positional CLI form.
    return api.make_instance(
        tree=_build_tree(args),
        n_jobs=args.jobs,
        load=args.load,
        size_dist=args.size_dist,
        unrelated=args.unrelated,
        seed=args.seed,
        name="cli",
    )


def _build_policy(name: str, instance, eps: float, seed: int):
    from repro.baselines.policies import (
        ClosestLeafAssignment,
        LeastLoadedAssignment,
        RandomAssignment,
        RoundRobinAssignment,
    )
    from repro.core.assignment import (
        GreedyIdenticalAssignment,
        GreedyUnrelatedAssignment,
    )
    from repro.workload.instance import Setting

    if name == "greedy":
        if instance.setting is Setting.UNRELATED:
            return GreedyUnrelatedAssignment(eps)
        return GreedyIdenticalAssignment(eps)
    if name == "closest":
        return ClosestLeafAssignment()
    if name == "random":
        return RandomAssignment(seed)
    if name == "least-loaded":
        return LeastLoadedAssignment()
    return RoundRobinAssignment()


def _cmd_run(args) -> int:
    from repro.sim import backends
    from repro.sim.engine import fifo_priority, sjf_priority
    from repro.sim.speed import SpeedProfile

    instance = _build_instance(args)
    policy = _build_policy(args.policy, instance, args.eps, args.seed)

    def _simulate():
        # backends.simulate resolves --backend through select_backend —
        # the same kwarg > REPRO_BACKEND > "python" rule as the API.
        return backends.simulate(
            instance,
            policy,
            backend=args.backend,
            speeds=SpeedProfile.uniform(args.speed),
            priority=fifo_priority if args.fifo else sjf_priority,
            record_segments=args.gantt,
            until=args.until,
            collect_counters=args.counters or None,
        )

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            result = _simulate()
        finally:
            # Disable and dump even when the simulation raises: the
            # partial profile is exactly what a hot-path hunt for the
            # failure needs, and the profiler must never stay enabled
            # for the rest of the process.
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(20)
    else:
        result = _simulate()
    print(f"instance : {instance!r}")
    print(f"policy   : {args.policy} ({'fifo' if args.fifo else 'sjf'} nodes)")
    print(f"speed    : {args.speed}")
    if args.until is not None:
        done = result.completed_records()
        print(
            f"horizon  : {args.until} "
            f"({len(done)} finished, {len(result.unfinished_job_ids())} in flight)"
        )
        if done:
            mean = sum(r.flow_time for r in done.values()) / len(done)
            print(f"mean flow time (completed) : {mean:.4f}")
        print(f"fractional flow (window)     : {result.fractional_flow:.4f}")
        if args.counters and result.counters is not None:
            from repro.analysis.report import counters_table

            print()
            print(counters_table(result.counters).render())
        return 0
    print(f"total flow time      : {result.total_flow_time():.4f}")
    print(f"mean flow time       : {result.mean_flow_time():.4f}")
    print(f"max flow time        : {result.max_flow_time():.4f}")
    print(f"fractional flow time : {result.fractional_flow:.4f}")
    if args.per_job:
        table = Table("per-job", ["job", "release", "leaf", "completion", "flow"])
        for jid in sorted(result.records):
            rec = result.records[jid]
            table.add_row(jid, rec.release, rec.leaf, rec.completion, rec.flow_time)
        print()
        print(table.render())
    if args.gantt:
        from repro.sim.gantt import render_gantt

        print()
        print(render_gantt(result, width=args.gantt_width))
    if args.counters and result.counters is not None:
        from repro.analysis.report import counters_table

        print()
        print(counters_table(result.counters).render())
    return 0


def _cmd_trace(args) -> int:
    from repro.obs import (
        trace_summary_table,
        validate_jsonl,
        write_chrome,
        write_jsonl,
    )

    if args.validate is not None:
        counts, errors = validate_jsonl(args.validate)
        for error in errors[:20]:
            print(error, file=sys.stderr)
        if errors:
            print(
                f"INVALID: {args.validate}: {len(errors)} error(s)", file=sys.stderr
            )
            return 1
        total = sum(counts.values())
        detail = ", ".join(f"{counts[k]} {k}" for k in sorted(counts))
        print(f"valid trace: {total} records ({detail})")
        return 0

    from repro import api

    instance = _build_instance(args)
    result = api.trace_run(
        instance=instance,
        policy=args.policy,
        eps=args.eps,
        seed=args.seed,
        speed=args.speed,
        priority="fifo" if args.fifo else "sjf",
        gauge_interval=args.gauge_interval,
        gauge_nodes=tuple(args.gauge_nodes) if args.gauge_nodes else None,
        record_points=not args.no_points,
        record_spans=not args.no_spans,
    )
    trace = result.trace
    if args.format == "summary":
        print(trace_summary_table(trace).render())
        print(
            f"\n{len(trace.points)} points, {len(trace.spans)} spans, "
            f"{len(trace.gauges)} gauge samples "
            f"(final_time={trace.meta['final_time']:.4f})"
        )
        return 0
    writer = write_jsonl if args.format == "jsonl" else write_chrome
    if args.output == "-":
        writer(trace, sys.stdout)
        return 0
    count = writer(trace, args.output)
    unit = "lines" if args.format == "jsonl" else "events"
    print(f"wrote {count} {unit} to {args.output}", file=sys.stderr)
    return 0


def _cmd_experiment(args) -> int:
    from repro.analysis.experiments import all_experiment_ids, run_experiment

    ids = all_experiment_ids() if args.id == "all" else [args.id.upper()]
    failed = []
    for eid in ids:
        result = run_experiment(eid)
        print(result.render())
        print()
        if not result.passed:
            failed.append(eid)
    if failed:
        print(f"FAILED experiments: {failed}", file=sys.stderr)
        return 1
    return 0


def _cmd_experiments(args) -> int:
    from repro.analysis.experiments import all_experiment_ids
    from repro.analysis.report import counters_table
    from repro.analysis.runner import (
        DEFAULT_CACHE_DIR,
        aggregate_counters,
        run_experiments,
        summary_table,
    )

    ids = [i.upper() for i in args.ids]
    if not ids or ids == ["ALL"]:
        ids = all_experiment_ids()
    outcomes = run_experiments(
        ids,
        parallel=args.parallel,
        cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
        use_cache=not args.no_cache,
        collect_counters=args.counters,
        shard_trials=not args.no_shard,
        manifest_dir=args.manifest,
    )
    if args.manifest:
        print(f"wrote {len(outcomes)} trial manifest(s) to {args.manifest}/")
    if not args.summary_only:
        for out in outcomes:
            print(out.result.render())
            print()
    print(summary_table(outcomes).render())
    if args.counters:
        merged = aggregate_counters(outcomes)
        if merged is not None:
            print()
            print(counters_table(merged, "engine counters (all experiments)").render())
    failed = [out.exp_id for out in outcomes if not out.result.passed]
    if failed:
        print(f"FAILED experiments: {failed}", file=sys.stderr)
        return 1
    return 0


def _cmd_list_experiments(args) -> int:
    from repro.analysis.experiments import all_experiment_ids, get_experiment

    table = Table("registered experiments", ["id", "summary"])
    for eid in all_experiment_ids():
        fn = get_experiment(eid)
        module = sys.modules.get(fn.__module__)
        doc = (getattr(module, "__doc__", None) or fn.__doc__ or "").strip()
        table.add_row(eid, doc.splitlines()[0] if doc else "")
    print(table.render())
    return 0


def _cmd_generate(args) -> int:
    from repro.workload.trace_io import save_instance

    instance = _build_instance(args)
    save_instance(instance, args.output)
    print(f"wrote {len(instance.jobs)} jobs on {instance.tree!r} to {args.output}")
    return 0


def _cmd_bound(args) -> int:
    from repro.analysis.ratios import lower_bound_for
    from repro.lp.bounds import best_lower_bound
    from repro.workload.trace_io import load_instance

    instance = load_instance(args.trace)
    combo, combo_name = best_lower_bound(instance)
    print(f"combinatorial bound : {combo:.4f} ({combo_name})")
    lb, name = lower_bound_for(instance, prefer_lp=not args.no_lp)
    print(f"best bound          : {lb:.4f} ({name})")
    return 0


def _cmd_plan(args) -> int:
    from repro.analysis.planning import min_speed_for_flow

    instance = _build_instance(args)
    policy_name = args.policy

    def factory():
        return _build_policy(policy_name, instance, args.eps, args.seed)

    plan = min_speed_for_flow(
        instance, factory, args.target, metric=args.metric, tol=args.tol
    )
    print(f"instance : {instance!r}")
    print(f"policy   : {policy_name}")
    print(f"target   : {args.metric} <= {args.target}")
    for point in plan.frontier:
        mark = "ok " if point.meets_target else "miss"
        print(f"  probe speed {point.speed:7.3f} -> {point.value:10.4f}  [{mark}]")
    if plan.feasible:
        print(f"minimum uniform speed: {plan.speed:.3f}")
        return 0
    print("infeasible within the searched speed range", file=sys.stderr)
    return 1


def _cmd_bench(args) -> int:
    import json

    from repro.analysis.bench import (
        MAX_DEGRADATION,
        compare_bench,
        render_bench,
        run_bench,
    )

    doc = run_bench(
        sizes=tuple(args.sizes),
        repeats=args.repeats,
        include_policies=not args.no_policies,
        # A compare run is a gate, not a new baseline: skip the registry
        # timing (it is excluded from the comparison anyway).
        include_registry=not args.no_registry and not args.compare,
        registry_parallel=args.registry_parallel,
    )
    print(render_bench(doc))
    if args.compare:
        try:
            with open(args.output) as fh:
                baseline = json.load(fh)
        except OSError as exc:
            print(f"cannot read baseline {args.output}: {exc}", file=sys.stderr)
            return 1
        regressions = compare_bench(baseline, doc)
        if regressions:
            table = Table(
                f"throughput regressions vs {args.output} "
                f"(> {MAX_DEGRADATION}x slower)",
                ["section", "name", "baseline_ev_s", "fresh_ev_s", "slowdown"],
            )
            for reg in regressions:
                table.add_row(
                    reg["section"], reg["name"], reg["baseline_events_per_s"],
                    reg["fresh_events_per_s"], reg["slowdown"],
                )
            print()
            print(table.render())
            failing = sorted({f"{reg['section']}:{reg['name']}" for reg in regressions})
            print(
                f"FAILED: {len(regressions)} regression(s) in "
                f"{', '.join(failing)}",
                file=sys.stderr,
            )
            return 1
        print(f"\nno regressions vs {args.output} (band: {MAX_DEGRADATION}x)")
        return 0
    if args.output != "-":
        with open(args.output, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_fuzz(args) -> int:
    import json

    from repro.testing import (
        DEFAULT_CORPUS_DIR,
        list_corpus,
        replay,
        run_fuzz,
    )

    corpus_dir = args.corpus or DEFAULT_CORPUS_DIR

    if args.list:
        entries = list_corpus(corpus_dir)
        if args.json:
            print(json.dumps(entries, indent=2, sort_keys=True))
            return 0
        if not entries:
            print(f"corpus {corpus_dir} is empty")
            return 0
        table = Table(
            f"crash corpus ({corpus_dir})", ["digest", "checks", "jobs", "label"]
        )
        for entry in entries:
            table.add_row(
                entry["digest"],
                ",".join(entry["checks"]),
                entry["n_jobs"],
                entry["label"] or "",
            )
        print(table.render())
        return 0

    if args.replay is not None:
        report = replay(args.replay, corpus_dir)
        if args.json:
            print(json.dumps(report.to_doc(), indent=2, sort_keys=True))
        else:
            print(f"digest   : {report.digest}")
            print(f"case     : {report.label}")
            print(f"recorded : {', '.join(report.recorded_checks) or '(none)'}")
            print(f"failing  : {', '.join(report.failing_checks) or '(none)'}")
            for failure in report.failures:
                print(f"  [{failure.check}] {failure.message}")
            print(f"reproduced: {report.reproduced}")
        # A repro that still reproduces is a live bug: fail the process
        # so CI replay jobs stay red until the engine is fixed.
        return 1 if report.reproduced else 0

    def ticker(cases_run: int, failures: int) -> None:
        if cases_run % 100 == 0:
            print(
                f"  {cases_run} cases, {failures} failure(s)", file=sys.stderr
            )

    summary = run_fuzz(
        seed=args.seed,
        max_cases=args.max_cases,
        budget_seconds=args.budget_seconds,
        corpus_dir=corpus_dir,
        backends=args.backends,
        events=args.events,
        shrink=not args.no_shrink,
        progress=ticker if not args.json else None,
    )
    if args.json:
        print(json.dumps(summary.to_doc(), indent=2, sort_keys=True))
        return 0 if summary.ok else 1
    print(
        f"fuzz: seed={summary.seed} cases={summary.cases_run} "
        f"elapsed={summary.elapsed_seconds:.1f}s "
        f"(stopped by {summary.stopped_by})"
    )
    if summary.ok:
        print("no disagreements found")
        return 0
    for rec in summary.failures:
        shrunk = (
            f"shrunk {rec.n_jobs_original} -> {rec.n_jobs_shrunk} jobs "
            f"in {rec.shrink_steps} step(s)"
            if rec.shrink_steps
            else f"{rec.n_jobs_shrunk} jobs (not shrunk)"
        )
        print(f"\nFAIL {rec.digest}  [{', '.join(rec.failing_checks)}]")
        print(f"  case   : {rec.original_label}")
        print(f"  size   : {shrunk}")
        if rec.path:
            print(f"  saved  : {rec.path}")
            print(f"  replay : repro fuzz --replay {rec.digest}")
        for failure in rec.failures[:4]:
            print(f"  [{failure.check}] {failure.message}")
    print(
        f"\n{len(summary.failures)} failing case(s) written to {corpus_dir}",
        file=sys.stderr,
    )
    return 1


def _cmd_serve(args) -> int:
    import asyncio

    import numpy as np

    from repro import api
    from repro.service.http import serve_session
    from repro.workload.arrivals import (
        job_stream,
        poisson_process,
        uniform_size_stream,
    )
    from repro.workload.instance import Instance

    tree = _build_tree(args)
    if args.rate is not None:
        rate = args.rate
    else:
        # Uniform [1, 4] sizes have mean 2.5; pick the rate whose
        # bottleneck offered load is --load, the same rule the batch
        # generator uses, so serve and run are comparable.
        rate = Instance.poisson_rate_for_load(tree, 2.5, args.load)
    releases = poisson_process(rate, np.random.default_rng(args.seed + 1))
    sizes = uniform_size_stream(rng=np.random.default_rng(args.seed))
    limit = args.jobs if args.jobs > 0 else None
    if args.smoke and limit is None:
        limit = 2000
    session = api.open_system(
        tree=tree,
        arrivals=job_stream(releases, sizes, limit=limit),
        policy=args.policy,
        eps=args.eps,
        seed=args.seed,
        speed=args.speed,
        backend=args.backend,
        window=args.window,
        keep_windows=args.keep_windows,
        name="serve",
    )
    max_windows = args.max_windows
    if args.smoke and max_windows is None:
        max_windows = 5
    failures = asyncio.run(
        serve_session(
            session,
            host=args.host,
            port=args.port,
            max_windows=max_windows,
            step_delay=args.step_delay,
            smoke=args.smoke,
        )
    )
    return 1 if failures else 0


def _cmd_report(args) -> int:
    from repro.analysis.report import render_experiments_markdown

    text = render_experiments_markdown(
        [i.upper() for i in args.ids] if args.ids else None
    )
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _add_instance_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", help="load an instance JSON instead of generating")
    p.add_argument("--tree", choices=_TREES, default="kary", help="topology family")
    p.add_argument(
        "--tree-args",
        type=int,
        nargs=3,
        default=(2, 3, 0),
        metavar=("A", "B", "C"),
        help="family parameters (unused slots ignored), e.g. kary A B",
    )
    p.add_argument("--jobs", type=int, default=50, help="number of jobs")
    p.add_argument("--load", type=float, default=0.9, help="offered bottleneck load")
    p.add_argument("--size-dist", choices=_SIZES, default="uniform")
    p.add_argument("--unrelated", action="store_true", help="unrelated endpoints")
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="treesched: scheduling in bandwidth-constrained tree networks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one instance")
    _add_instance_flags(p_run)
    p_run.add_argument("--policy", choices=_POLICIES, default="greedy")
    p_run.add_argument("--eps", type=float, default=0.25)
    p_run.add_argument("--speed", type=float, default=1.0, help="uniform speed factor")
    p_run.add_argument("--fifo", action="store_true", help="FIFO nodes instead of SJF")
    p_run.add_argument(
        "--until", type=float, default=None, help="stop the simulation at this time"
    )
    p_run.add_argument(
        "--counters",
        action="store_true",
        help="collect and print engine performance counters",
    )
    p_run.add_argument(
        "--backend",
        choices=("python", "numpy", "c"),
        default=None,
        help="engine backend (default: REPRO_BACKEND env var, else python)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="profile the simulation with cProfile and print the top-20 "
        "cumulative entries to stderr",
    )
    p_run.add_argument("--per-job", action="store_true", help="print per-job table")
    p_run.add_argument("--gantt", action="store_true", help="print ASCII Gantt chart")
    p_run.add_argument("--gantt-width", type=int, default=100)
    p_run.set_defaults(func=_cmd_run)

    p_trace = sub.add_parser(
        "trace",
        help="simulate with structured tracing and export the trace "
        "(JSONL, Chrome trace format, or a summary table)",
    )
    _add_instance_flags(p_trace)
    p_trace.add_argument("--policy", choices=_POLICIES, default="greedy")
    p_trace.add_argument("--eps", type=float, default=0.25)
    p_trace.add_argument("--speed", type=float, default=1.0, help="uniform speed factor")
    p_trace.add_argument("--fifo", action="store_true", help="FIFO nodes instead of SJF")
    p_trace.add_argument(
        "--format",
        choices=("summary", "jsonl", "chrome"),
        default="summary",
        help="summary table, schema-validated JSONL, or Chrome trace "
        "JSON loadable in Perfetto / about://tracing",
    )
    p_trace.add_argument(
        "-o", "--output", default="-", help="output path ('-' = stdout)"
    )
    p_trace.add_argument(
        "--gauge-interval",
        type=float,
        default=None,
        help="gauge sampling cadence in simulation seconds "
        "(default: 1/50th of the release span)",
    )
    p_trace.add_argument(
        "--gauge-nodes",
        type=int,
        nargs="+",
        default=None,
        metavar="NODE",
        help="sample gauges only at these node ids",
    )
    p_trace.add_argument(
        "--no-points", action="store_true", help="skip job-lifecycle points"
    )
    p_trace.add_argument(
        "--no-spans", action="store_true", help="skip service/wait spans"
    )
    p_trace.add_argument(
        "--validate",
        metavar="PATH",
        default=None,
        help="validate an existing JSONL trace against the schema and exit",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_exp = sub.add_parser("experiment", help="run a registered experiment")
    p_exp.add_argument("id", help="experiment id (e.g. T1) or 'all'")
    p_exp.set_defaults(func=_cmd_experiment)

    p_exps = sub.add_parser(
        "experiments",
        help="run many experiments via the parallel runner with result caching",
    )
    p_exps.add_argument(
        "ids",
        nargs="*",
        default=[],
        help="experiment ids (empty or 'all' = whole registry)",
    )
    p_exps.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for cache misses (1 = serial)",
    )
    p_exps.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache entirely",
    )
    p_exps.add_argument(
        "--no-shard",
        action="store_true",
        help="schedule whole experiments instead of individual trials",
    )
    p_exps.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: .cache/experiments)",
    )
    p_exps.add_argument(
        "--counters",
        action="store_true",
        help="collect and print aggregate engine performance counters",
    )
    p_exps.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the summary table, not each experiment report",
    )
    p_exps.add_argument(
        "--manifest",
        metavar="DIR",
        default=None,
        help="write one JSON trial manifest per experiment (per-trial "
        "parameters, cache digests, hit/miss, wall-clock) to DIR",
    )
    p_exps.set_defaults(func=_cmd_experiments)

    p_list = sub.add_parser("list-experiments", help="show the experiment registry")
    p_list.set_defaults(func=_cmd_list_experiments)

    p_gen = sub.add_parser("generate", help="write a synthetic instance to JSON")
    _add_instance_flags(p_gen)
    p_gen.add_argument("output", help="path for the JSON trace")
    p_gen.set_defaults(func=_cmd_generate)

    p_bound = sub.add_parser("bound", help="lower bounds for a saved trace")
    p_bound.add_argument("trace", help="instance JSON path")
    p_bound.add_argument("--no-lp", action="store_true", help="skip the LP solve")
    p_bound.set_defaults(func=_cmd_bound)

    p_plan = sub.add_parser(
        "plan", help="find the minimum uniform speed meeting a flow-time target"
    )
    _add_instance_flags(p_plan)
    p_plan.add_argument("--policy", choices=_POLICIES, default="greedy")
    p_plan.add_argument("--eps", type=float, default=0.25)
    p_plan.add_argument("--target", type=float, required=True)
    p_plan.add_argument(
        "--metric", choices=("mean_flow", "max_flow", "total_flow"), default="mean_flow"
    )
    p_plan.add_argument("--tol", type=float, default=0.05)
    p_plan.set_defaults(func=_cmd_plan)

    p_bench = sub.add_parser(
        "bench", help="engine scaling sweep + policy microbenchmarks"
    )
    p_bench.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_BENCH_SIZES),
        help="job counts for the scaling sweep",
    )
    p_bench.add_argument(
        "--repeats", type=int, default=3, help="runs per configuration (best kept)"
    )
    p_bench.add_argument(
        "--no-policies", action="store_true", help="skip the policy microbenchmarks"
    )
    p_bench.add_argument(
        "--no-registry",
        action="store_true",
        help="skip the registry serial-vs-sharded timing",
    )
    p_bench.add_argument(
        "--registry-parallel",
        type=int,
        default=None,
        metavar="N",
        help="workers for the sharded registry run (default: core count)",
    )
    p_bench.add_argument(
        "--compare",
        action="store_true",
        help="compare a fresh run against the checked-in JSON at --output "
        "instead of overwriting it; exit non-zero on a throughput regression",
    )
    p_bench.add_argument(
        "-o",
        "--output",
        default="BENCH_engine.json",
        help="JSON output path ('-' = print tables only)",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: engine vs reference oracles, with "
        "shrinking and an on-disk crash corpus",
    )
    p_fuzz.add_argument("--seed", type=int, default=0, help="case-stream seed")
    p_fuzz.add_argument(
        "--max-cases",
        type=int,
        default=None,
        metavar="N",
        help="stop after N cases (default 500 when no budget is given)",
    )
    p_fuzz.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="stop after S seconds of wall clock",
    )
    p_fuzz.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="crash corpus directory (default: .fuzz-corpus)",
    )
    p_fuzz.add_argument(
        "--replay",
        default=None,
        metavar="DIGEST",
        help="re-run one saved repro (digest, unique prefix, or path) "
        "instead of fuzzing; exits 1 if it still reproduces",
    )
    p_fuzz.add_argument(
        "--list", action="store_true", help="list corpus entries and exit"
    )
    p_fuzz.add_argument(
        "--backends",
        action="store_true",
        help="also replay every case on the vectorised numpy backend "
        "(and, where available and applicable, the compiled c kernel) "
        "and require agreement with the reference engine",
    )
    p_fuzz.add_argument(
        "--events",
        action="store_true",
        help="extend the case stream with dynamic-event plans (node "
        "outages, cancellations); the default stream is unchanged "
        "when omitted",
    )
    p_fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="persist failing cases without minimising them first",
    )
    p_fuzz.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable summary document",
    )
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_serve = sub.add_parser(
        "serve",
        help="run an open-system arrival stream and expose live /metrics "
        "+ /snapshot over HTTP",
    )
    p_serve.add_argument("--tree", choices=_TREES, default="kary")
    p_serve.add_argument(
        "--tree-args",
        type=int,
        nargs=3,
        default=(2, 3, 0),
        metavar=("A", "B", "C"),
        help="family parameters (unused slots ignored), e.g. kary A B",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--policy", choices=_POLICIES, default="greedy")
    p_serve.add_argument("--eps", type=float, default=0.25)
    p_serve.add_argument("--speed", type=float, default=1.0)
    p_serve.add_argument(
        "--backend",
        choices=("python", "numpy", "c"),
        default=None,
        help="resolved like run --backend; streaming always executes on "
        "the python engine (warns if another backend is selected)",
    )
    p_serve.add_argument(
        "--load",
        type=float,
        default=0.9,
        help="offered bottleneck load used to derive the arrival rate",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="explicit Poisson arrival rate (overrides --load)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="stop the arrival stream after N jobs (0 = infinite)",
    )
    p_serve.add_argument(
        "--window", type=float, default=10.0, help="aggregation window (sim seconds)"
    )
    p_serve.add_argument(
        "--keep-windows", type=int, default=16, help="closed windows to retain"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="listen port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--max-windows",
        type=int,
        default=None,
        metavar="N",
        help="stop after N windows have closed (default: run until the "
        "stream drains; smoke mode defaults to 5)",
    )
    p_serve.add_argument(
        "--step-delay",
        type=float,
        default=0.0,
        help="wall-clock sleep between windows (demo pacing)",
    )
    p_serve.add_argument(
        "--smoke",
        action="store_true",
        help="bounded run that scrapes its own endpoints, validates the "
        "snapshot/v1 schema and exits non-zero on any failure (CI)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_report = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md from live experiment runs"
    )
    p_report.add_argument("-o", "--output", default="-", help="path or '-' for stdout")
    p_report.add_argument(
        "--ids", nargs="*", default=None, help="subset of experiment ids"
    )
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
