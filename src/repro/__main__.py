"""``python -m repro`` dispatches to the CLI.

Notable commands: ``run`` (one simulation, ``--counters`` for engine
perf counters), ``experiment`` (one registered experiment, serial),
``experiments`` (many experiments via the parallel runner with
content-addressed result caching: ``--parallel N``, ``--no-cache``,
``--counters``), ``report``, ``generate``, ``bound``, ``plan``.
"""

from repro.cli import main

raise SystemExit(main())
