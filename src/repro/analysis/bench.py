"""Engine benchmark harness behind ``repro bench``.

Two suites, both deterministic in everything except wall-clock:

* **Scaling sweep** — the S1 workload (datacenter tree, identical jobs,
  the paper's greedy policy) at growing job counts; reports events/s,
  jobs/s and wall seconds per size.  Near-linear scaling here is the
  acceptance bar for the incremental congestion aggregates.
* **Policy microbenchmarks** — every CLI policy on one mid-size
  instance, so a change to a single policy's arrival cost is visible in
  isolation from the engine.

``run_bench`` returns a JSON-ready dict (schema ``bench_engine/v1``);
the CLI writes it to ``BENCH_engine.json`` at the repo root so the perf
trajectory is tracked across PRs.  Each configuration is run ``repeats``
times and the fastest wall is kept (standard practice for throughput
benchmarks: the minimum is the least noise-contaminated sample).
"""

from __future__ import annotations

from time import perf_counter

from repro.analysis.tables import Table

__all__ = ["run_bench", "render_bench", "DEFAULT_SIZES"]

SCHEMA = "bench_engine/v1"
DEFAULT_SIZES = (200, 800, 2400)
_MICRO_JOBS = 800
_LOAD = 0.85
_SEED = 12
_EPS = 0.25
_SPEED = 1.5


def _bench_once(instance, policy_factory) -> tuple[float, int]:
    """One timed simulation; returns (wall seconds, events)."""
    from repro.sim.engine import Engine
    from repro.sim.speed import SpeedProfile

    engine = Engine(instance, policy_factory(), SpeedProfile.uniform(_SPEED))
    t0 = perf_counter()
    result = engine.run()
    wall = perf_counter() - t0
    return wall, result.num_events


def _measure(instance, policy_factory, repeats: int) -> dict[str, float]:
    n = len(instance.jobs)
    best_wall = float("inf")
    events = 0
    for _ in range(repeats):
        wall, events = _bench_once(instance, policy_factory)
        if wall < best_wall:
            best_wall = wall
    return {
        "events": events,
        "wall_s": best_wall,
        "events_per_s": events / best_wall if best_wall > 0 else float("inf"),
        "jobs_per_s": n / best_wall if best_wall > 0 else float("inf"),
    }


def run_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    repeats: int = 3,
    include_policies: bool = True,
) -> dict:
    """Run both suites; returns the ``bench_engine/v1`` document."""
    from repro.analysis.experiments.workloads import identical_instance
    from repro.baselines.policies import (
        ClosestLeafAssignment,
        LeastLoadedAssignment,
        RandomAssignment,
        RoundRobinAssignment,
    )
    from repro.core.assignment import GreedyIdenticalAssignment
    from repro.network.builders import datacenter_tree

    tree = datacenter_tree(3, 3, 4)
    greedy = lambda: GreedyIdenticalAssignment(_EPS)  # noqa: E731

    scaling: dict[str, dict[str, float]] = {}
    for n in sizes:
        instance = identical_instance(tree, n, load=_LOAD, seed=_SEED)
        scaling[str(n)] = _measure(instance, greedy, repeats)

    doc = {
        "schema": SCHEMA,
        "config": {
            "tree": "datacenter(3,3,4)",
            "load": _LOAD,
            "seed": _SEED,
            "eps": _EPS,
            "speed": _SPEED,
            "repeats": repeats,
            "policy_microbench_jobs": _MICRO_JOBS,
        },
        "scaling": scaling,
    }
    if include_policies:
        policies = {
            "paper-greedy": greedy,
            "closest": ClosestLeafAssignment,
            "least-loaded": LeastLoadedAssignment,
            "round-robin": RoundRobinAssignment,
            "random": lambda: RandomAssignment(_SEED),
        }
        micro_instance = identical_instance(
            tree, _MICRO_JOBS, load=_LOAD, seed=_SEED
        )
        doc["policies"] = {
            name: _measure(micro_instance, factory, repeats)
            for name, factory in policies.items()
        }
    return doc


def render_bench(doc: dict) -> str:
    """Human-readable tables for the CLI."""
    out = []
    scaling = Table(
        "engine scaling sweep (greedy, datacenter tree)",
        ["n_jobs", "events", "wall_s", "events_per_s", "jobs_per_s"],
    )
    for size, row in doc["scaling"].items():
        scaling.add_row(
            int(size), row["events"], row["wall_s"],
            row["events_per_s"], row["jobs_per_s"],
        )
    out.append(scaling.render())
    if "policies" in doc:
        micro = Table(
            f"policy microbenchmarks ({doc['config']['policy_microbench_jobs']} jobs)",
            ["policy", "events", "wall_s", "events_per_s", "jobs_per_s"],
        )
        for name, row in doc["policies"].items():
            micro.add_row(
                name, row["events"], row["wall_s"],
                row["events_per_s"], row["jobs_per_s"],
            )
        out.append(micro.render())
    return "\n\n".join(out)
