"""Engine benchmark harness behind ``repro bench``.

Three suites, all deterministic in everything except wall-clock:

* **Scaling sweep** — the S1 workload (datacenter tree, identical jobs,
  the paper's greedy policy) at growing job counts, per engine backend
  (``python`` and ``numpy``); reports events/s, jobs/s and wall seconds
  per size.  Near-linear scaling here is the acceptance bar for the
  incremental congestion aggregates; the backend ratio tracks progress
  toward the 1M ev/s target.
* **Policy microbenchmarks** — every CLI policy on one mid-size
  instance, per backend, so a change to a single policy's arrival cost
  is visible in isolation from the engine.
* **Registry timing** — the full experiment registry run serially
  versus through the trial-sharded parallel runner (cache disabled for
  both), so the sharding speedup is tracked alongside raw engine
  throughput.  Speedup is bounded by the worker count; on a single-core
  machine the comparison is skipped (marked ``"skipped": "workers==1"``)
  — a serial-vs-serial "speedup" would only measure scheduler noise.

``run_bench`` returns a JSON-ready dict (schema ``bench_engine/v3``:
the ``scaling`` and ``policies`` suites nest one section per backend);
the CLI writes it to ``BENCH_engine.json`` at the repo root so the perf
trajectory is tracked across PRs.  Each configuration is run ``repeats``
times and the fastest wall is kept (standard practice for throughput
benchmarks: the minimum is the least noise-contaminated sample).

``repro bench --compare`` diffs a fresh run against the checked-in
document via :func:`compare_bench`: any suite entry whose events/s fell
by more than :data:`MAX_DEGRADATION` (the same band the scaling guard
test enforces) is a regression and the CLI exits non-zero.  Wall-clock
sections (the registry timing) are excluded — they are one-shot and
machine-dependent.
"""

from __future__ import annotations

from time import perf_counter

from repro.analysis.tables import Table

__all__ = [
    "run_bench",
    "run_registry_bench",
    "compare_bench",
    "render_bench",
    "BENCH_BACKENDS",
    "DEFAULT_SIZES",
    "MAX_DEGRADATION",
]

SCHEMA = "bench_engine/v3"

#: Engine backends the scaling and policy suites cover.  Backends
#: unavailable on the running machine (the compiled ``c`` kernel needs
#: a working compiler) are dropped at :func:`run_bench` time; the
#: document's ``config.backends`` records what actually ran and
#: ``config.toolchain`` the compiler provenance either way.
BENCH_BACKENDS = ("python", "numpy", "c")

#: Allowed throughput degradation factor, shared by ``repro bench
#: --compare`` and ``benchmarks/bench_scaling_guard.py``: anything
#: slower than ``baseline / MAX_DEGRADATION`` events/s is a regression.
MAX_DEGRADATION = 2.5
DEFAULT_SIZES = (200, 800, 2400)
_MICRO_JOBS = 800
_LOAD = 0.85
_SEED = 12
_EPS = 0.25
_SPEED = 1.5


def _bench_once(instance, policy_factory, backend: str) -> tuple[float, int]:
    """One timed simulation on ``backend``; returns (wall seconds,
    events).  Construction (array precomputation, layouts) happens
    outside the timer for both backends — the suites measure event
    throughput, not setup."""
    from repro.sim.speed import SpeedProfile

    speeds = SpeedProfile.uniform(_SPEED)
    if backend == "c":
        from repro.sim.backends.c_backend import CEngine

        engine = CEngine(instance, policy_factory(), speeds)
    elif backend == "numpy":
        from repro.sim.backends.numpy_backend import NumpyEngine

        engine = NumpyEngine(instance, policy_factory(), speeds)
    else:
        from repro.sim.engine import Engine

        engine = Engine(instance, policy_factory(), speeds)
    t0 = perf_counter()
    result = engine.run()
    wall = perf_counter() - t0
    return wall, result.num_events


#: Keep sampling a configuration until this much wall clock has been
#: measured (or :data:`_MAX_RUNS` is hit).  The compiled backend can
#: finish a tiny instance in tens of microseconds, where a best-of-N
#: with small N is timer-noise-dominated; accumulating a few
#: milliseconds of samples keeps the min estimator stable at every
#: size without affecting large runs at all.
_MIN_SAMPLE_S = 0.01
_MAX_RUNS = 60


def _measure(
    instance, policy_factory, repeats: int, backend: str = "python"
) -> dict[str, float]:
    n = len(instance.jobs)
    best_wall = float("inf")
    events = 0
    total = 0.0
    runs = 0
    while runs < repeats or (total < _MIN_SAMPLE_S and runs < _MAX_RUNS):
        wall, events = _bench_once(instance, policy_factory, backend)
        total += wall
        runs += 1
        if wall < best_wall:
            best_wall = wall
    return {
        "events": events,
        "wall_s": best_wall,
        "events_per_s": events / best_wall if best_wall > 0 else float("inf"),
        "jobs_per_s": n / best_wall if best_wall > 0 else float("inf"),
    }


def run_registry_bench(parallel: int | None = None) -> dict:
    """Time the full experiment registry serial vs trial-sharded.

    Both runs bypass the cache so they measure computation, not disk.
    ``parallel`` defaults to the machine's core count.  Returns the
    ``registry`` section of the bench document.
    """
    import os

    from repro.analysis.runner import run_experiments

    workers = parallel if parallel is not None else max(1, os.cpu_count() or 1)
    t0 = perf_counter()
    serial = run_experiments(use_cache=False, parallel=1, shard_trials=False)
    serial_s = perf_counter() - t0
    if workers <= 1:
        # A sharded run on one worker is the serial run with extra
        # queueing; its "speedup" would only report scheduler noise.
        # Serial outcomes carry no trial counts, so enumerate the grids
        # directly for the (informational) trials column.
        from repro.analysis.experiments.grid import enumerate_trials, get_grid

        trials = 0
        for out in serial:
            grid = get_grid(out.exp_id)
            if grid is not None:
                trials += len(enumerate_trials(grid, dict(grid.defaults)))
        return {
            "experiments": len(serial),
            "trials": trials,
            "workers": workers,
            "serial_wall_s": serial_s,
            "sharded_wall_s": None,
            "speedup": None,
            "skipped": "workers==1",
        }
    t0 = perf_counter()
    sharded = run_experiments(use_cache=False, parallel=workers, shard_trials=True)
    sharded_s = perf_counter() - t0
    return {
        "experiments": len(serial),
        "trials": sum(out.trials_total for out in sharded),
        "workers": workers,
        "serial_wall_s": serial_s,
        "sharded_wall_s": sharded_s,
        "speedup": serial_s / sharded_s if sharded_s > 0 else float("inf"),
    }


def _flatten_measures(section: object, prefix: tuple[str, ...] = ()) -> dict:
    """``name -> measurement`` pairs of a suite section, where a
    measurement is any dict carrying ``events_per_s``.  Walks nested
    per-backend layouts (``bench_engine/v3``: ``backend/size``) and flat
    ones (``v2``: ``size``) alike, so ``--compare`` works across schema
    generations."""
    out: dict[str, dict] = {}
    if isinstance(section, dict):
        if "events_per_s" in section:
            out["/".join(prefix)] = section
        else:
            for key in sorted(section):
                out.update(_flatten_measures(section[key], prefix + (str(key),)))
    return out


def compare_bench(
    baseline: dict, fresh: dict, threshold: float = MAX_DEGRADATION
) -> list[dict]:
    """Throughput regressions of ``fresh`` relative to ``baseline``.

    Compares events/s entry-by-entry across the ``scaling`` and
    ``policies`` suites — per backend in the ``bench_engine/v3`` nested
    layout (entries present in only one document are ignored, so adding
    a size, policy or backend never trips the gate); an entry is a
    regression when it runs more than ``threshold`` times slower.  The
    registry timing is deliberately not compared — it is a one-shot
    wall-clock measurement, not a best-of-N throughput.
    """
    regressions = []
    for section in ("scaling", "policies"):
        base = _flatten_measures(baseline.get(section) or {})
        new = _flatten_measures(fresh.get(section) or {})
        for name in sorted(set(base) & set(new)):
            before = base[name]["events_per_s"]
            after = new[name]["events_per_s"]
            if before > 0 and after < before / threshold:
                regressions.append(
                    {
                        "section": section,
                        "name": name,
                        "baseline_events_per_s": before,
                        "fresh_events_per_s": after,
                        "slowdown": before / after if after > 0 else float("inf"),
                    }
                )
    return regressions


def run_bench(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    repeats: int = 3,
    include_policies: bool = True,
    include_registry: bool = True,
    registry_parallel: int | None = None,
    backends: tuple[str, ...] = BENCH_BACKENDS,
) -> dict:
    """Run the suites; returns the ``bench_engine/v3`` document.

    ``backends`` is filtered down to what the machine can actually run
    (the compiled ``c`` kernel needs a working compiler); the dropped
    names never appear in the suites, so ``--compare`` simply skips
    them on compiler-less machines.
    """
    from repro.analysis.experiments.workloads import identical_instance
    from repro.baselines.policies import (
        ClosestLeafAssignment,
        LeastLoadedAssignment,
        RandomAssignment,
        RoundRobinAssignment,
    )
    from repro.core.assignment import GreedyIdenticalAssignment
    from repro.network.builders import datacenter_tree
    from repro.sim.backends import backend_available
    from repro.sim.backends.c_build import toolchain_info

    backends = tuple(b for b in backends if backend_available(b)[0])
    tree = datacenter_tree(3, 3, 4)
    greedy = lambda: GreedyIdenticalAssignment(_EPS)  # noqa: E731

    instances = {
        n: identical_instance(tree, n, load=_LOAD, seed=_SEED) for n in sizes
    }
    scaling: dict[str, dict[str, dict[str, float]]] = {
        backend: {
            str(n): _measure(instances[n], greedy, repeats, backend)
            for n in sizes
        }
        for backend in backends
    }

    doc = {
        "schema": SCHEMA,
        "config": {
            "tree": "datacenter(3,3,4)",
            "load": _LOAD,
            "seed": _SEED,
            "eps": _EPS,
            "speed": _SPEED,
            "repeats": repeats,
            "backends": list(backends),
            "policy_microbench_jobs": _MICRO_JOBS,
            "toolchain": toolchain_info(),
        },
        "scaling": scaling,
    }
    if include_policies:
        policies = {
            "paper-greedy": greedy,
            "closest": ClosestLeafAssignment,
            "least-loaded": LeastLoadedAssignment,
            "round-robin": RoundRobinAssignment,
            "random": lambda: RandomAssignment(_SEED),
        }
        micro_instance = identical_instance(
            tree, _MICRO_JOBS, load=_LOAD, seed=_SEED
        )
        doc["policies"] = {
            backend: {
                name: _measure(micro_instance, factory, repeats, backend)
                for name, factory in policies.items()
            }
            for backend in backends
        }
    if include_registry:
        doc["registry"] = run_registry_bench(registry_parallel)
    return doc


def render_bench(doc: dict) -> str:
    """Human-readable tables for the CLI."""
    out = []
    scaling = Table(
        "engine scaling sweep (greedy, datacenter tree)",
        ["backend", "n_jobs", "events", "wall_s", "events_per_s", "jobs_per_s"],
    )
    for backend, rows in doc["scaling"].items():
        for size, row in rows.items():
            scaling.add_row(
                backend, int(size), row["events"], row["wall_s"],
                row["events_per_s"], row["jobs_per_s"],
            )
    out.append(scaling.render())
    if "policies" in doc:
        micro = Table(
            f"policy microbenchmarks ({doc['config']['policy_microbench_jobs']} jobs)",
            ["backend", "policy", "events", "wall_s", "events_per_s", "jobs_per_s"],
        )
        for backend, rows in doc["policies"].items():
            for name, row in rows.items():
                micro.add_row(
                    backend, name, row["events"], row["wall_s"],
                    row["events_per_s"], row["jobs_per_s"],
                )
        out.append(micro.render())
    if "registry" in doc:
        reg = doc["registry"]
        registry = Table(
            "experiment registry: serial vs trial-sharded runner (cache off)",
            ["experiments", "trials", "workers", "serial_s", "sharded_s", "speedup"],
        )
        skipped = reg.get("skipped")
        registry.add_row(
            reg["experiments"], reg["trials"], reg["workers"],
            reg["serial_wall_s"],
            reg["sharded_wall_s"] if reg["sharded_wall_s"] is not None else "-",
            reg["speedup"] if reg["speedup"] is not None else f"skipped ({skipped})",
        )
        out.append(registry.render())
    return "\n\n".join(out)
