"""Replication statistics for experiments.

One seed is an anecdote.  :func:`replicate` runs a measurement across
seeds and returns a :class:`Replication` with mean, standard deviation,
and a normal-approximation confidence interval; :func:`compare` reports
whether one configuration beats another with non-overlapping intervals.
Used by tests to make the stochastic experiments' conclusions robust,
and available to users sweeping their own workloads.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import AnalysisError

__all__ = ["Replication", "replicate", "summarize", "compare"]

#: two-sided z values for common confidence levels
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Replication:
    """Summary of one metric across seeds.

    Attributes
    ----------
    values:
        The per-seed measurements.
    mean / std:
        Sample mean and (ddof=1) standard deviation.
    ci_low / ci_high:
        Normal-approximation confidence interval for the mean.
    level:
        The confidence level used.
    """

    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float
    level: float

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g} ({int(self.level*100)}% CI)"


def replicate(
    measure: Callable[[int], float],
    seeds: Sequence[int],
    *,
    level: float = 0.95,
) -> Replication:
    """Run ``measure(seed)`` for every seed and summarise.

    Raises
    ------
    AnalysisError
        On fewer than 2 seeds or an unsupported confidence level.
    """
    if len(seeds) < 2:
        raise AnalysisError("need at least 2 seeds for a confidence interval")
    return summarize([measure(s) for s in seeds], level=level)


def summarize(values: Sequence[float], *, level: float = 0.95) -> Replication:
    """Summarise already-measured values exactly as :func:`replicate` would.

    The trial-grid reduce steps use this on payloads computed in worker
    processes; going through the same float operations as the inline
    path keeps sharded and serial experiment tables bit-identical.
    """
    if len(values) < 2:
        raise AnalysisError("need at least 2 values for a confidence interval")
    if level not in _Z:
        raise AnalysisError(f"level must be one of {sorted(_Z)}, got {level}")
    arr = np.array([float(v) for v in values])
    mean = float(arr.mean())
    std = float(arr.std(ddof=1))
    half = _Z[level] * std / math.sqrt(len(arr))
    return Replication(
        values=tuple(arr.tolist()),
        mean=mean,
        std=std,
        ci_low=mean - half,
        ci_high=mean + half,
        level=level,
    )


def compare(a: Replication, b: Replication) -> str:
    """Verdict on whether ``a``'s mean is below ``b``'s.

    Returns ``"a_lower"`` / ``"b_lower"`` when the confidence intervals
    do not overlap, else ``"indistinguishable"``.
    """
    if a.ci_high < b.ci_low:
        return "a_lower"
    if b.ci_high < a.ci_low:
        return "b_lower"
    return "indistinguishable"
