"""Analysis layer: competitive-ratio estimation, parameter sweeps,
plain-text tables, and the experiment registry.

The experiment registry (:mod:`repro.analysis.experiments`) implements
every row of the experiment index in ``DESIGN.md`` §4 / ``EXPERIMENTS.md``
— one module per experiment id — and each benchmark under
``benchmarks/`` is a thin timing wrapper around one of them.
"""

from repro.analysis.tables import Table
from repro.analysis.norms import flow_lk_norm, flow_norm_summary
from repro.analysis.planning import CapacityPlan, min_speed_for_flow
from repro.analysis.profiles import bottleneck_report, busy_periods, node_utilisation
from repro.analysis.queueing import mg1_fifo_mean_flow, simulate_single_node_flow
from repro.analysis.ratios import RatioReport, competitive_report, lower_bound_for
from repro.analysis.stats import Replication, compare, replicate
from repro.analysis.sweeps import run_policy_grid, speed_sweep

__all__ = [
    "Table",
    "RatioReport",
    "competitive_report",
    "lower_bound_for",
    "speed_sweep",
    "run_policy_grid",
    "flow_lk_norm",
    "flow_norm_summary",
    "node_utilisation",
    "busy_periods",
    "bottleneck_report",
    "mg1_fifo_mean_flow",
    "simulate_single_node_flow",
    "Replication",
    "replicate",
    "compare",
    "CapacityPlan",
    "min_speed_for_flow",
]
