"""Queueing-theory cross-validation of the simulator.

The engine's correctness is argued by its invariant validators; this
module adds an *independent* check against closed-form queueing theory:
a single node fed Poisson arrivals is an M/G/1 queue, whose stationary
mean waiting time under FIFO is the Pollaczek–Khinchine formula

.. math::  E[W] = \\frac{λ\\,E[S²]}{2(1 − ρ)},  \\qquad ρ = λE[S] < 1.

:func:`mg1_fifo_mean_flow` evaluates the formula;
:func:`simulate_single_node_flow` runs the engine on the equivalent
one-router instance (with the leaf made fast enough to be negligible)
and returns the measured mean flow across the router.  The test suite
asserts agreement within sampling tolerance — a validation path that
shares no code with the engine's own bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import FixedAssignment
from repro.exceptions import AnalysisError
from repro.network.builders import spine_tree
from repro.sim.engine import fifo_priority, simulate
from repro.sim.speed import SpeedProfile
from repro.workload.arrivals import poisson_arrivals
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet

__all__ = ["mg1_fifo_mean_flow", "simulate_single_node_flow"]


def mg1_fifo_mean_flow(rate: float, mean_s: float, mean_s2: float) -> float:
    """Stationary mean flow time (wait + service) of a FIFO M/G/1 queue.

    Parameters
    ----------
    rate:
        Poisson arrival rate ``λ``.
    mean_s / mean_s2:
        First and second moments of the service time ``S``.

    Raises
    ------
    AnalysisError
        If the queue is unstable (``ρ = λ·E[S] ≥ 1``) or moments are
        inconsistent.
    """
    if rate <= 0 or mean_s <= 0:
        raise AnalysisError("rate and mean service time must be > 0")
    if mean_s2 < mean_s**2:
        raise AnalysisError("E[S^2] cannot be below E[S]^2")
    rho = rate * mean_s
    if rho >= 1.0:
        raise AnalysisError(f"unstable queue: rho = {rho:.3f} >= 1")
    wait = rate * mean_s2 / (2.0 * (1.0 - rho))
    return wait + mean_s


def simulate_single_node_flow(
    sizes: np.ndarray,
    rate: float,
    rng: np.random.Generator | int | None = None,
    *,
    leaf_speed: float = 1e6,
) -> float:
    """Mean simulated flow time across a single router.

    Builds a root→router→leaf chain whose leaf runs ``leaf_speed``
    times faster than the router (so leaf time is negligible), feeds it
    the given service times at Poisson epochs, and returns the mean
    flow time minus the (tiny) leaf residue — i.e. the router's M/G/1
    sojourn time under FIFO.
    """
    n = len(sizes)
    releases = poisson_arrivals(n, rate, rng)
    tree = spine_tree(1)
    leaf = tree.leaves[0]
    instance = Instance(
        tree, JobSet.build(releases, sizes), Setting.IDENTICAL, name="mg1"
    )
    speeds = SpeedProfile(root_children=1.0, interior=1.0, leaves=leaf_speed)
    result = simulate(
        instance,
        FixedAssignment({i: leaf for i in range(n)}),
        speeds=speeds,
        priority=fifo_priority,
    )
    # Subtract each job's (tiny) leaf service so only the router sojourn
    # remains; queueing at the fast leaf is negligible by construction.
    flows = []
    for jid, rec in result.records.items():
        flows.append(rec.completed_at[0] - rec.release)
    return float(np.mean(flows))
