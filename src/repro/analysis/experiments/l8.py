"""Experiment L8 — Lemma 8: the general-tree algorithm dominates its
broomstick shadow.

Lemma 8: every job completes in ``A_T`` (on the original tree, with
assignments copied from the shadow) no later than in ``A_{T'}`` (on the
broomstick), hence per-job and total flow times are dominated.

**Reproduction finding.** In the *identical* setting the per-job claim
holds exactly in every run.  In the *unrelated* setting (whose full
Lemma 8 proof the extended abstract defers) we observe rare, marginal
per-job violations: a higher-priority job can reach the original tree's
leaf earlier than the broomstick's copy and preempt a job there that, in
the broomstick, had already finished before the interferer arrived.
Totals always dominate in our runs.  The pass criterion reflects this:
identical-setting per-job domination must be exact; unrelated-setting
totals must dominate and per-job violations must stay rare (< 5% of
jobs) and small (< 5% relative excess).

The grid runs one trial per (tree, setting) — each a paired
general-tree/broomstick simulation.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.experiments.workloads import standard_trees
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    n=40,
    seed=8,
    eps=0.25,
)

_SETTINGS = ("identical", "unrelated")


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "L8",
            f"{tree_name}|{setting}",
            {
                "tree": tree_name,
                "setting": setting,
                "n": p["n"],
                "seed": p["seed"],
                "eps": p["eps"],
            },
        )
        for tree_name in standard_trees()
        for setting in _SETTINGS
    ]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.analysis.experiments.workloads import (
        identical_instance,
        unrelated_instance,
    )
    from repro.core.general_tree import run_general_tree

    q = spec.params
    tree = standard_trees()[q["tree"]]
    if q["setting"] == "identical":
        instance = identical_instance(tree, q["n"], load=0.85, seed=q["seed"])
    else:
        instance = unrelated_instance(tree, q["n"], load=0.7, seed=q["seed"])
    run_out = run_general_tree(instance, q["eps"])
    flows_t = {jid: rec.flow_time for jid, rec in run_out.result.records.items()}
    flows_tp = {
        jid: rec.flow_time for jid, rec in run_out.shadow_result.records.items()
    }
    violations = [
        (flows_t[j] - flows_tp[j]) / flows_tp[j]
        for j in flows_t
        if flows_t[j] > flows_tp[j] + 1e-6
    ]
    return {
        "total_t": sum(flows_t.values()),
        "total_tp": sum(flows_tp.values()),
        "violations": len(violations),
        "rel_excess": max(violations, default=0.0),
    }


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    n = p["n"]
    cells = {(s.params["tree"], s.params["setting"]): d for s, d in outcomes}
    table = Table(
        "L8: per-job flow domination, general tree vs broomstick shadow",
        [
            "tree", "setting", "total_T", "total_T'",
            "perjob_violations", "max_rel_excess", "totals_dominated",
        ],
    )
    ok = True
    worst_rel_excess = 0.0
    for tree_name in standard_trees():
        for setting in _SETTINGS:
            d = cells[(tree_name, setting)]
            totals_ok = d["total_t"] <= d["total_tp"] + 1e-6
            table.add_row(
                tree_name, setting, d["total_t"], d["total_tp"],
                d["violations"], d["rel_excess"], totals_ok,
            )
            worst_rel_excess = max(worst_rel_excess, d["rel_excess"])
            if setting == "identical":
                ok = ok and not d["violations"] and totals_ok
            else:
                ok = ok and totals_ok and (
                    d["violations"] <= max(1, n // 20) and d["rel_excess"] < 0.05
                )
    return ExperimentResult(
        exp_id="L8",
        title="general-tree algorithm dominated by broomstick shadow (Lemma 8)",
        claim="flow time of A_T is at most that of A_{T'}, per job (Lem 8)",
        table=table,
        metrics={"worst_relative_perjob_excess": worst_rel_excess},
        passed=ok,
        notes=(
            "Identical setting: exact per-job domination required. Unrelated "
            "setting (full proof deferred in the extended abstract): totals "
            "must dominate; rare (<5% of jobs) and small (<5% relative) "
            "per-job violations are tolerated — see the module docstring for "
            "the preemption mechanism behind them."
        ),
    )


run = register_grid(
    "L8", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
