"""Experiment L8 — Lemma 8: the general-tree algorithm dominates its
broomstick shadow.

Lemma 8: every job completes in ``A_T`` (on the original tree, with
assignments copied from the shadow) no later than in ``A_{T'}`` (on the
broomstick), hence per-job and total flow times are dominated.

**Reproduction finding.** In the *identical* setting the per-job claim
holds exactly in every run.  In the *unrelated* setting (whose full
Lemma 8 proof the extended abstract defers) we observe rare, marginal
per-job violations: a higher-priority job can reach the original tree's
leaf earlier than the broomstick's copy and preempt a job there that, in
the broomstick, had already finished before the interferer arrived.
Totals always dominate in our runs.  The pass criterion reflects this:
identical-setting per-job domination must be exact; unrelated-setting
totals must dominate and per-job violations must stay rare (< 5% of
jobs) and small (< 5% relative excess).
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.experiments.workloads import (
    identical_instance,
    standard_trees,
    unrelated_instance,
)
from repro.analysis.tables import Table
from repro.core.general_tree import run_general_tree

__all__ = ["run"]


@register("L8")
def run(
    n: int = 40,
    seed: int = 8,
    eps: float = 0.25,
) -> ExperimentResult:
    """Run the L8 domination audit (see module docstring)."""
    table = Table(
        "L8: per-job flow domination, general tree vs broomstick shadow",
        [
            "tree", "setting", "total_T", "total_T'",
            "perjob_violations", "max_rel_excess", "totals_dominated",
        ],
    )
    ok = True
    worst_rel_excess = 0.0
    for tree_name, tree in standard_trees().items():
        for setting in ("identical", "unrelated"):
            if setting == "identical":
                instance = identical_instance(tree, n, load=0.85, seed=seed)
            else:
                instance = unrelated_instance(tree, n, load=0.7, seed=seed)
            run_out = run_general_tree(instance, eps)
            flows_t = {
                jid: rec.flow_time for jid, rec in run_out.result.records.items()
            }
            flows_tp = {
                jid: rec.flow_time
                for jid, rec in run_out.shadow_result.records.items()
            }
            violations = [
                (flows_t[j] - flows_tp[j]) / flows_tp[j]
                for j in flows_t
                if flows_t[j] > flows_tp[j] + 1e-6
            ]
            rel_excess = max(violations, default=0.0)
            total_t = sum(flows_t.values())
            total_tp = sum(flows_tp.values())
            totals_ok = total_t <= total_tp + 1e-6
            table.add_row(
                tree_name, setting, total_t, total_tp,
                len(violations), rel_excess, totals_ok,
            )
            worst_rel_excess = max(worst_rel_excess, rel_excess)
            if setting == "identical":
                ok = ok and not violations and totals_ok
            else:
                ok = ok and totals_ok and (
                    len(violations) <= max(1, n // 20) and rel_excess < 0.05
                )
    return ExperimentResult(
        exp_id="L8",
        title="general-tree algorithm dominated by broomstick shadow (Lemma 8)",
        claim="flow time of A_T is at most that of A_{T'}, per job (Lem 8)",
        table=table,
        metrics={"worst_relative_perjob_excess": worst_rel_excess},
        passed=ok,
        notes=(
            "Identical setting: exact per-job domination required. Unrelated "
            "setting (full proof deferred in the extended abstract): totals "
            "must dominate; rare (<5% of jobs) and small (<5% relative) "
            "per-job violations are tolerated — see the module docstring for "
            "the preemption mechanism behind them."
        ),
    )
