"""Experiment L1 — Lemma 1's interior waiting bound.

Lemma 1: once a job leaves its root-adjacent node, completing all
remaining *identical* nodes takes at most ``(6/ε²)·p_j·d_v`` time, given
speed ``≥ 1+ε`` below the top tier.  Measured shape: the maximum over
jobs of ``interior_delay / (p_j·d_v)`` stays (far) below ``6/ε²`` on
bursty deep-tree workloads designed to congest the interior.

Pass criterion: max normalised delay ≤ ``6/ε²`` on every configuration.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.experiments.workloads import burst_instance
from repro.analysis.tables import Table
from repro.core.assignment import GreedyIdenticalAssignment
from repro.network.builders import kary_tree, star_of_paths
from repro.sim.engine import simulate
from repro.sim.metrics import normalized_interior_delay
from repro.sim.speed import SpeedProfile

__all__ = ["run"]


@register("L1")
def run(
    seed: int = 5,
    eps_values: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> ExperimentResult:
    """Run the L1 audit (see module docstring)."""
    table = Table(
        "L1: interior waiting after R(v), normalised by p_j * d_v",
        ["tree", "eps", "speed_below_top", "max_norm_delay", "mean_norm_delay", "bound(6/eps^2)"],
    )
    trees = {
        "paths(4,5)": star_of_paths(4, 5),
        "kary(2,4)": kary_tree(2, 4),
    }
    ok = True
    worst_margin = 0.0
    for tree_name, tree in trees.items():
        for eps in eps_values:
            instance = burst_instance(
                tree, num_bursts=4, jobs_per_burst=10, gap=25.0, seed=seed
            ).rounded(eps)
            # Lemma 1's setting: unit speed on the top tier, (1+eps) below.
            speeds = SpeedProfile.lemma1(eps)
            result = simulate(instance, GreedyIdenticalAssignment(eps), speeds)
            norms = [
                normalized_interior_delay(result, jid) for jid in result.records
            ]
            bound = 6.0 / (eps * eps)
            mx = max(norms)
            table.add_row(
                tree_name, eps, 1.0 + eps, mx, sum(norms) / len(norms), bound
            )
            worst_margin = max(worst_margin, mx / bound)
            if mx > bound:
                ok = False
    return ExperimentResult(
        exp_id="L1",
        title="interior waiting bound (Lemma 1)",
        claim="delay after leaving R(v) <= (6/eps^2) p_j d_v at speed >= 1+eps (Lem 1)",
        table=table,
        metrics={"worst_fraction_of_bound": worst_margin},
        passed=ok,
        notes=(
            "Sizes are (1+eps)-class rounded; the top tier runs at unit speed "
            "and everything below at 1+eps, exactly Lemma 1's setting. Pass: "
            "max normalised delay <= 6/eps^2 everywhere."
        ),
    )
