"""Experiment L1 — Lemma 1's interior waiting bound.

Lemma 1: once a job leaves its root-adjacent node, completing all
remaining *identical* nodes takes at most ``(6/ε²)·p_j·d_v`` time, given
speed ``≥ 1+ε`` below the top tier.  Measured shape: the maximum over
jobs of ``interior_delay / (p_j·d_v)`` stays (far) below ``6/ε²`` on
bursty deep-tree workloads designed to congest the interior.

The grid runs one trial per (tree, ε) cell.

Pass criterion: max normalised delay ≤ ``6/ε²`` on every configuration.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    seed=5,
    eps_values=(0.25, 0.5, 1.0),
)

_TREES = ("paths(4,5)", "kary(2,4)")


def _tree_for(name: str):
    from repro.network.builders import kary_tree, star_of_paths

    return star_of_paths(4, 5) if name == "paths(4,5)" else kary_tree(2, 4)


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "L1",
            f"{tree_name}|eps={eps!r}",
            {"tree": tree_name, "eps": eps, "seed": p["seed"]},
        )
        for tree_name in _TREES
        for eps in p["eps_values"]
    ]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.analysis.experiments.workloads import burst_instance
    from repro.core.assignment import GreedyIdenticalAssignment
    from repro.sim.engine import simulate
    from repro.sim.metrics import normalized_interior_delay
    from repro.sim.speed import SpeedProfile

    q = spec.params
    eps = q["eps"]
    tree = _tree_for(q["tree"])
    instance = burst_instance(
        tree, num_bursts=4, jobs_per_burst=10, gap=25.0, seed=q["seed"]
    ).rounded(eps)
    # Lemma 1's setting: unit speed on the top tier, (1+eps) below.
    speeds = SpeedProfile.lemma1(eps)
    result = simulate(instance, GreedyIdenticalAssignment(eps), speeds=speeds)
    norms = [normalized_interior_delay(result, jid) for jid in result.records]
    return {"max": max(norms), "mean": sum(norms) / len(norms)}


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    cells = {(s.params["tree"], s.params["eps"]): d for s, d in outcomes}
    table = Table(
        "L1: interior waiting after R(v), normalised by p_j * d_v",
        ["tree", "eps", "speed_below_top", "max_norm_delay", "mean_norm_delay", "bound(6/eps^2)"],
    )
    ok = True
    worst_margin = 0.0
    for tree_name in _TREES:
        for eps in p["eps_values"]:
            d = cells[(tree_name, eps)]
            bound = 6.0 / (eps * eps)
            table.add_row(tree_name, eps, 1.0 + eps, d["max"], d["mean"], bound)
            worst_margin = max(worst_margin, d["max"] / bound)
            if d["max"] > bound:
                ok = False
    return ExperimentResult(
        exp_id="L1",
        title="interior waiting bound (Lemma 1)",
        claim="delay after leaving R(v) <= (6/eps^2) p_j d_v at speed >= 1+eps (Lem 1)",
        table=table,
        metrics={"worst_fraction_of_bound": worst_margin},
        passed=ok,
        notes=(
            "Sizes are (1+eps)-class rounded; the top tier runs at unit speed "
            "and everything below at 1+eps, exactly Lemma 1's setting. Pass: "
            "max normalised delay <= 6/eps^2 everywhere."
        ),
    )


run = register_grid(
    "L1", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
