"""Experiment F2 — Figure 2: the broomstick reduction, audited.

The paper's Figure 2 shows the reduction of Section 3.3: each root
subtree becomes a single handle with the original leaves re-hung off it,
every leaf exactly two hops deeper than before.  This experiment runs
the reduction over assorted trees and audits every structural property
the construction promises.

The grid runs one trial per audited tree.

Pass criterion, per tree: the image is a broomstick; leaf counts match
one-to-one; every leaf's depth shift is exactly +2; root-children counts
match; handles have length ``ℓ + 2`` where ``ℓ`` is the deepest original
leaf distance in that subtree.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(seed=11)

_TREES = (
    "kary(2,3)",
    "kary(3,2)",
    "caterpillar(5,2)",
    "figure1",
    "random(30)",
    "datacenter(3,2,2)",
)


def _tree_for(name: str, seed: int):
    from repro.network.builders import (
        caterpillar_tree,
        datacenter_tree,
        figure1_tree,
        kary_tree,
        random_tree,
    )

    builders = {
        "kary(2,3)": lambda: kary_tree(2, 3),
        "kary(3,2)": lambda: kary_tree(3, 2),
        "caterpillar(5,2)": lambda: caterpillar_tree(5, 2),
        "figure1": figure1_tree,
        "random(30)": lambda: random_tree(30, rng=seed),
        "datacenter(3,2,2)": lambda: datacenter_tree(3, 2, 2),
    }
    return builders[name]()


def _trials(p: dict) -> list[TrialSpec]:
    return [TrialSpec("F2", name, {"tree": name, "seed": p["seed"]}) for name in _TREES]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.network.broomstick import reduce_to_broomstick

    tree = _tree_for(spec.params["tree"], spec.params["seed"])
    red = reduce_to_broomstick(tree)
    bs = red.broomstick
    shifts = {red.depth_shift(leaf) for leaf in tree.leaves}
    handles_ok = True
    for v0 in tree.root_children:
        ell = max(tree.depth(leaf) - tree.depth(v0) for leaf in tree.leaves_under(v0))
        handle = red.handle_of[red.top_map[v0]]
        if len(handle) != ell + 2:
            handles_ok = False
    ok = (
        bs.is_broomstick()
        and bs.num_leaves == tree.num_leaves
        and shifts == {2}
        and len(bs.root_children) == len(tree.root_children)
        and handles_ok
        and len(red.leaf_map) == tree.num_leaves
        and len(set(red.leaf_map.values())) == tree.num_leaves
    )
    return {
        "nodes": tree.num_nodes,
        "leaves": tree.num_leaves,
        "height": tree.height,
        "bs_nodes": bs.num_nodes,
        "bs_height": bs.height,
        "shifts": sorted(shifts),
        "is_broomstick": bs.is_broomstick(),
        "ok": ok,
    }


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    cells = {s.params["tree"]: d for s, d in outcomes}
    table = Table(
        "F2: broomstick reduction structural audit",
        [
            "tree", "nodes", "leaves", "height",
            "bs_nodes", "bs_height", "depth_shift", "is_broomstick", "ok",
        ],
    )
    all_ok = True
    for name in _TREES:
        d = cells[name]
        all_ok = all_ok and d["ok"]
        table.add_row(
            name, d["nodes"], d["leaves"], d["height"],
            d["bs_nodes"], d["bs_height"],
            "/".join(str(s) for s in d["shifts"]),
            d["is_broomstick"], d["ok"],
        )
    return ExperimentResult(
        exp_id="F2",
        title="Figure 2 — the tree-to-broomstick reduction",
        claim="every leaf re-hung on a single handle, exactly 2 hops deeper (Fig 2, Sec 3.3)",
        table=table,
        metrics={"trees_audited": float(len(_TREES))},
        passed=all_ok,
        notes=(
            "Handles are built with nodes v_0..v_{l+1} (l+2 nodes), resolving "
            "the extended abstract's off-by-one so every stated attachment "
            "point exists; see the broomstick module docstring."
        ),
    )


run = register_grid(
    "F2", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
