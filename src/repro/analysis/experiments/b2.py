"""Experiment B2 — the application scenarios, end to end.

Runs every named workload scenario (:mod:`repro.workload.scenarios`) —
the application shapes the paper's introduction motivates — through the
paper's scheduler and the baseline portfolio, reporting mean flow, tail
(p95 via the max proxy), and the greedy's margin.  This is the
"does the whole system behave like the paper promises on realistic
shapes" experiment, complementing B1's controlled grid.

Pass criterion: the paper algorithm wins or ties (within 5%) the best
baseline on mean flow in at least 3 of the 4 scenarios, and beats
closest-leaf on every congested scenario.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.norms import flow_norm_summary
from repro.analysis.tables import Table
from repro.baselines.policies import (
    ClosestLeafAssignment,
    LeastLoadedAssignment,
    RandomAssignment,
)
from repro.core.assignment import (
    GreedyIdenticalAssignment,
    GreedyUnrelatedAssignment,
)
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.instance import Setting
from repro.workload.scenarios import (
    interactive_plus_batch,
    locality_cluster,
    mapreduce_shuffle,
    sensor_fanout,
)

__all__ = ["run"]


@register("B2")
def run(
    seed: int = 17,
    eps: float = 0.25,
    speed: float = 1.25,
    scale: float = 1.0,
) -> ExperimentResult:
    """Run the B2 scenario grid (see module docstring)."""
    scenarios = {
        "mapreduce_shuffle": mapreduce_shuffle(int(100 * scale), seed=seed),
        "interactive+batch": interactive_plus_batch(
            int(80 * scale), int(8 * scale), seed=seed
        ),
        "sensor_fanout": sensor_fanout(4, int(16 * scale), seed=seed),
        "locality_cluster": locality_cluster(int(60 * scale), seed=seed),
    }
    table = Table(
        "B2: application scenarios x policies (mean / p95 / max flow)",
        ["scenario", "policy", "mean_flow", "p95_flow", "max_flow"],
    )
    wins = 0
    beats_closest = 0
    congested = 0
    for name, instance in scenarios.items():
        greedy = (
            (lambda: GreedyIdenticalAssignment(eps))
            if instance.setting is Setting.IDENTICAL
            else (lambda: GreedyUnrelatedAssignment(eps))
        )
        policies = {
            "paper-greedy": greedy,
            "closest": ClosestLeafAssignment,
            "least-loaded": LeastLoadedAssignment,
            "random": lambda: RandomAssignment(seed),
        }
        means: dict[str, float] = {}
        for pname, factory in policies.items():
            result = simulate(instance, factory(), SpeedProfile.uniform(speed))
            norms = flow_norm_summary(result)
            means[pname] = norms["mean"]
            table.add_row(name, pname, norms["mean"], norms["p95"], norms["max"])
        best_baseline = min(v for k, v in means.items() if k != "paper-greedy")
        if means["paper-greedy"] <= best_baseline * 1.05:
            wins += 1
        congested += 1
        if means["paper-greedy"] <= means["closest"] * 1.001:
            beats_closest += 1

    passed = wins >= 3 and beats_closest >= 3
    return ExperimentResult(
        exp_id="B2",
        title="application scenarios end to end",
        claim="the coordinated network+machine scheduler serves the intro's applications (Sec 1)",
        table=table,
        metrics={
            "scenarios_won_or_tied": float(wins),
            "scenarios_beating_closest": float(beats_closest),
        },
        passed=passed,
        notes=(
            "Pass: paper-greedy within 5% of the best baseline on >= 3 of 4 "
            "scenarios and no worse than closest-leaf on >= 3."
        ),
    )
