"""Experiment B2 — the application scenarios, end to end.

Runs every named workload scenario (:mod:`repro.workload.scenarios`) —
the application shapes the paper's introduction motivates — through the
paper's scheduler and the baseline portfolio, reporting mean flow, tail
(p95 via the max proxy), and the greedy's margin.  This is the
"does the whole system behave like the paper promises on realistic
shapes" experiment, complementing B1's controlled grid.

The grid runs one trial per (scenario, policy) cell; each trial rebuilds
its scenario instance deterministically from the seed.

Pass criterion: the paper algorithm wins or ties (within 5%) the best
baseline on mean flow in at least 3 of the 4 scenarios, and beats
closest-leaf on every congested scenario.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    seed=17,
    eps=0.25,
    speed=1.25,
    scale=1.0,
)

_SCENARIOS = (
    "mapreduce_shuffle",
    "interactive+batch",
    "sensor_fanout",
    "locality_cluster",
)
_POLICY_NAMES = ("paper-greedy", "closest", "least-loaded", "random")


def _instance_for(name: str, scale: float, seed: int):
    from repro.workload.scenarios import (
        interactive_plus_batch,
        locality_cluster,
        mapreduce_shuffle,
        sensor_fanout,
    )

    if name == "mapreduce_shuffle":
        return mapreduce_shuffle(int(100 * scale), seed=seed)
    if name == "interactive+batch":
        return interactive_plus_batch(int(80 * scale), int(8 * scale), seed=seed)
    if name == "sensor_fanout":
        return sensor_fanout(4, int(16 * scale), seed=seed)
    return locality_cluster(int(60 * scale), seed=seed)


def _policy_for(name: str, instance, eps: float, seed: int):
    from repro.baselines.policies import (
        ClosestLeafAssignment,
        LeastLoadedAssignment,
        RandomAssignment,
    )
    from repro.core.assignment import (
        GreedyIdenticalAssignment,
        GreedyUnrelatedAssignment,
    )
    from repro.workload.instance import Setting

    if name == "paper-greedy":
        if instance.setting is Setting.IDENTICAL:
            return GreedyIdenticalAssignment(eps)
        return GreedyUnrelatedAssignment(eps)
    if name == "closest":
        return ClosestLeafAssignment()
    if name == "least-loaded":
        return LeastLoadedAssignment()
    return RandomAssignment(seed)


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "B2",
            f"{scenario}|{pname}",
            {
                "scenario": scenario,
                "policy": pname,
                "seed": p["seed"],
                "eps": p["eps"],
                "speed": p["speed"],
                "scale": p["scale"],
            },
        )
        for scenario in _SCENARIOS
        for pname in _POLICY_NAMES
    ]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.analysis.norms import flow_norm_summary
    from repro.sim.engine import simulate
    from repro.sim.speed import SpeedProfile

    q = spec.params
    instance = _instance_for(q["scenario"], q["scale"], q["seed"])
    policy = _policy_for(q["policy"], instance, q["eps"], q["seed"])
    result = simulate(instance, policy, speeds=SpeedProfile.uniform(q["speed"]))
    norms = flow_norm_summary(result)
    return {"mean": norms["mean"], "p95": norms["p95"], "max": norms["max"]}


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    cells = {(s.params["scenario"], s.params["policy"]): d for s, d in outcomes}
    table = Table(
        "B2: application scenarios x policies (mean / p95 / max flow)",
        ["scenario", "policy", "mean_flow", "p95_flow", "max_flow"],
    )
    wins = 0
    beats_closest = 0
    for scenario in _SCENARIOS:
        means: dict[str, float] = {}
        for pname in _POLICY_NAMES:
            d = cells[(scenario, pname)]
            means[pname] = d["mean"]
            table.add_row(scenario, pname, d["mean"], d["p95"], d["max"])
        best_baseline = min(v for k, v in means.items() if k != "paper-greedy")
        if means["paper-greedy"] <= best_baseline * 1.05:
            wins += 1
        if means["paper-greedy"] <= means["closest"] * 1.001:
            beats_closest += 1

    passed = wins >= 3 and beats_closest >= 3
    return ExperimentResult(
        exp_id="B2",
        title="application scenarios end to end",
        claim="the coordinated network+machine scheduler serves the intro's applications (Sec 1)",
        table=table,
        metrics={
            "scenarios_won_or_tied": float(wins),
            "scenarios_beating_closest": float(beats_closest),
        },
        passed=passed,
        notes=(
            "Pass: paper-greedy within 5% of the best baseline on >= 3 of 4 "
            "scenarios and no worse than closest-leaf on >= 3."
        ),
    )


run = register_grid(
    "B2", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
