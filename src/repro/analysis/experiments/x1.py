"""Experiment X1 — the divisible-routing extension (Section 2's remark).

The paper states its results extend "in a fairly straightforward manner"
to jobs sent in small pieces through the routers, and that interior
congestion is then "effectively negated".  This experiment measures
exactly that: the same workload run store-and-forward versus chunked at
several piece sizes, on a deep tree where interior pipelining matters.

Expected shape: flow time improves as pieces shrink (monotonically up to
tie noise), with the largest win on deep paths; assignments stay
non-migratory (all pieces of a job on one machine).

Pass criterion: the finest chunking's total flow is at most the
store-and-forward total (with 2% tolerance), and every chunked run keeps
per-job single-leaf assignments.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.tables import Table
from repro.core.assignment import GreedyIdenticalAssignment
from repro.network.builders import star_of_paths
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.arrivals import adversarial_bursts
from repro.workload.chunking import (
    ChunkedAssignment,
    aggregate_chunk_result,
    chunk_instance,
    chunk_priority,
)
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet
from repro.workload.sizes import bimodal_sizes

__all__ = ["run"]


@register("X1")
def run(
    seed: int = 13,
    eps: float = 0.5,
    chunk_sizes: tuple[float, ...] = (4.0, 2.0, 1.0, 0.5),
) -> ExperimentResult:
    """Run the X1 chunking comparison (see module docstring)."""
    tree = star_of_paths(3, 6)  # deep branches: pipelining has room to win
    releases = adversarial_bursts(3, 10, gap=60.0, jitter=0.5, rng=seed)
    sizes = bimodal_sizes(len(releases), small=2.0, large=8.0, large_fraction=0.3, rng=seed)
    instance = Instance(
        tree, JobSet.build(releases, sizes), Setting.IDENTICAL, name="chunking"
    )
    speeds = SpeedProfile.uniform(1.0 + eps)

    table = Table(
        "X1: store-and-forward vs divisible routing",
        ["mode", "pieces", "total_flow", "mean_flow", "max_flow"],
    )
    baseline = simulate(instance, GreedyIdenticalAssignment(eps), speeds)
    table.add_row(
        "store-and-forward", len(instance.jobs),
        baseline.total_flow_time(), baseline.mean_flow_time(), baseline.max_flow_time(),
    )

    finest_total = None
    ok = True
    for delta in chunk_sizes:
        chunked = chunk_instance(instance, delta)
        result = simulate(
            chunked.instance,
            ChunkedAssignment(chunked, GreedyIdenticalAssignment(eps)),
            speeds,
            priority=chunk_priority(chunked),
        )
        summary = aggregate_chunk_result(chunked, result)  # raises on split jobs
        table.add_row(
            f"chunked(delta={delta:g})",
            chunked.num_chunks,
            summary.total_flow_time(),
            summary.mean_flow_time(),
            summary.max_flow_time(),
        )
        finest_total = summary.total_flow_time()
    assert finest_total is not None
    win = baseline.total_flow_time() / finest_total
    if finest_total > baseline.total_flow_time() * 1.02:
        ok = False
    return ExperimentResult(
        exp_id="X1",
        title="divisible routing negates interior congestion (Sec 2 extension)",
        claim="results extend to jobs sent in small pieces; interior congestion effectively negated",
        table=table,
        metrics={"store_forward_over_finest_chunked": win},
        passed=ok,
        notes=(
            "Pieces inherit their parent's SJF rank; all pieces of a job pin "
            "to one machine. Pass: finest chunking's total flow <= the "
            "store-and-forward total (2% tolerance)."
        ),
    )
