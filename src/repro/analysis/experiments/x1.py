"""Experiment X1 — the divisible-routing extension (Section 2's remark).

The paper states its results extend "in a fairly straightforward manner"
to jobs sent in small pieces through the routers, and that interior
congestion is then "effectively negated".  This experiment measures
exactly that: the same workload run store-and-forward versus chunked at
several piece sizes, on a deep tree where interior pipelining matters.

The grid runs the store-and-forward baseline as one trial and each
chunking granularity as another; every trial rebuilds the (seeded,
deterministic) workload itself.

Expected shape: flow time improves as pieces shrink (monotonically up to
tie noise), with the largest win on deep paths; assignments stay
non-migratory (all pieces of a job on one machine).

Pass criterion: the finest chunking's total flow is at most the
store-and-forward total (with 2% tolerance), and every chunked run keeps
per-job single-leaf assignments.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    seed=13,
    eps=0.5,
    chunk_sizes=(4.0, 2.0, 1.0, 0.5),
)


def _instance(seed: int):
    from repro.network.builders import star_of_paths
    from repro.workload.arrivals import adversarial_bursts
    from repro.workload.instance import Instance, Setting
    from repro.workload.job import JobSet
    from repro.workload.sizes import bimodal_sizes

    tree = star_of_paths(3, 6)  # deep branches: pipelining has room to win
    releases = adversarial_bursts(3, 10, gap=60.0, jitter=0.5, rng=seed)
    sizes = bimodal_sizes(
        len(releases), small=2.0, large=8.0, large_fraction=0.3, rng=seed
    )
    return Instance(
        tree, JobSet.build(releases, sizes), Setting.IDENTICAL, name="chunking"
    )


def _trials(p: dict) -> list[TrialSpec]:
    specs = [
        TrialSpec(
            "X1", "store-and-forward",
            {"mode": "baseline", "seed": p["seed"], "eps": p["eps"]},
        )
    ]
    specs.extend(
        TrialSpec(
            "X1",
            f"chunked(delta={delta:g})",
            {"mode": "chunked", "delta": delta, "seed": p["seed"], "eps": p["eps"]},
        )
        for delta in p["chunk_sizes"]
    )
    return specs


def _run_trial(spec: TrialSpec) -> dict:
    from repro.core.assignment import GreedyIdenticalAssignment
    from repro.sim.engine import simulate
    from repro.sim.speed import SpeedProfile
    from repro.workload.chunking import (
        ChunkedAssignment,
        aggregate_chunk_result,
        chunk_instance,
        chunk_priority,
    )

    q = spec.params
    eps = q["eps"]
    instance = _instance(q["seed"])
    speeds = SpeedProfile.uniform(1.0 + eps)
    if q["mode"] == "baseline":
        result = simulate(instance, GreedyIdenticalAssignment(eps), speeds=speeds)
        pieces = len(instance.jobs)
        summary = result
    else:
        chunked = chunk_instance(instance, q["delta"])
        raw = simulate(
            chunked.instance,
            ChunkedAssignment(chunked, GreedyIdenticalAssignment(eps)),
            speeds=speeds,
            priority=chunk_priority(chunked),
        )
        summary = aggregate_chunk_result(chunked, raw)  # raises on split jobs
        pieces = chunked.num_chunks
    return {
        "pieces": pieces,
        "total": summary.total_flow_time(),
        "mean": summary.mean_flow_time(),
        "max": summary.max_flow_time(),
    }


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    chunk_sizes = tuple(p["chunk_sizes"])
    by_id = {s.trial_id: d for s, d in outcomes}
    table = Table(
        "X1: store-and-forward vs divisible routing",
        ["mode", "pieces", "total_flow", "mean_flow", "max_flow"],
    )
    base = by_id["store-and-forward"]
    table.add_row("store-and-forward", base["pieces"], base["total"], base["mean"], base["max"])
    finest_total = None
    for delta in chunk_sizes:
        d = by_id[f"chunked(delta={delta:g})"]
        table.add_row(f"chunked(delta={delta:g})", d["pieces"], d["total"], d["mean"], d["max"])
        finest_total = d["total"]
    assert finest_total is not None
    win = base["total"] / finest_total
    ok = finest_total <= base["total"] * 1.02
    return ExperimentResult(
        exp_id="X1",
        title="divisible routing negates interior congestion (Sec 2 extension)",
        claim="results extend to jobs sent in small pieces; interior congestion effectively negated",
        table=table,
        metrics={"store_forward_over_finest_chunked": win},
        passed=ok,
        notes=(
            "Pieces inherit their parent's SJF rank; all pieces of a job pin "
            "to one machine. Pass: finest chunking's total flow <= the "
            "store-and-forward total (2% tolerance)."
        ),
    )


run = register_grid(
    "X1", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
