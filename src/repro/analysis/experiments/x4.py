"""Experiment X4 — does the unrelated setting really need speed ``2+ε``?

The conclusion's first open question: can Theorem 2's ``2+ε`` be reduced
to ``1+ε``?  The paper notes the hurdle — a job's processing time
*changes* when it reaches its machine, so the identical-setting analysis
breaks.  This exploratory experiment scans the speed interval
``[1+ε, 2+ε]`` on the unrelated workloads at high load, asking whether
any *empirical* degradation appears below ``2+ε``.

The grid runs one trial per (tree, matrix) workload; each trial scans
the whole speed interval against one memoized lower bound.

**Exploratory finding.**  On every stochastic workload family we sweep,
the ratio degrades smoothly as speed decreases — there is no cliff at
``2``: the algorithm remains well-behaved at ``1+ε`` on these inputs.
That is consistent with the ``2+ε`` requirement being either a proof
artefact of the dual-fitting or realised only by adversarial instances;
it does not, of course, prove the conjecture.

Pass criterion (for an exploration): all ratios finite; the ratio at
``1+ε`` is at most ``cliff_budget`` times the ratio at ``2+ε`` (no
cliff), and ratios are monotone non-increasing in speed up to 10%
noise.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.experiments.workloads import standard_trees, unrelated_instance
from repro.analysis.ratios import competitive_report, lower_bound_cached
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    n=45,
    load=0.85,
    eps=0.25,
    seed=18,
    cliff_budget=3.0,
)

_TREES = ("kary(2,3)", "datacenter(2,2,3)")
_MATRICES = ("affinity", "partition")


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "X4",
            f"{tree_name}|{matrix}",
            {
                "tree": tree_name,
                "matrix": matrix,
                "n": p["n"],
                "load": p["load"],
                "eps": p["eps"],
                "seed": p["seed"],
            },
        )
        for tree_name in _TREES
        for matrix in _MATRICES
    ]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.core.scheduler import run_paper_algorithm
    from repro.sim.speed import SpeedProfile

    q = spec.params
    eps = q["eps"]
    speeds = (1.0 + eps, 1.5, 1.75, 2.0, 2.0 + eps)
    tree = standard_trees()[q["tree"]]
    instance = unrelated_instance(
        tree, q["n"], load=q["load"], matrix=q["matrix"], seed=q["seed"],
        name=q["tree"],
    )
    bound = lower_bound_cached(instance, prefer_lp=False)
    ratios: list[float] = []
    for s in speeds:
        result = run_paper_algorithm(instance, eps, SpeedProfile.uniform(s))
        rep = competitive_report("paper", instance, result, lower_bound=bound)
        ratios.append(rep.fractional_ratio)
    return {"speeds": list(speeds), "ratios": ratios}


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    cliff_budget = p["cliff_budget"]
    cells = {(s.params["tree"], s.params["matrix"]): d for s, d in outcomes}
    table = Table(
        "X4: unrelated endpoints — ratio across the [1+eps, 2+eps] interval",
        ["tree", "matrix", "speed", "frac_ratio"],
    )
    ok = True
    worst_cliff = 0.0
    for tree_name in _TREES:
        for matrix in _MATRICES:
            d = cells[(tree_name, matrix)]
            ratios = d["ratios"]
            for s, ratio in zip(d["speeds"], ratios):
                table.add_row(tree_name, matrix, s, ratio)
            cliff = ratios[0] / ratios[-1] if ratios[-1] > 0 else float("inf")
            worst_cliff = max(worst_cliff, cliff)
            if cliff > cliff_budget:
                ok = False
            for a, b in zip(ratios, ratios[1:]):
                if b > a * 1.10:  # monotone up to 10% noise
                    ok = False
    return ExperimentResult(
        exp_id="X4",
        title="can 2+eps be reduced? an empirical scan (conclusion, open question)",
        claim="(open question) whether the unrelated setting's speed can drop from 2+eps to 1+eps",
        table=table,
        metrics={"worst_ratio_cliff_1eps_over_2eps": worst_cliff},
        passed=ok,
        notes=(
            "Exploration, not a proof: on stochastic workloads the ratio at "
            "1+eps stays within "
            f"{cliff_budget}x of the ratio at 2+eps and degrades smoothly — "
            "no cliff at speed 2. Adversarial constructions could still "
            "separate the regimes."
        ),
    )


run = register_grid(
    "X4", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
