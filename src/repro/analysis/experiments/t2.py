"""Experiment T2 — Theorem 2's shape: unrelated endpoints.

Theorem 2 claims a ``(2+ε)``-speed ``O(1/ε⁷)``-competitive algorithm for
identical routers and *unrelated* machines.  The measured shape:

* the ratio stabilises to a modest constant once the speed clears
  ``≈ 2``, while at unit speed structured affinity workloads hurt;
* the greedy rule beats congestion-oblivious baselines (closest/fastest
  leaf) on partitioned matrices, where following the fast machine blindly
  congests one subtree.

Pass criterion: the paper algorithm's fractional ratio at the top swept
speed stays within ``ratio_budget`` and at speed ``≥ 2.2`` it beats the
closest-leaf baseline in aggregate.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.experiments.workloads import standard_trees, unrelated_instance
from repro.analysis.ratios import competitive_report, lower_bound_for
from repro.analysis.tables import Table
from repro.baselines.policies import ClosestLeafAssignment
from repro.core.scheduler import run_paper_algorithm
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile

__all__ = ["run"]

_SPEEDS = (1.0, 1.5, 2.0, 2.2, 3.0)


@register("T2")
def run(
    n: int = 50,
    load: float = 0.75,
    eps: float = 0.25,
    seeds: tuple[int, ...] = (2, 3, 4),
    speeds: tuple[float, ...] = _SPEEDS,
    ratio_budget: float = 10.0,
) -> ExperimentResult:
    """Run the T2 sweep (see module docstring).

    Ratios are means over ``seeds`` (±95% half-width in the table), so
    the Theorem-2 shape is not a single-draw anecdote.
    """
    from repro.analysis.stats import replicate

    table = Table(
        f"T2: unrelated endpoints — ratio vs lower bound (mean over {len(seeds)} seeds)",
        ["tree", "matrix", "policy", "speed", "ratio_mean", "ratio_ci"],
    )
    trees = standard_trees()
    chosen = {k: trees[k] for k in ("kary(2,3)", "paths(3,3)", "datacenter(2,2,3)")}
    worst_top = 0.0
    agg_paper = 0.0
    agg_closest = 0.0
    for tree_name, tree in chosen.items():
        for matrix in ("affinity", "partition"):

            def ratio_for(policy_name: str, s: float):
                def measure(seed: int) -> float:
                    instance = unrelated_instance(
                        tree, n, load=load, matrix=matrix, seed=seed, name=tree_name
                    )
                    bound = lower_bound_for(instance, prefer_lp=False)
                    profile = SpeedProfile.uniform(s)
                    if policy_name == "paper":
                        result = run_paper_algorithm(instance, eps, profile)
                    else:
                        result = simulate(instance, ClosestLeafAssignment(), profile)
                    return competitive_report(
                        policy_name, instance, result, lower_bound=bound
                    ).fractional_ratio

                return measure

            for s in speeds:
                means: dict[str, float] = {}
                for policy_name, label in (
                    ("paper", "paper-greedy"), ("closest", "closest-leaf"),
                ):
                    if len(seeds) >= 2:
                        rep = replicate(ratio_for(policy_name, s), seeds)
                        mean, ci = rep.mean, rep.half_width
                    else:
                        mean, ci = ratio_for(policy_name, s)(seeds[0]), 0.0
                    means[policy_name] = mean
                    table.add_row(tree_name, matrix, label, s, mean, ci)
                if s == max(speeds):
                    worst_top = max(worst_top, means["paper"])
                if s >= 2.2:
                    agg_paper += means["paper"]
                    agg_closest += means["closest"]

    passed = worst_top <= ratio_budget and agg_paper <= agg_closest
    return ExperimentResult(
        exp_id="T2",
        title="unrelated endpoints: (2+eps)-speed competitiveness",
        claim="(2+eps)-speed O(1/eps^7)-competitive with unrelated machines (Thm 2)",
        table=table,
        metrics={
            "worst_ratio_at_top_speed": worst_top,
            "aggregate_paper_ratio_fast": agg_paper,
            "aggregate_closest_ratio_fast": agg_closest,
        },
        passed=passed,
        notes=(
            "Pass: worst paper ratio at the top speed <= "
            f"{ratio_budget} and, summed over configurations at speeds >= 2.2, "
            "the paper algorithm's ratio is no worse than closest-leaf's."
        ),
    )
