"""Experiment T2 — Theorem 2's shape: unrelated endpoints.

Theorem 2 claims a ``(2+ε)``-speed ``O(1/ε⁷)``-competitive algorithm for
identical routers and *unrelated* machines.  The measured shape:

* the ratio stabilises to a modest constant once the speed clears
  ``≈ 2``, while at unit speed structured affinity workloads hurt;
* the greedy rule beats congestion-oblivious baselines (closest/fastest
  leaf) on partitioned matrices, where following the fast machine blindly
  congests one subtree.

The sweep is a trial grid over (tree, matrix, policy, speed, seed); the
memoized lower-bound service collapses the per-cell bound solves down to
one per distinct (tree, matrix, seed) instance.

Pass criterion: the paper algorithm's fractional ratio at the top swept
speed stays within ``ratio_budget`` and at speed ``≥ 2.2`` it beats the
closest-leaf baseline in aggregate.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.experiments.workloads import standard_trees, unrelated_instance
from repro.analysis.ratios import competitive_report, lower_bound_cached
from repro.analysis.stats import summarize
from repro.analysis.tables import Table

__all__ = ["run"]

_SPEEDS = (1.0, 1.5, 2.0, 2.2, 3.0)

_DEFAULTS = dict(
    n=50,
    load=0.75,
    eps=0.25,
    seeds=(2, 3, 4),
    speeds=_SPEEDS,
    ratio_budget=10.0,
)

_TREES = ("kary(2,3)", "paths(3,3)", "datacenter(2,2,3)")
_MATRICES = ("affinity", "partition")
_POLICIES = (("paper", "paper-greedy"), ("closest", "closest-leaf"))


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "T2",
            f"{tree_name}|{matrix}|{policy}|s={speed!r}|seed={seed}",
            {
                "tree": tree_name,
                "matrix": matrix,
                "policy": policy,
                "speed": speed,
                "seed": seed,
                "n": p["n"],
                "load": p["load"],
                "eps": p["eps"],
            },
        )
        for tree_name in _TREES
        for matrix in _MATRICES
        for speed in p["speeds"]
        for policy, _ in _POLICIES
        for seed in p["seeds"]
    ]


def _run_trial(spec: TrialSpec) -> float:
    from repro.baselines.policies import ClosestLeafAssignment
    from repro.core.scheduler import run_paper_algorithm
    from repro.sim.engine import simulate
    from repro.sim.speed import SpeedProfile

    q = spec.params
    tree = standard_trees()[q["tree"]]
    instance = unrelated_instance(
        tree, q["n"], load=q["load"], matrix=q["matrix"], seed=q["seed"],
        name=q["tree"],
    )
    bound = lower_bound_cached(instance, prefer_lp=False)
    profile = SpeedProfile.uniform(q["speed"])
    if q["policy"] == "paper":
        result = run_paper_algorithm(instance, q["eps"], profile)
    else:
        result = simulate(instance, ClosestLeafAssignment(), speeds=profile)
    return competitive_report(
        q["policy"], instance, result, lower_bound=bound
    ).fractional_ratio


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, float]]) -> ExperimentResult:
    seeds = tuple(p["seeds"])
    speeds = tuple(p["speeds"])
    cells: dict[tuple[str, str, str, float, int], float] = {}
    for spec, ratio in outcomes:
        q = spec.params
        cells[(q["tree"], q["matrix"], q["policy"], q["speed"], q["seed"])] = ratio

    table = Table(
        f"T2: unrelated endpoints — ratio vs lower bound (mean over {len(seeds)} seeds)",
        ["tree", "matrix", "policy", "speed", "ratio_mean", "ratio_ci"],
    )
    worst_top = 0.0
    agg_paper = 0.0
    agg_closest = 0.0
    for tree_name in _TREES:
        for matrix in _MATRICES:
            for s in speeds:
                means: dict[str, float] = {}
                for policy, label in _POLICIES:
                    values = [
                        cells[(tree_name, matrix, policy, s, seed)] for seed in seeds
                    ]
                    if len(seeds) >= 2:
                        rep = summarize(values)
                        mean, ci = rep.mean, rep.half_width
                    else:
                        mean, ci = values[0], 0.0
                    means[policy] = mean
                    table.add_row(tree_name, matrix, label, s, mean, ci)
                if s == max(speeds):
                    worst_top = max(worst_top, means["paper"])
                if s >= 2.2:
                    agg_paper += means["paper"]
                    agg_closest += means["closest"]

    passed = worst_top <= p["ratio_budget"] and agg_paper <= agg_closest
    return ExperimentResult(
        exp_id="T2",
        title="unrelated endpoints: (2+eps)-speed competitiveness",
        claim="(2+eps)-speed O(1/eps^7)-competitive with unrelated machines (Thm 2)",
        table=table,
        metrics={
            "worst_ratio_at_top_speed": worst_top,
            "aggregate_paper_ratio_fast": agg_paper,
            "aggregate_closest_ratio_fast": agg_closest,
        },
        passed=passed,
        notes=(
            "Pass: worst paper ratio at the top speed <= "
            f"{p['ratio_budget']} and, summed over configurations at speeds >= 2.2, "
            "the paper algorithm's ratio is no worse than closest-leaf's."
        ),
    )


run = register_grid(
    "T2", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
