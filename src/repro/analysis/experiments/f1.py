"""Experiment F1 — Figure 1: the tree network model, reproduced.

The paper's Figure 1 illustrates the model: a root distribution centre,
router layers, and machines at the leaves, with jobs flowing down.  This
experiment reconstructs an equivalent topology, renders it, and walks a
small trace through the paper algorithm so the model's mechanics (store
-and-forward, per-node SJF, immediate dispatch) are visible job by job.

Pass criterion: structural facts of the figure hold (root does not
process, no leaf adjacent to root, ≥ 2 subtrees) and the walkthrough
completes every job with availability chains matching the model.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.tables import Table
from repro.core.scheduler import run_paper_algorithm
from repro.network.builders import figure1_tree
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet

__all__ = ["run"]


@register("F1")
def run(eps: float = 0.5) -> ExperimentResult:
    """Run the F1 walkthrough (see module docstring)."""
    tree = figure1_tree()
    releases = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
    sizes = [2.0, 1.0, 1.0, 2.0, 1.0, 1.0]
    instance = Instance(
        tree, JobSet.build(releases, sizes), Setting.IDENTICAL, name="figure1"
    )
    result = run_paper_algorithm(instance, eps)

    table = Table(
        "F1: trace walkthrough on the Figure-1 topology",
        ["job", "release", "size", "leaf", "path", "completion", "flow"],
    )
    chains_ok = True
    for jid in sorted(result.records):
        rec = result.records[jid]
        job = instance.jobs.by_id(jid)
        path_names = ">".join(tree.node(v).label() for v in rec.path)
        table.add_row(
            jid, job.release, job.size, tree.node(rec.leaf).label(),
            path_names, rec.completion, rec.flow_time,
        )
        for i in range(len(rec.path) - 1):
            if abs(rec.available_at[i + 1] - rec.completed_at[i]) > 1e-9:
                chains_ok = False

    structural_ok = (
        len(tree.root_children) >= 2
        and all(not tree.node(v).is_leaf for v in tree.root_children)
        and tree.num_leaves >= 4
    )
    passed = structural_ok and chains_ok
    return ExperimentResult(
        exp_id="F1",
        title="Figure 1 — the tree network model",
        claim="root distributes, routers forward store-and-forward, leaves process (Fig 1, Sec 2)",
        table=table,
        metrics={"num_nodes": float(tree.num_nodes), "num_leaves": float(tree.num_leaves)},
        passed=passed,
        notes="Topology:\n" + tree.render_ascii(),
    )
