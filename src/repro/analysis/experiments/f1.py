"""Experiment F1 — Figure 1: the tree network model, reproduced.

The paper's Figure 1 illustrates the model: a root distribution centre,
router layers, and machines at the leaves, with jobs flowing down.  This
experiment reconstructs an equivalent topology, renders it, and walks a
small trace through the paper algorithm so the model's mechanics (store
-and-forward, per-node SJF, immediate dispatch) are visible job by job.

The grid degenerates to a single trial (one deterministic walkthrough);
it is registered as a grid anyway so the runner's sharded path covers it.

Pass criterion: structural facts of the figure hold (root does not
process, no leaf adjacent to root, ≥ 2 subtrees) and the walkthrough
completes every job with availability chains matching the model.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(eps=0.5)


def _trials(p: dict) -> list[TrialSpec]:
    return [TrialSpec("F1", "walkthrough", {"eps": p["eps"]})]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.core.scheduler import run_paper_algorithm
    from repro.network.builders import figure1_tree
    from repro.workload.instance import Instance, Setting
    from repro.workload.job import JobSet

    tree = figure1_tree()
    releases = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5]
    sizes = [2.0, 1.0, 1.0, 2.0, 1.0, 1.0]
    instance = Instance(
        tree, JobSet.build(releases, sizes), Setting.IDENTICAL, name="figure1"
    )
    result = run_paper_algorithm(instance, spec.params["eps"])

    rows = []
    chains_ok = True
    for jid in sorted(result.records):
        rec = result.records[jid]
        job = instance.jobs.by_id(jid)
        path_names = ">".join(tree.node(v).label() for v in rec.path)
        rows.append(
            (
                jid, job.release, job.size, tree.node(rec.leaf).label(),
                path_names, rec.completion, rec.flow_time,
            )
        )
        for i in range(len(rec.path) - 1):
            if abs(rec.available_at[i + 1] - rec.completed_at[i]) > 1e-9:
                chains_ok = False

    structural_ok = (
        len(tree.root_children) >= 2
        and all(not tree.node(v).is_leaf for v in tree.root_children)
        and tree.num_leaves >= 4
    )
    return {
        "rows": rows,
        "chains_ok": chains_ok,
        "structural_ok": structural_ok,
        "num_nodes": tree.num_nodes,
        "num_leaves": tree.num_leaves,
        "ascii": tree.render_ascii(),
    }


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    (_, d), = outcomes
    table = Table(
        "F1: trace walkthrough on the Figure-1 topology",
        ["job", "release", "size", "leaf", "path", "completion", "flow"],
    )
    for row in d["rows"]:
        table.add_row(*row)
    passed = d["structural_ok"] and d["chains_ok"]
    return ExperimentResult(
        exp_id="F1",
        title="Figure 1 — the tree network model",
        claim="root distributes, routers forward store-and-forward, leaves process (Fig 1, Sec 2)",
        table=table,
        metrics={
            "num_nodes": float(d["num_nodes"]),
            "num_leaves": float(d["num_leaves"]),
        },
        passed=passed,
        notes="Topology:\n" + d["ascii"],
    )


run = register_grid(
    "F1", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
