"""Experiment T3 — Theorem 3's shape: fractional→integral conversion.

Theorem 3: an ``s``-speed ``c``-competitive algorithm for *fractional*
flow time yields a ``(1+ε)s``-speed ``O(c/ε)``-competitive algorithm for
*total* flow time, and when SJF runs on the leaves the same algorithm
serves as its own conversion.  Measured shape: for the paper algorithm
(SJF everywhere) the ratio ``total / fractional`` stays a small constant
— far below the generic ``1 + 1/ε`` conversion budget — across loads,
sizes, and ``ε``.

The grid is one trial per (tree, load, ε) cell; each trial is a single
deterministic run at the theorem's stacked speed.

Pass criterion: ``total/fractional ≤ 1 + 1/ε`` on every configuration
(the theorem's budget at the swept ε), and ≥ 1 always (fractional flow
never exceeds total by construction).
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.experiments.workloads import identical_instance, standard_trees
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    n=60,
    seed=3,
    eps_values=(0.1, 0.25, 0.5),
    loads=(0.6, 0.9),
)

_TREES = ("kary(2,3)", "caterpillar(4,2)", "random(24)")


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "T3",
            f"{tree_name}|load={load!r}|eps={eps!r}",
            {
                "tree": tree_name,
                "load": load,
                "eps": eps,
                "n": p["n"],
                "seed": p["seed"],
            },
        )
        for tree_name in _TREES
        for load in p["loads"]
        for eps in p["eps_values"]
    ]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.core.scheduler import run_paper_algorithm
    from repro.sim.speed import SpeedProfile

    q = spec.params
    tree = standard_trees()[q["tree"]]
    eps = q["eps"]
    instance = identical_instance(
        tree, q["n"], load=q["load"], size_kind="pareto", seed=q["seed"]
    ).rounded(eps)
    result = run_paper_algorithm(
        instance, eps, SpeedProfile.uniform(1.0 + eps).scaled(1.0 + eps)
    )
    return {"total": result.total_flow_time(), "frac": result.fractional_flow}


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    cells = {
        (s.params["tree"], s.params["load"], s.params["eps"]): payload
        for s, payload in outcomes
    }
    table = Table(
        "T3: integral vs fractional flow time of the paper algorithm",
        ["tree", "load", "eps", "total_flow", "frac_flow", "total/frac", "budget(1+1/eps)"],
    )
    worst_gap = 0.0
    all_within = True
    for tree_name in _TREES:
        for load in p["loads"]:
            for eps in p["eps_values"]:
                payload = cells[(tree_name, load, eps)]
                total, frac = payload["total"], payload["frac"]
                gap = total / frac if frac > 0 else float("inf")
                budget = 1.0 + 1.0 / eps
                table.add_row(tree_name, load, eps, total, frac, gap, budget)
                worst_gap = max(worst_gap, gap)
                if gap > budget or gap < 1.0 - 1e-9:
                    all_within = False
    return ExperimentResult(
        exp_id="T3",
        title="fractional-to-integral conversion cost",
        claim="fractional c-competitive => total O(c/eps)-competitive at (1+eps) speed (Thm 3)",
        table=table,
        metrics={"worst_total_over_fractional": worst_gap},
        passed=all_within,
        notes=(
            "Pass: 1 <= total/fractional <= 1 + 1/eps on every configuration. "
            "SJF on the leaves makes the same schedule serve both objectives, "
            "which is why the measured gap sits far below the generic budget."
        ),
    )


run = register_grid(
    "T3", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
