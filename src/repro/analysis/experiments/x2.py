"""Experiment X2 — jobs created at arbitrary nodes (the conclusion's
future-work question).

"What can be shown if jobs arrive at arbitrary nodes in the network?"
We implement the natural downward-routing variant: a job's data
originates at a router and must be dispatched to a machine in that
router's subtree.  This experiment compares three placements of the
same workload on a datacenter tree:

* ``root`` — the paper's model (data enters at the core);
* ``pod`` — data originates at the pod routers (local analytics);
* ``rack`` — data originates at top-of-rack routers (near-data
  processing).

Expected shape: the deeper the origin, the lower the flow time (shorter
paths *and* no shared top-tier bottleneck), with every run respecting
the subtree constraint.

Pass criterion: mean flow strictly decreases from root to pod to rack
placement, and every job lands inside its origin's subtree.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.tables import Table
from repro.core.assignment import GreedyIdenticalAssignment
from repro.network.builders import datacenter_tree
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile
from repro.workload.arrivals import poisson_arrivals
from repro.workload.instance import Instance, Setting
from repro.workload.job import JobSet
from repro.workload.sizes import uniform_sizes

__all__ = ["run"]


@register("X2")
def run(
    n: int = 80,
    seed: int = 14,
    eps: float = 0.25,
) -> ExperimentResult:
    """Run the X2 origin-placement comparison (see module docstring)."""
    tree = datacenter_tree(2, 3, 3)
    import numpy as np

    rng = np.random.default_rng(seed)
    sizes = uniform_sizes(n, 1.0, 3.0, rng=rng)
    rate = Instance.poisson_rate_for_load(tree, float(sizes.mean()), 0.85)
    releases = poisson_arrivals(n, rate, rng=rng)

    pods = list(tree.root_children)
    racks = [r for p in pods for r in tree.children(p)]
    placements = {
        "root": [None] * n,
        "pod": [pods[int(rng.integers(len(pods)))] for _ in range(n)],
        "rack": [racks[int(rng.integers(len(racks)))] for _ in range(n)],
    }

    table = Table(
        "X2: origin placement vs flow time",
        ["origin_tier", "mean_flow", "max_flow", "mean_path_len", "subtree_respected"],
    )
    means = {}
    ok = True
    for tier, origins in placements.items():
        instance = Instance(
            tree,
            JobSet.build(releases, sizes, origins=origins),
            Setting.IDENTICAL,
            name=f"origins/{tier}",
        )
        result = simulate(instance, GreedyIdenticalAssignment(eps), SpeedProfile.uniform(1.25))
        respected = True
        path_lens = []
        for jid, rec in result.records.items():
            job = instance.jobs.by_id(jid)
            path_lens.append(len(rec.path))
            if job.origin is not None and not tree.is_ancestor(job.origin, rec.leaf):
                respected = False
        means[tier] = result.mean_flow_time()
        table.add_row(
            tier,
            result.mean_flow_time(),
            result.max_flow_time(),
            sum(path_lens) / len(path_lens),
            respected,
        )
        ok = ok and respected
    if not (means["rack"] < means["pod"] < means["root"]):
        ok = False
    return ExperimentResult(
        exp_id="X2",
        title="arbitrary arrival nodes (conclusion's future work)",
        claim="(open question) jobs arriving at arbitrary nodes; downward-routing variant implemented",
        table=table,
        metrics={
            "root_over_rack_mean_flow": means["root"] / means["rack"],
            "root_over_pod_mean_flow": means["root"] / means["pod"],
        },
        passed=ok,
        notes=(
            "Pass: every job lands in its origin's subtree and mean flow "
            "strictly improves root -> pod -> rack (data locality pays)."
        ),
    )
