"""Experiment X2 — jobs created at arbitrary nodes (the conclusion's
future-work question).

"What can be shown if jobs arrive at arbitrary nodes in the network?"
We implement the natural downward-routing variant: a job's data
originates at a router and must be dispatched to a machine in that
router's subtree.  This experiment compares three placements of the
same workload on a datacenter tree:

* ``root`` — the paper's model (data enters at the core);
* ``pod`` — data originates at the pod routers (local analytics);
* ``rack`` — data originates at top-of-rack routers (near-data
  processing).

The grid runs one trial per placement tier.  Each trial replays the
*full* RNG draw sequence (sizes → releases → pod picks → rack picks)
before selecting its tier, so all three tiers see exactly the workload
the original single-pass sweep produced.

Expected shape: the deeper the origin, the lower the flow time (shorter
paths *and* no shared top-tier bottleneck), with every run respecting
the subtree constraint.

Pass criterion: mean flow strictly decreases from root to pod to rack
placement, and every job lands inside its origin's subtree.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    n=80,
    seed=14,
    eps=0.25,
)

_TIERS = ("root", "pod", "rack")


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "X2",
            tier,
            {"tier": tier, "n": p["n"], "seed": p["seed"], "eps": p["eps"]},
        )
        for tier in _TIERS
    ]


def _run_trial(spec: TrialSpec) -> dict:
    import numpy as np

    from repro.core.assignment import GreedyIdenticalAssignment
    from repro.network.builders import datacenter_tree
    from repro.sim.engine import simulate
    from repro.sim.speed import SpeedProfile
    from repro.workload.arrivals import poisson_arrivals
    from repro.workload.instance import Instance, Setting
    from repro.workload.job import JobSet
    from repro.workload.sizes import uniform_sizes

    q = spec.params
    n, seed = q["n"], q["seed"]
    tree = datacenter_tree(2, 3, 3)
    rng = np.random.default_rng(seed)
    sizes = uniform_sizes(n, 1.0, 3.0, rng=rng)
    rate = Instance.poisson_rate_for_load(tree, float(sizes.mean()), 0.85)
    releases = poisson_arrivals(n, rate, rng=rng)

    pods = list(tree.root_children)
    racks = [r for p_ in pods for r in tree.children(p_)]
    placements = {
        "root": [None] * n,
        "pod": [pods[int(rng.integers(len(pods)))] for _ in range(n)],
        "rack": [racks[int(rng.integers(len(racks)))] for _ in range(n)],
    }
    origins = placements[q["tier"]]
    instance = Instance(
        tree,
        JobSet.build(releases, sizes, origins=origins),
        Setting.IDENTICAL,
        name=f"origins/{q['tier']}",
    )
    result = simulate(
        instance, GreedyIdenticalAssignment(q["eps"]), speeds=SpeedProfile.uniform(1.25)
    )
    respected = True
    path_lens = []
    for jid, rec in result.records.items():
        job = instance.jobs.by_id(jid)
        path_lens.append(len(rec.path))
        if job.origin is not None and not tree.is_ancestor(job.origin, rec.leaf):
            respected = False
    return {
        "mean": result.mean_flow_time(),
        "max": result.max_flow_time(),
        "mean_path_len": sum(path_lens) / len(path_lens),
        "respected": respected,
    }


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    cells = {s.params["tier"]: d for s, d in outcomes}
    table = Table(
        "X2: origin placement vs flow time",
        ["origin_tier", "mean_flow", "max_flow", "mean_path_len", "subtree_respected"],
    )
    means = {}
    ok = True
    for tier in _TIERS:
        d = cells[tier]
        means[tier] = d["mean"]
        table.add_row(tier, d["mean"], d["max"], d["mean_path_len"], d["respected"])
        ok = ok and d["respected"]
    if not (means["rack"] < means["pod"] < means["root"]):
        ok = False
    return ExperimentResult(
        exp_id="X2",
        title="arbitrary arrival nodes (conclusion's future work)",
        claim="(open question) jobs arriving at arbitrary nodes; downward-routing variant implemented",
        table=table,
        metrics={
            "root_over_rack_mean_flow": means["root"] / means["rack"],
            "root_over_pod_mean_flow": means["root"] / means["pod"],
        },
        passed=ok,
        notes=(
            "Pass: every job lands in its origin's subtree and mean flow "
            "strictly improves root -> pod -> rack (data locality pays)."
        ),
    )


run = register_grid(
    "X2", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
