"""Experiment B1 — the motivation table: congestion-aware dispatch wins.

The paper's introduction argues that schedulers ignoring network
congestion (e.g. send every job to its closest/fastest machine) cannot
work, and Section 3.1 explains why closest-leaf specifically fails.
This experiment quantifies that: a grid of assignment policies × node
orders across loads, reporting mean flow time, with the crossover load
at which closest-leaf collapses.

Pass criterion: at the highest load the paper's greedy beats closest-leaf
by at least ``win_factor`` on mean flow time, and SJF beats FIFO for the
greedy assignment.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.experiments.workloads import identical_instance
from repro.analysis.tables import Table
from repro.baselines.policies import (
    ClosestLeafAssignment,
    LeastLoadedAssignment,
    RandomAssignment,
    RoundRobinAssignment,
)
from repro.core.assignment import GreedyIdenticalAssignment
from repro.network.builders import datacenter_tree
from repro.sim.engine import fifo_priority, simulate, sjf_priority
from repro.sim.speed import SpeedProfile

__all__ = ["run"]


@register("B1")
def run(
    n: int = 80,
    seed: int = 10,
    eps: float = 0.25,
    loads: tuple[float, ...] = (0.5, 0.8, 0.95),
    speed: float = 1.25,
    win_factor: float = 1.1,
) -> ExperimentResult:
    """Run the B1 policy grid (see module docstring)."""
    tree = datacenter_tree(2, 2, 3)
    table = Table(
        "B1: mean flow time by assignment policy, node order, and load",
        ["load", "policy", "node_order", "mean_flow", "max_flow"],
    )
    mean_at: dict[tuple[float, str, str], float] = {}
    policies = {
        "greedy": lambda: GreedyIdenticalAssignment(eps),
        "closest": ClosestLeafAssignment,
        "random": lambda: RandomAssignment(seed),
        "least-loaded": LeastLoadedAssignment,
        "round-robin": RoundRobinAssignment,
    }
    orders = {"sjf": sjf_priority, "fifo": fifo_priority}
    for load in loads:
        instance = identical_instance(
            tree, n, load=load, size_kind="bimodal", seed=seed
        )
        for pname, factory in policies.items():
            for oname, order in orders.items():
                result = simulate(
                    instance, factory(), SpeedProfile.uniform(speed), priority=order
                )
                mean = result.mean_flow_time()
                table.add_row(load, pname, oname, mean, result.max_flow_time())
                mean_at[(load, pname, oname)] = mean

    top = max(loads)
    greedy = mean_at[(top, "greedy", "sjf")]
    closest = mean_at[(top, "closest", "sjf")]
    greedy_fifo = mean_at[(top, "greedy", "fifo")]
    passed = closest >= greedy * win_factor and greedy_fifo >= greedy
    return ExperimentResult(
        exp_id="B1",
        title="policy comparison: the cost of ignoring congestion",
        claim="congestion-oblivious assignment (closest leaf) is not suitable (Sec 3.1)",
        table=table,
        metrics={
            "closest_over_greedy_at_high_load": closest / greedy,
            "fifo_over_sjf_for_greedy": greedy_fifo / greedy,
        },
        passed=passed,
        notes=(
            f"Pass: at load {top}, closest-leaf's mean flow is at least "
            f"{win_factor}x the greedy's, and FIFO does not beat SJF under "
            "the greedy assignment."
        ),
    )
