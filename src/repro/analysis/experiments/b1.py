"""Experiment B1 — the motivation table: congestion-aware dispatch wins.

The paper's introduction argues that schedulers ignoring network
congestion (e.g. send every job to its closest/fastest machine) cannot
work, and Section 3.1 explains why closest-leaf specifically fails.
This experiment quantifies that: a grid of assignment policies × node
orders across loads, reporting mean flow time, with the crossover load
at which closest-leaf collapses.

The grid runs one trial per (load, policy, node-order) cell.

Pass criterion: at the highest load the paper's greedy beats closest-leaf
by at least ``win_factor`` on mean flow time, and SJF beats FIFO for the
greedy assignment.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult
from repro.analysis.experiments.grid import TrialSpec, register_grid
from repro.analysis.tables import Table

__all__ = ["run"]

_DEFAULTS = dict(
    n=80,
    seed=10,
    eps=0.25,
    loads=(0.5, 0.8, 0.95),
    speed=1.25,
    win_factor=1.1,
)

_POLICY_NAMES = ("greedy", "closest", "random", "least-loaded", "round-robin")
_ORDER_NAMES = ("sjf", "fifo")


def _policy_for(name: str, eps: float, seed: int):
    from repro.baselines.policies import (
        ClosestLeafAssignment,
        LeastLoadedAssignment,
        RandomAssignment,
        RoundRobinAssignment,
    )
    from repro.core.assignment import GreedyIdenticalAssignment

    if name == "greedy":
        return GreedyIdenticalAssignment(eps)
    if name == "closest":
        return ClosestLeafAssignment()
    if name == "random":
        return RandomAssignment(seed)
    if name == "least-loaded":
        return LeastLoadedAssignment()
    return RoundRobinAssignment()


def _trials(p: dict) -> list[TrialSpec]:
    return [
        TrialSpec(
            "B1",
            f"load={load!r}|{pname}|{oname}",
            {
                "load": load,
                "policy": pname,
                "order": oname,
                "n": p["n"],
                "seed": p["seed"],
                "eps": p["eps"],
                "speed": p["speed"],
            },
        )
        for load in p["loads"]
        for pname in _POLICY_NAMES
        for oname in _ORDER_NAMES
    ]


def _run_trial(spec: TrialSpec) -> dict:
    from repro.analysis.experiments.workloads import identical_instance
    from repro.network.builders import datacenter_tree
    from repro.sim.engine import fifo_priority, simulate, sjf_priority
    from repro.sim.speed import SpeedProfile

    q = spec.params
    tree = datacenter_tree(2, 2, 3)
    instance = identical_instance(
        tree, q["n"], load=q["load"], size_kind="bimodal", seed=q["seed"]
    )
    order = sjf_priority if q["order"] == "sjf" else fifo_priority
    result = simulate(
        instance,
        _policy_for(q["policy"], q["eps"], q["seed"]),
        speeds=SpeedProfile.uniform(q["speed"]),
        priority=order,
    )
    return {"mean": result.mean_flow_time(), "max": result.max_flow_time()}


def _reduce(p: dict, outcomes: list[tuple[TrialSpec, dict]]) -> ExperimentResult:
    cells = {
        (s.params["load"], s.params["policy"], s.params["order"]): d
        for s, d in outcomes
    }
    table = Table(
        "B1: mean flow time by assignment policy, node order, and load",
        ["load", "policy", "node_order", "mean_flow", "max_flow"],
    )
    mean_at: dict[tuple[float, str, str], float] = {}
    for load in p["loads"]:
        for pname in _POLICY_NAMES:
            for oname in _ORDER_NAMES:
                d = cells[(load, pname, oname)]
                table.add_row(load, pname, oname, d["mean"], d["max"])
                mean_at[(load, pname, oname)] = d["mean"]

    top = max(p["loads"])
    win_factor = p["win_factor"]
    greedy = mean_at[(top, "greedy", "sjf")]
    closest = mean_at[(top, "closest", "sjf")]
    greedy_fifo = mean_at[(top, "greedy", "fifo")]
    passed = closest >= greedy * win_factor and greedy_fifo >= greedy
    return ExperimentResult(
        exp_id="B1",
        title="policy comparison: the cost of ignoring congestion",
        claim="congestion-oblivious assignment (closest leaf) is not suitable (Sec 3.1)",
        table=table,
        metrics={
            "closest_over_greedy_at_high_load": closest / greedy,
            "fifo_over_sjf_for_greedy": greedy_fifo / greedy,
        },
        passed=passed,
        notes=(
            f"Pass: at load {top}, closest-leaf's mean flow is at least "
            f"{win_factor}x the greedy's, and FIFO does not beat SJF under "
            "the greedy assignment."
        ),
    )


run = register_grid(
    "B1", defaults=_DEFAULTS, trials=_trials, run_trial=_run_trial, reduce=_reduce
)
