"""Experiment registry.

One module per experiment id of ``DESIGN.md`` §4; each exposes a
``run(**params) -> ExperimentResult`` registered under its id.  The
benchmarks in ``benchmarks/`` and the tables in ``EXPERIMENTS.md`` are
generated from these.

>>> from repro.analysis.experiments import run_experiment
>>> res = run_experiment("F2")
>>> res.exp_id
'F2'
"""

from repro.analysis.experiments.base import (
    ExperimentResult,
    all_experiment_ids,
    get_experiment,
    run_experiment,
)

# Importing the modules registers them.
from repro.analysis.experiments import (  # noqa: F401  (registration side effects)
    b1,
    b2,
    d1,
    f1,
    f2,
    l1,
    l2,
    l3,
    l4,
    l8,
    m1,
    s1,
    t1,
    t2,
    t3,
    t4,
    t5,
    x1,
    x2,
    x3,
    x4,
    x5,
)

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "get_experiment",
    "all_experiment_ids",
]
