"""Experiment T1 — Theorem 1's shape: identical endpoints.

Theorem 1 claims a ``(1+ε)``-speed ``O(1/ε⁷)``-competitive algorithm for
identical routers and machines.  Absolute constants are not measurable
(the adversary is replaced by a lower bound), but the *shape* is:

* at every speed ``s ≥ 1+ε`` the paper algorithm's flow time stays
  within a modest constant of the LP/combinatorial lower bound;
* the ratio does not blow up as load approaches capacity, whereas the
  congestion-oblivious closest-leaf baseline's does;
* more speed monotonically (roughly) improves the ratio.

Ratios are replicated over ``seeds`` and reported as mean ± the normal
95% half-width, so the conclusions are not single-draw anecdotes.

Pass criterion: the paper algorithm's mean fractional ratio at the
highest swept speed is at most ``ratio_budget`` on every topology, and
at ``s = 1.5`` it beats closest-leaf on all but at most one topology.
"""

from __future__ import annotations

from repro.analysis.experiments.base import ExperimentResult, register
from repro.analysis.experiments.workloads import identical_instance, standard_trees
from repro.analysis.ratios import competitive_report, lower_bound_for
from repro.analysis.stats import replicate
from repro.analysis.tables import Table
from repro.baselines.policies import ClosestLeafAssignment
from repro.core.scheduler import run_paper_algorithm
from repro.sim.engine import simulate
from repro.sim.speed import SpeedProfile

__all__ = ["run"]

_SPEEDS = (1.0, 1.1, 1.25, 1.5, 2.0)


@register("T1")
def run(
    n: int = 60,
    load: float = 0.9,
    eps: float = 0.25,
    seeds: tuple[int, ...] = (1, 2, 3),
    speeds: tuple[float, ...] = _SPEEDS,
    ratio_budget: float = 8.0,
) -> ExperimentResult:
    """Run the T1 sweep (see module docstring)."""
    table = Table(
        "T1: identical endpoints — fractional-flow ratio vs lower bound "
        f"(mean over {len(seeds)} seeds ± 95% half-width)",
        ["tree", "policy", "speed", "ratio_mean", "ratio_ci", "bound"],
    )
    worst_at_top_speed = 0.0
    wins = 0
    comparisons = 0
    for tree_name, tree in standard_trees().items():
        bound_names: set[str] = set()

        def ratio_for(policy_name: str, s: float):
            def measure(seed: int) -> float:
                instance = identical_instance(
                    tree, n, load=load, size_kind="pareto", seed=seed, name=tree_name
                )
                bound = lower_bound_for(instance, prefer_lp=False)
                bound_names.add(bound[1])
                profile = SpeedProfile.uniform(s)
                if policy_name == "paper":
                    result = run_paper_algorithm(instance, eps, profile)
                else:
                    result = simulate(instance, ClosestLeafAssignment(), profile)
                rep = competitive_report(
                    policy_name, instance, result, lower_bound=bound
                )
                return rep.fractional_ratio

            return measure

        per_speed: dict[float, dict[str, float]] = {}
        for s in speeds:
            row: dict[str, float] = {}
            for policy_name, label in (("paper", "paper-greedy"), ("closest", "closest-leaf")):
                if len(seeds) >= 2:
                    rep = replicate(ratio_for(policy_name, s), seeds)
                    mean, ci = rep.mean, rep.half_width
                else:
                    mean, ci = ratio_for(policy_name, s)(seeds[0]), 0.0
                table.add_row(
                    tree_name, label, s, mean, ci, "/".join(sorted(bound_names))
                )
                row[policy_name] = mean
            per_speed[s] = row
        worst_at_top_speed = max(worst_at_top_speed, per_speed[max(speeds)]["paper"])
        mid = 1.5 if 1.5 in per_speed else max(speeds)
        comparisons += 1
        if per_speed[mid]["paper"] <= per_speed[mid]["closest"] * 1.05:
            wins += 1

    passed = worst_at_top_speed <= ratio_budget and wins >= comparisons - 1
    return ExperimentResult(
        exp_id="T1",
        title="identical endpoints: speed-augmented competitiveness",
        claim="(1+eps)-speed O(1/eps^7)-competitive for total flow time (Thm 1)",
        table=table,
        metrics={
            "worst_mean_ratio_at_top_speed": worst_at_top_speed,
            "greedy_wins_vs_closest": float(wins),
            "topologies": float(comparisons),
        },
        passed=passed,
        notes=(
            "ratio = fractional flow / lower bound (best combinatorial; the "
            "bound column lists which bound was binding across seeds). Pass: "
            f"worst mean paper ratio at the top speed <= {ratio_budget} and "
            "the greedy beats/matches closest-leaf at s=1.5 on all but at "
            "most one topology."
        ),
    )
